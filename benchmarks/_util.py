"""Shared helpers for the benchmark suite.

Every bench prints the rows of the paper table/figure it reproduces and
writes the same text under ``benchmarks/results/`` so the numbers
survive pytest's output capturing (EXPERIMENTS.md is assembled from
those files).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Sequence

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, lines: Iterable[str]) -> str:
    """Print *lines* and persist them to ``benchmarks/results/<name>.txt``."""
    text = "\n".join(lines)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n",
                                             encoding="utf-8")
    return text


def table(headers: Sequence[str],
          rows: Iterable[Sequence[object]]) -> List[str]:
    """Render an aligned text table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in str_rows)
    return out


def pct(value: float) -> str:
    """Format a fraction as a percentage string."""
    return f"{value * 100:.1f}%"
