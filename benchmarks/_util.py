"""Shared helpers for the benchmark suite.

Every bench prints the rows of the paper table/figure it reproduces and
writes the same text under ``benchmarks/results/`` so the numbers
survive pytest's output capturing (EXPERIMENTS.md is assembled from
those files).

Timing goes through :func:`timed`, a thin wrapper over the
``repro.obs`` span machinery — bench output and pipeline telemetry
share one code path instead of each bench hand-rolling a stopwatch.
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Iterable, Iterator, List, Sequence

from repro.obs.spans import Span, timer

RESULTS_DIR = Path(__file__).parent / "results"


@contextmanager
def timed(name: str, **attributes) -> Iterator[Span]:
    """Time a block with the ``repro.obs`` span clock.

    Yields the :class:`~repro.obs.spans.Span`; after the block exits
    its ``wall_ms``/``cpu_ms`` carry the measured durations.  When
    tracing is enabled (``darklight --trace``-style runs of the bench
    suite) the span also lands in the process trace.
    """
    with timer(name, **attributes) as measured:
        yield measured


def seconds(span_obj: Span) -> float:
    """A finished span's wall time in seconds (bench tables use s)."""
    return span_obj.wall_ms / 1000.0


def emit(name: str, lines: Iterable[str]) -> str:
    """Print *lines* and persist them to ``benchmarks/results/<name>.txt``."""
    text = "\n".join(lines)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n",
                                             encoding="utf-8")
    return text


def table(headers: Sequence[str],
          rows: Iterable[Sequence[object]]) -> List[str]:
    """Render an aligned text table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in str_rows)
    return out


def pct(value: float) -> str:
    """Format a fraction as a percentage string."""
    return f"{value * 100:.1f}%"
