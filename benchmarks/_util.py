"""Shared helpers for the benchmark suite.

Every bench prints the rows of the paper table/figure it reproduces and
writes the same text under ``benchmarks/results/`` so the numbers
survive pytest's output capturing (EXPERIMENTS.md is assembled from
those files).

Timing goes through :func:`timed`, a thin wrapper over the
``repro.obs`` span machinery — bench output and pipeline telemetry
share one code path instead of each bench hand-rolling a stopwatch.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Mapping, \
    Optional, Sequence, Tuple

from repro.obs.spans import Span, timer

RESULTS_DIR = Path(__file__).parent / "results"


@contextmanager
def timed(name: str, **attributes) -> Iterator[Span]:
    """Time a block with the ``repro.obs`` span clock.

    Yields the :class:`~repro.obs.spans.Span`; after the block exits
    its ``wall_ms``/``cpu_ms`` carry the measured durations.  When
    tracing is enabled (``darklight --trace``-style runs of the bench
    suite) the span also lands in the process trace.
    """
    with timer(name, **attributes) as measured:
        yield measured


def seconds(span_obj: Span) -> float:
    """A finished span's wall time in seconds (bench tables use s)."""
    return span_obj.wall_ms / 1000.0


def emit(name: str, lines: Iterable[str]) -> str:
    """Print *lines* and persist them to ``benchmarks/results/<name>.txt``."""
    text = "\n".join(lines)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n",
                                             encoding="utf-8")
    return text


def table(headers: Sequence[str],
          rows: Iterable[Sequence[object]]) -> List[str]:
    """Render an aligned text table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in str_rows)
    return out


def pct(value: float) -> str:
    """Format a fraction as a percentage string."""
    return f"{value * 100:.1f}%"


def update_trajectory(name: str, rows: Sequence[Mapping[str, Any]],
                      key_fields: Sequence[str],
                      extra: Optional[Mapping[str, Any]] = None,
                      ) -> Tuple[Path, Dict[str, Any]]:
    """Merge *rows* into ``results/<name>.json`` keyed by *key_fields*.

    Benchmark result files used to be snapshots that every run
    overwrote; this keeps them a *trajectory*: rows from earlier runs
    at other corpus sizes survive, and a re-run at the same key
    replaces only its own row.  ``darklight bench-diff`` matches rows
    on the same key, so the file doubles as the regression baseline.
    """
    path = RESULTS_DIR / f"{name}.json"
    document: Dict[str, Any] = {}
    if path.exists():
        try:
            loaded = json.loads(path.read_text(encoding="utf-8"))
            if isinstance(loaded, dict):
                document = loaded
        except json.JSONDecodeError:
            document = {}

    def row_key(row: Mapping[str, Any]) -> Tuple[Any, ...]:
        return tuple(row.get(field) for field in key_fields)

    fresh_keys = {row_key(row) for row in rows}
    kept = [row for row in document.get("sizes") or ()
            if isinstance(row, Mapping) and row_key(row) not in fresh_keys]
    merged = kept + [dict(row) for row in rows]
    merged.sort(key=lambda row: tuple(
        (value is None, value) for value in row_key(row)))
    if extra:
        document.update(dict(extra))
    document["sizes"] = merged
    RESULTS_DIR.mkdir(exist_ok=True)
    path.write_text(json.dumps(document, indent=2, default=str) + "\n",
                    encoding="utf-8")
    return path, document
