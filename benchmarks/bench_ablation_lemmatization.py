"""Ablation — lemmatization on/off.

Section IV-A lemmatizes before word-n-gram extraction so different
inflections count as one feature.  This ablation measures k-attribution
accuracy with and without it.  The expected effect is small but the
pipeline must not *depend* on lemmatization to work — robustness the
paper implicitly relies on when handling slang-heavy text.
"""

from __future__ import annotations

from _util import emit, pct, table
from repro.core.kattribution import KAttributor
from repro.eval.alterego import build_alter_ego_dataset
from repro.eval import experiments as ex
from repro.synth.world import REDDIT

WORDS = 800


def _accuracy(dataset):
    reducer = KAttributor(k=10)
    reducer.fit(dataset.originals)
    return reducer.accuracy_at_k(dataset.alter_egos, dataset.truth,
                                 ks=(1, 10))


def _run(world):
    polished, _ = ex.get_polished(world, REDDIT)
    with_lemma = build_alter_ego_dataset(
        polished, seed=0, words_per_alias=WORDS,
        use_lemmatization=True)
    without_lemma = build_alter_ego_dataset(
        polished, seed=0, words_per_alias=WORDS,
        use_lemmatization=False)
    return _accuracy(with_lemma), _accuracy(without_lemma)


def test_ablation_lemmatization(benchmark, world):
    acc_with, acc_without = benchmark.pedantic(
        _run, args=(world,), rounds=1, iterations=1)

    lines = [f"Ablation — lemmatization ({WORDS} words per alias)"]
    lines += table(
        ("variant", "acc@1", "acc@10"),
        [("lemmatized (paper §IV-A)", pct(acc_with[1]),
          pct(acc_with[10])),
         ("raw tokens", pct(acc_without[1]), pct(acc_without[10]))])
    emit("ablation_lemmatization", lines)

    # Robustness: turning lemmatization off must not collapse accuracy.
    assert acc_without[10] >= acc_with[10] - 0.15
    assert acc_with[10] > 0.5
