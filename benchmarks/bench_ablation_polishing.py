"""Ablation — the 12-step polishing pipeline on/off.

Section III-C exists because quotes leak *other* users' style, PGP
blocks and ASCII art poison character n-grams, and bot/spam accounts
corrupt the candidate pool.  This ablation builds alter-ego datasets
from the raw (unpolished) Reddit forum and compares attribution
accuracy against the polished pipeline.
"""

from __future__ import annotations

from _util import emit, pct, table
from repro.core.kattribution import KAttributor
from repro.eval.alterego import build_alter_ego_dataset
from repro.eval import experiments as ex
from repro.synth.world import REDDIT

WORDS = 800


def _accuracy(dataset):
    if not dataset.alter_egos:
        return {1: 0.0, 10: 0.0}
    reducer = KAttributor(k=10)
    reducer.fit(dataset.originals)
    return reducer.accuracy_at_k(dataset.alter_egos, dataset.truth,
                                 ks=(1, 10))


def _run(world):
    polished, report = ex.get_polished(world, REDDIT)
    clean = build_alter_ego_dataset(polished, seed=0,
                                    words_per_alias=WORDS)
    raw = build_alter_ego_dataset(world.forums[REDDIT], seed=0,
                                  words_per_alias=WORDS)
    return _accuracy(clean), _accuracy(raw), report


def test_ablation_polishing(benchmark, world):
    acc_clean, acc_raw, report = benchmark.pedantic(
        _run, args=(world,), rounds=1, iterations=1)

    lines = [f"Ablation — polishing pipeline ({WORDS} words per alias)",
             f"polishing dropped {report.dropped_bot_accounts} bot "
             f"accounts, {report.dropped_duplicates} duplicates, "
             f"{report.dropped_short} short, "
             f"{report.dropped_low_diversity} low-diversity, "
             f"{report.dropped_non_english} non-English messages"]
    lines += table(
        ("variant", "acc@1", "acc@10"),
        [("polished (paper §III-C)", pct(acc_clean[1]),
          pct(acc_clean[10])),
         ("raw forum dump", pct(acc_raw[1]), pct(acc_raw[10]))])
    emit("ablation_polishing", lines)

    # The polished pipeline must be competitive; the raw run usually
    # scores *similarly or worse* despite having more text, because
    # quotes and noise blur author boundaries.
    assert acc_clean[10] >= acc_raw[10] - 0.10
    assert acc_clean[10] > 0.5
