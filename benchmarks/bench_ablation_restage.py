"""Ablation — is the second-stage feature re-extraction worth it?

Section IV-I recomputes top-N selection and Tf-Idf *on the k candidate
documents only* before the final scoring; the obvious shortcut is to
threshold the first-stage scores directly.  This ablation compares the
two on the Reddit alter egos: the paper's design should dominate the
precision-recall trade-off (its Table VI "with reduction" vs "without"
gap is driven by exactly this re-weighting).
"""

from __future__ import annotations

from _util import emit, table
from repro.core.linker import AliasLinker, Match
from repro.core.threshold import matches_to_curve


def _run(dataset):
    linker = AliasLinker(threshold=0.0)
    linker.fit(dataset.originals)
    result = linker.link(dataset.alter_egos)
    restaged = matches_to_curve(result.matches, dataset.truth)
    # shortcut variant: same candidates, first-stage scores
    first_stage = [
        Match(unknown_id=m.unknown_id, candidate_id=m.candidate_id,
              score=m.first_stage_score, accepted=True,
              first_stage_score=m.first_stage_score)
        for m in result.matches
    ]
    shortcut = matches_to_curve(first_stage, dataset.truth)
    return restaged, shortcut


def test_ablation_restage(benchmark, reddit_dataset):
    restaged, shortcut = benchmark.pedantic(
        _run, args=(reddit_dataset,), rounds=1, iterations=1)

    lines = ["Ablation — second-stage re-extraction vs first-stage "
             "scores"]
    lines += table(
        ("variant", "AUC"),
        [("re-extract on candidates (paper §IV-I)",
          f"{restaged.auc():.3f}"),
         ("threshold first-stage scores", f"{shortcut.auc():.3f}")])
    emit("ablation_restage", lines)

    # The paper's design must not be worse; typically it is better
    # because the k-document Idf sharpens discriminative features.
    assert restaged.auc() >= shortcut.auc() - 0.02
