"""§IV-J — RAM-bounded batched processing.

Paper: running the pipeline in batches of B = 100 on the baseline-
comparison dataset gives precision 91% / recall 81% at the unchanged
threshold 0.4190 — essentially the unbatched 94% / 80%.

Asserted shape: the batched run's precision and recall at the
calibrated threshold are within a few points of the unbatched run's.
"""

from __future__ import annotations

from _util import emit, pct, table
from repro.core.batch import BatchedLinker
from repro.core.linker import AliasLinker
from repro.core.threshold import matches_to_curve

BATCH_SIZE = 100


def _run(dataset, threshold):
    unknowns = dataset.alter_egos
    plain = AliasLinker(threshold=threshold)
    plain.fit(dataset.originals)
    plain_curve = matches_to_curve(plain.link(unknowns).matches,
                                   dataset.truth)
    batch_size = min(BATCH_SIZE, max(20, len(dataset.originals) // 3))
    batched = BatchedLinker(batch_size=batch_size,
                            threshold=threshold)
    batched.fit(dataset.originals)
    batched_curve = matches_to_curve(batched.link(unknowns).matches,
                                     dataset.truth)
    return plain_curve, batched_curve, batch_size


def test_batch_processing(benchmark, reddit_dataset, threshold):
    plain_curve, batched_curve, batch_size = benchmark.pedantic(
        _run, args=(reddit_dataset, threshold), rounds=1, iterations=1)

    plain_p, plain_r = plain_curve.at_threshold(threshold)
    batch_p, batch_r = batched_curve.at_threshold(threshold)
    lines = [f"§IV-J — batched pipeline, B = {batch_size}, "
             f"threshold {threshold:.4f}"]
    lines += table(
        ("variant", "precision", "recall", "paper"),
        [("unbatched", pct(plain_p), pct(plain_r), "94% / 80%"),
         ("batched", pct(batch_p), pct(batch_r), "91% / 81%")])
    emit("batch_processing", lines)

    # Shape: batching changes the operating point only marginally.
    assert abs(batch_p - plain_p) < 0.10
    assert abs(batch_r - plain_r) < 0.10
