"""§VI — measuring the paper's proposed countermeasures.

The discussion section argues (without numbers) that a user can defend
herself with adversarial stylometry for the text features and schedule
discipline for the daily activity profile.  This bench quantifies both
on the Reddit alter egos:

* baseline attack (full pipeline),
* style obfuscation applied to the whole forum,
* schedule jitter applied to the whole forum,
* both combined.

Expected shape: each countermeasure reduces k-attribution accuracy and
the combination reduces it most.
"""

from __future__ import annotations

from _util import emit, pct, table
from repro.core.kattribution import KAttributor
from repro.defense.obfuscation import StyleObfuscator
from repro.defense.scheduling import ScheduleJitterer
from repro.eval.alterego import build_alter_ego_dataset
from repro.eval import experiments as ex
from repro.synth.world import REDDIT

WORDS = 800


def _accuracy(forum):
    dataset = build_alter_ego_dataset(forum, seed=0,
                                      words_per_alias=WORDS)
    if not dataset.alter_egos:
        return 0.0, 0
    reducer = KAttributor(k=1)
    reducer.fit(dataset.originals)
    acc = reducer.accuracy_at_k(dataset.alter_egos, dataset.truth,
                                ks=(1,))[1]
    return acc, len(dataset.alter_egos)


def _run(world):
    polished, _ = ex.get_polished(world, REDDIT)
    results = {}
    results["no defense"] = _accuracy(polished)
    obfuscated = StyleObfuscator().obfuscate_forum(polished)
    results["style obfuscation"] = _accuracy(obfuscated)
    jittered = ScheduleJitterer(seed=1).apply_forum(polished)
    results["schedule jitter"] = _accuracy(jittered)
    both = ScheduleJitterer(seed=1).apply_forum(obfuscated)
    results["both"] = _accuracy(both)
    return results


def test_defense_countermeasures(benchmark, world):
    results = benchmark.pedantic(_run, args=(world,), rounds=1,
                                 iterations=1)

    rows = [(name, pct(acc), n)
            for name, (acc, n) in results.items()]
    lines = ["§VI — countermeasures vs attack accuracy "
             f"(acc@1, {WORDS} words per alias)"]
    lines += table(("defense", "attack acc@1", "pairs"), rows)
    emit("defense_countermeasures", lines)

    base = results["no defense"][0]
    # Shape: every countermeasure hurts the attacker; combining both
    # hurts most (allow small noise at this scale).
    assert results["style obfuscation"][0] <= base + 0.02
    assert results["schedule jitter"][0] <= base + 0.02
    assert results["both"][0] <= min(
        results["style obfuscation"][0],
        results["schedule jitter"][0]) + 0.05
    assert results["both"][0] < base
