"""Fig. 1 — Cumulative distribution of words per user on the Dark Web
forums.

Paper: most TMG/DM users have little exploitable text (the reason the
refinement floors of §IV-D discard the bulk of collected aliases), with
TMG users writing longer, more digressive messages than DM users.
The bench prints the measured CDF at the paper's axis points and
asserts the heavy-tail shape.
"""

from __future__ import annotations

import numpy as np

from _util import emit, pct, table
from repro.eval import experiments as ex
from repro.synth.world import DM, TMG
from repro.textproc.tokenizer import count_words


def _word_counts(world, forum_name):
    polished, _ = ex.get_polished(world, forum_name)
    return np.array([
        sum(count_words(m.text) for m in record.messages)
        for record in polished.users.values()
    ])


def test_fig1_word_cdf(benchmark, world):
    counts = benchmark.pedantic(
        lambda: {name: _word_counts(world, name) for name in (TMG, DM)},
        rounds=1, iterations=1)

    points = (100, 500, 1000, 1500, 3000, 5000, 10000)
    rows = []
    for point in points:
        rows.append((
            point,
            pct(float(np.mean(counts[TMG] <= point))),
            pct(float(np.mean(counts[DM] <= point))),
        ))
    lines = ["Fig. 1 — CDF of words per user after polishing "
             "(fraction of users with <= N words)"]
    lines += table(("words", "TMG", "DM"), rows)
    lines.append(f"median words/user: TMG={int(np.median(counts[TMG]))} "
                 f"DM={int(np.median(counts[DM]))}")
    emit("fig1_word_cdf", lines)

    # Shape 1: CDFs are monotone.
    for name in (TMG, DM):
        cdf = [float(np.mean(counts[name] <= p)) for p in points]
        assert cdf == sorted(cdf)
    # Shape 2: a meaningful share of users has little exploitable text
    # (the reason refinement discards most collected aliases).
    assert float(np.mean(counts[DM] <= 5000)) > 0.05
    # Shape 3: TMG users write longer than DM users ("the messages are
    # longer than average and more digressive", §III-B2).
    assert np.median(counts[TMG]) > np.median(counts[DM])
