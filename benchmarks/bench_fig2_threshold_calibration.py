"""Fig. 2 — precision-recall curves for the W1/W2 calibration sets.

Paper (§IV-E): 1,000 Reddit alter egos split into W1/W2 (500 each);
the threshold chosen on W1 (0.4190) gives 94% precision / 80% recall
there and transfers to W2 with 87% / 82% — the two curves "behave very
similarly".

The bench reruns that protocol: calibrate on W1, apply unchanged to W2,
print both curves and the operating points, and assert the transfer
(W2 precision and recall within a reasonable band of W1's).
"""

from __future__ import annotations

from _util import emit, pct, table
from repro.core.linker import AliasLinker
from repro.core.threshold import ThresholdCalibrator
from repro.eval import experiments as ex
from repro.eval.metrics import curve_table


def _run(dataset):
    w1, w2 = ex.split_w1_w2(dataset, n_each=500, seed=1)
    linker = AliasLinker(threshold=0.0)
    linker.fit(dataset.originals)
    calibrator = ThresholdCalibrator(target_recall=0.80)
    calibration = calibrator.calibrate(
        linker.link(w1.alter_egos).matches, w1.truth)
    w2_precision, w2_recall, w2_curve = calibrator.validate(
        calibration, linker.link(w2.alter_egos).matches, w2.truth)
    return calibration, (w2_precision, w2_recall, w2_curve), (w1, w2)


def test_fig2_threshold_calibration(benchmark, reddit_dataset):
    calibration, (w2_p, w2_r, w2_curve), (w1, w2) = benchmark.pedantic(
        _run, args=(reddit_dataset,), rounds=1, iterations=1)

    lines = ["Fig. 2 — threshold calibration on W1, validation on W2",
             f"W1: {len(w1.alter_egos)} unknowns, "
             f"W2: {len(w2.alter_egos)} unknowns",
             f"chosen threshold t = {calibration.threshold:.4f} "
             "(paper: 0.4190 on its datasets)",
             f"W1 at t: precision {pct(calibration.precision)} "
             f"recall {pct(calibration.recall)} "
             "(paper: 94% / 80%)",
             f"W2 at t: precision {pct(w2_p)} recall {pct(w2_r)} "
             "(paper: 87% / 82%)",
             "",
             "W1 precision-recall curve (downsampled):"]
    lines += table(("threshold", "precision", "recall"),
                   [(f"{r['threshold']:.4f}", pct(r["precision"]),
                     pct(r["recall"]))
                    for r in curve_table(calibration.curve, 12)])
    lines.append("")
    lines.append("W2 precision-recall curve (downsampled):")
    lines += table(("threshold", "precision", "recall"),
                   [(f"{r['threshold']:.4f}", pct(r["precision"]),
                     pct(r["recall"]))
                    for r in curve_table(w2_curve, 12)])
    emit("fig2_threshold_calibration", lines)

    # Shape: calibration hits its recall target with high precision,
    # and the threshold transfers to W2 without collapsing.
    assert calibration.recall >= 0.75
    assert calibration.precision >= 0.75
    assert w2_p >= calibration.precision - 0.20
    assert w2_r >= 0.6
