"""Fig. 3 — baseline comparison (plus the §IV-F runtime aside).

Paper: on 1,000 Reddit alter egos, the Standard Baseline (space-free
char 4-grams + cosine) scores AUC 0.10, the Koppel random-subspace
baseline 0.49, the two-stage method 0.88.  Runtimes: Standard 155 s,
ours 1,541 s, Koppel 2,501 s — Standard fastest, Koppel slowest.

Scale note: this bench runs at a 400-word text budget.  At the paper's
1,500 words but with only a few hundred candidates, *every* reasonable
method saturates and the ordering becomes uninformative; 400 words
restores the discriminative regime the paper's 11,679-candidate corpus
lived in (see EXPERIMENTS.md).

Asserted shapes: our AUC beats both baselines, and the wall-clock
ordering Standard < ours < Koppel holds.
"""

from __future__ import annotations

from _util import emit, seconds, table, timed
from repro.core.baselines import KoppelBaseline, StandardBaseline
from repro.core.linker import AliasLinker
from repro.core.threshold import matches_to_curve


def _timed(method, known, unknowns, truth):
    with timed("bench.baseline",
               method=type(method).__name__) as clock:
        method.fit(known)
        result = method.link(unknowns)
    curve = matches_to_curve(result.matches, truth)
    return curve.auc(), seconds(clock)


def _run(dataset):
    known = dataset.originals
    unknowns = dataset.alter_egos
    truth = dataset.truth
    out = {}
    out["Standard Baseline"] = _timed(StandardBaseline(), known,
                                      unknowns, truth)
    out["Our method"] = _timed(AliasLinker(threshold=0.0), known,
                               unknowns, truth)
    out["Koppel Baseline"] = _timed(
        KoppelBaseline(iterations=100, feature_fraction=0.4, seed=0),
        known, unknowns, truth)
    return out


PAPER = {
    "Standard Baseline": (0.10, 155),
    "Koppel Baseline": (0.49, 2501),
    "Our method": (0.88, 1541),
}


def test_fig3_baseline_comparison(benchmark, world):
    from repro.eval import experiments as ex
    from repro.synth.world import REDDIT

    dataset = ex.get_alter_egos(world, REDDIT, words_per_alias=400)
    results = benchmark.pedantic(_run, args=(dataset,),
                                 rounds=1, iterations=1)

    rows = []
    for name in ("Standard Baseline", "Koppel Baseline", "Our method"):
        auc, elapsed = results[name]
        paper_auc, paper_secs = PAPER[name]
        rows.append((name, f"{auc:.3f}", f"{elapsed:.1f}s",
                     f"{paper_auc:.2f}", f"{paper_secs}s"))
    lines = [f"Fig. 3 — baseline comparison on "
             f"{len(dataset.alter_egos)} alter egos vs "
             f"{len(dataset.originals)} known aliases "
             "(400-word budget; see scale note)"]
    lines += table(("method", "AUC", "runtime", "paper AUC",
                    "paper runtime"), rows)
    emit("fig3_baseline_comparison", lines)

    auc_std, t_std = results["Standard Baseline"]
    auc_kop, t_kop = results["Koppel Baseline"]
    auc_ours, t_ours = results["Our method"]
    # Shape 1: our method wins on AUC.
    assert auc_ours > auc_std
    assert auc_ours > auc_kop
    # Shape 2: runtime ordering Standard < ours < Koppel.
    assert t_std < t_ours < t_kop
