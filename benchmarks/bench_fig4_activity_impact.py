"""Fig. 4 — impact of the daily activity feature on k-attribution.

Paper: on both Reddit and the merged DarkWeb forums, accuracy-vs-k
curves with text+activity ("all") sit above the text-only curves for
every k in 1..10; the boost "allows us to use less text in our
procedure, so we can evaluate more users".

The bench sweeps k = 1..10 on both corpora at a deliberately small text
budget (where the paper's effect is strongest) and asserts the boost.
"""

from __future__ import annotations

import numpy as np

from _util import emit, pct, table
from repro.core.kattribution import KAttributor
from repro.eval import experiments as ex
from repro.synth.world import DM, REDDIT, TMG

#: Text budget for this figure: small enough that text alone struggles.
WORDS = 400

KS = tuple(range(1, 11))


def _accuracy_curves(known, unknown, truth):
    out = {}
    for label, use_activity in (("text", False), ("all", True)):
        reducer = KAttributor(k=10, use_activity=use_activity)
        reducer.fit(known)
        out[label] = reducer.accuracy_at_k(unknown, truth, ks=KS)
    return out


def _run(world):
    reddit = ex.get_alter_egos(world, REDDIT, words_per_alias=WORDS)
    tmg = ex.get_alter_egos(world, TMG, words_per_alias=WORDS)
    dm = ex.get_alter_egos(world, DM, words_per_alias=WORDS)
    dark_known = tmg.originals + dm.originals
    dark_unknown = tmg.alter_egos + dm.alter_egos
    dark_truth = {**tmg.truth, **dm.truth}
    return {
        "Reddit": _accuracy_curves(reddit.originals,
                                   reddit.alter_egos, reddit.truth),
        "DarkWeb": _accuracy_curves(dark_known, dark_unknown,
                                    dark_truth),
    }


def test_fig4_activity_impact(benchmark, world):
    curves = benchmark.pedantic(_run, args=(world,), rounds=1,
                                iterations=1)

    for corpus in ("Reddit", "DarkWeb"):
        rows = [(k, pct(curves[corpus]["text"][k]),
                 pct(curves[corpus]["all"][k])) for k in KS]
        lines = [f"Fig. 4 — {corpus}: accuracy at k "
                 f"({WORDS} words per alias)"]
        lines += table(("k", "text only", "text + activity"), rows)
        emit(f"fig4_activity_impact_{corpus.lower()}", lines)

    for corpus in ("Reddit", "DarkWeb"):
        text = np.array([curves[corpus]["text"][k] for k in KS])
        both = np.array([curves[corpus]["all"][k] for k in KS])
        # Shape 1: accuracy grows with k for both configurations.
        assert text[-1] >= text[0]
        assert both[-1] >= both[0]
        # Shape 2: the activity profile helps on average over k.
        assert both.mean() >= text.mean() - 0.01, corpus
    # Shape 3: on the biggest corpus the boost at k=1 is visible.
    assert curves["Reddit"]["all"][1] >= curves["Reddit"]["text"][1]
