"""Linking throughput at corpus sizes the paper never touched.

The paper stops at ~4,100 known aliases (Table IV).  This bench pushes
the two-stage linker across growing synthetic corpora and decomposes
the cost into the three phases the ``repro.perf`` subsystem attacks:

* **fit** — stage-1 feature-space fit over the known corpus;
* **reduce** — blocked stage-1 scoring of every unknown;
* **restage** — the per-unknown stage-2 re-fit, with the profile
  cache on vs off, and serial vs parallel.

It also measures the **cold-start path**: each warm linker is saved to
an index snapshot (``repro.resilience.snapshot``), reloaded, and
re-linked — the save/load wall times and the on-disk snapshot size land
in the row (``snapshot_save_s`` / ``snapshot_load_s`` /
``snapshot_bytes``), and the cold linker's output must be bit-identical
to the warm one's.

A second smoke scenario times the episode-style evaluation harness
(``repro.eval.episodes``): sampling a deterministic suite from a
synthetic pool and scoring it with the full two-stage linker and the
stage-1-only variant.  Its row lands in the same trajectory under the
``workers="episodes"`` key.

A third scenario sweeps the **stage-1 strategies** (``blocked`` vs the
term-pruned ``invindex``) over large synthetic Tf-Idf-shaped sparse
corpora — 20k/50k/100k known rows via ``REPRO_BENCH_STAGE1`` — and
records, per row, the index build time, both reduce wall times, the
visited-postings fraction against the dense posting count, per-row RSS,
and a bit-identity flag.  Matrices are synthesized directly (document
synthesis + feature fit at 100k known costs tens of minutes and would
measure the fit, not the scan).

Corpus sizes come from ``REPRO_BENCH_SIZES`` (comma-separated
``<known>x<unknown>`` pairs, e.g. ``"2000x200"``, or the literal
``sweep`` for the 2k/10k/50k known-side trajectory); the parallel
runs use ``REPRO_BENCH_WORKERS`` workers (default 4).  Results are
printed, persisted as text, and merged machine-readable into
``benchmarks/results/BENCH_linking.json``: rows are keyed by corpus
size + worker count and *appended* to the existing trajectory instead
of overwriting it, each row carries per-stage wall times, current and
peak RSS, and the fork-pool overhead counters
(``parallel.pickle_bytes``/``fork_ms``/``merge_ms``), and the file
gains a run manifest — which is what lets ``darklight bench-diff``
gate regressions against the committed baseline.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import numpy as np
from scipy import sparse

from _util import emit, seconds, table, timed, update_trajectory
from repro.core.documents import AliasDocument
from repro.core.linker import AliasLinker
from repro.core.tfidf import l2_normalize_rows
from repro.perf.blocked import blocked_top_k
from repro.perf.invindex import ShardedIndex, choose_stage1
from repro.perf.parallel import GATE_ENV, shutdown_pools
from repro.resilience.snapshot import load_index, save_index
from repro.obs.manifest import build_manifest
from repro.obs.metrics import get_registry
from repro.obs.prof import peak_rss_kb, read_rss_kb

SIZES_ENV = "REPRO_BENCH_SIZES"
WORKERS_ENV_BENCH = "REPRO_BENCH_WORKERS"
STAGE1_SIZES_ENV = "REPRO_BENCH_STAGE1"
STAGE1_SHARDS_ENV = "REPRO_BENCH_SHARDS"
DEFAULT_SIZES = "300x60,1200x150"
DEFAULT_STAGE1_SIZES = "20000x200"
#: The known-side scaling trajectory from the ROADMAP
#: (``REPRO_BENCH_SIZES=sweep``).
SWEEP_SIZES = "2000x200,10000x400,50000x800"
#: The stage-1 strategy trajectory (``REPRO_BENCH_STAGE1=sweep``).
STAGE1_SWEEP_SIZES = "20000x200,50000x200,100000x200"


def _parse_sizes(raw, sweep):
    if raw.strip().lower() == "sweep":
        raw = sweep
    pairs = []
    for chunk in raw.split(","):
        known, unknown = chunk.strip().lower().split("x")
        pairs.append((int(known), int(unknown)))
    return pairs


def _sizes():
    return _parse_sizes(os.environ.get(SIZES_ENV, DEFAULT_SIZES),
                        SWEEP_SIZES)


def _stage1_sizes():
    return _parse_sizes(
        os.environ.get(STAGE1_SIZES_ENV, DEFAULT_STAGE1_SIZES),
        STAGE1_SWEEP_SIZES)


def _peak_rss_mb():
    return peak_rss_kb() / 1024.0


def _counter_value(name):
    snap = get_registry().snapshot().get(name, {})
    return float(snap.get("value", 0.0) or 0.0)


def _make_docs(n, seed, prefix, vocab_size=1500, words_per_doc=200):
    """Synthesize alias documents directly (no world-building cost).

    Each document samples from a per-author slice of a shared
    vocabulary so candidates are distinguishable, like real corpora.
    """
    rng = np.random.default_rng(seed)
    vocab = np.array([f"tok{i:05d}" for i in range(vocab_size)])
    docs = []
    for i in range(n):
        start = (i * 37) % (vocab_size - 300)
        pool = vocab[start:start + 300]
        words = tuple(rng.choice(pool, size=words_per_doc))
        activity = rng.random(24)
        docs.append(AliasDocument(
            doc_id=f"{prefix}{i}", alias=f"{prefix}{i}", forum=prefix,
            text=" ".join(words), words=words, timestamps=(),
            activity=activity / activity.sum()))
    return docs


def _restage_time(linker, reduced):
    with timed("bench.restage") as span:
        for candidates in reduced:
            linker.rescore(candidates.unknown, candidates.documents)
    return seconds(span)


def _measure(n_known, n_unknown, workers):
    known = _make_docs(n_known, seed=1, prefix="k")
    unknown = _make_docs(n_unknown, seed=2, prefix="u")
    row = {"n_known": n_known, "n_unknown": n_unknown,
           "workers": workers,
           "rss_before_mb": read_rss_kb() / 1024.0}

    cached = AliasLinker(threshold=0.0)
    with timed("bench.fit", n_known=n_known) as span:
        cached.fit(known)
    row["fit_s"] = seconds(span)
    with timed("bench.reduce", n_unknown=n_unknown) as span:
        reduced = cached.reducer.reduce(unknown)
    row["reduce_s"] = seconds(span)

    # Stage-1 strategy columns on the *same* fitted feature space:
    # build the sharded inverted index, reduce again through it, and
    # record the visited-postings fraction against the dense count.
    shards = int(os.environ.get(STAGE1_SHARDS_ENV, "4"))
    cached.reducer.shards = min(shards, n_known)
    with timed("bench.invindex_build", n_known=n_known) as span:
        cached.reducer.rebuild_index()
    row["invindex_build_s"] = seconds(span)
    row["invindex_shards"] = cached.reducer._index.n_shards
    visited_before = _counter_value("invindex_postings_visited_total")
    dense_before = _counter_value("invindex_postings_dense_total")
    cached.reducer.stage1 = "invindex"
    with timed("bench.reduce_invindex", n_unknown=n_unknown) as span:
        reduced_inv = cached.reducer.reduce(unknown)
    row["reduce_invindex_s"] = seconds(span)
    cached.reducer.stage1 = "blocked"
    cached.reducer._index = None
    visited = (_counter_value("invindex_postings_visited_total")
               - visited_before)
    dense = (_counter_value("invindex_postings_dense_total")
             - dense_before)
    row["invindex_visited_frac"] = visited / max(dense, 1.0)
    row["invindex_speedup"] = (row["reduce_s"]
                               / max(row["reduce_invindex_s"], 1e-9))
    row["stage1_identical"] = reduced_inv == reduced
    # What the cost model would pick for this corpus: real-linker
    # matrices at these sizes are small and dense-ish, where invindex
    # historically *lost* (visited fraction > 1) — auto must route
    # them to dense/blocked (asserted below).
    row["stage1_auto"] = choose_stage1(cached.reducer._known_matrix,
                                       cached.reducer.k)

    row["restage_cached_s"] = _restage_time(cached, reduced)

    uncached = AliasLinker(threshold=0.0, cache=False)
    uncached.fit(known)
    uncached_reduced = uncached.reducer.reduce(unknown)
    row["restage_uncached_s"] = _restage_time(uncached,
                                              uncached_reduced)
    row["restage_speedup"] = (row["restage_uncached_s"]
                              / max(row["restage_cached_s"], 1e-9))

    # Parallel scaling of the full link() call on the warm linker,
    # with the fork-pool overhead counters captured as deltas so the
    # speedup (or lack of it) is attributable.
    with timed("bench.link_serial") as span:
        serial_result = cached.link(unknown)
    row["link_serial_s"] = seconds(span)
    overhead_before = {name: _counter_value(name) for name in
                       ("parallel.pickle_bytes", "parallel.fork_ms",
                        "parallel.merge_ms")}
    cached.workers = workers
    with timed("bench.link_parallel", workers=workers) as span:
        parallel_result = cached.link(unknown)
    row["link_parallel_s"] = seconds(span)
    # Warm-pool passes: a second parallel link on the same fitted
    # linker must reuse the persistent restage pool without a fresh
    # fork.  The available-core gate routes a host with fewer cores
    # than workers onto the serial path *before* the pool is ever
    # consulted — that, not a key invalidation, is why this row used
    # to report parallel_pool_reuse 0.0 on single-core boxes.  Run
    # the warm passes with the gate off so the pool genuinely forks
    # once (cold) and is reused (warm) on any host; the key
    # (state id, version, workers) is stable across link() calls.
    gate_before = os.environ.get(GATE_ENV)
    os.environ[GATE_ENV] = "off"
    try:
        with timed("bench.link_pool_cold", workers=workers) as span:
            pooled_result = cached.link(unknown)
        row["link_pool_cold_s"] = seconds(span)
        reuse_before = _counter_value("parallel_pool_reuse_total")
        with timed("bench.link_parallel_warm", workers=workers) as span:
            warm_result = cached.link(unknown)
        row["link_parallel_warm_s"] = seconds(span)
        row["parallel_pool_reuse"] = (
            _counter_value("parallel_pool_reuse_total") - reuse_before)
    finally:
        if gate_before is None:
            os.environ.pop(GATE_ENV, None)
        else:
            os.environ[GATE_ENV] = gate_before
        shutdown_pools()
    cached.workers = 1
    row["parallel_speedup"] = (row["link_serial_s"]
                               / max(row["link_parallel_s"], 1e-9))
    row["parallel_pickle_bytes"] = (
        _counter_value("parallel.pickle_bytes")
        - overhead_before["parallel.pickle_bytes"])
    row["parallel_fork_ms"] = (_counter_value("parallel.fork_ms")
                               - overhead_before["parallel.fork_ms"])
    row["parallel_merge_ms"] = (_counter_value("parallel.merge_ms")
                                - overhead_before["parallel.merge_ms"])
    row["outputs_identical"] = (
        serial_result.to_dict() == parallel_result.to_dict()
        and pooled_result.to_dict() == parallel_result.to_dict()
        and warm_result.to_dict() == parallel_result.to_dict())

    # Cold-start path: snapshot the warm linker, reload, re-link.
    with tempfile.TemporaryDirectory(prefix="bench-snap-") as tmp:
        snap = Path(tmp) / "index.snap"
        with timed("bench.snapshot_save", n_known=n_known) as span:
            info = save_index(cached, snap)
        row["snapshot_save_s"] = seconds(span)
        row["snapshot_bytes"] = info["bytes"]
        row["rss_before_load_mb"] = read_rss_kb() / 1024.0
        with timed("bench.snapshot_load", n_known=n_known) as span:
            cold = load_index(snap)
        row["snapshot_load_s"] = seconds(span)
        with timed("bench.link_cold") as span:
            cold_result = cold.link(unknown)
        row["link_cold_s"] = seconds(span)
        row["rss_after_load_mb"] = read_rss_kb() / 1024.0
    row["cold_identical"] = (serial_result.to_dict()
                             == cold_result.to_dict())

    row["rss_after_mb"] = read_rss_kb() / 1024.0
    row["peak_rss_mb"] = _peak_rss_mb()
    return row


def _stage1_counts(rng, rows, n_terms, words_per_doc):
    """Zipf word draws for *rows* documents, as a count matrix."""
    cols = (rng.zipf(1.3, size=rows * words_per_doc) - 1) % n_terms
    row_ids = np.repeat(np.arange(rows), words_per_doc)
    counts = sparse.coo_matrix(
        (np.ones(rows * words_per_doc), (row_ids, cols)),
        shape=(rows, n_terms)).tocsr()
    counts.sum_duplicates()
    return counts


def _stage1_matrices(rng, n_known, n_unknown, n_terms=None,
                     words_per_doc=None):
    """Tf-Idf matrices with the real feature space's shape.

    Zipf-drawn vocabularies, log-tf, smoothed log-idf fitted on the
    known side (like the real pipeline), L2-normalized rows.  This is
    the weight skew the inverted index's max-weight pruning exploits —
    raw summed counts instead would concentrate all query mass in a
    few head terms and reproduce the adversarial unprunable case.

    At 500k+ known the documents get shorter and the vocabulary
    wider (the million-alias regime is many thin profiles, not many
    200-word essays), keeping the posting mass — and the bench's
    memory bill — proportionate.
    """
    if n_terms is None:
        n_terms = 50000 if n_known >= 500_000 else 20000
    if words_per_doc is None:
        words_per_doc = 64 if n_known >= 500_000 else 200
    known_counts = _stage1_counts(rng, n_known, n_terms, words_per_doc)
    query_counts = _stage1_counts(rng, n_unknown, n_terms,
                                  words_per_doc)
    df = np.asarray((known_counts > 0).sum(axis=0)).ravel() + 1.0
    idf = np.log((n_known + 1.0) / df)

    def weigh(counts):
        tf = counts.copy()
        tf.data = 1.0 + np.log(tf.data)
        return l2_normalize_rows(tf.multiply(idf).tocsr())

    return weigh(known_counts), weigh(query_counts)


def _measure_stage1(n_known, n_unknown, shards, k=10):
    """One stage-1 strategy row: blocked vs invindex on one corpus.

    Also measures the incremental path — build on all-but-the-tail,
    append the tail through the delta segment, and demand bit-identity
    with the full build — plus what the ``stage1=auto`` cost model
    picks.  At 500k+ known the index is built with ``exact=False``
    (float32 postings, int32 row ids — half the bytes, same bits out)
    so the million-alias row also exercises the memory diet.
    """
    rng = np.random.default_rng(n_known)
    corpus, queries = _stage1_matrices(rng, n_known, n_unknown)
    exact = n_known < 500_000
    row = {"n_known": n_known, "n_unknown": n_unknown,
           "workers": f"stage1x{shards}", "shards": shards,
           "exact_postings": exact,
           "rss_before_mb": read_rss_kb() / 1024.0}
    with timed("bench.stage1_blocked", n_known=n_known) as span:
        blocked_idx, blocked_val = blocked_top_k(queries, corpus, k)
    row["reduce_blocked_s"] = seconds(span)
    row["stage1_auto"] = choose_stage1(corpus, k)
    with timed("bench.stage1_invindex_build", n_known=n_known) as span:
        index = ShardedIndex(corpus, shards=shards, exact=exact)
    row["invindex_build_s"] = seconds(span)
    row["build_rows_per_s"] = n_known / max(row["invindex_build_s"],
                                            1e-9)
    row["postings_mb"] = sum(
        sum(arr.nbytes for arr in shard.postings)
        for shard in index._shards) / (1 << 20)
    visited_before = _counter_value("invindex_postings_visited_total")
    dense_before = _counter_value("invindex_postings_dense_total")
    with timed("bench.stage1_invindex", n_known=n_known) as span:
        inv_idx, inv_val = index.top_k(queries, k)
    row["reduce_invindex_s"] = seconds(span)
    visited = (_counter_value("invindex_postings_visited_total")
               - visited_before)
    dense = (_counter_value("invindex_postings_dense_total")
             - dense_before)
    row["invindex_postings_visited"] = visited
    row["invindex_postings_dense"] = dense
    row["invindex_visited_frac"] = visited / max(dense, 1.0)
    row["invindex_speedup"] = (row["reduce_blocked_s"]
                               / max(row["reduce_invindex_s"], 1e-9))
    row["stage1_identical"] = bool(
        np.array_equal(inv_idx, blocked_idx)
        and np.array_equal(inv_val, blocked_val))

    # Incremental posting updates: build on all but the last n_add
    # rows, append those through the delta segment, and compare with
    # the full build — identical bits, a fraction of the wall.
    n_add = min(1000, n_known // 20)
    if n_add:
        base = corpus[:n_known - n_add]
        inc_index = ShardedIndex(base, shards=min(shards,
                                                  base.shape[0]),
                                 exact=exact)
        with timed("bench.stage1_incremental_add",
                   n_add=n_add) as span:
            inc_index.extend(corpus)
        row["incremental_add_s"] = seconds(span)
        row["incremental_n_add"] = n_add
        row["incremental_delta_rows"] = inc_index.n_delta
        inc_idx, inc_val = inc_index.top_k(queries, k)
        row["incremental_identical"] = bool(
            np.array_equal(inc_idx, inv_idx)
            and np.array_equal(inc_val, inv_val))
        # Gain over paying the full rebuild (what add_known used to
        # cost).  Deliberately *not* named *_speedup: the denominator
        # is sub-millisecond and jittery, so bench-diff must not gate
        # it; the hard floor is asserted in the bench instead.
        row["incremental_gain"] = (row["invindex_build_s"]
                                   / max(row["incremental_add_s"],
                                         1e-9))
    row["rss_after_mb"] = read_rss_kb() / 1024.0
    row["peak_rss_mb"] = _peak_rss_mb()
    return row


def _measure_episodes(n_known=40, n_episodes=8, n_way=6):
    """Time the episode harness on a synthetic pool (no world cost).

    ``_make_docs`` assigns vocabulary slices by index regardless of
    prefix, so ``u{i}`` writes in the same sub-vocabulary as ``k{i}``
    — a linkable ground truth for closed episodes.
    """
    from repro.eval.episodes import (
        EpisodeConfig,
        EpisodePool,
        manifest_digest,
        run_episodes,
        sample_from_pools,
    )

    known = _make_docs(n_known, seed=11, prefix="k")
    unknown = _make_docs(n_known // 2, seed=12, prefix="u")
    truth = {f"u{i}": f"k{i}" for i in range(len(unknown))}
    pool = EpisodePool(drift="dark-dark", bucket=200,
                       known=tuple(known), unknown=tuple(unknown),
                       truth=truth)
    config = EpisodeConfig(seed=5, n_way=n_way,
                           episodes_per_cell=n_episodes,
                           buckets=(200,))
    row = {"n_known": n_known, "n_unknown": n_episodes,
           "workers": "episodes"}
    with timed("bench.episode_sample") as span:
        episodes = sample_from_pools([pool], config)
    row["episode_sample_s"] = seconds(span)
    row["episode_manifest"] = manifest_digest(episodes, config)[:12]
    with timed("bench.episode_run_full") as span:
        full = run_episodes(episodes, variant="full")
    row["episode_full_s"] = seconds(span)
    with timed("bench.episode_run_stage1") as span:
        stage1 = run_episodes(episodes, variant="stage1")
    row["episode_stage1_s"] = seconds(span)
    row["episodes_per_s"] = (len(episodes)
                             / max(row["episode_full_s"], 1e-9))
    cell = full.cells["dark-dark/w200"]
    row["episode_auc"] = cell["auc"]
    row["episode_accuracy_at_1"] = cell["accuracy_at_1"]
    row["episode_degraded"] = full.n_degraded
    row["episode_skipped"] = full.n_skipped
    assert len(episodes) == n_episodes
    assert full.n_degraded == 0 and full.n_skipped == 0
    assert stage1.cells["dark-dark/w200"]["n_full"] == n_episodes
    return row


def _cores():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_linking_throughput():
    workers = int(os.environ.get(WORKERS_ENV_BENCH, "4"))
    rows = [_measure(nk, nu, workers) for nk, nu in _sizes()]
    cores = _cores()

    lines = ["Linking throughput — profile cache + parallel restage",
             f"(workers={workers}, cores={cores}; "
             f"sizes via {SIZES_ENV})", ""]
    lines += table(
        ("known", "unknown", "fit s", "reduce s", "restage s",
         "no-cache s", "cache x", "serial s", f"x{workers} s",
         "par x", "fork ms", "merge ms", "ipc KB", "save s",
         "load s", "snap MB", "cold s", "rss MB", "peak MB"),
        [(r["n_known"], r["n_unknown"], f"{r['fit_s']:.2f}",
          f"{r['reduce_s']:.2f}", f"{r['restage_cached_s']:.2f}",
          f"{r['restage_uncached_s']:.2f}",
          f"{r['restage_speedup']:.1f}", f"{r['link_serial_s']:.2f}",
          f"{r['link_parallel_s']:.2f}",
          f"{r['parallel_speedup']:.1f}",
          f"{r['parallel_fork_ms']:.0f}",
          f"{r['parallel_merge_ms']:.0f}",
          f"{r['parallel_pickle_bytes'] / 1024:.0f}",
          f"{r['snapshot_save_s']:.2f}",
          f"{r['snapshot_load_s']:.2f}",
          f"{r['snapshot_bytes'] / (1 << 20):.1f}",
          f"{r['link_cold_s']:.2f}",
          f"{r['rss_after_mb']:.0f}", f"{r['peak_rss_mb']:.0f}")
         for r in rows])
    if cores < workers:
        lines += ["", f"note: only {cores} core(s) available — the "
                  "parallel column measures pool overhead, not "
                  "scaling; re-run on a multi-core host."]

    stage1_rows = [_measure_stage1(nk, nu, shards=int(
        os.environ.get(STAGE1_SHARDS_ENV, "4")))
        for nk, nu in _stage1_sizes()]
    lines += ["", "Stage-1 strategies — blocked vs term-pruned "
              f"inverted index (synthetic Tf-Idf matrices; sizes via "
              f"{STAGE1_SIZES_ENV})", ""]
    lines += table(
        ("known", "unknown", "shards", "auto", "blocked s",
         "build s", "rows/s", "invindex s", "inv x", "visited frac",
         "add s", "gain x", "identical", "rss MB", "peak MB"),
        [(r["n_known"], r["n_unknown"], r["shards"],
          r["stage1_auto"],
          f"{r['reduce_blocked_s']:.2f}",
          f"{r['invindex_build_s']:.2f}",
          f"{r['build_rows_per_s']:.0f}",
          f"{r['reduce_invindex_s']:.2f}",
          f"{r['invindex_speedup']:.2f}",
          f"{r['invindex_visited_frac']:.3f}",
          f"{r['incremental_add_s']:.4f}"
          if "incremental_add_s" in r else "-",
          f"{r['incremental_gain']:.0f}"
          if "incremental_gain" in r else "-",
          str(r["stage1_identical"]
              and r.get("incremental_identical", True)),
          f"{r['rss_after_mb']:.0f}", f"{r['peak_rss_mb']:.0f}")
         for r in stage1_rows]
        + [(r["n_known"], r["n_unknown"], r["invindex_shards"],
            r["stage1_auto"],
            f"{r['reduce_s']:.2f}", f"{r['invindex_build_s']:.2f}",
            "-",
            f"{r['reduce_invindex_s']:.2f}",
            f"{r['invindex_speedup']:.2f}",
            f"{r['invindex_visited_frac']:.3f}",
            "-", "-",
            str(r["stage1_identical"]),
            f"{r['rss_after_mb']:.0f}", f"{r['peak_rss_mb']:.0f}")
           for r in rows])
    rows.extend(stage1_rows)

    episode_row = _measure_episodes()
    lines += ["", "Episode harness smoke "
              f"(n_way=6, {episode_row['n_unknown']} episodes, "
              f"manifest {episode_row['episode_manifest']}...)", ""]
    lines += table(
        ("sample s", "full s", "stage1 s", "ep/s", "auc", "a@1",
         "degraded", "skipped"),
        [(f"{episode_row['episode_sample_s']:.2f}",
          f"{episode_row['episode_full_s']:.2f}",
          f"{episode_row['episode_stage1_s']:.2f}",
          f"{episode_row['episodes_per_s']:.1f}",
          f"{episode_row['episode_auc']:.3f}",
          f"{episode_row['episode_accuracy_at_1']:.3f}",
          episode_row["episode_degraded"],
          episode_row["episode_skipped"])])
    rows.append(episode_row)
    emit("linking_throughput", lines)

    manifest = build_manifest(
        command="bench_linking_throughput",
        config={"sizes": os.environ.get(SIZES_ENV, DEFAULT_SIZES),
                "stage1_sizes": os.environ.get(STAGE1_SIZES_ENV,
                                               DEFAULT_STAGE1_SIZES),
                "shards": int(os.environ.get(STAGE1_SHARDS_ENV, "4")),
                "workers": workers},
        seed=1,
    )
    update_trajectory(
        "BENCH_linking", rows,
        key_fields=("n_known", "n_unknown", "workers"),
        extra={"workers": workers, "cores": cores,
               "manifest": manifest})

    for row in rows:
        if row["workers"] == "episodes":
            continue
        # Every stage-1 strategy must produce bit-identical output.
        assert row["stage1_identical"]
        if str(row["workers"]).startswith("stage1"):
            # Incremental adds must be bit-identical to a full build,
            # and at 20k+ known at least 10x cheaper than the rebuild
            # they replace; the cost model must route big prunable
            # synthetic corpora to the inverted index.
            assert row.get("incremental_identical", True)
            if row["n_known"] >= 20000:
                assert row["stage1_auto"] == "invindex"
                assert row["incremental_gain"] >= 10
            continue
        # Real-linker corpora at bench sizes are where invindex
        # historically lost (visited fraction > 1): auto must keep
        # them on the dense/blocked path.
        assert row["stage1_auto"] in ("dense", "blocked")
        # Any worker count must produce bit-identical links.
        assert row["outputs_identical"]
        # The warm pass must have hit the persistent pool — with the
        # gate lifted for that pass, a 0 here means the pool key got
        # invalidated between link() calls.
        assert row["parallel_pool_reuse"] >= 1
        # A linker reloaded from its snapshot must link identically.
        assert row["cold_identical"]
        # The cache must eliminate enough re-tokenization to pay for
        # itself decisively (the 2000x200 acceptance run shows >= 3x).
        assert row["restage_speedup"] > 1.5
