"""§V-D — exploiting the Reddit posts of a de-anonymized user.

Paper: for one True pair ("John Doe") the authors reconstruct age,
city, family situation, job, relationship, video games, phone model and
travel habits from his Reddit history alone.

The bench de-anonymizes the synthetic world (Reddit vs DarkWeb at the
calibrated threshold), picks the correct pair whose open alias leaks
the most, extracts the full profile, and prints the dossier.  Asserted
shape: at least one matched user yields a multi-fact profile with
several single-valued attributes filled in.
"""

from __future__ import annotations

from _util import emit
from repro.core.linker import AliasLinker
from repro.eval import experiments as ex
from repro.profiling.extractor import ProfileExtractor
from repro.profiling.report import render_report
from repro.synth.world import REDDIT


def _best_profile(world, threshold):
    known = ex.get_refined(world, REDDIT)
    unknown = ex.darkweb_refined(world)
    linker = AliasLinker(threshold=threshold)
    linker.fit(known)
    result = linker.link(unknown)
    truth = ex.reddit_darkweb_truth(world)
    polished_reddit, _ = ex.get_polished(world, REDDIT)
    extractor = ProfileExtractor()
    best = None
    for match in result.accepted():
        if truth.get(match.unknown_id) != match.candidate_id:
            continue
        reddit_alias = match.candidate_id.split("/", 1)[1]
        record = polished_reddit.users.get(reddit_alias)
        if record is None:
            continue
        profile = extractor.extract(record)
        if best is None or len(profile.facts) > len(best[0].facts):
            best = (profile, match)
    return best


def test_profile_extraction(benchmark, world, threshold):
    best = benchmark.pedantic(_best_profile, args=(world, threshold),
                              rounds=1, iterations=1)
    assert best is not None, "no correct match to profile"
    profile, match = best
    dark_alias = match.unknown_id
    report = render_report(profile, dark_alias=dark_alias)
    lines = ["§V-D — profile of the most-leaking de-anonymized user "
             "(the synthetic John Doe)", "", report]
    emit("profile_extraction", lines)

    # Shape: the profile is rich, like the paper's John Doe.
    assert len(profile.facts) >= 3
    assert profile.completeness() > 0.2
