"""§V-C — Reddit vs Dark Web (full de-anonymization).

Paper: looking for the TMG and DM users among 11,679 Reddit aliases
outputs 47 pairs; manual inspection grades 20 True, 2 Probably True,
20 Unclear, 5 False.  Vendors are the easiest catches (they use their
alias as a brand); careless users leak cities, drugs and vendor
complaints.

Asserted shapes: the linker outputs a pair set in which correct links
outnumber wrong ones, True-graded pairs exist, and vendors are
over-represented among the exact hits.
"""

from __future__ import annotations

from _util import emit, table
from repro.core.documents import documents_by_id
from repro.core.linker import AliasLinker
from repro.eval import experiments as ex
from repro.eval.groundtruth import (
    TRUE,
    FALSE,
    VERDICTS,
    evaluate_matches,
    ground_truth_verdicts,
)
from repro.synth.world import REDDIT

PAPER = {"True": 20, "Probably True": 2, "Unclear": 20, "False": 5}


def _run(world, threshold):
    known = ex.get_refined(world, REDDIT)
    unknown = ex.darkweb_refined(world)
    linker = AliasLinker(threshold=threshold)
    linker.fit(known)
    result = linker.link(unknown)
    documents = documents_by_id(list(known) + list(unknown))
    report = evaluate_matches(result.matches, documents)
    truth = ex.reddit_darkweb_truth(world)
    exact = ground_truth_verdicts(result.matches, truth)
    return result, report, exact, truth, documents


def test_results_reddit_vs_darkweb(benchmark, world, threshold):
    result, report, exact, truth, documents = benchmark.pedantic(
        _run, args=(world, threshold), rounds=1, iterations=1)

    accepted = result.accepted()
    vendor_hits = sum(
        1 for m in accepted
        if truth.get(m.unknown_id) == m.candidate_id
        and documents[m.unknown_id].metadata.get("is_vendor"))
    lines = [f"§V-C — Reddit vs DarkWeb at threshold {threshold:.4f}",
             f"known Reddit aliases: "
             f"{len(ex.get_refined(world, REDDIT))}, unknown dark "
             f"aliases: {len(ex.darkweb_refined(world))}",
             f"planted Reddit<->dark links: {len(truth)}",
             f"output pairs: {len(accepted)} (paper: 47)",
             "",
             "Simulated manual evaluation "
             "(paper: 20 True / 2 Probably True / 20 Unclear / "
             "5 False):"]
    lines += table(("verdict", "pairs", "paper"),
                   [(v, report.counts.get(v, 0), PAPER.get(v, 0))
                    for v in VERDICTS])
    lines.append("")
    lines.append(f"Exact ground truth: {exact['correct']} correct, "
                 f"{exact['wrong']} wrong, {exact['no_truth']} no "
                 f"planted link; {vendor_hits} correct pairs are "
                 "vendors")
    emit("results_reddit_vs_darkweb", lines)

    assert accepted, "the linker must output some pairs"
    # Shape 1: correct links dominate the output (the paper's 20-vs-5
    # among gradable pairs).
    assert exact["correct"] >= exact["wrong"]
    # Shape 2: True-graded evidence exists (alias refs, shared links).
    assert report.counts.get(TRUE, 0) >= 1
    # Shape 3: True outnumbers False, as in the paper.
    assert report.counts.get(TRUE, 0) >= report.counts.get(FALSE, 0)
