"""§V-B — The Majestic Garden vs Dream Market (pseudo-anonymity).

Paper: linking the 422 TMG aliases against the 178 DM aliases outputs
11 pairs; manual inspection classifies 7 as True, 1 Unclear, 3 False.

The bench runs the same experiment on the synthetic dark forums, then
applies the simulated §V-A evidence protocol to the accepted pairs and
— because the synthetic world *does* know the real links — also reports
exact correctness.  Asserted shapes: the algorithm outputs a small set
of pairs, a majority of them are genuinely correct, and the evidence
protocol grades more pairs True than False.
"""

from __future__ import annotations

from _util import emit, table
from repro.core.documents import documents_by_id
from repro.core.linker import AliasLinker
from repro.eval import experiments as ex
from repro.eval.groundtruth import (
    TRUE,
    FALSE,
    VERDICTS,
    evaluate_matches,
    ground_truth_verdicts,
)
from repro.synth.world import DM, TMG

PAPER = {"True": 7, "Probably True": 0, "Unclear": 1, "False": 3}


def _run(world, threshold):
    known = ex.get_refined(world, DM)
    unknown = ex.get_refined(world, TMG)
    linker = AliasLinker(threshold=threshold)
    linker.fit(known)
    result = linker.link(unknown)
    documents = documents_by_id(list(known) + list(unknown))
    report = evaluate_matches(result.matches, documents)
    truth = ex.cross_forum_truth(world, TMG, DM)
    exact = ground_truth_verdicts(result.matches, truth)
    return result, report, exact, truth


def test_results_tmg_vs_dm(benchmark, world, threshold):
    result, report, exact, truth = benchmark.pedantic(
        _run, args=(world, threshold), rounds=1, iterations=1)

    accepted = result.accepted()
    lines = [f"§V-B — TMG vs DM at threshold {threshold:.4f}",
             f"known DM aliases: "
             f"{len(ex.get_refined(world, DM))}, unknown TMG aliases: "
             f"{len(ex.get_refined(world, TMG))}",
             f"planted TMG<->DM links (surviving refinement is "
             f"smaller): {len(truth)}",
             f"output pairs: {len(accepted)} (paper: 11)",
             "",
             "Simulated manual evaluation of output pairs "
             "(paper: 7 True / 1 Unclear / 3 False):"]
    lines += table(("verdict", "pairs", "paper"),
                   [(v, report.counts.get(v, 0), PAPER.get(v, 0))
                    for v in VERDICTS])
    lines.append("")
    lines.append(f"Exact ground truth: {exact['correct']} correct, "
                 f"{exact['wrong']} wrong, {exact['no_truth']} with "
                 "no planted link")
    emit("results_tmg_vs_dm", lines)

    assert accepted, "the linker must output some pairs"
    # Shape 1: among pairs with a planted link, correct dominates
    # (paper: no gradable output pair was a cross-person mixup; its 3
    # False pairs were users with no true counterpart).
    assert exact["correct"] >= 3
    assert exact["correct"] > exact["wrong"]
    # Shape 2: the evidence protocol grades more pairs True than False
    # (the paper's 7-vs-3 split).
    assert report.counts.get(TRUE, 0) >= report.counts.get(FALSE, 0)
    assert report.counts.get(TRUE, 0) >= 2
