"""Table I — Reddit dataset composition by topic.

Paper: 12-topic labelling of 656 subreddits; Drugs dominates the
message volume (33.7%), Entertainment the subscriptions (39.1%).  The
bench recomputes the same columns from the synthetic Reddit world and
checks that the shape (Drugs #1 by messages, Entertainment #1 by
subscriptions) is preserved.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from _util import emit, pct, table
from repro.forums.topics import TABLE_I, TOPICS_BY_NAME


def _topic_of_section(section: str) -> str:
    """Invert the synthetic subreddit naming back to its topic."""
    for spec in TABLE_I:
        if section == spec.flagship:
            return spec.name
        base = spec.name.lower().replace("/", "_").replace(
            " ", "_").replace("+", "plus")
        if section.startswith(f"r/{base}_"):
            return spec.name
    return "Unknown"


def _compose(world):
    messages_by_topic: Counter = Counter()
    subreddits_by_topic = defaultdict(set)
    subscriptions_by_topic: Counter = Counter()
    for record in world.forums["reddit"].users.values():
        seen_topics = set()
        for message in record.messages:
            topic = _topic_of_section(message.section)
            messages_by_topic[topic] += 1
            subreddits_by_topic[topic].add(message.section)
            seen_topics.add(topic)
        for topic in seen_topics:
            subscriptions_by_topic[topic] += 1
    return messages_by_topic, subreddits_by_topic, subscriptions_by_topic


def test_table1_reddit_composition(benchmark, world):
    messages, subreddits, subscriptions = benchmark.pedantic(
        _compose, args=(world,), rounds=1, iterations=1)

    total_messages = sum(messages.values())
    total_subscriptions = sum(subscriptions.values())
    rows = []
    for spec in TABLE_I:
        rows.append((
            spec.name,
            len(subreddits.get(spec.name, ())),
            pct(subscriptions.get(spec.name, 0)
                / max(1, total_subscriptions)),
            pct(messages.get(spec.name, 0) / max(1, total_messages)),
            spec.flagship,
            f"(paper: {pct(spec.message_share)} msgs)",
        ))
    lines = ["Table I — Reddit dataset composition by topic "
             "(measured vs paper share)"]
    lines += table(("Topic", "subreddits", "subs%", "msgs%",
                    "flagship", "paper"), rows)
    emit("table1_reddit_composition", lines)

    # Shape assertions: Drugs dominates messages, as in the paper.
    drugs = messages.get("Drugs", 0) / total_messages
    assert drugs == max(
        messages.get(s.name, 0) / total_messages for s in TABLE_I)
    assert drugs > 0.15
    assert messages.get("Unknown", 0) == 0
