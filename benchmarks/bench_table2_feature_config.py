"""Table II — features used for space reduction and final
classification.

Paper: the reduction stage keeps 60,000 word 1-3-grams and 30,000 char
1-5-grams; the final stage 50,000 and 15,000; both use 11 punctuation,
10 digit and 21 special-character frequencies plus the 24-bin daily
activity profile.  The bench fits both extractors on the refined Reddit
corpus, prints the realized vocabulary sizes, and times the fit (the
operation Table II parameterizes).
"""

from __future__ import annotations

from _util import emit, table
from repro.config import FINAL_FEATURES, SPACE_REDUCTION_FEATURES
from repro.core.features import FeatureExtractor


def test_table2_feature_config(benchmark, reddit_dataset):
    documents = reddit_dataset.originals

    def fit_both():
        reduction = FeatureExtractor(SPACE_REDUCTION_FEATURES)
        reduction.fit(documents)
        final = FeatureExtractor(FINAL_FEATURES)
        final.fit(documents)
        return reduction, final

    reduction, final = benchmark.pedantic(fit_both, rounds=1,
                                          iterations=1)
    red_sizes = reduction.vocabulary_sizes()
    fin_sizes = final.vocabulary_sizes()
    rows = [
        ("Word n-grams 1-3",
         f"{red_sizes['word_ngrams']} (cap 60000)",
         f"{fin_sizes['word_ngrams']} (cap 50000)"),
        ("Char n-grams 1-5",
         f"{red_sizes['char_ngrams']} (cap 30000)",
         f"{fin_sizes['char_ngrams']} (cap 15000)"),
        ("Freq. of punctuation", red_sizes["punctuation"],
         fin_sizes["punctuation"]),
        ("Freq. of digit", red_sizes["digits"], fin_sizes["digits"]),
        ("Freq. of special chars", red_sizes["special_chars"],
         fin_sizes["special_chars"]),
        ("Daily activity profile", red_sizes["activity_bins"],
         fin_sizes["activity_bins"]),
    ]
    lines = ["Table II — realized feature counts "
             "(synthetic corpora have smaller vocabularies than the "
             "caps; the fixed inventories match the paper exactly)"]
    lines += table(("Type", "Space Reduction", "Final"), rows)
    emit("table2_feature_config", lines)

    assert red_sizes["punctuation"] == 11
    assert red_sizes["digits"] == 10
    assert red_sizes["special_chars"] == 21
    assert red_sizes["activity_bins"] == 24
    assert red_sizes["word_ngrams"] <= 60_000
    assert fin_sizes["word_ngrams"] <= 50_000
    assert red_sizes["char_ngrams"] >= fin_sizes["char_ngrams"] or \
        red_sizes["char_ngrams"] < 30_000
