"""Table III — k-attribution accuracy at different words-per-user.

Paper (11,679 Reddit users): accuracy climbs steeply with text size —
k=1 text-only from 16.4% at 400 words to 87% at 1,700; k=10 with all
features from 35.5% to 97%.  Adding the daily activity profile ("all")
beats text alone at every size, and k=10 beats k=1.

The synthetic corpus has far fewer candidates, so absolute accuracies
run higher; the asserted shape is the paper's: monotone-ish growth with
words, k=10 >= k=1, and the activity boost at the smallest text size.
"""

from __future__ import annotations

from _util import emit, pct, table
from repro.config import bench_scale
from repro.core.kattribution import KAttributor
from repro.eval import experiments as ex
from repro.synth.world import REDDIT

PAPER_ROWS = {
    400: (16.4, 20.0, 29.6, 35.5),
    800: (49.7, 55.8, 70.0, 75.2),
    1000: (64.6, 69.6, 79.7, 84.4),
    1200: (73.7, 76.0, 87.2, 89.2),
    1500: (84.8, 87.7, 93.4, 95.5),
    1700: (87.0, 90.0, 95.7, 97.0),
}


def _word_sizes():
    if bench_scale() == "paper":
        return (400, 600, 800, 1000, 1100, 1200, 1300, 1400, 1500,
                1600, 1700)
    return (400, 800, 1000, 1200, 1500, 1700)


def _sweep(world, sizes):
    results = {}
    for words in sizes:
        dataset = ex.get_alter_egos(world, REDDIT,
                                    words_per_alias=words)
        text_only = KAttributor(k=10, use_activity=False)
        text_only.fit(dataset.originals)
        acc_text = text_only.accuracy_at_k(
            dataset.alter_egos, dataset.truth, ks=(1, 10))
        both = KAttributor(k=10, use_activity=True)
        both.fit(dataset.originals)
        acc_all = both.accuracy_at_k(
            dataset.alter_egos, dataset.truth, ks=(1, 10))
        results[words] = (acc_text[1], acc_all[1],
                          acc_text[10], acc_all[10])
    return results


def test_table3_kattribution_words(benchmark, world):
    sizes = _word_sizes()
    results = benchmark.pedantic(_sweep, args=(world, sizes),
                                 rounds=1, iterations=1)

    rows = []
    for words in sizes:
        text1, all1, text10, all10 = results[words]
        paper = PAPER_ROWS.get(words)
        paper_str = (f"{paper[0]}/{paper[1]}/{paper[2]}/{paper[3]}"
                     if paper else "-")
        rows.append((words, pct(text1), pct(all1), pct(text10),
                     pct(all10), paper_str))
    lines = ["Table III — k-attribution accuracy vs words per user",
             "(measured; 'paper' column = paper's "
             "K1-text/K1-all/K10-text/K10-all %)"]
    lines += table(("# words", "K=1 (text)", "K=1 (all)",
                    "K=10 (text)", "K=10 (all)", "paper"), rows)
    emit("table3_kattribution_words", lines)

    smallest, largest = sizes[0], sizes[-1]
    # Shape 1: more text helps (k=1, text features).
    assert results[largest][0] > results[smallest][0]
    # Shape 2: k=10 captures at least as much as k=1 everywhere.
    for words in sizes:
        text1, all1, text10, all10 = results[words]
        assert text10 >= text1
        assert all10 >= all1
    # Shape 3: the daily activity profile boosts the hardest setting
    # (few words, k=1), the paper's headline for Fig. 4.
    assert results[smallest][1] >= results[smallest][0]
