"""Table IV — final dataset composition after refinement.

Paper: Reddit 11,679 / AE_Reddit 10,133; TMG 422 / AE_TMG 196;
DM 178 / AE_DM 66.  Two shapes matter: every AE_ dataset is smaller
than its source (splitting needs twice the data), and the dark-web
datasets are an order of magnitude smaller than Reddit.
"""

from __future__ import annotations

from _util import emit, table
from repro.eval import experiments as ex
from repro.synth.world import DM, REDDIT, TMG

PAPER = {
    "Reddit": (11_679, 10_133),
    "TMG": (422, 196),
    "DM": (178, 66),
}


def test_table4_dataset_sizes(benchmark, world):
    def build_all():
        return {
            "Reddit": ex.get_alter_egos(world, REDDIT),
            "TMG": ex.get_alter_egos(world, TMG),
            "DM": ex.get_alter_egos(world, DM),
        }

    datasets = benchmark.pedantic(build_all, rounds=1, iterations=1)

    rows = []
    for name, dataset in datasets.items():
        paper_orig, paper_ae = PAPER[name]
        rows.append((name, dataset.n_originals, paper_orig))
        rows.append((f"AE_{name}", dataset.n_alter_egos, paper_ae))
    lines = ["Table IV — datasets final composition "
             "(refinement: >=1500 words, >=30 usable timestamps; "
             "alter egos: >=3000 words, >=60 timestamps)"]
    lines += table(("Name", "(#)Aliases measured", "paper"), rows)
    emit("table4_dataset_sizes", lines)

    for dataset in datasets.values():
        assert 0 < dataset.n_alter_egos <= dataset.n_originals
    assert datasets["Reddit"].n_originals > datasets["TMG"].n_originals
    assert datasets["TMG"].n_originals > datasets["DM"].n_originals
