"""Table V + §IV-G — the calibrated threshold transfers across forums.

Paper: per-forum thresholds tuned for 80% recall all land near 0.42
(Reddit_A 0.4190, Reddit_B 0.4210, DM 0.4096, TMG 0.4222), and applying
the single Reddit threshold everywhere keeps precision 87–98% at recall
78–84%.  §IV-G also reports 98.4% 10-attribution accuracy on the merged
DarkWeb dataset — higher than Reddit's, because the dark corpora are
smaller and single-domain.

Asserted shapes: the per-forum thresholds cluster tightly, the global
threshold keeps precision/recall usable on every forum, and DarkWeb
10-attribution accuracy exceeds Reddit's.
"""

from __future__ import annotations

import numpy as np

from _util import emit, pct, table
from repro.core.kattribution import KAttributor
from repro.core.linker import AliasLinker
from repro.core.threshold import matches_to_curve
from repro.eval import experiments as ex
from repro.synth.world import DM, REDDIT, TMG

PAPER_ROWS = [
    ("Reddit_A", 0.4190, 94, 80),
    ("Reddit_B", 0.4210, 91, 80),
    ("DM", 0.4096, 96, 80),
    ("TMG", 0.4222, 94, 80),
]


def _forum_curves(world, reddit_dataset):
    """Per-forum match curves for the four Table V datasets."""
    w1, w2 = ex.split_w1_w2(reddit_dataset, n_each=500, seed=1)
    linker = AliasLinker(threshold=0.0)
    linker.fit(reddit_dataset.originals)
    curves = {
        "Reddit_A": matches_to_curve(
            linker.link(w1.alter_egos).matches, w1.truth),
        "Reddit_B": matches_to_curve(
            linker.link(w2.alter_egos).matches, w2.truth),
    }
    for name, forum in (("TMG", TMG), ("DM", DM)):
        dataset = ex.get_alter_egos(world, forum)
        forum_linker = AliasLinker(threshold=0.0)
        forum_linker.fit(dataset.originals)
        curves[name] = matches_to_curve(
            forum_linker.link(dataset.alter_egos).matches,
            dataset.truth)
    return curves


def _darkweb_accuracy(world):
    """§IV-G: 10-attribution on the merged DarkWeb datasets."""
    tmg = ex.get_alter_egos(world, TMG)
    dm = ex.get_alter_egos(world, DM)
    known = tmg.originals + dm.originals
    unknown = tmg.alter_egos + dm.alter_egos
    truth = {**tmg.truth, **dm.truth}
    reducer = KAttributor(k=10)
    reducer.fit(known)
    return reducer.accuracy_at_k(unknown, truth, ks=(10,))[10]


def test_table5_threshold_transfer(benchmark, world, reddit_dataset,
                                   threshold):
    curves = benchmark.pedantic(_forum_curves,
                                args=(world, reddit_dataset),
                                rounds=1, iterations=1)

    rows = []
    own_thresholds = {}
    for (name, paper_t, paper_p, paper_r) in PAPER_ROWS:
        curve = curves[name]
        own_t = curve.threshold_for_recall(0.80)
        own_thresholds[name] = own_t
        own_p, own_r = curve.at_threshold(own_t)
        rows.append((name, f"{own_t:.4f}", pct(own_p), pct(own_r),
                     f"{paper_t:.4f}", f"{paper_p}%/{paper_r}%"))
    lines = ["Table V (top) — per-forum thresholds at 80% recall"]
    lines += table(("Forum", "threshold", "precision", "recall",
                    "paper t", "paper P/R"), rows)

    rows = []
    for (name, _, _, _) in PAPER_ROWS:
        precision, recall = curves[name].at_threshold(threshold)
        rows.append((name, f"{threshold:.4f}", pct(precision),
                     pct(recall)))
    lines.append("")
    lines.append("Table V (bottom) — the single Reddit_A threshold "
                 "applied to every forum")
    lines += table(("Forum", "threshold", "precision", "recall"), rows)

    darkweb_acc = _darkweb_accuracy(world)
    reddit_acc = KAttributor(k=10)
    reddit_acc.fit(reddit_dataset.originals)
    reddit_10 = reddit_acc.accuracy_at_k(
        reddit_dataset.alter_egos, reddit_dataset.truth, ks=(10,))[10]
    lines.append("")
    lines.append(f"§IV-G — 10-attribution accuracy: DarkWeb "
                 f"{pct(darkweb_acc)} vs Reddit {pct(reddit_10)} "
                 "(paper: 98.4% vs ~96.5%)")
    emit("table5_threshold_transfer", lines)

    # Shape 1: the four per-forum thresholds cluster tightly.
    values = np.array(list(own_thresholds.values()))
    assert values.max() - values.min() < 0.12
    # Shape 2: the global threshold keeps precision and recall usable
    # on every forum.
    for name in own_thresholds:
        precision, recall = curves[name].at_threshold(threshold)
        assert precision > 0.6, name
        assert recall > 0.5, name
    # Shape 3 (§IV-G): reduction works at least as well on the smaller
    # single-domain DarkWeb data as on Reddit.
    assert darkweb_acc >= reddit_10 - 0.05
