"""Table VI + Fig. 5 — AUC with and without search-space reduction.

Paper: the two-stage pipeline (reduce to k = 10, then re-extract and
rescore on the candidates) beats scoring every candidate directly on
all three forums — AUC 0.89 vs 0.79 (Reddit), 0.93 vs 0.91 (TMG),
0.94 vs 0.91 (DM).

Scale analysis (measured, see EXPERIMENTS.md): the benefit of the
second-stage re-extraction is driven by *feature-budget pressure*.  At
the paper's 11,679 users, the global top-60k/30k frequency cut drowns
rare author-discriminative n-grams, and re-selecting features on the 10
candidate documents recovers them.  A few-hundred-user synthetic corpus
does not saturate the budgets the same way, so the bench evaluates two
regimes:

* **paper budgets** — reduction must *preserve* AUC (within a small
  tolerance) while cutting the candidate space 30-fold;
* **pressure budgets** (Table II scaled to the corpus size) — the
  paper's direction appears: with-reduction >= without-reduction.
"""

from __future__ import annotations

from _util import emit, table
from repro.config import FeatureBudget
from repro.core.linker import AliasLinker
from repro.core.threshold import matches_to_curve
from repro.eval import experiments as ex
from repro.eval.metrics import curve_table
from repro.synth.world import DM, REDDIT, TMG

PAPER = {"Reddit": (0.89, 0.79), "TMG": (0.93, 0.91),
         "DM": (0.94, 0.91)}

#: Table II budgets scaled by the corpus-size ratio (~330 vs 11,679
#: users): the "budget pressure" regime.
PRESSURE_REDUCTION = FeatureBudget(word_ngrams=800, char_ngrams=400)
PRESSURE_FINAL = FeatureBudget(word_ngrams=660, char_ngrams=200)


def _auc(dataset, use_reduction, reduction_budget=None,
         final_budget=None):
    kwargs = {}
    if reduction_budget is not None:
        kwargs["reduction_budget"] = reduction_budget
        kwargs["final_budget"] = final_budget
    linker = AliasLinker(threshold=0.0, use_reduction=use_reduction,
                         **kwargs)
    linker.fit(dataset.originals)
    matches = linker.link(dataset.alter_egos).matches
    return matches_to_curve(matches, dataset.truth)


def _run(world):
    out = {}
    for name, forum in (("Reddit", REDDIT), ("TMG", TMG), ("DM", DM)):
        dataset = ex.get_alter_egos(world, forum)
        out[name] = (_auc(dataset, True), _auc(dataset, False))
    # budget-pressure regime on the Reddit corpus, at a text budget
    # where the task is not saturated
    pressured = ex.get_alter_egos(world, REDDIT, words_per_alias=600)
    out["Reddit (pressure)"] = (
        _auc(pressured, True, PRESSURE_REDUCTION, PRESSURE_FINAL),
        _auc(pressured, False, PRESSURE_REDUCTION, PRESSURE_FINAL),
    )
    return out


def test_table6_auc_reduction(benchmark, world):
    curves = benchmark.pedantic(_run, args=(world,), rounds=1,
                                iterations=1)

    rows = []
    for name, (with_red, without_red) in curves.items():
        paper_with, paper_without = PAPER.get(name, ("-", "-"))
        rows.append((name, f"{with_red.auc():.3f}",
                     f"{without_red.auc():.3f}",
                     paper_with, paper_without))
    lines = ["Table VI — AUC with and without search-space reduction",
             "(the 'pressure' row scales Table II budgets to the "
             "corpus size; see the module docstring)"]
    lines += table(("Forum", "AUC with", "AUC without", "paper with",
                    "paper without"), rows)

    lines.append("")
    lines.append("Fig. 5 — Reddit precision-recall, with reduction "
                 "(downsampled):")
    with_red, without_red = curves["Reddit"]
    lines += table(("threshold", "precision", "recall"),
                   [(f"{r['threshold']:.4f}", f"{r['precision']:.3f}",
                     f"{r['recall']:.3f}")
                    for r in curve_table(with_red, 10)])
    lines.append("")
    lines.append("Fig. 5 — Reddit precision-recall, without reduction:")
    lines += table(("threshold", "precision", "recall"),
                   [(f"{r['threshold']:.4f}", f"{r['precision']:.3f}",
                     f"{r['recall']:.3f}")
                    for r in curve_table(without_red, 10)])
    emit("table6_auc_reduction", lines)

    # Shape 1 (paper budgets): reduction preserves ranking quality
    # while cutting the search space ~30x.
    for name in ("Reddit", "TMG", "DM"):
        with_red, without_red = curves[name]
        assert with_red.auc() >= without_red.auc() - 0.08, name
        assert with_red.auc() > 0.85, name
    # Shape 2 (pressure budgets): the paper's direction — the
    # candidate-set re-extraction recovers features the global top-N
    # cut dropped.
    pressured_with, pressured_without = curves["Reddit (pressure)"]
    assert pressured_with.auc() >= pressured_without.auc() - 0.01
