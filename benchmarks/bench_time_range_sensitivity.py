"""§VI — sensitivity to the sampling time range.

The discussion section warns: "In the long run, people can change their
habits ... It is important that the timestamps collected from the
authors to compare belong to the same time range."

This bench makes that claim measurable.  A world is generated with
annual habit drift (peaks migrate through 2017); alter-ego datasets are
built two ways:

* **random split** — the paper's protocol: both halves cover the same
  time range, drift averages out;
* **chronological split** — the original is the first half of the year,
  the alter ego the second: the aliases are observed in *different*
  ranges.

Expected shape: with the activity feature enabled, the chronological
split scores lower than the random split, and the gap is wider than
for a text-only attacker (whose features drift much less).
"""

from __future__ import annotations

from _util import emit, pct, table
from repro.core.kattribution import KAttributor
from repro.eval.alterego import build_alter_ego_dataset
from repro.synth.personas import StyleParams
from repro.synth.world import ForumLoad, WorldConfig, build_world
from repro.textproc.cleaning import polish_forum

WORDS = 600

#: A dedicated drifting world (independent of the shared fixtures).
DRIFT_WORLD = WorldConfig(
    seed=77,
    reddit_users=100, tmg_users=0, dm_users=0,
    tmg_dm_overlap=0, reddit_dark_overlap=0,
    max_annual_drift=8.0,
    reddit_load=ForumLoad(heavy_fraction=0.95,
                          heavy_messages=(120, 200),
                          light_messages=(5, 30)),
)


def _accuracy(dataset, use_activity):
    reducer = KAttributor(k=1, use_activity=use_activity)
    reducer.fit(dataset.originals)
    return reducer.accuracy_at_k(dataset.alter_egos, dataset.truth,
                                 ks=(1,))[1]


def _run():
    world = build_world(DRIFT_WORLD)
    polished, _ = polish_forum(world.forums["reddit"])
    out = {}
    for mode in ("random", "chronological"):
        dataset = build_alter_ego_dataset(
            polished, seed=0, words_per_alias=WORDS, split_mode=mode)
        out[mode] = {
            "all": _accuracy(dataset, True),
            "text": _accuracy(dataset, False),
            "n": len(dataset.alter_egos),
        }
    return out


def test_time_range_sensitivity(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = []
    for mode in ("random", "chronological"):
        rows.append((mode, pct(results[mode]["all"]),
                     pct(results[mode]["text"]),
                     results[mode]["n"]))
    lines = ["§VI — time-range sensitivity "
             f"(annual habit drift {DRIFT_WORLD.max_annual_drift}h, "
             f"{WORDS} words, acc@1)"]
    lines += table(("split", "text+activity", "text only", "pairs"),
                   rows)
    delta_all = (results["random"]["all"]
                 - results["chronological"]["all"])
    delta_text = (results["random"]["text"]
                  - results["chronological"]["text"])
    lines.append("")
    lines.append(f"accuracy lost to mismatched time ranges: "
                 f"{pct(delta_all)} with activity, {pct(delta_text)} "
                 "text-only")
    emit("time_range_sensitivity", lines)

    # Shape 1: mismatched ranges hurt the activity-equipped attacker.
    assert results["chronological"]["all"] <= \
        results["random"]["all"] + 0.02
    # Shape 2: the activity feature suffers more from drift than text.
    assert delta_all >= delta_text - 0.05
