"""Session fixtures for the benchmark suite.

The synthetic world, its polished forums and the derived datasets are
built once per pytest session (they are by far the dominant cost) and
shared read-only across every bench.  ``REPRO_SCALE=paper`` switches to
paper-sized worlds.
"""

from __future__ import annotations

import pytest

from repro.eval import experiments as ex
from repro.synth.world import DM, REDDIT, TMG


@pytest.fixture(scope="session")
def world():
    """The scaled synthetic world shared by every bench."""
    return ex.get_world()


@pytest.fixture(scope="session")
def reddit_dataset(world):
    """Reddit alter egos at the paper's 1,500-word budget."""
    return ex.get_alter_egos(world, REDDIT)


@pytest.fixture(scope="session")
def tmg_dataset(world):
    return ex.get_alter_egos(world, TMG)


@pytest.fixture(scope="session")
def dm_dataset(world):
    return ex.get_alter_egos(world, DM)


@pytest.fixture(scope="session")
def threshold(world):
    """The calibrated Section IV-E acceptance threshold."""
    return ex.calibrated_threshold(world)
