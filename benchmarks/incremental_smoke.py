"""CI smoke for incremental posting updates (docs/performance.md).

Two checks, exit nonzero on any failure:

* **Matrix level** — build the sharded inverted index over a 20k-row
  synthetic Tf-Idf corpus, append 1k rows through the delta segment,
  and demand (a) bit-identical top-k (indices *and* scores) against a
  fresh full build over all 21k rows and (b) the append at least 10x
  cheaper than that rebuild.
* **Document level** — an :class:`~repro.core.incremental.
  IncrementalLinker` running ``stage1="invindex"`` must, after
  ``add_known``, produce exactly the candidate sets of a linker whose
  index was rebuilt from scratch on the grown corpus.

Run as a script (CI) or via pytest (the function is a test).
"""

import sys
import time

sys.path.insert(0, "benchmarks")

import numpy as np

from bench_linking_throughput import _make_docs, _stage1_matrices
from repro.core.incremental import IncrementalLinker
from repro.core.linker import AliasLinker
from repro.perf.invindex import ShardedIndex

N_BUILD = 20_000
N_ADD = 1_000
MIN_GAIN = 10.0


def test_incremental_smoke():
    rng = np.random.default_rng(20_000)
    corpus, queries = _stage1_matrices(rng, N_BUILD + N_ADD, 200)

    base = corpus[:N_BUILD]
    index = ShardedIndex(base, shards=4)
    add_start = time.perf_counter()
    index.extend(corpus)
    add_s = time.perf_counter() - add_start

    rebuild_start = time.perf_counter()
    fresh = ShardedIndex(corpus, shards=4)
    rebuild_s = time.perf_counter() - rebuild_start

    inc_idx, inc_val = index.top_k(queries, 10)
    full_idx, full_val = fresh.top_k(queries, 10)
    assert np.array_equal(inc_idx, full_idx) \
        and np.array_equal(inc_val, full_val), \
        "incremental index diverged from the full rebuild"
    gain = rebuild_s / max(add_s, 1e-9)
    assert gain >= MIN_GAIN, (
        f"incremental add only {gain:.1f}x faster than the rebuild "
        f"(add {add_s:.4f}s vs rebuild {rebuild_s:.4f}s, "
        f"floor {MIN_GAIN}x)")
    print(f"matrix level: add {N_ADD} rows in {add_s * 1e3:.1f} ms, "
          f"rebuild {rebuild_s * 1e3:.1f} ms — {gain:.0f}x, "
          f"delta rows {index.n_delta}, bit-identical")

    # Document level: add_known through the frozen feature space must
    # match a from-scratch index on the grown corpus, bit for bit.
    known = _make_docs(300, seed=1, prefix="k")
    extra = _make_docs(30, seed=3, prefix="x")
    unknown = _make_docs(40, seed=2, prefix="u")
    inc = IncrementalLinker(threshold=0.0, stage1="invindex", shards=4)
    inc.fit(known)
    inc.add_known(extra)
    reduced = inc._linker.reducer.reduce(unknown)

    fresh_linker = AliasLinker(threshold=0.0, stage1="invindex",
                               shards=4)
    fresh_linker.reducer.extractor = inc._linker.reducer.extractor
    fresh_linker.reducer._known = inc._linker.reducer._known
    fresh_linker.reducer._known_matrix = \
        inc._linker.reducer._known_matrix
    fresh_linker.reducer.rebuild_index()
    rebuilt = fresh_linker.reducer.reduce(unknown)
    assert reduced == rebuilt, \
        "add_known candidates diverged from a rebuilt index"
    print(f"document level: add_known({len(extra)}) matches a fresh "
          f"rebuild over {inc.n_known} known — bit-identical")


if __name__ == "__main__":
    test_incremental_smoke()
    print("incremental-smoke: ok")
