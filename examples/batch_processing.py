"""RAM-bounded batched linking (Section IV-J).

Run with::

    python examples/batch_processing.py

When the known-alias corpus does not fit in memory, the paper splits it
into batches of B aliases, runs 10-attribution inside each batch, pools
the survivors, and repeats until one batch remains — then applies the
usual final stage.  This example runs the unbatched and the batched
pipeline side by side and shows that the outputs (and the
precision/recall at the same threshold) barely differ, while the
batched variant never holds more than B known aliases at once.
"""

from __future__ import annotations

import time

from repro.core.batch import BatchedLinker
from repro.core.linker import AliasLinker
from repro.core.threshold import ThresholdCalibrator, matches_to_curve
from repro.eval.alterego import build_alter_ego_dataset
from repro.synth import ForumLoad, WorldConfig, build_world
from repro.textproc.cleaning import polish_forum

BATCH_SIZE = 40


def main() -> None:
    print("building and polishing a Reddit-like world ...")
    world = build_world(WorldConfig(
        seed=31, reddit_users=110, tmg_users=0, dm_users=0,
        tmg_dm_overlap=0, reddit_dark_overlap=0,
        reddit_load=ForumLoad(heavy_fraction=0.9,
                              heavy_messages=(110, 170),
                              light_messages=(5, 30)),
    ))
    polished, _ = polish_forum(world.forums["reddit"])
    dataset = build_alter_ego_dataset(polished, seed=3,
                                      words_per_alias=700)
    unknowns = dataset.alter_egos
    print(f"  {dataset.n_originals} known aliases, "
          f"{len(unknowns)} unknowns")

    # calibrate a threshold once, on the unbatched pipeline
    t0 = time.perf_counter()
    plain = AliasLinker(threshold=0.0)
    plain.fit(dataset.originals)
    plain_matches = plain.link(unknowns).matches
    plain_seconds = time.perf_counter() - t0
    calibration = ThresholdCalibrator(target_recall=0.8).calibrate(
        plain_matches, dataset.truth)
    threshold = calibration.threshold
    print(f"\ncalibrated threshold: {threshold:.4f}")

    t0 = time.perf_counter()
    batched = BatchedLinker(batch_size=BATCH_SIZE, threshold=threshold)
    batched.fit(dataset.originals)
    batched_matches = batched.link(unknowns).matches
    batched_seconds = time.perf_counter() - t0

    plain_curve = matches_to_curve(plain_matches, dataset.truth)
    batched_curve = matches_to_curve(batched_matches, dataset.truth)
    plain_p, plain_r = plain_curve.at_threshold(threshold)
    batch_p, batch_r = batched_curve.at_threshold(threshold)

    print(f"\nunbatched: precision {plain_p:.1%}, recall "
          f"{plain_r:.1%}  ({plain_seconds:.1f}s)   "
          "(paper: 94% / 80%)")
    print(f"batched (B={BATCH_SIZE}): precision {batch_p:.1%}, "
          f"recall {batch_r:.1%}  ({batched_seconds:.1f}s)   "
          "(paper: 91% / 81%)")

    agree = sum(
        1 for a, b in zip(plain_matches, batched_matches)
        if a.candidate_id == b.candidate_id)
    print(f"\nbest-candidate agreement between the two pipelines: "
          f"{agree}/{len(plain_matches)}")


if __name__ == "__main__":
    main()
