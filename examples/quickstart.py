"""Quickstart: generate a synthetic world and link dark aliases.

Run with::

    python examples/quickstart.py

Builds a small three-forum world (Reddit + two dark-web forums with a
few personas active on both sides), runs the paper's full two-stage
pipeline, and prints the alias pairs it links together with the ground
truth the generator planted.
"""

from __future__ import annotations

from repro import LinkingPipeline, PipelineConfig
from repro.synth import ForumLoad, WorldConfig, build_world


def main() -> None:
    print("building synthetic world ...")
    world = build_world(WorldConfig(
        seed=42,
        reddit_users=40,
        tmg_users=20,
        dm_users=14,
        tmg_dm_overlap=6,
        reddit_dark_overlap=8,
        tmg_load=ForumLoad(heavy_fraction=0.9,
                           heavy_messages=(110, 160),
                           light_messages=(5, 25)),
        dm_load=ForumLoad(heavy_fraction=0.9,
                          heavy_messages=(110, 160),
                          light_messages=(5, 25)),
    ))
    for name, forum in world.forums.items():
        print(f"  {name}: {forum.n_users} users, "
              f"{forum.n_messages} messages")

    # Link The Majestic Garden aliases against the Dream Market forum.
    # A lower word budget than the paper's 1,500 keeps this example
    # fast; threshold 0.97 suits the synthetic score scale — synthetic
    # cosines run much higher than the paper's 0.4190 because the
    # generated vocabulary is smaller than natural English (see
    # EXPERIMENTS.md).  examples/threshold_calibration.py shows how to
    # derive this value instead of guessing it.
    pipeline = LinkingPipeline(PipelineConfig(words_per_alias=600,
                                              threshold=0.97))
    result = pipeline.link_forums(world.forums["dm"],
                                  world.forums["tmg"])

    truth = world.linked_aliases("tmg", "dm")
    print(f"\nrefined aliases: {pipeline.report.refined_known} known "
          f"(DM), {pipeline.report.refined_unknown} unknown (TMG)")
    print(f"planted TMG<->DM links: {len(truth)}\n")
    print("pairs above threshold:")
    for match in sorted(result.accepted(), key=lambda m: -m.score):
        tmg_alias = match.unknown_id.split("/", 1)[1]
        dm_alias = match.candidate_id.split("/", 1)[1]
        verdict = "CORRECT" if truth.get(tmg_alias) == dm_alias \
            else ("WRONG" if tmg_alias in truth else "unplanted")
        print(f"  tmg/{tmg_alias:24s} -> dm/{dm_alias:24s} "
              f"score {match.score:.4f}  [{verdict}]")


if __name__ == "__main__":
    main()
