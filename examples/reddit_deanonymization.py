"""Full de-anonymization: dark aliases -> Reddit -> personal profile.

Run with::

    python examples/reddit_deanonymization.py

The §V-C / §V-D scenario end to end:

1. generate a world where some personas post on Reddit *and* on a dark
   forum (with style drift — people write differently on the open web);
2. link the dark aliases against Reddit with the two-stage pipeline;
3. grade each accepted pair with the simulated manual-evaluation
   protocol of §V-A (True / Probably True / Unclear / False);
4. pick a True pair and extract the open alias's personal profile —
   the synthetic "John Doe" of §V-D.
"""

from __future__ import annotations

from repro import LinkingPipeline, PipelineConfig
from repro.core.documents import documents_by_id
from repro.eval.groundtruth import evaluate_matches
from repro.profiling.extractor import ProfileExtractor
from repro.profiling.report import render_report
from repro.synth import ForumLoad, WorldConfig, build_world
from repro.textproc.cleaning import polish_forum


def main() -> None:
    print("building a Reddit + dark-web world ...")
    world = build_world(WorldConfig(
        seed=23,
        reddit_users=60,
        tmg_users=24,
        dm_users=0,
        tmg_dm_overlap=0,
        reddit_dark_overlap=12,
        disclosure_rate=0.10,
        unique_leak_rate=0.35,
        reddit_load=ForumLoad(heavy_fraction=0.85,
                              heavy_messages=(110, 180),
                              light_messages=(5, 30)),
        tmg_load=ForumLoad(heavy_fraction=0.9,
                           heavy_messages=(110, 160),
                           light_messages=(5, 25),
                           message_length_factor=1.4),
    ))

    pipeline = LinkingPipeline(PipelineConfig(words_per_alias=600,
                                              threshold=0.90))
    known = pipeline.prepare_forum(world.forums["reddit"],
                                   is_known=True)
    unknown = pipeline.prepare_forum(world.forums["tmg"],
                                     is_known=False)
    result = pipeline.link_documents(known, unknown)
    print(f"\n{pipeline.report.refined_known} Reddit aliases vs "
          f"{pipeline.report.refined_unknown} dark aliases; "
          f"{len(result.accepted())} pairs above threshold")

    documents = documents_by_id(list(known) + list(unknown))
    report = evaluate_matches(result.matches, documents)
    print("\nsimulated manual evaluation (the §V-A protocol):")
    for verdict, count in report.summary_rows():
        print(f"  {verdict:14s} {count}")

    true_pairs = [(m, e) for m, e in report.classified
                  if e.verdict == "True"]
    if not true_pairs:
        print("\nno True-graded pair this run; try another seed.")
        return

    match, evidence = max(true_pairs, key=lambda me: me[0].score)
    reddit_alias = match.candidate_id.split("/", 1)[1]
    print(f"\nTrue pair: {match.unknown_id} -> {match.candidate_id} "
          f"(score {match.score:.4f}, evidence: "
          f"{', '.join(evidence.unique_matches)})")

    polished_reddit, _ = polish_forum(world.forums["reddit"])
    record = world.forums["reddit"].users[reddit_alias]
    profile = ProfileExtractor().extract(record)
    print("\n" + render_report(profile, dark_alias=match.unknown_id))


if __name__ == "__main__":
    main()
