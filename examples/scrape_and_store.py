"""Simulated collection workflow: scrape, store, reload, polish.

Run with::

    python examples/scrape_and_store.py

Walks the data-engineering half of the paper (Section III): crawl a
Reddit-like site following the paper's procedure (top seed-subreddit
threads -> commenters -> per-user history), crawl a hidden service over
a simulated Tor session, persist everything as JSONL, reload it, and
run the 12-step polishing pipeline — printing the per-step accounting
the paper describes.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.forums.darkweb import DarkWebScraper
from repro.forums.reddit import RedditScraper
from repro.forums.scraper import ScrapeSession
from repro.forums.storage import load_forum, save_forum
from repro.synth import ForumLoad, WorldConfig, build_world
from repro.textproc.cleaning import polish_forum


def main() -> None:
    world = build_world(WorldConfig(
        seed=5, reddit_users=30, tmg_users=12, dm_users=8,
        tmg_dm_overlap=3, reddit_dark_overlap=4,
        reddit_load=ForumLoad(heavy_fraction=0.8,
                              heavy_messages=(60, 110),
                              light_messages=(5, 25)),
    ))

    # -- crawl Reddit the way the paper did (Section III-A) --------------
    reddit_session = ScrapeSession(seed=1, failure_rate=0.01,
                                   min_interval=1.0)
    reddit = RedditScraper(world.forums["reddit"], reddit_session)
    collected = reddit.collect_study_dataset(n_topics=1000,
                                             history_limit=1000)
    stats = reddit_session.stats
    print("Reddit crawl:")
    print(f"  {stats.requests} requests, {stats.retries} retries, "
          f"{stats.virtual_seconds:,.0f} virtual seconds")
    print(f"  collected {collected.n_users} users, "
          f"{collected.n_messages} messages")

    # -- crawl a hidden service over simulated Tor (Section III-B) -------
    tmg_scraper = DarkWebScraper(world.forums["tmg"], seed=2)
    tmg = tmg_scraper.collect()
    tor_stats = tmg_scraper.session.stats
    print("\nThe Majestic Garden crawl (Tor):")
    print(f"  {tor_stats.requests} requests, {tor_stats.retries} "
          f"retries, {tor_stats.virtual_seconds:,.0f} virtual seconds")
    print(f"  {len(tmg_scraper.vendor_threads())} vendor showcase "
          "threads detected")

    # -- persist and reload ----------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "reddit.jsonl.gz"
        save_forum(collected, path)
        print(f"\nstored crawl at {path} "
              f"({path.stat().st_size / 1024:.0f} KiB compressed)")
        reloaded = load_forum(path)
        assert reloaded.n_messages == collected.n_messages

        # -- polish (Section III-C) ---------------------------------------
        polished, report = polish_forum(reloaded)
        print("\npolishing report (the 12 steps of Section III-C):")
        for key, value in report.as_dict().items():
            print(f"  {key:32s} {value}")


if __name__ == "__main__":
    main()
