"""Threshold calibration walk-through (Section IV-E).

Run with::

    python examples/threshold_calibration.py

Reproduces the paper's calibration protocol end to end:

1. generate a Reddit-like forum and polish it (Section III-C);
2. split eligible users into original + alter-ego halves (IV-D);
3. split the alter egos into W1 and W2;
4. run the two-stage pipeline for W1, sweep the scores as candidate
   thresholds, and pick the one reaching 80% recall;
5. apply the *same* threshold to W2 and report how it transfers.
"""

from __future__ import annotations

from repro.core.linker import AliasLinker
from repro.core.threshold import ThresholdCalibrator
from repro.eval.alterego import build_alter_ego_dataset
from repro.eval.experiments import split_w1_w2
from repro.synth import ForumLoad, WorldConfig, build_world
from repro.textproc.cleaning import polish_forum


def main() -> None:
    print("building and polishing a Reddit-like world ...")
    world = build_world(WorldConfig(
        seed=11, reddit_users=120, tmg_users=0, dm_users=0,
        tmg_dm_overlap=0, reddit_dark_overlap=0,
        reddit_load=ForumLoad(heavy_fraction=0.9,
                              heavy_messages=(110, 180),
                              light_messages=(5, 30)),
    ))
    polished, report = polish_forum(world.forums["reddit"])
    print(f"  polished: kept {report.kept_messages} of "
          f"{report.input_messages} messages, "
          f"{report.kept_users} users")

    dataset = build_alter_ego_dataset(polished, seed=3,
                                      words_per_alias=800)
    print(f"  refined: {dataset.n_originals} known aliases, "
          f"{dataset.n_alter_egos} alter egos")

    w1, w2 = split_w1_w2(dataset, n_each=500, seed=1)
    print(f"  W1: {len(w1.alter_egos)} unknowns, "
          f"W2: {len(w2.alter_egos)} unknowns")

    linker = AliasLinker(threshold=0.0)
    linker.fit(dataset.originals)
    calibrator = ThresholdCalibrator(target_recall=0.80)

    calibration = calibrator.calibrate(
        linker.link(w1.alter_egos).matches, w1.truth)
    print(f"\nchosen threshold t = {calibration.threshold:.4f} "
          "(paper found 0.4190 on its data)")
    print(f"W1 at t: precision {calibration.precision:.1%}, "
          f"recall {calibration.recall:.1%}  (paper: 94% / 80%)")

    precision, recall, _ = calibrator.validate(
        calibration, linker.link(w2.alter_egos).matches, w2.truth)
    print(f"W2 at t: precision {precision:.1%}, recall {recall:.1%}  "
          "(paper: 87% / 82%)")
    print("\nthe threshold found on W1 transfers to W2 — the paper's "
          "core calibration claim.")


if __name__ == "__main__":
    main()
