"""Setuptools shim.

The project is configured through pyproject.toml; this file exists so
fully offline environments (no ``wheel`` package available, so PEP 517
editable installs fail) can still do ``python setup.py develop``.
"""

from setuptools import setup

setup()
