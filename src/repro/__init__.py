"""repro: a reproduction of "A Light in the Dark Web: Linking Dark Web
Aliases to Real Internet Identities" (ICDCS 2020).

The package implements the paper's full system on synthetic forum
worlds (see DESIGN.md for the substitution rationale):

* :mod:`repro.textproc` — tokenizer, lemmatizer, language detector and
  the 12-step polishing pipeline of Section III-C;
* :mod:`repro.forums` — forum data model, JSONL storage, simulated
  scrapers and the Table I topic taxonomy;
* :mod:`repro.synth` — the synthetic multi-forum world generator
  (personas with stylometric fingerprints and daily habits);
* :mod:`repro.core` — the paper's method: feature extraction
  (Table II), daily activity profiles, k-attribution, the two-stage
  linker, batched processing, and the two baselines;
* :mod:`repro.eval` — alter-ego datasets, metrics, the simulated
  manual-evaluation protocol of Section V-A;
* :mod:`repro.profiling` — personal-information extraction (§V-D);
* :mod:`repro.obs` — observability: tracing spans, metrics registry,
  structured logging (``docs/observability.md``);
* :mod:`repro.resilience` — fault tolerance: retry policies,
  deterministic fault injection, resumable checkpoints, crash-safe
  index snapshots, deadline-budgeted degraded-mode linking
  (``docs/robustness.md``);
* :mod:`repro.perf` — performance: compute-once profile caching,
  fork-pool parallel restage, blocked stage-1 scoring
  (``docs/performance.md``).

Quick start::

    from repro import LinkingPipeline
    from repro.synth import build_world

    world = build_world()
    result = LinkingPipeline().link_forums(world.forums["reddit"],
                                           world.forums["tmg"])
    for match in result.accepted():
        print(match.unknown_id, "->", match.candidate_id, match.score)
"""

from repro.config import (
    FEATURE_FAMILIES,
    FINAL_FEATURES,
    PAPER_THRESHOLD,
    SPACE_REDUCTION_FEATURES,
    FeatureBudget,
    FeatureConfig,
    PipelineConfig,
)
from repro.core import (
    AliasDocument,
    AliasLinker,
    BatchedLinker,
    FeatureExtractor,
    FeatureWeights,
    KAttributor,
    KoppelBaseline,
    LinkResult,
    Match,
    StandardBaseline,
    ThresholdCalibrator,
)
from repro.errors import (
    CheckpointError,
    ConfigurationError,
    DatasetError,
    DeadlineExceededError,
    InsufficientDataError,
    LanguageDetectionError,
    NotFittedError,
    ReproError,
    ResilienceError,
    RetryExhaustedError,
    ScrapeError,
    SnapshotError,
    TransientError,
)
from repro import obs
from repro import perf
from repro import resilience
from repro.perf import ParallelExecutor, ProfileCache
from repro.pipeline import LinkingPipeline, PipelineReport
from repro.resilience import (
    CheckpointStore,
    CircuitBreaker,
    DeadlineBudget,
    FaultPlan,
    RetryPolicy,
    load_index,
    save_index,
)

__version__ = "1.0.0"

__all__ = [
    "FEATURE_FAMILIES",
    "FINAL_FEATURES",
    "PAPER_THRESHOLD",
    "SPACE_REDUCTION_FEATURES",
    "FeatureBudget",
    "FeatureConfig",
    "PipelineConfig",
    "AliasDocument",
    "AliasLinker",
    "BatchedLinker",
    "FeatureExtractor",
    "FeatureWeights",
    "KAttributor",
    "KoppelBaseline",
    "LinkResult",
    "Match",
    "StandardBaseline",
    "ThresholdCalibrator",
    "CheckpointError",
    "CheckpointStore",
    "CircuitBreaker",
    "ConfigurationError",
    "DatasetError",
    "DeadlineBudget",
    "DeadlineExceededError",
    "FaultPlan",
    "InsufficientDataError",
    "LanguageDetectionError",
    "NotFittedError",
    "ReproError",
    "ResilienceError",
    "RetryExhaustedError",
    "RetryPolicy",
    "ScrapeError",
    "SnapshotError",
    "TransientError",
    "LinkingPipeline",
    "ParallelExecutor",
    "PipelineReport",
    "ProfileCache",
    "load_index",
    "save_index",
    "obs",
    "perf",
    "resilience",
    "__version__",
]
