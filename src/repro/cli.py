"""Command-line interface: ``darklight``.

Six subcommands cover the end-to-end workflow of the paper:

* ``generate`` — build a synthetic world and save its forums as JSONL;
* ``polish`` — run the 12-step cleaning pipeline on a stored forum;
* ``calibrate`` — find the acceptance threshold on a forum's alter
  egos (Section IV-E);
* ``link`` — link the aliases of one forum against another
  (Sections IV-I/IV-J); ``--checkpoint FILE``/``--resume`` make long
  runs crash-safe, ``--max-retries``/``--retry-deadline`` bound
  transient-failure retries (see ``docs/robustness.md``),
  ``--workers N``/``--no-cache``/``--block-size``/
  ``--stage1 {dense,blocked,invindex,auto}``/``--shards N`` tune the
  perf subsystem (see ``docs/performance.md``); ``--index SNAP`` links
  against a prebuilt snapshot instead of refitting, and
  ``--deadline-ms``/``--degraded-ok`` bound the linking wall-clock
  (degraded-mode semantics: ``docs/robustness.md``);
* ``index`` — ``build``/``verify``/``info`` for crash-safe persistent
  index snapshots: fit once, link many times from a
  checksum-verified on-disk image;
* ``eval episodes`` — run the deterministic episode-style evaluation
  harness (``docs/evaluation.md``): seeded N-way verification
  episodes scored per ``(drift, word-bucket)`` cell, with
  ``--write-golden``/``--check`` gating runs against the committed
  golden suite;
* ``profile`` — extract the §V-D personal profile of one alias;
* ``stats`` — pretty-print a ``--trace`` JSON file (per-stage totals,
  slowest spans, metric table with p50/p95/p99); ``--compare OTHER``
  diffs two trace files per stage instead;
* ``bench-diff`` — compare two benchmark result JSONs metric by
  metric and exit nonzero on regressions beyond ``--threshold``.

Global telemetry flags (before the subcommand): ``--trace FILE.json``
records every pipeline span plus a metrics snapshot to *FILE*;
``--trace-chrome FILE.json`` additionally exports the span tree —
including per-worker restage lanes — as Chrome Trace Event JSON for
``about://tracing``/Perfetto; ``--profile``/``--profile-alloc``
attach RSS/GC (and tracemalloc) resource payloads to every span.
Every trace output gains a ``*.manifest.json`` sidecar recording
config, seeds, env knobs, versions, git rev and input digests.
``--log-level``/``--log-format`` configure structured logging (see
``docs/observability.md``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro.config import PAPER_THRESHOLD, PipelineConfig
from repro.core.threshold import ThresholdCalibrator
from repro.errors import DatasetError, ReproError
from repro.forums.storage import load_forum, save_forum, save_world
from repro.obs.diff import (
    DEFAULT_THRESHOLD,
    diff_benchmarks,
    diff_traces,
    render_diff,
    render_trace_diff,
)
from repro.obs.logging import LOG_FORMAT_ENV, LOG_LEVEL_ENV, configure_logging
from repro.obs.manifest import build_manifest, manifest_path_for, \
    write_manifest
from repro.obs.prof import disable_profiling, enable_profiling, \
    profiling_from_env
from repro.obs.report import load_trace, render_stats, \
    write_chrome_trace, write_trace
from repro.obs.spans import enable_tracing, reset_trace
from repro.pipeline import LinkingPipeline
from repro.profiling.extractor import ProfileExtractor
from repro.resilience.policy import RetryPolicy
from repro.profiling.report import render_report
from repro.synth.world import WorldConfig, build_world
from repro.textproc.cleaning import CleaningConfig, polish_forum

#: Subcommands that only *read* telemetry; the global --trace /
#: --trace-chrome flags never record a trace of these.
_ANALYSIS_COMMANDS = ("stats", "bench-diff")


def _cmd_generate(args: argparse.Namespace) -> int:
    config = WorldConfig(
        seed=args.seed,
        reddit_users=args.reddit_users,
        tmg_users=args.tmg_users,
        dm_users=args.dm_users,
        tmg_dm_overlap=args.tmg_dm_overlap,
        reddit_dark_overlap=args.reddit_dark_overlap,
    )
    world = build_world(config)
    paths = save_world(list(world.forums.values()), args.out)
    for path in paths:
        forum = world.forums[path.stem]
        print(f"wrote {path} ({forum.n_users} users, "
              f"{forum.n_messages} messages)")
    print(f"ground-truth links: {len(world.links)}")
    return 0


def _cmd_polish(args: argparse.Namespace) -> int:
    forum = load_forum(args.input)
    polished, report = polish_forum(forum, CleaningConfig())
    save_forum(polished, args.output)
    print(f"wrote {args.output}")
    for key, value in report.as_dict().items():
        print(f"  {key}: {value}")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.eval.alterego import build_alter_ego_dataset

    forum = load_forum(args.forum)
    polished, _ = polish_forum(forum, CleaningConfig())
    dataset = build_alter_ego_dataset(polished, seed=args.seed)
    if not dataset.alter_egos:
        print("no users eligible for alter-ego generation",
              file=sys.stderr)
        return 1
    pipeline = LinkingPipeline(PipelineConfig(threshold=0.0))
    result = pipeline.link_documents(dataset.originals,
                                     dataset.alter_egos)
    calibration = ThresholdCalibrator(
        target_recall=args.target_recall).calibrate(
        result.matches, dataset.truth)
    print(f"aliases: {dataset.n_originals} known, "
          f"{dataset.n_alter_egos} alter egos")
    print(f"threshold: {calibration.threshold:.4f}")
    print(f"precision: {calibration.precision:.2%}")
    print(f"recall:    {calibration.recall:.2%}")
    print(f"AUC:       {calibration.curve.auc():.3f}")
    return 0


def _make_budget(args: argparse.Namespace):
    """The linking deadline budget from --deadline-ms/--degraded-ok.

    Constructed immediately before the link call so the budget clocks
    the linking stage, not forum loading and refinement.
    """
    if args.deadline_ms is None:
        return None
    from repro.resilience.degrade import DeadlineBudget

    return DeadlineBudget(args.deadline_ms,
                          degraded_ok=args.degraded_ok)


def _cmd_link(args: argparse.Namespace) -> int:
    retry_policy = None
    if args.max_retries is not None or args.retry_deadline is not None:
        retry_policy = RetryPolicy(
            max_retries=args.max_retries
            if args.max_retries is not None else 3,
            deadline=args.retry_deadline,
        )
    unknown = load_forum(args.unknown)
    if args.index is not None:
        from repro.resilience.snapshot import load_index

        linker = load_index(args.index, workers=args.workers,
                            cache=not args.no_cache,
                            block_size=args.block_size,
                            stage1=args.stage1, shards=args.shards)
        if args.threshold is not None:
            linker.threshold = args.threshold
        threshold = linker.threshold
        pipeline = LinkingPipeline(
            PipelineConfig(threshold=threshold),
            retry_policy=retry_policy,
        )
        unknown_docs = pipeline.prepare_forum(unknown, is_known=False)
        refined_known = len(linker._known or ())
        args.manifest_config = dict(pipeline.manifest_config(),
                                    index=str(args.index))
        result = linker.link(unknown_docs,
                             checkpoint=args.checkpoint,
                             resume=args.resume,
                             budget=_make_budget(args))
    else:
        threshold = args.threshold if args.threshold is not None \
            else PAPER_THRESHOLD
        known = load_forum(args.known)
        pipeline = LinkingPipeline(
            PipelineConfig(threshold=threshold),
            batch_size=args.batch_size,
            retry_policy=retry_policy,
            workers=args.workers,
            cache=not args.no_cache,
            block_size=args.block_size,
            stage1=args.stage1 or "blocked",
            shards=args.shards,
        )
        args.manifest_config = pipeline.manifest_config()
        known_docs = pipeline.prepare_forum(known, is_known=True)
        unknown_docs = pipeline.prepare_forum(unknown, is_known=False)
        refined_known = len(known_docs)
        result = pipeline.link_documents(known_docs, unknown_docs,
                                         checkpoint=args.checkpoint,
                                         resume=args.resume,
                                         budget=_make_budget(args))
    accepted = result.accepted()
    degraded = result.degraded()
    if args.json:
        document = result.to_dict()
        document["report"] = {
            "refined_known": refined_known,
            "refined_unknown": pipeline.report.refined_unknown,
            "threshold": threshold,
        }
        if degraded:
            document["report"]["degraded"] = len(degraded)
        print(json.dumps(document, indent=2))
        return 0
    print(f"known aliases after refinement:   {refined_known}")
    print(f"unknown aliases after refinement: "
          f"{pipeline.report.refined_unknown}")
    print(f"pairs above threshold {threshold}: {len(accepted)}")
    for match in sorted(accepted, key=lambda m: -m.score):
        flag = " [degraded]" if match.degraded else ""
        print(f"  {match.unknown_id} -> {match.candidate_id} "
              f"(score {match.score:.4f}){flag}")
    if degraded:
        print(f"degraded matches: {len(degraded)}")
        for match in degraded:
            print(f"  {match.unknown_id} "
                  f"[{', '.join(match.degraded_reasons)}]")
    if result.skipped:
        print(f"skipped unknowns: {len(result.skipped)}")
        for entry in result.skipped:
            print(f"  {entry.unknown_id} [{entry.stage}] "
                  f"{entry.reason}")
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    from repro.resilience.snapshot import save_index, snapshot_info, \
        verify_index

    if args.index_command == "build":
        forum = load_forum(args.known)
        pipeline = LinkingPipeline(
            PipelineConfig(threshold=args.threshold),
            batch_size=args.batch_size,
            workers=args.workers,
            cache=not args.no_cache,
            block_size=args.block_size,
            stage1=args.stage1 or "blocked",
            shards=args.shards,
            build_jobs=args.jobs,
        )
        known = pipeline.prepare_forum(forum, is_known=True)
        if not known:
            print("no known aliases survived refinement",
                  file=sys.stderr)
            return 1
        linker = pipeline._make_linker()
        build_start = time.perf_counter()
        linker.fit(known)
        build_wall_s = time.perf_counter() - build_start
        # Manifest provenance: what parallelism the build actually ran
        # with and what it cost, so snapshot manifests attribute the
        # one-off fit separately from the many loads that amortize it.
        args.manifest_config = dict(
            pipeline.manifest_config(),
            build_wall_s=round(build_wall_s, 6))
        info = save_index(linker, args.out)
        print(f"wrote {info['path']} ({info['bytes']} bytes, "
              f"{info['sections']} sections, {info['n_known']} known "
              f"aliases, algo {info['algo']}, "
              f"config {info['config_digest']})")
        print(f"build: {build_wall_s:.2f}s "
              f"({args.jobs or 1} build job(s))")
        return 0
    if args.index_command == "verify":
        report = verify_index(args.snapshot)
        for section in report.sections:
            status = "ok" if section.ok else \
                f"DAMAGED ({section.error})"
            print(f"  {section.name:28s} {section.nbytes:>10d}  "
                  f"{status}")
        if report.ok:
            print(f"{report.path}: all {len(report.sections)} "
                  f"sections verified")
            return 0
        print(f"{report.path}: {len(report.damaged())} damaged "
              f"section(s): {', '.join(report.damaged())}",
              file=sys.stderr)
        return 1
    header = snapshot_info(args.snapshot)
    for key in ("path", "format_version", "algo", "git_rev",
                "config_digest", "file_bytes", "expected_bytes"):
        if key in header:
            print(f"{key}: {header[key]}")
    config = header.get("config", {})
    for key in sorted(config):
        print(f"config.{key}: {config[key]}")
    print(f"sections: {len(header.get('sections', []))}")
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.config import FeatureConfig
    from repro.eval.episodes import (
        EpisodeConfig,
        GOLDEN_PATH,
        check_golden,
        golden_suite,
        golden_world_config,
        manifest_bytes,
        manifest_digest,
        run_episodes,
        sample_episodes,
        write_golden,
    )

    features = FeatureConfig.from_spec(args.features)
    golden_mode = (args.golden or args.check is not None
                   or args.write_golden is not None)
    if golden_mode:
        episodes, config = golden_suite(features=features)
    else:
        from repro.synth.world import build_world

        config = EpisodeConfig(
            seed=args.seed,
            n_way=args.n_way,
            episodes_per_cell=args.episodes_per_cell,
            buckets=tuple(int(b) for b in args.buckets.split(",")),
            open_fraction=args.open_fraction,
            features=features,
        )
        # Same world recipe as the golden suite, reseeded: the suite
        # is then a pure function of --seed (identical manifests and
        # scores on every rerun).
        world = build_world(replace(golden_world_config(),
                                    seed=args.seed))
        episodes = sample_episodes(world, config)
    digest = manifest_digest(episodes, config)
    args.manifest_config = dict(config.to_dict(),
                                variant=args.variant,
                                episode_manifest_sha256=digest)
    budget_factory = None
    if args.deadline_ms is not None:
        from repro.resilience.degrade import DeadlineBudget

        def budget_factory():
            return DeadlineBudget(args.deadline_ms, degraded_ok=True)
    report = run_episodes(episodes, features=features,
                          variant=args.variant,
                          budget_factory=budget_factory)
    if args.manifest_out is not None:
        Path(args.manifest_out).write_bytes(
            manifest_bytes(episodes, config))
        print(f"episode manifest written to {args.manifest_out}",
              file=sys.stderr)
    if args.out is not None:
        document = dict(report.to_dict(), config=config.to_dict(),
                        manifest_sha256=digest)
        Path(args.out).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        print(f"episode report written to {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(dict(report.to_dict(),
                              manifest_sha256=digest),
                         indent=2, sort_keys=True))
    else:
        print(f"episodes: {len(episodes)} "
              f"(variant {report.variant}, features {report.features}, "
              f"manifest sha256 {digest[:12]}...)")
        for cell, metrics in report.cells.items():
            print(f"  {cell:18s} auc {metrics['auc']:.3f}  "
                  f"a@1 {metrics['accuracy_at_1']:.3f}  "
                  f"a@3 {metrics['accuracy_at_3']:.3f}  "
                  f"brier {metrics['brier']:.3f}  "
                  f"({metrics['n_episodes']:.0f} episodes, "
                  f"{metrics['n_degraded']:.0f} degraded, "
                  f"{metrics['n_skipped']:.0f} skipped)")
    if args.write_golden is not None:
        path = args.write_golden or GOLDEN_PATH
        write_golden(path, report, episodes, config)
        print(f"golden suite written to {path}", file=sys.stderr)
    if args.check is not None:
        path = args.check or GOLDEN_PATH
        breaches = check_golden(path, report, episodes, config,
                                tolerance=args.tolerance)
        if breaches:
            print(f"golden check FAILED against {path}:",
                  file=sys.stderr)
            for breach in breaches:
                print(f"  {breach}", file=sys.stderr)
            return 1
        print(f"golden check passed against {path} "
              f"(tolerance {args.tolerance:g})")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace_file)
    if args.compare is not None:
        other = load_trace(args.compare)
        result = diff_traces(trace, other,
                             threshold=args.compare_threshold)
        print(f"stage diff: {args.trace_file} -> {args.compare}")
        print(render_trace_diff(result))
        return 0
    print(render_stats(trace))
    return 0


def _load_bench_results(path: str) -> dict:
    """Load one benchmark results JSON (e.g. BENCH_linking.json)."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise DatasetError(f"benchmark file {path} does not exist")
    except json.JSONDecodeError as exc:
        raise DatasetError(
            f"benchmark file {path} is not valid JSON: {exc}")
    if not isinstance(document, dict):
        raise DatasetError(
            f"benchmark file {path} is not a JSON object")
    return document


def _cmd_bench_diff(args: argparse.Namespace) -> int:
    old = _load_bench_results(args.old)
    new = _load_bench_results(args.new)
    result = diff_benchmarks(old, new, threshold=args.threshold)
    if args.json:
        print(json.dumps(result, indent=2, default=str))
    else:
        print(f"bench diff: {args.old} -> {args.new}")
        print(render_diff(result))
    if result["regressions"] and not args.warn_only:
        return 1
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    forum = load_forum(args.forum)
    record = forum.users.get(args.alias)
    if record is None:
        print(f"alias {args.alias!r} not found in {args.forum}",
              file=sys.stderr)
        return 1
    profile = ProfileExtractor().extract(record)
    print(render_report(profile, dark_alias=args.dark_alias))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="darklight",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--trace", metavar="FILE.json", default=None,
                        help="record a span trace + metrics snapshot "
                             "of this run to FILE.json")
    parser.add_argument("--trace-chrome", metavar="FILE.json",
                        default=None,
                        help="additionally export the span tree as "
                             "Chrome Trace Event JSON (open in "
                             "about://tracing or Perfetto; workers "
                             "render as separate process lanes)")
    parser.add_argument("--profile", action="store_true",
                        help="attach RSS/GC resource payloads to "
                             "every span (requires --trace or "
                             "--trace-chrome to be useful)")
    parser.add_argument("--profile-alloc", action="store_true",
                        help="like --profile, plus tracemalloc "
                             "net/peak allocation per span (slower)")
    parser.add_argument("--log-level", default=None,
                        help="structured-log level (DEBUG/INFO/...; "
                             "default from REPRO_LOG_LEVEL)")
    parser.add_argument("--log-format", default=None,
                        choices=("kv", "json"),
                        help="structured-log format "
                             "(default from REPRO_LOG_FORMAT)")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate",
                         help="build a synthetic world (JSONL output)")
    gen.add_argument("--out", required=True, help="output directory")
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument("--reddit-users", type=int, default=400)
    gen.add_argument("--tmg-users", type=int, default=120)
    gen.add_argument("--dm-users", type=int, default=80)
    gen.add_argument("--tmg-dm-overlap", type=int, default=20)
    gen.add_argument("--reddit-dark-overlap", type=int, default=30)
    gen.set_defaults(func=_cmd_generate)

    pol = sub.add_parser("polish",
                         help="run the 12-step cleaning pipeline")
    pol.add_argument("--input", required=True)
    pol.add_argument("--output", required=True)
    pol.set_defaults(func=_cmd_polish)

    cal = sub.add_parser("calibrate",
                         help="find the threshold on alter egos (IV-E)")
    cal.add_argument("--forum", required=True)
    cal.add_argument("--seed", type=int, default=0)
    cal.add_argument("--target-recall", type=float, default=0.80)
    cal.set_defaults(func=_cmd_calibrate)

    link = sub.add_parser("link",
                          help="link unknown forum aliases to known ones")
    source = link.add_mutually_exclusive_group(required=True)
    source.add_argument("--known",
                        help="known-aliases forum JSONL (fits a fresh "
                             "index)")
    source.add_argument("--index", metavar="SNAP",
                        help="link against a prebuilt snapshot from "
                             "'index build' (verified on load)")
    link.add_argument("--unknown", required=True)
    link.add_argument("--threshold", type=float, default=None,
                      help="acceptance threshold (default: the "
                           "snapshot's with --index, else the "
                           f"paper's {PAPER_THRESHOLD})")
    link.add_argument("--deadline-ms", type=float, default=None,
                      metavar="MS",
                      help="wall-clock budget for the linking stage; "
                           "without --degraded-ok an overrun aborts "
                           "with an error")
    link.add_argument("--degraded-ok", action="store_true",
                      help="on deadline overrun, return partial-but-"
                           "honest results (degraded flags set) "
                           "instead of failing")
    link.add_argument("--batch-size", type=int, default=None,
                      help="enable the IV-J batched pipeline")
    link.add_argument("--json", action="store_true",
                      help="print the full LinkResult as JSON")
    link.add_argument("--checkpoint", metavar="FILE", default=None,
                      help="persist each finished unknown to FILE "
                           "(atomic; enables --resume after a crash)")
    link.add_argument("--resume", action="store_true",
                      help="skip unknowns already completed in "
                           "--checkpoint FILE")
    link.add_argument("--max-retries", type=int, default=None,
                      help="retries per pipeline stage on transient "
                           "failures (default 3 when retries are "
                           "enabled)")
    link.add_argument("--retry-deadline", type=float, default=None,
                      metavar="SECONDS",
                      help="total retry budget per stage in seconds")
    link.add_argument("--workers", type=int, default=None, metavar="N",
                      help="worker processes for the stage-2 restage "
                           "(default from REPRO_WORKERS, else serial; "
                           "output is identical at any worker count)")
    link.add_argument("--no-cache", action="store_true",
                      help="disable the per-document profile cache "
                           "(same results, more recomputation)")
    link.add_argument("--block-size", type=int, default=None,
                      metavar="ROWS",
                      help="known aliases scored per stage-1 block "
                           "(default from REPRO_BLOCK_SIZE, else 4096)")
    link.add_argument("--stage1", default=None,
                      choices=("dense", "blocked", "invindex", "auto"),
                      help="stage-1 scoring strategy (default: "
                           "blocked; with --index, whatever the "
                           "snapshot was built with; auto measures "
                           "the corpus and picks); every strategy "
                           "links bit-identically")
    link.add_argument("--shards", type=int, default=None, metavar="K",
                      help="inverted-index partitions for "
                           "--stage1 invindex (default from "
                           "REPRO_SHARDS, else 1)")
    link.set_defaults(func=_cmd_link)

    index = sub.add_parser(
        "index",
        help="build / verify / inspect persistent index snapshots")
    isub = index.add_subparsers(dest="index_command", required=True)
    ibuild = isub.add_parser(
        "build", help="fit a linker on a forum and snapshot it")
    ibuild.add_argument("--known", required=True,
                        help="known-aliases forum JSONL")
    ibuild.add_argument("--out", required=True, metavar="SNAP",
                        help="snapshot output path")
    ibuild.add_argument("--threshold", type=float,
                        default=PAPER_THRESHOLD)
    ibuild.add_argument("--batch-size", type=int, default=None,
                        help="snapshot a IV-J batched linker instead")
    ibuild.add_argument("--workers", type=int, default=None,
                        metavar="N")
    ibuild.add_argument("--no-cache", action="store_true")
    ibuild.add_argument("--block-size", type=int, default=None,
                        metavar="ROWS")
    ibuild.add_argument("--stage1", default=None,
                        choices=("dense", "blocked", "invindex",
                                 "auto"),
                        help="stage-1 strategy baked into the "
                             "snapshot; invindex saves the posting "
                             "arrays so loads skip the build; auto "
                             "measures the corpus and picks")
    ibuild.add_argument("--shards", type=int, default=None,
                        metavar="K",
                        help="inverted-index partitions for "
                             "--stage1 invindex")
    ibuild.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for the inverted-index "
                             "build (per-shard postings in parallel, "
                             "bit-identical to serial; recorded in "
                             "the run manifest as build_jobs)")
    ibuild.set_defaults(func=_cmd_index)
    iverify = isub.add_parser(
        "verify", help="check every section checksum of a snapshot")
    iverify.add_argument("snapshot", help="snapshot file to verify")
    iverify.set_defaults(func=_cmd_index)
    iinfo = isub.add_parser(
        "info", help="print a snapshot's manifest header")
    iinfo.add_argument("snapshot", help="snapshot file to inspect")
    iinfo.set_defaults(func=_cmd_index)

    ev = sub.add_parser(
        "eval",
        help="episode-style evaluation harness (docs/evaluation.md)")
    esub = ev.add_subparsers(dest="eval_command", required=True)
    eep = esub.add_parser(
        "episodes",
        help="sample and score a deterministic episode suite")
    eep.add_argument("--seed", type=int, default=7,
                     help="suite seed; the same seed always produces "
                          "byte-identical manifests and scores")
    eep.add_argument("--n-way", type=int, default=8,
                     help="candidate-panel size per episode")
    eep.add_argument("--episodes-per-cell", type=int, default=12,
                     help="episodes per (drift, bucket) cell")
    eep.add_argument("--buckets", default="300,800", metavar="W1,W2",
                     help="comma-separated per-alias word budgets "
                          "(the text-size axis)")
    eep.add_argument("--open-fraction", type=float, default=0.25,
                     help="fraction of episodes whose true author is "
                          "held out of the panel")
    eep.add_argument("--features", default="stylometry,activity",
                     metavar="FAMILIES",
                     help="comma list of feature families "
                          "(stylometry,activity,structure)")
    eep.add_argument("--variant", default="full",
                     choices=("full", "stage1"),
                     help="linker variant: the paper's two-stage "
                          "pipeline, or the reduction stage alone "
                          "(deliberately degraded)")
    eep.add_argument("--deadline-ms", type=float, default=None,
                     metavar="MS",
                     help="per-episode wall-clock budget; overruns "
                          "are answered degraded and reported "
                          "honestly per cell")
    eep.add_argument("--out", metavar="REPORT.json", default=None,
                     help="write the full episode report as JSON")
    eep.add_argument("--manifest-out", metavar="FILE.json",
                     default=None,
                     help="write the canonical episode manifest "
                          "(byte-identical across same-seed runs)")
    eep.add_argument("--json", action="store_true",
                     help="print the full report as JSON instead of "
                          "the per-cell table")
    eep.add_argument("--golden", action="store_true",
                     help="run the committed golden suite instead of "
                          "sampling from --seed")
    eep.add_argument("--write-golden", nargs="?", const="",
                     default=None, metavar="PATH",
                     help="refresh the golden suite file (default "
                          "location when PATH is omitted)")
    eep.add_argument("--check", nargs="?", const="", default=None,
                     metavar="PATH",
                     help="gate this run against the committed golden "
                          "suite; exit 1 on any tolerance breach")
    eep.add_argument("--tolerance", type=float, default=0.05,
                     help="absolute per-metric tolerance of --check")
    eep.set_defaults(func=_cmd_eval)

    stats = sub.add_parser("stats",
                           help="summarize a --trace JSON file")
    stats.add_argument("trace_file",
                       help="trace file written by --trace")
    stats.add_argument("--compare", metavar="OTHER.json", default=None,
                       help="diff per-stage wall time against a "
                            "second trace file instead of rendering")
    stats.add_argument("--compare-threshold", type=float,
                       default=DEFAULT_THRESHOLD, metavar="FRACTION",
                       help="relative slowdown flagged as a "
                            "regression in --compare output "
                            "(default 0.20)")
    stats.set_defaults(func=_cmd_stats)

    bdiff = sub.add_parser(
        "bench-diff",
        help="compare two benchmark result JSONs; exit 1 on "
             "regressions beyond the threshold")
    bdiff.add_argument("old", help="baseline results JSON "
                                   "(e.g. committed BENCH_linking.json)")
    bdiff.add_argument("new", help="freshly produced results JSON")
    bdiff.add_argument("--threshold", type=float,
                       default=DEFAULT_THRESHOLD, metavar="FRACTION",
                       help="relative worsening tolerated per metric "
                            "(default 0.20 = 20%%)")
    bdiff.add_argument("--warn-only", action="store_true",
                       help="report regressions but exit 0 "
                            "(PR-gate mode)")
    bdiff.add_argument("--json", action="store_true",
                       help="print the full diff document as JSON")
    bdiff.set_defaults(func=_cmd_bench_diff)

    prof = sub.add_parser("profile",
                          help="extract a personal profile (V-D)")
    prof.add_argument("--forum", required=True)
    prof.add_argument("--alias", required=True)
    prof.add_argument("--dark-alias", default=None,
                      help="linked dark alias to name in the report")
    prof.set_defaults(func=_cmd_profile)
    return parser


def _manifest_inputs(args: argparse.Namespace) -> dict:
    """Input files of this invocation, by role, for the manifest."""
    inputs = {}
    for role in ("known", "unknown", "forum", "input", "index",
                 "snapshot"):
        path = getattr(args, role, None)
        if path is not None:
            inputs[role] = path
    return inputs


def _write_run_artifacts(args: argparse.Namespace,
                         argv: Optional[Sequence[str]],
                         started: float) -> None:
    """Persist the trace, Chrome trace and their manifest sidecars."""
    metadata = {
        "command": args.command,
        "argv": list(argv) if argv is not None else sys.argv[1:],
    }
    manifest = build_manifest(
        command=args.command,
        argv=metadata["argv"],
        config=getattr(args, "manifest_config", None),
        seed=getattr(args, "seed", None),
        inputs=_manifest_inputs(args),
        elapsed_s=time.perf_counter() - started,
    )
    written = []
    if args.trace is not None:
        written.append(write_trace(args.trace, metadata=metadata))
    if args.trace_chrome is not None:
        written.append(write_chrome_trace(args.trace_chrome,
                                          metadata=metadata))
    for path in written:
        write_manifest(manifest_path_for(path), manifest)
        print(f"trace written to {path} "
              f"(manifest: {manifest_path_for(path)})", file=sys.stderr)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    tracing = False
    profiling = False
    started = time.perf_counter()
    try:
        if (args.log_level or args.log_format
                or os.environ.get(LOG_LEVEL_ENV)
                or os.environ.get(LOG_FORMAT_ENV)):
            configure_logging(level=args.log_level, fmt=args.log_format)
        if args.command not in _ANALYSIS_COMMANDS:
            if args.trace is not None or args.trace_chrome is not None:
                reset_trace()
                enable_tracing()
                tracing = True
            if args.profile or args.profile_alloc:
                enable_profiling(alloc=args.profile_alloc)
                profiling = True
            elif profiling_from_env() is not None:
                profiling = True
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if profiling:
            disable_profiling()
        if tracing:
            _write_run_artifacts(args, argv, started)


if __name__ == "__main__":
    sys.exit(main())
