"""Central configuration objects for the reproduction pipeline.

The paper fixes a number of constants across its experiments; they are
gathered here so that every module reads the same values and so that
benchmarks can sweep them explicitly.  Table and section references below
point at the ICDCS 2020 paper.

The two feature budgets of Table II are exposed as the module-level
constants :data:`SPACE_REDUCTION_FEATURES` and :data:`FINAL_FEATURES`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

# --- Paper-wide constants (Sections III-C, IV-B, IV-C, IV-D, IV-E) ---

#: Minimum words for a message to be kept during polishing (step 5).
MIN_MESSAGE_WORDS = 10

#: Minimum ratio of distinct words to total words (polishing step 6).
MIN_DISTINCT_WORD_RATIO = 0.5

#: Words longer than this are dropped as non-words (polishing step 12).
MAX_WORD_LENGTH = 34

#: Minimum number of usable timestamps to build a daily activity profile.
MIN_TIMESTAMPS = 30

#: Words of polished text required per alias in the refined datasets.
WORDS_PER_ALIAS = 1500

#: Requirements to generate an alter-ego from a user (Section IV-D).
ALTER_EGO_MIN_WORDS = 3000
ALTER_EGO_MIN_TIMESTAMPS = 60

#: Search-space reduction keeps this many candidates (Section IV-C).
DEFAULT_K = 10

#: The cosine-similarity threshold calibrated in Section IV-E.
PAPER_THRESHOLD = 0.4190

#: Default batch size for the RAM-bounded procedure of Section IV-J.
DEFAULT_BATCH_SIZE = 100


@dataclass(frozen=True)
class FeatureBudget:
    """How many features of each family to keep (one column of Table II).

    Attributes
    ----------
    word_ngrams:
        Number of word 1-3-grams kept, ordered by corpus frequency.
    char_ngrams:
        Number of character 1-5-grams kept, ordered by corpus frequency.
    punctuation:
        Number of punctuation-frequency features (fixed inventory).
    digits:
        Number of digit-frequency features ('0'..'9').
    special_chars:
        Number of special-character-frequency features.
    activity_bins:
        Number of daily-activity histogram bins (24 hours).
    """

    word_ngrams: int = 50_000
    char_ngrams: int = 15_000
    punctuation: int = 11
    digits: int = 10
    special_chars: int = 21
    activity_bins: int = 24

    def __post_init__(self) -> None:
        for name in ("word_ngrams", "char_ngrams", "punctuation", "digits",
                     "special_chars", "activity_bins"):
            value = getattr(self, name)
            if value < 0:
                raise ConfigurationError(f"{name} must be >= 0, got {value}")

    @property
    def text_total(self) -> int:
        """Total number of text features (everything but the activity)."""
        return (self.word_ngrams + self.char_ngrams + self.punctuation
                + self.digits + self.special_chars)

    @property
    def total(self) -> int:
        """Total feature-vector length including the activity profile."""
        return self.text_total + self.activity_bins


#: Feature budget for the search-space-reduction stage (Table II, middle).
SPACE_REDUCTION_FEATURES = FeatureBudget(word_ngrams=60_000, char_ngrams=30_000)

#: Feature budget for the final classification stage (Table II, right).
FINAL_FEATURES = FeatureBudget(word_ngrams=50_000, char_ngrams=15_000)


#: Names of the selectable feature families, in canonical order.
FEATURE_FAMILIES = ("stylometry", "activity", "structure")


@dataclass(frozen=True)
class FeatureConfig:
    """Which feature families participate in linking.

    ``stylometry`` is the paper's text block (Tf-Idf word/char n-grams
    plus character frequencies) and is always required — dropping it
    leaves nothing to rank on.  ``activity`` is the 24-bin daily
    activity profile of Section IV-B.  ``structure`` is the
    reply-graph/thread-structure family (who-replies-to-whom degree
    statistics, thread co-occurrence, within-thread posting cadence);
    it is off by default so the default pipeline stays bit-identical
    to the paper configuration.
    """

    stylometry: bool = True
    activity: bool = True
    structure: bool = False

    def __post_init__(self) -> None:
        if not self.stylometry:
            raise ConfigurationError(
                "the stylometry family cannot be disabled: linking has "
                "nothing to rank on without the text block")

    @classmethod
    def from_spec(cls, spec: str) -> "FeatureConfig":
        """Parse a comma-separated family list.

        ``"stylometry,activity"`` is the paper configuration;
        ``"stylometry,activity,structure"`` adds the reply-graph
        family.  Unknown names raise :class:`ConfigurationError`.
        """
        names = [part.strip() for part in spec.split(",") if part.strip()]
        if not names:
            raise ConfigurationError(
                f"empty feature spec: {spec!r}")
        unknown = sorted(set(names) - set(FEATURE_FAMILIES))
        if unknown:
            raise ConfigurationError(
                f"unknown feature families {unknown}; "
                f"choose from {list(FEATURE_FAMILIES)}")
        chosen = set(names)
        return cls(stylometry="stylometry" in chosen,
                   activity="activity" in chosen,
                   structure="structure" in chosen)

    def spec(self) -> str:
        """The canonical comma-separated form (inverse of from_spec)."""
        return ",".join(self.families())

    def families(self) -> tuple:
        """Enabled family names in canonical order."""
        return tuple(name for name in FEATURE_FAMILIES
                     if getattr(self, name))


@dataclass(frozen=True)
class PipelineConfig:
    """End-to-end configuration of the two-stage linking pipeline.

    The defaults reproduce the configuration the paper settles on:
    ``k = 10`` candidates, 1,500 words per alias, daily activity profile
    enabled, lemmatization enabled, and the Table II feature budgets.
    """

    k: int = DEFAULT_K
    words_per_alias: int = WORDS_PER_ALIAS
    threshold: float = PAPER_THRESHOLD
    use_activity: bool = True
    use_structure: bool = False
    use_lemmatization: bool = True
    reduction_budget: FeatureBudget = field(default=SPACE_REDUCTION_FEATURES)
    final_budget: FeatureBudget = field(default=FINAL_FEATURES)
    min_timestamps: int = MIN_TIMESTAMPS

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")
        if self.words_per_alias < 1:
            raise ConfigurationError(
                f"words_per_alias must be >= 1, got {self.words_per_alias}")
        if not 0.0 <= self.threshold <= 1.0:
            raise ConfigurationError(
                f"threshold must be in [0, 1], got {self.threshold}")
        if self.min_timestamps < 0:
            raise ConfigurationError(
                f"min_timestamps must be >= 0, got {self.min_timestamps}")


def bench_scale() -> str:
    """Return the benchmark scale requested through ``REPRO_SCALE``.

    ``"small"`` (the default) keeps benchmark worlds laptop-sized;
    ``"paper"`` uses the paper's dataset sizes (slow).
    """
    scale = os.environ.get("REPRO_SCALE", "small").lower()
    if scale not in {"small", "paper"}:
        raise ConfigurationError(
            f"REPRO_SCALE must be 'small' or 'paper', got {scale!r}")
    return scale
