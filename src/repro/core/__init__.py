"""The paper's primary contribution: two-stage alias linking combining
stylometric features with daily activity profiles (Section IV).
"""

from repro.core.activity import (
    activity_profile,
    profile_similarity,
    try_activity_profile,
    usable_timestamps,
)
from repro.core.baselines import KoppelBaseline, StandardBaseline
from repro.core.batch import BatchedLinker
from repro.core.geolocation import (
    TimezoneEstimate,
    TimezoneEstimator,
    crowd_offset,
)
from repro.core.incremental import IncrementalLinker
from repro.core.verification import (
    Attribution,
    OpenSetAttributor,
    PairVerifier,
    Verdict,
)
from repro.core.documents import (
    AliasDocument,
    build_document,
    documents_by_id,
    normalize_message,
    refine_forum,
)
from repro.core.features import (
    DocumentEncoder,
    FeatureExtractor,
    FeatureWeights,
    frequency_features,
)
from repro.core.kattribution import Candidates, KAttributor
from repro.core.linker import AliasLinker, LinkResult, Match, \
    SkippedUnknown, check_document
from repro.core.similarity import cosine_pair, cosine_similarity, top_k
from repro.core.structure import (
    STRUCTURE_DIM,
    STRUCTURE_FEATURE_NAMES,
    merge_profile_maps,
    structure_profiles,
)
from repro.core.tfidf import TfidfModel, l2_normalize_rows
from repro.core.threshold import (
    Calibration,
    ThresholdCalibrator,
    matches_to_curve,
)

__all__ = [
    "TimezoneEstimate",
    "TimezoneEstimator",
    "crowd_offset",
    "IncrementalLinker",
    "Attribution",
    "OpenSetAttributor",
    "PairVerifier",
    "Verdict",
    "activity_profile",
    "profile_similarity",
    "try_activity_profile",
    "usable_timestamps",
    "KoppelBaseline",
    "StandardBaseline",
    "BatchedLinker",
    "AliasDocument",
    "build_document",
    "documents_by_id",
    "normalize_message",
    "refine_forum",
    "DocumentEncoder",
    "FeatureExtractor",
    "FeatureWeights",
    "frequency_features",
    "Candidates",
    "KAttributor",
    "AliasLinker",
    "LinkResult",
    "Match",
    "SkippedUnknown",
    "check_document",
    "cosine_pair",
    "cosine_similarity",
    "top_k",
    "STRUCTURE_DIM",
    "STRUCTURE_FEATURE_NAMES",
    "merge_profile_maps",
    "structure_profiles",
    "TfidfModel",
    "l2_normalize_rows",
    "Calibration",
    "ThresholdCalibrator",
    "matches_to_curve",
]
