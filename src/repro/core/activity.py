"""The daily activity profile of Section IV-B.

A user's profile is the distribution of their posting activity over the
24 hours of the day:

.. math::

    P_u[h] = \\frac{\\sum_d a_u(d, h)}{\\sum_{d, h'} a_u(d, h')}

where the bit :math:`a_u(d, h)` says whether user *u* posted in hour
*h* of day *d*.  Note the binarization: posting five times in the same
hour of the same day counts once — the profile captures *when* the user
is active, not how much they post.

Weekends and holidays are excluded (habits shift on those days), and at
least 30 usable timestamps are required, both following the paper and
its antecedent, La Morgia et al., "Time-zone geolocation of crowds in
the dark web" (ICDCS 2018).
"""

from __future__ import annotations

from typing import Iterable, Optional, Set, Tuple

import numpy as np

from repro.config import MIN_TIMESTAMPS
from repro.core.calendars import is_excluded
from repro.errors import InsufficientDataError
from repro.forums.models import DAY, HOUR

#: Hours in the profile.
N_BINS = 24


def usable_timestamps(timestamps: Iterable[int]) -> list:
    """Timestamps that survive the weekend/holiday exclusion."""
    return [t for t in timestamps if not is_excluded(t)]


def activity_profile(timestamps: Iterable[int],
                     min_timestamps: int = MIN_TIMESTAMPS,
                     utc_shift_hours: int = 0) -> np.ndarray:
    """Build the 24-bin daily activity profile (eq. 1 of the paper).

    Parameters
    ----------
    timestamps:
        Posting times, Unix epoch seconds, UTC.
    min_timestamps:
        Minimum number of usable (non-weekend, non-holiday) timestamps;
        below this floor the profile is unreliable and
        :class:`InsufficientDataError` is raised.
    utc_shift_hours:
        Correction to apply when the source forum reported local times
        (Section IV-B: "we align the timestamps by adjusting all the
        profiles to UTC").  A forum that displays UTC+2 times needs
        ``utc_shift_hours=-2``.

    Returns
    -------
    numpy.ndarray
        A length-24 vector summing to 1.
    """
    shift = utc_shift_hours * HOUR
    usable = [t + shift for t in usable_timestamps(timestamps)]
    if len(usable) < min_timestamps:
        raise InsufficientDataError(
            f"need at least {min_timestamps} usable timestamps, "
            f"got {len(usable)}")
    seen: Set[Tuple[int, int]] = set()
    bins = np.zeros(N_BINS, dtype=np.float64)
    for t in usable:
        day = t // DAY
        hour = (t % DAY) // HOUR
        key = (day, hour)
        if key in seen:
            continue
        seen.add(key)
        bins[hour] += 1.0
    total = bins.sum()
    if total == 0:
        raise InsufficientDataError("no activity bins set")
    return bins / total


def try_activity_profile(timestamps: Iterable[int],
                         min_timestamps: int = MIN_TIMESTAMPS,
                         utc_shift_hours: int = 0) -> Optional[np.ndarray]:
    """Like :func:`activity_profile`, returning ``None`` when data is
    insufficient instead of raising (refinement filters on this)."""
    try:
        return activity_profile(timestamps, min_timestamps,
                                utc_shift_hours)
    except InsufficientDataError:
        return None


def profile_similarity(profile_a: np.ndarray,
                       profile_b: np.ndarray) -> float:
    """Cosine similarity between two daily activity profiles."""
    a = np.asarray(profile_a, dtype=np.float64)
    b = np.asarray(profile_b, dtype=np.float64)
    if a.shape != (N_BINS,) or b.shape != (N_BINS,):
        raise ValueError("profiles must be length-24 vectors")
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom == 0:
        return 0.0
    return float(np.dot(a, b) / denom)
