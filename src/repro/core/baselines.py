"""The two baselines of Section IV-F.

**Standard Baseline** — character space-free 4-grams with cosine
similarity: "the standard baseline in literature for our task".  The
text is stripped of whitespace, 4-grams are counted, vectors are
L2-normalized raw counts (no Idf, no candidate re-extraction), and the
best-scoring known alias is the output pair.  In the paper this is the
fastest and by far the worst method (AUC 0.1).

**Koppel Baseline** — Koppel, Schler & Argamon, "Authorship attribution
in the wild" (LREC 2011): repeatedly score with a random 40% of the
features; a candidate earns a point each time it is the most similar;
after 100 repetitions the normalized point count is the match score.
Robust but two orders of magnitude more similarity computations — in
the paper it is the slowest method (AUC 0.49 vs 0.88 for the two-stage
pipeline).

Both baselines expose the same ``fit``/``link`` surface as
:class:`~repro.core.linker.AliasLinker` so the comparison bench can
treat the three methods uniformly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.core import ngrams
from repro.core.documents import AliasDocument
from repro.core.features import DocumentEncoder, FeatureExtractor
from repro.core.linker import LinkResult, Match
from repro.core.similarity import cosine_similarity
from repro.core.tfidf import l2_normalize_rows
from repro.config import SPACE_REDUCTION_FEATURES, FeatureBudget
from repro.errors import ConfigurationError, NotFittedError


def _space_free_profile(document: AliasDocument) -> ngrams.CodeCounts:
    """Character 4-gram counts of the document with whitespace removed."""
    squeezed = "".join(document.text.split())
    codes = ngrams.char_ngram_codes(squeezed, orders=(4,))
    return ngrams.CodeCounts.from_occurrences(codes)


class StandardBaseline:
    """Space-free character 4-grams + cosine similarity.

    Parameters
    ----------
    max_features:
        Cap on the 4-gram vocabulary (most frequent kept).  ``None``
        keeps every 4-gram seen in the known corpus.
    """

    def __init__(self, max_features: Optional[int] = None,
                 threshold: float = 0.0) -> None:
        self.max_features = max_features
        self.threshold = threshold
        self._selected: Optional[np.ndarray] = None
        self._known: Optional[List[AliasDocument]] = None
        self._matrix: Optional[sparse.csr_matrix] = None

    def fit(self, known: Sequence[AliasDocument]) -> "StandardBaseline":
        if not known:
            raise ConfigurationError("known corpus must not be empty")
        self._known = list(known)
        profiles = [_space_free_profile(d) for d in self._known]
        corpus = ngrams.merge_counts(profiles)
        budget = (self.max_features if self.max_features is not None
                  else corpus.codes.size)
        self._selected = ngrams.select_top(corpus, budget)
        self._matrix = self._vectorize(profiles)
        return self

    def _vectorize(self, profiles: Sequence[ngrams.CodeCounts],
                   ) -> sparse.csr_matrix:
        indptr = [0]
        indices: List[np.ndarray] = []
        data: List[np.ndarray] = []
        for profile in profiles:
            cols, counts = ngrams.project_counts(profile, self._selected)
            indices.append(cols)
            data.append(counts.astype(np.float64))
            indptr.append(indptr[-1] + len(cols))
        matrix = sparse.csr_matrix(
            (np.concatenate(data) if data else np.empty(0),
             np.concatenate(indices) if indices else np.empty(0),
             np.asarray(indptr, dtype=np.int64)),
            shape=(len(profiles), len(self._selected)))
        return l2_normalize_rows(matrix)

    def link(self, unknowns: Sequence[AliasDocument]) -> LinkResult:
        """Best-candidate matches by raw 4-gram cosine."""
        if self._matrix is None:
            raise NotFittedError("StandardBaseline.fit not called")
        profiles = [_space_free_profile(d) for d in unknowns]
        unknown_matrix = self._vectorize(profiles)
        scores = cosine_similarity(unknown_matrix, self._matrix)
        matches: List[Match] = []
        candidate_scores: Dict[str, List[Tuple[str, float]]] = {}
        for row, unknown in enumerate(unknowns):
            best = int(np.argmax(scores[row]))
            best_score = float(scores[row, best])
            matches.append(Match(
                unknown_id=unknown.doc_id,
                candidate_id=self._known[best].doc_id,
                score=best_score,
                accepted=best_score >= self.threshold,
                first_stage_score=best_score,
            ))
            candidate_scores[unknown.doc_id] = [
                (self._known[best].doc_id, best_score)]
        return LinkResult(matches=matches,
                          candidate_scores=candidate_scores)


class KoppelBaseline:
    """Random-feature-subset voting (Koppel et al., 2011).

    Parameters
    ----------
    iterations:
        Number of random subsets (paper: 100).
    feature_fraction:
        Fraction of features kept per iteration (paper: 40%).
    budget:
        Feature budget for the underlying text space; the reduction
        budget of Table II is used so the comparison with the two-stage
        pipeline is apples-to-apples.
    seed:
        Seed of the subset sampler (results are deterministic given it).
    min_votes:
        Acceptance threshold on the normalized vote share.
    """

    def __init__(self, iterations: int = 100,
                 feature_fraction: float = 0.4,
                 budget: FeatureBudget = SPACE_REDUCTION_FEATURES,
                 use_activity: bool = False,
                 seed: int = 0,
                 min_votes: float = 0.0) -> None:
        if iterations < 1:
            raise ConfigurationError("iterations must be >= 1")
        if not 0.0 < feature_fraction <= 1.0:
            raise ConfigurationError(
                "feature_fraction must be in (0, 1]")
        self.iterations = iterations
        self.feature_fraction = feature_fraction
        self.budget = budget
        self.use_activity = use_activity
        self.seed = seed
        self.min_votes = min_votes
        self._extractor: Optional[FeatureExtractor] = None
        self._known: Optional[List[AliasDocument]] = None
        self._matrix: Optional[sparse.csr_matrix] = None

    def fit(self, known: Sequence[AliasDocument]) -> "KoppelBaseline":
        if not known:
            raise ConfigurationError("known corpus must not be empty")
        self._known = list(known)
        self._extractor = FeatureExtractor(
            budget=self.budget,
            use_activity=self.use_activity,
            encoder=DocumentEncoder(),
        )
        self._matrix = self._extractor.fit_transform(self._known)
        return self

    def link(self, unknowns: Sequence[AliasDocument]) -> LinkResult:
        """Vote over random feature subsets; scores are vote shares."""
        if self._matrix is None or self._extractor is None:
            raise NotFittedError("KoppelBaseline.fit not called")
        unknown_matrix = self._extractor.transform(unknowns)
        n_features = self._matrix.shape[1]
        n_keep = max(1, int(round(n_features * self.feature_fraction)))
        rng = np.random.default_rng(self.seed)
        votes = np.zeros((len(unknowns), len(self._known)),
                         dtype=np.int64)
        known_csc = sparse.csc_matrix(self._matrix)
        unknown_csc = sparse.csc_matrix(unknown_matrix)
        for _ in range(self.iterations):
            columns = rng.choice(n_features, size=n_keep, replace=False)
            columns.sort()
            known_sub = sparse.csr_matrix(known_csc[:, columns])
            unknown_sub = sparse.csr_matrix(unknown_csc[:, columns])
            scores = cosine_similarity(unknown_sub, known_sub,
                                       assume_normalized=False)
            winners = np.argmax(scores, axis=1)
            votes[np.arange(len(unknowns)), winners] += 1
        shares = votes / float(self.iterations)
        matches: List[Match] = []
        candidate_scores: Dict[str, List[Tuple[str, float]]] = {}
        for row, unknown in enumerate(unknowns):
            best = int(np.argmax(shares[row]))
            share = float(shares[row, best])
            matches.append(Match(
                unknown_id=unknown.doc_id,
                candidate_id=self._known[best].doc_id,
                score=share,
                accepted=share >= self.min_votes,
                first_stage_score=share,
            ))
            nonzero = np.flatnonzero(shares[row])
            candidate_scores[unknown.doc_id] = [
                (self._known[int(i)].doc_id, float(shares[row, i]))
                for i in nonzero
            ]
        return LinkResult(matches=matches,
                          candidate_scores=candidate_scores)
