"""RAM-bounded batched attribution (Section IV-J).

With tens of thousands of aliases and ~10^5 features, the full
known-aliases matrix may not fit in memory.  The paper's remedy: split
the known aliases into batches of *B* (the largest candidate count the
hardware can handle), run 10-attribution inside each batch, pool the
per-batch survivors, and repeat until at most *B* candidates remain;
then run the usual final stage on that pool.

The paper validates the procedure with B = 100 on the baseline-
comparison dataset and reports precision 91% / recall 81% at the global
threshold — nearly identical to the unbatched run, which is the claim
the batch bench reproduces.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_K,
    FINAL_FEATURES,
    PAPER_THRESHOLD,
    SPACE_REDUCTION_FEATURES,
    FeatureBudget,
)
from repro.core.documents import AliasDocument
from repro.core.features import DocumentEncoder, FeatureWeights
from repro.core.kattribution import KAttributor
from repro.core.linker import AliasLinker, LinkResult, Match
from repro.errors import ConfigurationError
from repro.obs.logging import get_logger
from repro.obs.metrics import SIZE_BUCKETS, counter, histogram
from repro.obs.spans import span

log = get_logger(__name__)

#: Reduction rounds executed across all batched runs.
_ROUNDS = counter("batch_rounds_total")
#: Candidate-pool sizes entering each reduction round.
_POOL_SIZE = histogram("batch_pool_size", buckets=SIZE_BUCKETS)


class BatchedLinker:
    """The iterative batched variant of :class:`AliasLinker`.

    Parameters
    ----------
    batch_size:
        *B*: the largest number of known aliases processed at once.
    k:
        Candidate-set size inside each batch (paper: 10).
    threshold:
        Final acceptance threshold.
    """

    def __init__(self, batch_size: int = DEFAULT_BATCH_SIZE,
                 k: int = DEFAULT_K,
                 threshold: float = PAPER_THRESHOLD,
                 reduction_budget: FeatureBudget = SPACE_REDUCTION_FEATURES,
                 final_budget: FeatureBudget = FINAL_FEATURES,
                 weights: FeatureWeights | None = None,
                 use_activity: bool = True) -> None:
        if batch_size < 2:
            raise ConfigurationError(
                f"batch_size must be >= 2, got {batch_size}")
        if k < 1:
            raise ConfigurationError(
                f"k must be a positive integer, got {k}")
        if k >= batch_size:
            raise ConfigurationError(
                f"k ({k}) must be smaller than batch_size ({batch_size})")
        if not 0.0 <= threshold <= 1.0:
            raise ConfigurationError(
                f"threshold must be in [0, 1], got {threshold}")
        self.batch_size = batch_size
        self.k = k
        self.threshold = threshold
        self.reduction_budget = reduction_budget
        self.final_budget = final_budget
        self.weights = weights or FeatureWeights()
        self.use_activity = use_activity
        self._known: Optional[List[AliasDocument]] = None

    def fit(self, known: Sequence[AliasDocument]) -> "BatchedLinker":
        """Register the known aliases (no global index is built)."""
        if not known:
            raise ConfigurationError("known corpus must not be empty")
        self._known = list(known)
        return self

    def _reduce_pool(self, pool: Sequence[AliasDocument],
                     unknowns: Sequence[AliasDocument],
                     ) -> List[List[AliasDocument]]:
        """One round: batch the pool, keep the top-k of each batch.

        Returns the surviving candidate list for every unknown.
        """
        _ROUNDS.inc()
        _POOL_SIZE.observe(len(pool))
        with span("batch.round", pool_size=len(pool),
                  n_unknowns=len(unknowns)):
            survivors: List[List[AliasDocument]] = [[] for _ in unknowns]
            for start in range(0, len(pool), self.batch_size):
                batch = list(pool[start:start + self.batch_size])
                reducer = KAttributor(
                    k=min(self.k, len(batch)),
                    budget=self.reduction_budget,
                    weights=self.weights,
                    use_activity=self.use_activity,
                    encoder=DocumentEncoder(),
                )
                reducer.fit(batch)
                for i, candidates in enumerate(reducer.reduce(unknowns)):
                    survivors[i].extend(candidates.documents)
        return survivors

    def link(self, unknowns: Sequence[AliasDocument]) -> LinkResult:
        """Run the batched pipeline for a set of unknown aliases."""
        if self._known is None:
            raise ConfigurationError("BatchedLinker.fit has not been called")
        with span("batch.link", n_unknowns=len(unknowns),
                  n_known=len(self._known), batch_size=self.batch_size):
            # Round 1 is shared: every unknown faces the same batches.
            pools = self._reduce_pool(self._known, unknowns)
            matches: List[Match] = []
            candidate_scores: Dict[str, List[Tuple[str, float]]] = {}
            for unknown, pool in zip(unknowns, pools):
                # Subsequent rounds shrink each unknown's private pool.
                while len(pool) > self.batch_size:
                    pool = self._reduce_pool(pool, [unknown])[0]
                linker = AliasLinker(
                    k=min(self.k, len(pool)),
                    threshold=self.threshold,
                    reduction_budget=self.reduction_budget,
                    final_budget=self.final_budget,
                    weights=self.weights,
                    use_activity=self.use_activity,
                )
                linker.fit(pool)
                result = linker.link([unknown])
                matches.extend(result.matches)
                candidate_scores.update(result.candidate_scores)
        log.info("batch.link", n_unknowns=len(unknowns),
                 n_known=len(self._known), batch_size=self.batch_size,
                 accepted=sum(1 for m in matches if m.accepted))
        return LinkResult(matches=matches,
                          candidate_scores=candidate_scores)
