"""RAM-bounded batched attribution (Section IV-J).

With tens of thousands of aliases and ~10^5 features, the full
known-aliases matrix may not fit in memory.  The paper's remedy: split
the known aliases into batches of *B* (the largest candidate count the
hardware can handle), run 10-attribution inside each batch, pool the
per-batch survivors, and repeat until at most *B* candidates remain;
then run the usual final stage on that pool.

The paper validates the procedure with B = 100 on the baseline-
comparison dataset and reports precision 91% / recall 81% at the global
threshold — nearly identical to the unbatched run, which is the claim
the batch bench reproduces.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.config import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_K,
    FINAL_FEATURES,
    PAPER_THRESHOLD,
    SPACE_REDUCTION_FEATURES,
    FeatureBudget,
)
from repro.core.documents import AliasDocument
from repro.core.features import DocumentEncoder, FeatureWeights
from repro.core.kattribution import KAttributor
from repro.core.linker import (
    AliasLinker,
    LinkResult,
    Match,
    SkippedUnknown,
    _assemble,
    _placeholder_id,
    _quarantine,
    check_document,
)
from repro.errors import ConfigurationError, DatasetError, \
    DeadlineExceededError
from repro.obs.logging import get_logger
from repro.perf.cache import ProfileCache
from repro.perf.parallel import ParallelExecutor, resolve_workers
from repro.resilience.checkpoint import CheckpointStore, open_store
from repro.resilience.degrade import CircuitBreaker, DeadlineBudget
from repro.obs.metrics import SIZE_BUCKETS, counter, histogram
from repro.obs.spans import span

log = get_logger(__name__)

#: Reduction rounds executed across all batched runs.
_ROUNDS = counter("batch_rounds_total")
#: Candidate-pool sizes entering each reduction round.
_POOL_SIZE = histogram("batch_pool_size", buckets=SIZE_BUCKETS)


class BatchedLinker:
    """The iterative batched variant of :class:`AliasLinker`.

    Parameters
    ----------
    batch_size:
        *B*: the largest number of known aliases processed at once.
    k:
        Candidate-set size inside each batch (paper: 10).
    threshold:
        Final acceptance threshold.
    workers:
        Worker processes for the per-unknown pool-shrinking and final
        attribution (``None`` reads ``REPRO_WORKERS``; serial default).
    cache:
        Profile caching policy or a shared
        :class:`~repro.perf.cache.ProfileCache`; with the cache every
        batch of every round reuses the same raw profiles instead of
        re-tokenizing the pool per batch.
    block_size:
        Stage-1 scoring block size forwarded to every reducer.
    stage1 / shards / build_jobs:
        Stage-1 scoring strategy, shard count and index-build
        parallelism forwarded to every reducer and inner linker (see
        :class:`AliasLinker`).  Note that ``"invindex"`` rebuilds a
        small index per batch — at the paper's B=100 the build dwarfs
        the scan, so ``"blocked"`` usually wins here (and ``"auto"``
        measures each batch and picks dense); the knobs exist for
        symmetry and testing.
    breaker:
        Optional circuit breaker forwarded to the per-unknown final
        attribution (see :class:`AliasLinker`).
    """

    def __init__(self, batch_size: int = DEFAULT_BATCH_SIZE,
                 k: int = DEFAULT_K,
                 threshold: float = PAPER_THRESHOLD,
                 reduction_budget: FeatureBudget = SPACE_REDUCTION_FEATURES,
                 final_budget: FeatureBudget = FINAL_FEATURES,
                 weights: FeatureWeights | None = None,
                 use_activity: bool = True,
                 use_structure: bool = False,
                 workers: Optional[int] = None,
                 cache: Union[bool, ProfileCache] = True,
                 block_size: Optional[int] = None,
                 stage1: str = "blocked",
                 shards: Optional[int] = None,
                 build_jobs: Optional[int] = None,
                 breaker: Optional[CircuitBreaker] = None) -> None:
        if batch_size < 2:
            raise ConfigurationError(
                f"batch_size must be >= 2, got {batch_size}")
        if k < 1:
            raise ConfigurationError(
                f"k must be a positive integer, got {k}")
        if k >= batch_size:
            raise ConfigurationError(
                f"k ({k}) must be smaller than batch_size ({batch_size})")
        if not 0.0 <= threshold <= 1.0:
            raise ConfigurationError(
                f"threshold must be in [0, 1], got {threshold}")
        self.batch_size = batch_size
        self.k = k
        self.threshold = threshold
        self.reduction_budget = reduction_budget
        self.final_budget = final_budget
        self.weights = weights or FeatureWeights()
        self.use_activity = use_activity
        self.use_structure = use_structure
        self.workers = resolve_workers(workers)
        if isinstance(cache, ProfileCache):
            self.cache = cache
        else:
            self.cache = ProfileCache(enabled=bool(cache))
        self.block_size = block_size
        self.stage1 = stage1
        self.shards = shards
        self.build_jobs = build_jobs
        self.breaker = breaker
        self._known: Optional[List[AliasDocument]] = None

    def fit(self, known: Sequence[AliasDocument]) -> "BatchedLinker":
        """Register the known aliases (no global index is built)."""
        if not known:
            raise ConfigurationError("known corpus must not be empty")
        self._known = list(known)
        return self

    def _reduce_pool(self, pool: Sequence[AliasDocument],
                     unknowns: Sequence[AliasDocument],
                     ) -> List[List[AliasDocument]]:
        """One round: batch the pool, keep the top-k of each batch.

        Returns the surviving candidate list for every unknown.
        """
        _ROUNDS.inc()
        _POOL_SIZE.observe(len(pool))
        with span("batch.round", pool_size=len(pool),
                  n_unknowns=len(unknowns)):
            survivors: List[List[AliasDocument]] = [[] for _ in unknowns]
            for start in range(0, len(pool), self.batch_size):
                batch = list(pool[start:start + self.batch_size])
                reducer = KAttributor(
                    k=min(self.k, len(batch)),
                    budget=self.reduction_budget,
                    weights=self.weights,
                    use_activity=self.use_activity,
                    use_structure=self.use_structure,
                    # Shared cache: every batch of every round reuses
                    # the same raw profiles (one tokenization per doc).
                    encoder=DocumentEncoder(cache=self.cache),
                    block_size=self.block_size,
                    stage1=self.stage1,
                    shards=self.shards,
                    build_jobs=self.build_jobs,
                )
                reducer.fit(batch)
                for i, candidates in enumerate(reducer.reduce(unknowns)):
                    survivors[i].extend(candidates.documents)
        return survivors

    def _fingerprint(self) -> Dict[str, object]:
        """Run configuration pinned into checkpoint files."""
        return {"algo": "batched-linker",
                "n_known": len(self._known or ()),
                "k": self.k,
                "threshold": self.threshold,
                "batch_size": self.batch_size}

    def _shared_round(self, pending: Sequence[AliasDocument],
                      skipped: Dict[str, SkippedUnknown],
                      store: Optional[CheckpointStore],
                      ) -> List[Tuple[AliasDocument,
                                      List[AliasDocument]]]:
        """Round 1 with per-document error isolation.

        Normally one pass batches the full known set against every
        pending unknown at once; if that raises, each unknown is
        retried alone so only the bad ones are quarantined.
        """
        if not pending:
            return []
        try:
            pools = self._reduce_pool(self._known, pending)
            return list(zip(pending, pools))
        except Exception:
            pairs: List[Tuple[AliasDocument, List[AliasDocument]]] = []
            for unknown in pending:
                try:
                    pairs.append(
                        (unknown,
                         self._reduce_pool(self._known, [unknown])[0]))
                except Exception as exc:
                    _quarantine(unknown.doc_id,
                                f"search-space reduction failed: {exc}",
                                "reduce", skipped, store)
            return pairs

    def _attribute_task(self, pair: Tuple[AliasDocument,
                                          List[AliasDocument]],
                        budget: Optional[DeadlineBudget] = None,
                        ) -> Tuple[str, Any]:
        """Shrink one unknown's private pool and attribute it.

        A pure function of the fitted state (round 1 warmed the shared
        cache, so no new words are ever interned here), which makes it
        safe to fan across forked workers.  Returns ``("ok", (matches,
        scored))``, ``("skipped", entry)`` (the inner linker already
        counted the quarantine) or ``("error", reason)``.

        With a *budget*, pool shrinking stops once the deadline passes
        and the inner linker takes over the degraded accounting.
        """
        unknown, pool = pair
        try:
            # Subsequent rounds shrink each unknown's private pool.
            while len(pool) > self.batch_size \
                    and not (budget is not None and budget.expired()):
                pool = self._reduce_pool(pool, [unknown])[0]
            linker = AliasLinker(
                k=min(self.k, len(pool)),
                threshold=self.threshold,
                reduction_budget=self.reduction_budget,
                final_budget=self.final_budget,
                weights=self.weights,
                use_activity=self.use_activity,
                use_structure=self.use_structure,
                workers=1,  # never nest pools inside a worker
                cache=self.cache,
                block_size=self.block_size,
                stage1=self.stage1,
                shards=self.shards,
                build_jobs=self.build_jobs,
                breaker=self.breaker,
            )
            linker.fit(pool)
            result = linker.link([unknown], budget=budget)
        except DeadlineExceededError:
            # Strict budgets (degraded_ok=False) abort the run; they
            # must not be folded into a quarantine record.
            raise
        except Exception as exc:  # noqa: BLE001 - quarantined by caller
            return ("error", f"batched attribution failed: {exc}")
        if result.skipped:
            return ("skipped", result.skipped[0])
        scored = result.candidate_scores.get(unknown.doc_id, [])
        return ("ok", (list(result.matches), scored))

    def link(self, unknowns: Sequence[AliasDocument],
             checkpoint: Optional[object] = None,
             resume: bool = False,
             budget: Optional[DeadlineBudget] = None) -> LinkResult:
        """Run the batched pipeline for a set of unknown aliases.

        Malformed or failing unknowns land in ``LinkResult.skipped``
        instead of aborting the run.  With *checkpoint* set, each
        finished unknown is persisted atomically; *resume* skips the
        unknowns a previous (interrupted) run completed and yields a
        result identical to an uninterrupted run.

        With a *budget* (or a breaker), attribution runs serially so
        the deadline clock sees every call: unknowns whose turn comes
        after the deadline are quarantined with ``stage="deadline"``,
        and the inner per-unknown linker degrades its own stages (see
        :meth:`AliasLinker.link`).
        """
        if self._known is None:
            raise ConfigurationError("BatchedLinker.fit has not been called")
        unknowns = list(unknowns)
        store = open_store(checkpoint, fingerprint=self._fingerprint(),
                           resume=resume)
        skipped: Dict[str, SkippedUnknown] = {}
        results: Dict[str, Tuple[List[Match],
                                 List[Tuple[str, float]]]] = {}
        valid: List[AliasDocument] = []
        for position, unknown in enumerate(unknowns):
            try:
                check_document(unknown)
            except DatasetError as exc:
                _quarantine(_placeholder_id(unknown, position),
                            str(exc), "validate", skipped, store)
                continue
            valid.append(unknown)
        pending = [u for u in valid
                   if store is None or u.doc_id not in store]
        guarded = budget is not None or self.breaker is not None
        with span("batch.link", n_unknowns=len(unknowns),
                  n_known=len(self._known), batch_size=self.batch_size):
            if budget is not None and budget.expired():
                budget.check("reduce")
                for unknown in pending:
                    _quarantine(unknown.doc_id,
                                "deadline budget exhausted before "
                                "search-space reduction",
                                "deadline", skipped, store)
                pending = []
            # Round 1 is shared: every unknown faces the same batches.
            # It runs in the parent, which also warms the shared cache
            # with every document's profile before any fork.
            pairs = self._shared_round(pending, skipped, store)
            if guarded:
                # Serial on purpose: the budget clock and breaker state
                # live in this process and must see every call.
                with span("batch.restage", n_unknowns=len(pairs),
                          workers=1):
                    outcomes = []
                    for p in pairs:
                        if budget is not None and budget.expired():
                            # Not even worth fitting the inner linker:
                            # quarantine without burning post-deadline
                            # time.
                            budget.check("attribute")
                            outcomes.append(("deadline", None))
                            continue
                        outcomes.append(
                            self._attribute_task(p, budget=budget))
            else:
                executor = ParallelExecutor(self.workers)
                with span("batch.restage", n_unknowns=len(pairs),
                          workers=executor.workers):
                    outcomes = executor.map(self._attribute_task, pairs)
            # Checkpoint records happen in the parent, in round-1 order,
            # so any worker count writes the same file.
            for (unknown, _pool), (status, payload) in zip(pairs,
                                                           outcomes):
                if status == "error":
                    _quarantine(unknown.doc_id, payload, "attribute",
                                skipped, store)
                    continue
                if status == "deadline":
                    _quarantine(unknown.doc_id,
                                "deadline budget exhausted before "
                                "attribution", "deadline",
                                skipped, store)
                    continue
                if status == "skipped":
                    # The inner linker already counted and logged the
                    # quarantine; just adopt its verdict.
                    entry = payload
                    skipped[unknown.doc_id] = entry
                    if store is not None:
                        store.record(unknown.doc_id, [], [],
                                     skipped=entry.to_dict())
                    continue
                matches, scored = payload
                results[unknown.doc_id] = (matches, scored)
                if store is not None:
                    store.record(unknown.doc_id, matches, scored)
        final = _assemble(unknowns, results, skipped, store)
        log.info("batch.link", n_unknowns=len(unknowns),
                 n_known=len(self._known), batch_size=self.batch_size,
                 accepted=sum(1 for m in final.matches if m.accepted),
                 skipped=len(final.skipped),
                 degraded=len(final.degraded()))
        return final
