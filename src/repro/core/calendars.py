"""Weekend and holiday calendar arithmetic on epoch timestamps.

The daily activity profile (Section IV-B) is built "without considering
the weekend and the holidays, since in these days users typically change
their habits".  This module decides, for a Unix timestamp, whether it
falls on a weekend or on a holiday.

Holidays follow the paper's Western-forum population: the fixed-date
holidays observed across North America and Europe, Easter (computed with
the anonymous Gregorian algorithm) plus Good Friday and Easter Monday,
and US Thanksgiving (fourth Thursday of November) with the following
Friday.
"""

from __future__ import annotations

import datetime as _dt
from functools import lru_cache
from typing import FrozenSet, Tuple

from repro.forums.models import DAY

#: Fixed-date holidays as (month, day).
FIXED_HOLIDAYS: Tuple[Tuple[int, int], ...] = (
    (1, 1),    # New Year's Day
    (2, 14),   # Valentine's Day (posting habits shift measurably)
    (5, 1),    # May Day / Labour Day (Europe)
    (7, 4),    # Independence Day (US)
    (10, 31),  # Halloween
    (12, 24),  # Christmas Eve
    (12, 25),  # Christmas
    (12, 26),  # Boxing Day
    (12, 31),  # New Year's Eve
)


def easter_sunday(year: int) -> _dt.date:
    """Date of Easter Sunday for *year* (Gregorian, anonymous algorithm)."""
    a = year % 19
    b, c = divmod(year, 100)
    d, e = divmod(b, 4)
    f = (b + 8) // 25
    g = (b - f + 1) // 3
    h = (19 * a + b - d - g + 15) % 30
    i, k = divmod(c, 4)
    l = (32 + 2 * e + 2 * i - h - k) % 7
    m = (a + 11 * h + 22 * l) // 451
    month, day = divmod(h + l - 7 * m + 114, 31)
    return _dt.date(year, month, day + 1)


def thanksgiving(year: int) -> _dt.date:
    """US Thanksgiving: the fourth Thursday of November."""
    november_first = _dt.date(year, 11, 1)
    # weekday(): Monday=0 ... Thursday=3
    offset = (3 - november_first.weekday()) % 7
    return november_first + _dt.timedelta(days=offset + 21)


@lru_cache(maxsize=64)
def holidays_for_year(year: int) -> FrozenSet[_dt.date]:
    """Every observed holiday date in *year*."""
    dates = {_dt.date(year, month, day) for month, day in FIXED_HOLIDAYS}
    easter = easter_sunday(year)
    dates.add(easter)
    dates.add(easter - _dt.timedelta(days=2))   # Good Friday
    dates.add(easter + _dt.timedelta(days=1))   # Easter Monday
    tg = thanksgiving(year)
    dates.add(tg)
    dates.add(tg + _dt.timedelta(days=1))       # Black Friday
    return frozenset(dates)


def date_of_timestamp(timestamp: int) -> _dt.date:
    """UTC calendar date of a Unix *timestamp*."""
    return _dt.datetime.fromtimestamp(
        timestamp, tz=_dt.timezone.utc).date()


def is_weekend(timestamp: int) -> bool:
    """True when *timestamp* falls on Saturday or Sunday (UTC)."""
    # Jan 1 1970 was a Thursday (weekday 3, Monday = 0).
    weekday = ((timestamp // DAY) + 3) % 7
    return weekday >= 5


def is_holiday(timestamp: int) -> bool:
    """True when *timestamp* falls on an observed holiday (UTC)."""
    date = date_of_timestamp(timestamp)
    return date in holidays_for_year(date.year)


def is_excluded(timestamp: int) -> bool:
    """True when the activity profile must skip this timestamp.

    Combines the weekend and holiday rules of Section IV-B.
    """
    return is_weekend(timestamp) or is_holiday(timestamp)


def timestamp_at(year: int, month: int, day: int, hour: int = 0,
                 minute: int = 0, second: int = 0) -> int:
    """Unix timestamp of a UTC wall-clock moment (test/data helper)."""
    moment = _dt.datetime(year, month, day, hour, minute, second,
                          tzinfo=_dt.timezone.utc)
    return int(moment.timestamp())
