"""Alias documents: the unit the attribution pipeline scores.

An :class:`AliasDocument` condenses one alias's polished messages into
the representation every later stage consumes: the normalized text (for
character n-grams and frequency features), the lemmatized word stream
(for word n-grams), the posting timestamps, and the pre-computed daily
activity profile.

Document construction implements the refinement of Section IV-D: sort
messages by length and take the longest first until the word budget
(1,500 by default) is reached; discard aliases below the word floor or
the 30-usable-timestamp floor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import MIN_TIMESTAMPS, WORDS_PER_ALIAS
from repro.core.activity import try_activity_profile, usable_timestamps
from repro.forums.models import Forum, UserRecord
from repro.textproc.lemmatizer import lemmatize_word
from repro.textproc.tokenizer import WORD, iter_tokens


@dataclass(frozen=True)
class AliasDocument:
    """Everything the pipeline knows about one alias.

    Attributes
    ----------
    doc_id:
        Unique identity, ``<forum>/<alias>`` (alter egos add a suffix).
    alias / forum:
        Where the document came from.
    text:
        Normalized text: tokens joined by single spaces, word tokens
        lemmatized and casefolded.  Character n-grams and the
        punctuation/digit/special-character frequencies are computed on
        this string.
    words:
        The lemmatized word-token stream (word n-gram source).
    timestamps:
        Raw posting timestamps (epoch seconds, UTC).
    activity:
        The 24-bin daily activity profile, or ``None`` when the alias
        has fewer than the required usable timestamps.
    metadata:
        Ground-truth annotations carried through from the user record.
    structure:
        The reply-graph/thread-structure vector
        (:data:`repro.core.structure.STRUCTURE_DIM` entries), or
        ``None`` when no structural evidence was collected.  Optional:
        only read when the structure family is enabled.
    """

    doc_id: str
    alias: str
    forum: str
    text: str
    words: Tuple[str, ...]
    timestamps: Tuple[int, ...]
    activity: Optional[np.ndarray]
    metadata: Dict[str, object] = field(default_factory=dict)
    structure: Optional[np.ndarray] = None

    @property
    def n_words(self) -> int:
        return len(self.words)


def normalize_message(text: str, use_lemmatization: bool = True,
                      ) -> Tuple[str, List[str]]:
    """Normalize one message (Section IV-A pre-processing).

    Returns ``(normalized_text, word_tokens)``.  Word tokens are
    casefolded and lemmatized; punctuation, numbers and symbols are kept
    as standalone tokens in the normalized text so character n-grams and
    frequency features still see them.
    """
    pieces: List[str] = []
    words: List[str] = []
    for token in iter_tokens(text):
        if token.kind == WORD:
            word = token.text.lower()
            if use_lemmatization:
                word = lemmatize_word(word)
            pieces.append(word)
            words.append(word)
        else:
            pieces.append(token.text)
    return " ".join(pieces), words


def build_document(record: UserRecord,
                   words_per_alias: int = WORDS_PER_ALIAS,
                   min_timestamps: int = MIN_TIMESTAMPS,
                   use_lemmatization: bool = True,
                   require_activity: bool = True,
                   doc_id: Optional[str] = None,
                   utc_shift_hours: int = 0,
                   structure: Optional[np.ndarray] = None,
                   ) -> Optional[AliasDocument]:
    """Build the document for one alias, or ``None`` if it fails refinement.

    Messages are sorted longest-first (by word count) and concatenated
    until *words_per_alias* words are accumulated (Section IV-D).  An
    alias is rejected when it cannot fill the word budget, or — when
    *require_activity* is set — when it lacks ``min_timestamps`` usable
    timestamps.  *structure* optionally attaches the alias's
    reply-graph vector (see :mod:`repro.core.structure`).
    """
    normalized: List[Tuple[str, List[str]]] = [
        normalize_message(m.text, use_lemmatization)
        for m in record.messages
    ]
    order = sorted(range(len(normalized)),
                   key=lambda i: len(normalized[i][1]), reverse=True)
    text_parts: List[str] = []
    words: List[str] = []
    for i in order:
        if len(words) >= words_per_alias:
            break
        part_text, part_words = normalized[i]
        if not part_words:
            continue
        text_parts.append(part_text)
        words.extend(part_words)
    if len(words) < words_per_alias:
        return None
    timestamps = tuple(sorted(record.timestamps))
    activity = try_activity_profile(timestamps, min_timestamps,
                                    utc_shift_hours)
    if require_activity and activity is None:
        return None
    metadata = dict(record.metadata)
    disclosures: Dict[str, List[str]] = {}
    for message in record.messages:
        for kind, value in message.metadata.get("disclosures", {}).items():
            disclosures.setdefault(kind, []).append(value)
    if disclosures:
        metadata["disclosures"] = disclosures
    return AliasDocument(
        doc_id=doc_id or f"{record.forum}/{record.alias}",
        alias=record.alias,
        forum=record.forum,
        text=" ".join(text_parts),
        words=tuple(words),
        timestamps=timestamps,
        activity=activity,
        metadata=metadata,
        structure=structure,
    )


def refine_forum(forum: Forum,
                 words_per_alias: int = WORDS_PER_ALIAS,
                 min_timestamps: int = MIN_TIMESTAMPS,
                 use_lemmatization: bool = True,
                 require_activity: bool = True,
                 utc_shift_hours: int = 0,
                 structure_profiles: Optional[
                     Dict[str, np.ndarray]] = None,
                 ) -> List[AliasDocument]:
    """Refine a polished forum into alias documents (Section IV-D).

    Aliases failing the word or timestamp floors are dropped; the
    result is what Table IV calls the final dataset composition.
    *structure_profiles* optionally maps aliases to reply-graph
    vectors (computed on the **unpolished** forum, whose threads are
    intact — see :func:`repro.core.structure.structure_profiles`);
    matching documents get the vector attached.
    """
    documents: List[AliasDocument] = []
    for record in forum.users.values():
        structure = None
        if structure_profiles is not None:
            structure = structure_profiles.get(record.alias)
        document = build_document(
            record,
            words_per_alias=words_per_alias,
            min_timestamps=min_timestamps,
            use_lemmatization=use_lemmatization,
            require_activity=require_activity,
            utc_shift_hours=utc_shift_hours,
            structure=structure,
        )
        if document is not None:
            documents.append(document)
    return documents


def eligible_for_alter_ego(record: UserRecord,
                           min_words: int,
                           min_timestamps: int) -> bool:
    """Whether a user has enough data to be split into two aliases.

    Section IV-D requires more than 3,000 words and more than 60 usable
    timestamps so that both halves clear the single-alias floors.
    """
    if len(usable_timestamps(record.timestamps)) < min_timestamps:
        return False
    total = 0
    for message in record.messages:
        total += sum(1 for t in iter_tokens(message.text)
                     if t.kind == WORD)
        if total >= min_words:
            return True
    return total >= min_words


def documents_by_id(documents: Iterable[AliasDocument],
                    ) -> Dict[str, AliasDocument]:
    """Index documents by :attr:`AliasDocument.doc_id`."""
    index: Dict[str, AliasDocument] = {}
    for document in documents:
        if document.doc_id in index:
            raise ValueError(f"duplicate doc_id {document.doc_id!r}")
        index[document.doc_id] = document
    return index
