"""Feature extraction: Table II made executable.

For every alias document the pipeline builds one vector made of four
blocks:

* **word n-grams** (orders 1–3), top-N by corpus frequency, Tf-Idf
  weighted;
* **character n-grams** (orders 1–5), top-N by corpus frequency,
  Tf-Idf weighted;
* **frequency features**: the relative frequencies of 11 punctuation
  marks, 10 digits and 21 special characters;
* **daily activity profile**: the 24-bin histogram of Section IV-B
  (optional — ablated in Fig. 4).

Each block is L2-normalized and scaled by a block weight before
concatenation, so the cosine similarity of two full vectors is a convex
combination of the per-block cosine similarities.  The paper
concatenates the blocks without stating a scaling; explicit block
weights make the combination reproducible and sweepable (the Fig. 4
bench ablates the activity block by zeroing its weight).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.config import FeatureBudget
from repro.core import ngrams
from repro.core.documents import AliasDocument
from repro.core.structure import STRUCTURE_DIM
from repro.core.tfidf import TfidfModel, l2_normalize_rows
from repro.errors import ConfigurationError, NotFittedError
from repro.perf.cache import ProfileCache
from repro.obs.metrics import counter, gauge
from repro.obs.spans import span

#: Size of the most recently fitted text feature space (words + chars).
_VOCAB_SIZE = gauge("encoder_vocab_size")
#: Feature-space fits (each stage-2 rescore fits one).
_FITS = counter("feature_fits_total")
#: Documents vectorized by transform calls.
_TRANSFORMED = counter("documents_vectorized_total")

#: The 11 punctuation marks whose frequencies are features (Table II).
PUNCTUATION_CHARS: Tuple[str, ...] = (
    ".", ",", ":", ";", "!", "?", "'", '"', "(", ")", "-",
)

#: The 10 digit features.
DIGIT_CHARS: Tuple[str, ...] = tuple("0123456789")

#: The 21 special-character features (Table II counts 21).
SPECIAL_CHARS: Tuple[str, ...] = (
    "@", "#", "$", "%", "&", "*", "+", "/", "<", ">", "=",
    "[", "]", "{", "}", "\\", "^", "_", "|", "~", "`",
)

_FREQ_CHARS = PUNCTUATION_CHARS + DIGIT_CHARS + SPECIAL_CHARS
_FREQ_INDEX = {c: i for i, c in enumerate(_FREQ_CHARS)}


@dataclass(frozen=True)
class FeatureWeights:
    """Relative weight of each block in the concatenated vector.

    With every block L2-normalized, the cosine similarity of two full
    vectors equals ``sum(w_i^2 * cos_i) / sum(w_i^2)`` over the blocks
    present — so these weights directly control how much say each block
    has.  ``activity=0`` reproduces the paper's text-only runs.

    The defaults are calibrated on synthetic Reddit alter-egos: the
    activity weight is the largest value that still boosts accuracy at
    small text sizes (the paper's Fig. 4 effect) without drowning the
    text signal at 1,500 words.  The structure weight only matters when
    the extractor's ``use_structure`` flag is on (off by default), so
    the paper configuration never sees the block.
    """

    text: float = 1.0
    frequencies: float = 0.35
    activity: float = 0.20
    structure: float = 0.25

    def __post_init__(self) -> None:
        for name in ("text", "frequencies", "activity", "structure"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} weight must be >= 0")
        if self.text == 0 and self.frequencies == 0 and self.activity == 0:
            raise ConfigurationError("at least one block weight must be > 0")

    def without_activity(self) -> "FeatureWeights":
        """A copy with the activity block disabled (text-only runs)."""
        return FeatureWeights(text=self.text,
                              frequencies=self.frequencies,
                              activity=0.0,
                              structure=self.structure)


def frequency_features(text: str) -> np.ndarray:
    """The 42 punctuation/digit/special-character frequencies of *text*."""
    counts = np.zeros(len(_FREQ_CHARS), dtype=np.float64)
    total = len(text)
    if total == 0:
        return counts
    for char in text:
        idx = _FREQ_INDEX.get(char)
        if idx is not None:
            counts[idx] += 1.0
    return counts / total


class DocumentEncoder:
    """Per-document n-gram profiles over a shared word vocab.

    Both pipeline stages re-extract features on different document
    subsets; the encoder guarantees tokenized text is only encoded once
    per document.  Since the perf subsystem landed the encoder is a
    thin facade over :class:`repro.perf.cache.ProfileCache`, which owns
    the memoization (and its hit/miss/bytes telemetry); pass a shared
    cache to make several extractors — or several linkers — reuse one
    set of profiles.
    """

    def __init__(self, cache: "ProfileCache | None" = None) -> None:
        self.cache = cache if cache is not None else ProfileCache()

    @property
    def vocab(self) -> ngrams.WordVocab:
        """The shared word-interning table (lives on the cache)."""
        return self.cache.vocab

    def word_profile(self, document: AliasDocument) -> ngrams.CodeCounts:
        """Word 1–3-gram counts of *document* (cached)."""
        return self.cache.word_profile(document)

    def char_profile(self, document: AliasDocument) -> ngrams.CodeCounts:
        """Character 1–5-gram counts of *document* (cached)."""
        return self.cache.char_profile(document)

    def freq_features(self, document: AliasDocument) -> np.ndarray:
        """Frequency features of *document* (cached)."""
        return self.cache.freq_features(document)

    def drop(self, doc_ids: Iterable[str]) -> None:
        """Forget cached profiles (memory control for huge corpora)."""
        self.cache.drop(doc_ids)


def _counts_matrix(profiles: Sequence[ngrams.CodeCounts],
                   selected: np.ndarray) -> sparse.csr_matrix:
    """Stack projected per-document counts into a CSR matrix."""
    indptr = [0]
    indices: List[np.ndarray] = []
    data: List[np.ndarray] = []
    for profile in profiles:
        cols, counts = ngrams.project_counts(profile, selected)
        indices.append(cols)
        data.append(counts.astype(np.float64))
        indptr.append(indptr[-1] + len(cols))
    if indices:
        indices_arr = np.concatenate(indices)
        data_arr = np.concatenate(data)
    else:
        indices_arr = np.empty(0, dtype=np.int64)
        data_arr = np.empty(0, dtype=np.float64)
    return sparse.csr_matrix(
        (data_arr, indices_arr, np.asarray(indptr, dtype=np.int64)),
        shape=(len(profiles), len(selected)))


class FeatureExtractor:
    """Fit a feature space on a corpus, then vectorize documents.

    Parameters
    ----------
    budget:
        How many word/char n-grams to keep (Table II column).
    weights:
        Block weights (see :class:`FeatureWeights`).
    use_activity:
        Append the daily activity profile block.  Documents without a
        profile get a zero block (their activity contributes nothing to
        any cosine).
    use_structure:
        Append the reply-graph/thread-structure block
        (:mod:`repro.core.structure`).  Off by default: the default
        vector is bit-identical to the paper configuration.  Documents
        without a structure vector get a zero block.
    encoder:
        Shared :class:`DocumentEncoder`; a private one is created when
        omitted.
    """

    def __init__(self, budget: FeatureBudget,
                 weights: FeatureWeights | None = None,
                 use_activity: bool = True,
                 use_structure: bool = False,
                 encoder: DocumentEncoder | None = None) -> None:
        self.budget = budget
        self.weights = weights or FeatureWeights()
        self.use_activity = use_activity
        self.use_structure = use_structure
        self.encoder = encoder or DocumentEncoder()
        self._selected_words: Optional[np.ndarray] = None
        self._selected_chars: Optional[np.ndarray] = None
        self._tfidf: Optional[TfidfModel] = None

    @property
    def is_fitted(self) -> bool:
        return self._tfidf is not None

    def fit(self, documents: Sequence[AliasDocument]) -> "FeatureExtractor":
        """Select the top-N n-grams and learn Tf-Idf weights.

        Following Section IV-I: "we extract the text features from the
        documents associated with the set of known users Z, we rank the
        n-grams by frequency, and then we select the top N".
        """
        if not documents:
            raise ConfigurationError("cannot fit on an empty corpus")
        with span("features.fit", n_documents=len(documents)):
            word_profiles = [self.encoder.word_profile(d)
                             for d in documents]
            char_profiles = [self.encoder.char_profile(d)
                             for d in documents]
            word_corpus = ngrams.merge_counts(word_profiles)
            char_corpus = ngrams.merge_counts(char_profiles)
            self._selected_words = ngrams.select_top(
                word_corpus, self.budget.word_ngrams)
            self._selected_chars = ngrams.select_top(
                char_corpus, self.budget.char_ngrams)
            counts = self._text_counts(documents)
            self._tfidf = TfidfModel().fit(counts)
        _FITS.inc()
        _VOCAB_SIZE.set(self._selected_words.size
                        + self._selected_chars.size)
        return self

    def _text_counts(self, documents: Sequence[AliasDocument],
                     ) -> sparse.csr_matrix:
        word_profiles = [self.encoder.word_profile(d) for d in documents]
        char_profiles = [self.encoder.char_profile(d) for d in documents]
        word_matrix = _counts_matrix(word_profiles, self._selected_words)
        char_matrix = _counts_matrix(char_profiles, self._selected_chars)
        return sparse.csr_matrix(
            sparse.hstack([word_matrix, char_matrix], format="csr"))

    def transform(self, documents: Sequence[AliasDocument],
                  ) -> sparse.csr_matrix:
        """Vectorize documents into the fitted feature space."""
        if not self.is_fitted:
            raise NotFittedError("FeatureExtractor.fit has not been called")
        _TRANSFORMED.inc(len(documents))
        with span("features.transform", n_documents=len(documents)):
            return self._transform_inner(documents)

    def _transform_inner(self, documents: Sequence[AliasDocument],
                         ) -> sparse.csr_matrix:
        text = self._tfidf.transform(self._text_counts(documents))
        blocks: List[sparse.spmatrix] = [text * self.weights.text]
        cache = self.encoder.cache
        if self.weights.frequencies > 0:
            freq = np.vstack([self.encoder.freq_features(d)
                              for d in documents])
            freq = l2_normalize_rows(sparse.csr_matrix(freq), copy=False)
            blocks.append(freq * self.weights.frequencies)
        if self.use_activity and self.weights.activity > 0:
            activity = np.vstack([
                cache.activity_row(d, self.budget.activity_bins)
                for d in documents
            ])
            activity = l2_normalize_rows(sparse.csr_matrix(activity),
                                         copy=False)
            blocks.append(activity * self.weights.activity)
        if self.use_structure and self.weights.structure > 0:
            structure = np.vstack([cache.structure_row(d)
                                   for d in documents])
            structure = l2_normalize_rows(sparse.csr_matrix(structure),
                                          copy=False)
            blocks.append(structure * self.weights.structure)
        # hstack builds fresh arrays; normalize them in place.
        stacked = sparse.csr_matrix(sparse.hstack(blocks, format="csr"))
        return l2_normalize_rows(stacked, copy=False)

    def fit_transform(self, documents: Sequence[AliasDocument],
                      ) -> sparse.csr_matrix:
        """Convenience: :meth:`fit` then :meth:`transform`."""
        return self.fit(documents).transform(documents)

    def vocabulary_sizes(self) -> Dict[str, int]:
        """Actual number of selected features per text family."""
        if self._selected_words is None or self._selected_chars is None:
            raise NotFittedError("FeatureExtractor.fit has not been called")
        return {
            "word_ngrams": int(self._selected_words.size),
            "char_ngrams": int(self._selected_chars.size),
            "punctuation": len(PUNCTUATION_CHARS),
            "digits": len(DIGIT_CHARS),
            "special_chars": len(SPECIAL_CHARS),
            "activity_bins": self.budget.activity_bins
            if self.use_activity else 0,
            "structure": STRUCTURE_DIM if self.use_structure else 0,
        }
