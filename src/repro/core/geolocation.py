"""Time-zone geolocation from daily activity profiles.

The daily-activity methodology the paper builds on comes from its
reference [14] — La Morgia et al., "Time-zone geolocation of crowds in
the dark web" (ICDCS 2018): a user's 24-bin posting histogram is, up to
a circular shift, the human diurnal rhythm, and the shift *is* the
user's UTC offset.

:class:`TimezoneEstimator` implements that attack as a companion to the
linker: given an alias's UTC activity profile, slide a canonical
diurnal template around the clock and report the best-aligned offset.
On the synthetic worlds the estimate can be checked against each
persona's ground-truth ``timezone_offset``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.activity import N_BINS
from repro.errors import ConfigurationError

#: A canonical human diurnal posting rhythm in *local* hours: quiet
#: 02:00–07:00, ramping through the morning, sustained afternoon and
#: evening activity peaking around 21:00.  Shape follows the diurnal
#: curves reported for forum populations (ICDCS 2018, fig. 2); the
#: estimator only uses it up to circular shift and scale.
DIURNAL_TEMPLATE = np.array([
    0.030, 0.018, 0.010, 0.007, 0.006, 0.007,   # 00-05
    0.012, 0.022, 0.035, 0.045, 0.050, 0.052,   # 06-11
    0.055, 0.055, 0.052, 0.050, 0.052, 0.055,   # 12-17
    0.060, 0.068, 0.075, 0.078, 0.070, 0.050,   # 18-23
])
DIURNAL_TEMPLATE = DIURNAL_TEMPLATE / DIURNAL_TEMPLATE.sum()


def _circular_correlation(profile: np.ndarray,
                          template: np.ndarray) -> np.ndarray:
    """Pearson correlation of *profile* with every circular shift of
    *template*; index s holds the correlation with the template
    shifted s hours later."""
    p = profile - profile.mean()
    scores = np.empty(N_BINS)
    for shift in range(N_BINS):
        t = np.roll(template, shift)
        t = t - t.mean()
        denom = np.linalg.norm(p) * np.linalg.norm(t)
        scores[shift] = float(p @ t / denom) if denom else 0.0
    return scores


@dataclass(frozen=True)
class TimezoneEstimate:
    """Result of a geolocation query.

    Attributes
    ----------
    utc_offset:
        Estimated offset in hours, normalized to (-12, +12].
    correlation:
        Alignment quality at the best shift (Pearson, in [-1, 1]).
    ranking:
        Every candidate offset with its correlation, best first.
    """

    utc_offset: int
    correlation: float
    ranking: Tuple[Tuple[int, float], ...]

    def top(self, n: int = 3) -> List[int]:
        """The *n* most plausible offsets."""
        return [offset for offset, _ in self.ranking[:n]]


def _normalize_offset(shift: int) -> int:
    """Map a 0..23 shift to a conventional (-12, +12] UTC offset."""
    return shift if shift <= 12 else shift - 24


class TimezoneEstimator:
    """Estimate an alias's home UTC offset from its activity profile.

    Parameters
    ----------
    template:
        The local-time diurnal rhythm to align against.  The default is
        a canonical forum-population curve; investigations with a known
        population (e.g. a single country's users) can supply their own.
    """

    def __init__(self,
                 template: Optional[Sequence[float]] = None) -> None:
        t = np.asarray(template if template is not None
                       else DIURNAL_TEMPLATE, dtype=np.float64)
        if t.shape != (N_BINS,):
            raise ConfigurationError(
                f"template must have {N_BINS} bins, got {t.shape}")
        if t.sum() <= 0 or (t < 0).any():
            raise ConfigurationError(
                "template must be a non-negative distribution")
        self.template = t / t.sum()

    def estimate(self, profile: Sequence[float]) -> TimezoneEstimate:
        """Estimate the UTC offset behind a 24-bin UTC profile.

        A profile recorded in UTC by a user living at UTC+h is the
        local template rolled *earlier* by h hours (a 21:00 local habit
        surfaces at 21 - h UTC), so when the best-matching template
        roll is s hours *later*, the offset is -s (mod 24).
        """
        p = np.asarray(profile, dtype=np.float64)
        if p.shape != (N_BINS,):
            raise ConfigurationError(
                f"profile must have {N_BINS} bins, got {p.shape}")
        scores = _circular_correlation(p, self.template)
        order = np.argsort(-scores, kind="stable")
        ranking = tuple(
            (_normalize_offset((N_BINS - int(s)) % N_BINS),
             float(scores[int(s)]))
            for s in order
        )
        best_shift = int(order[0])
        return TimezoneEstimate(
            utc_offset=_normalize_offset((N_BINS - best_shift) % N_BINS),
            correlation=float(scores[best_shift]),
            ranking=ranking,
        )

    def estimate_many(self, profiles: Iterable[Sequence[float]],
                      ) -> List[TimezoneEstimate]:
        """Estimate a batch of profiles."""
        return [self.estimate(p) for p in profiles]


def crowd_offset(estimates: Sequence[TimezoneEstimate],
                 ) -> Optional[int]:
    """The modal offset of a crowd (the ICDCS 2018 use case).

    Individual profiles are noisy; a forum's *population* offset
    distribution is much more stable.  Returns the most common
    estimated offset, or ``None`` for an empty input.
    """
    if not estimates:
        return None
    values = [e.utc_offset for e in estimates]
    counts: dict = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    return max(sorted(counts), key=counts.get)
