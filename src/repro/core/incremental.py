"""Incremental linking: grow the known-alias index without refitting.

A deployment that monitors forums does not re-scrape the world every
night; new aliases trickle in.  Refitting the full pipeline per new
alias is wasteful — feature *selection* barely moves when one document
joins a corpus of hundreds — so :class:`IncrementalLinker` freezes the
selected n-gram space at the first fit and only:

* appends the new documents' rows to the count matrix, and
* refreshes the Idf (document frequencies are cheap to update).

This is an approximation: genuinely novel n-grams introduced by new
aliases are invisible until :meth:`refit` is called.  The approximation
error is measurable (see ``tests/core/test_incremental.py``) and a
``staleness`` counter tells callers when a refit is due.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy import sparse

from repro.config import (
    DEFAULT_K,
    FINAL_FEATURES,
    PAPER_THRESHOLD,
    SPACE_REDUCTION_FEATURES,
    FeatureBudget,
)
from repro.core.documents import AliasDocument
from repro.core.features import DocumentEncoder, FeatureWeights
from repro.core.linker import AliasLinker, LinkResult
from repro.errors import ConfigurationError, NotFittedError
from repro.obs.metrics import counter
from repro.perf.cache import ProfileCache
from repro.obs.spans import span
from repro.resilience.degrade import CircuitBreaker, DeadlineBudget

#: Known aliases appended through the incremental path.
_ADDED = counter("incremental_added_total")
#: Full refits triggered on incremental linkers.
_REFITS = counter("incremental_refits_total")


class IncrementalLinker:
    """An :class:`~repro.core.linker.AliasLinker` that accepts new
    known aliases cheaply.

    Parameters
    ----------
    refit_after:
        After this many incrementally added documents, ``stale``
        becomes ``True`` to signal that a full :meth:`refit` is
        advisable (the frozen feature space is drifting away from the
        corpus).
    workers / cache / block_size / stage1 / shards:
        Forwarded to every underlying
        :class:`~repro.core.linker.AliasLinker` (see there); a refit
        builds a fresh cache unless a shared
        :class:`~repro.perf.cache.ProfileCache` instance is supplied.
        With ``stage1="invindex"`` the sharded inverted index is
        rebuilt after every :meth:`add_known` so queries always see
        the grown corpus.
    """

    def __init__(self, k: int = DEFAULT_K,
                 threshold: float = PAPER_THRESHOLD,
                 reduction_budget: FeatureBudget = SPACE_REDUCTION_FEATURES,
                 final_budget: FeatureBudget = FINAL_FEATURES,
                 weights: FeatureWeights | None = None,
                 use_activity: bool = True,
                 use_structure: bool = False,
                 refit_after: int = 100,
                 workers: Optional[int] = None,
                 cache: Union[bool, ProfileCache] = True,
                 block_size: Optional[int] = None,
                 stage1: str = "blocked",
                 shards: Optional[int] = None,
                 breaker: Optional[CircuitBreaker] = None) -> None:
        if refit_after < 1:
            raise ConfigurationError(
                f"refit_after must be >= 1, got {refit_after}")
        if k < 1:
            raise ConfigurationError(
                f"k must be a positive integer, got {k}")
        if not 0.0 <= threshold <= 1.0:
            raise ConfigurationError(
                f"threshold must be in [0, 1], got {threshold}")
        self._make_linker = lambda: AliasLinker(
            k=k, threshold=threshold,
            reduction_budget=reduction_budget,
            final_budget=final_budget,
            weights=weights, use_activity=use_activity,
            use_structure=use_structure,
            workers=workers, cache=cache, block_size=block_size,
            stage1=stage1, shards=shards,
            breaker=breaker)
        self.refit_after = refit_after
        self._linker: Optional[AliasLinker] = None
        self._known: List[AliasDocument] = []
        self._added_since_fit = 0

    # -- lifecycle -----------------------------------------------------------

    @property
    def n_known(self) -> int:
        return len(self._known)

    @property
    def added_since_fit(self) -> int:
        """Documents appended since the last full (re)fit."""
        return self._added_since_fit

    @property
    def stale(self) -> bool:
        """Whether enough documents accumulated to warrant a refit."""
        return self._added_since_fit >= self.refit_after

    def fit(self, known: Sequence[AliasDocument]) -> "IncrementalLinker":
        """Full fit on the initial corpus."""
        if not known:
            raise ConfigurationError("known corpus must not be empty")
        self._known = list(known)
        self._linker = self._make_linker()
        self._linker.fit(self._known)
        self._added_since_fit = 0
        return self

    def refit(self) -> "IncrementalLinker":
        """Rebuild the feature space over everything accumulated."""
        if not self._known:
            raise NotFittedError("IncrementalLinker.fit not called")
        with span("incremental.refit", n_known=len(self._known)):
            self._linker = self._make_linker()
            self._linker.fit(self._known)
        _REFITS.inc()
        self._added_since_fit = 0
        return self

    # -- incremental growth ---------------------------------------------------

    def add_known(self, documents: Sequence[AliasDocument]) -> None:
        """Append new known aliases inside the frozen feature space.

        The new rows are vectorized with the *existing* selection, the
        Idf is refreshed over the grown corpus, and the reduction index
        is extended — no re-selection happens until :meth:`refit`.
        """
        if self._linker is None:
            raise NotFittedError("IncrementalLinker.fit not called")
        documents = list(documents)
        if not documents:
            return
        existing = {d.doc_id for d in self._known}
        for document in documents:
            if document.doc_id in existing:
                raise ConfigurationError(
                    f"duplicate known alias {document.doc_id!r}")
            existing.add(document.doc_id)
        self._known.extend(documents)
        self._added_since_fit += len(documents)
        _ADDED.inc(len(documents))
        with span("incremental.add_known", n_added=len(documents),
                  n_known=len(self._known)):
            reducer = self._linker.reducer
            # extend the fitted reducer in place: recompute counts for
            # the grown corpus in the frozen space, refresh the Idf
            extractor = reducer.extractor
            counts = extractor._text_counts(self._known)
            from repro.core.tfidf import TfidfModel

            extractor._tfidf = TfidfModel().fit(counts)
            reducer._known = self._known
            reducer._known_matrix = extractor.transform(self._known)
            if reducer.stage1 == "invindex":
                # The inverted index snapshots the known matrix; a
                # grown matrix means new postings and new term bounds.
                reducer.rebuild_index()
            self._linker._known = self._known
            # Invalidate any persistent restage pool: forked workers
            # hold the pre-growth memory image.
            self._linker._state_version += 1

    # -- querying --------------------------------------------------------------

    def link(self, unknowns: Sequence[AliasDocument],
             checkpoint: Optional[object] = None,
             resume: bool = False,
             budget: Optional[DeadlineBudget] = None) -> LinkResult:
        """Link unknowns against everything known so far.

        *checkpoint* / *resume* / *budget* and the quarantine semantics
        are those of :meth:`repro.core.linker.AliasLinker.link`.
        """
        if self._linker is None:
            raise NotFittedError("IncrementalLinker.fit not called")
        return self._linker.link(list(unknowns), checkpoint=checkpoint,
                                 resume=resume, budget=budget)
