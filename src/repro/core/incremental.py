"""Incremental linking: grow the known-alias index without refitting.

A deployment that monitors forums does not re-scrape the world every
night; new aliases trickle in.  Refitting the full pipeline per new
alias is wasteful — feature *selection* barely moves when one document
joins a corpus of hundreds — so :class:`IncrementalLinker` freezes the
selected n-gram space at the first fit and only:

* vectorizes the new documents inside the frozen space (frozen
  selection *and* frozen Idf) and appends their rows to the known
  matrix, and
* *extends* the stage-1 inverted index with the new rows (a delta
  segment on one shard — see :mod:`repro.perf.invindex`) instead of
  rebuilding it.

Freezing the Idf alongside the selection is what makes the append
cheap: every existing row keeps its exact feature values, so an
:meth:`add_known` is O(added) transform work plus an O(added) index
append, never an O(corpus) re-transform or rebuild.  This is an
approximation twice over: genuinely novel n-grams introduced by new
aliases are invisible, and document frequencies lag the grown corpus,
until :meth:`refit` is called.  The approximation error is measurable
(see ``tests/core/test_incremental.py``) and a ``staleness`` counter
tells callers when a refit is due.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy import sparse

from repro.config import (
    DEFAULT_K,
    FINAL_FEATURES,
    PAPER_THRESHOLD,
    SPACE_REDUCTION_FEATURES,
    FeatureBudget,
)
from repro.core.documents import AliasDocument
from repro.core.features import DocumentEncoder, FeatureWeights
from repro.core.linker import AliasLinker, LinkResult
from repro.errors import ConfigurationError, NotFittedError
from repro.obs.metrics import counter
from repro.perf.cache import ProfileCache
from repro.obs.spans import span
from repro.resilience.degrade import CircuitBreaker, DeadlineBudget

#: Known aliases appended through the incremental path.
_ADDED = counter("incremental_added_total")
#: Full refits triggered on incremental linkers.
_REFITS = counter("incremental_refits_total")


class IncrementalLinker:
    """An :class:`~repro.core.linker.AliasLinker` that accepts new
    known aliases cheaply.

    Parameters
    ----------
    refit_after:
        After this many incrementally added documents, ``stale``
        becomes ``True`` to signal that a full :meth:`refit` is
        advisable (the frozen feature space is drifting away from the
        corpus).
    workers / cache / block_size / stage1 / shards:
        Forwarded to every underlying
        :class:`~repro.core.linker.AliasLinker` (see there); a refit
        builds a fresh cache unless a shared
        :class:`~repro.perf.cache.ProfileCache` instance is supplied.
        With ``stage1="invindex"`` (or ``"auto"`` resolving to it) the
        sharded inverted index is *extended* by every
        :meth:`add_known` — new rows land in the last shard's delta
        segment, compaction amortizes — so queries always see the
        grown corpus without paying a rebuild.
    """

    def __init__(self, k: int = DEFAULT_K,
                 threshold: float = PAPER_THRESHOLD,
                 reduction_budget: FeatureBudget = SPACE_REDUCTION_FEATURES,
                 final_budget: FeatureBudget = FINAL_FEATURES,
                 weights: FeatureWeights | None = None,
                 use_activity: bool = True,
                 use_structure: bool = False,
                 refit_after: int = 100,
                 workers: Optional[int] = None,
                 cache: Union[bool, ProfileCache] = True,
                 block_size: Optional[int] = None,
                 stage1: str = "blocked",
                 shards: Optional[int] = None,
                 build_jobs: Optional[int] = None,
                 breaker: Optional[CircuitBreaker] = None) -> None:
        if refit_after < 1:
            raise ConfigurationError(
                f"refit_after must be >= 1, got {refit_after}")
        if k < 1:
            raise ConfigurationError(
                f"k must be a positive integer, got {k}")
        if not 0.0 <= threshold <= 1.0:
            raise ConfigurationError(
                f"threshold must be in [0, 1], got {threshold}")
        self._make_linker = lambda: AliasLinker(
            k=k, threshold=threshold,
            reduction_budget=reduction_budget,
            final_budget=final_budget,
            weights=weights, use_activity=use_activity,
            use_structure=use_structure,
            workers=workers, cache=cache, block_size=block_size,
            stage1=stage1, shards=shards, build_jobs=build_jobs,
            breaker=breaker)
        self.refit_after = refit_after
        self._linker: Optional[AliasLinker] = None
        self._known: List[AliasDocument] = []
        self._added_since_fit = 0

    # -- lifecycle -----------------------------------------------------------

    @property
    def n_known(self) -> int:
        return len(self._known)

    @property
    def added_since_fit(self) -> int:
        """Documents appended since the last full (re)fit."""
        return self._added_since_fit

    @property
    def stale(self) -> bool:
        """Whether enough documents accumulated to warrant a refit."""
        return self._added_since_fit >= self.refit_after

    def fit(self, known: Sequence[AliasDocument]) -> "IncrementalLinker":
        """Full fit on the initial corpus."""
        if not known:
            raise ConfigurationError("known corpus must not be empty")
        self._known = list(known)
        self._linker = self._make_linker()
        self._linker.fit(self._known)
        self._added_since_fit = 0
        return self

    def refit(self) -> "IncrementalLinker":
        """Rebuild the feature space over everything accumulated."""
        if not self._known:
            raise NotFittedError("IncrementalLinker.fit not called")
        with span("incremental.refit", n_known=len(self._known)):
            self._linker = self._make_linker()
            self._linker.fit(self._known)
        _REFITS.inc()
        self._added_since_fit = 0
        return self

    # -- incremental growth ---------------------------------------------------

    def add_known(self, documents: Sequence[AliasDocument]) -> None:
        """Append new known aliases inside the frozen feature space.

        The new rows are vectorized with the *existing* selection and
        the *existing* Idf, so every prior row of the known matrix is
        bit-preserved and the work is O(added): transform the new
        documents, ``vstack`` their rows, and (when the inverted index
        is active) append them to the last shard's delta segment.  No
        re-selection or Idf refresh happens until :meth:`refit`.
        """
        if self._linker is None:
            raise NotFittedError("IncrementalLinker.fit not called")
        documents = list(documents)
        if not documents:
            return
        existing = {d.doc_id for d in self._known}
        for document in documents:
            if document.doc_id in existing:
                raise ConfigurationError(
                    f"duplicate known alias {document.doc_id!r}")
            existing.add(document.doc_id)
        self._known.extend(documents)
        self._added_since_fit += len(documents)
        _ADDED.inc(len(documents))
        with span("incremental.add_known", n_added=len(documents),
                  n_known=len(self._known)):
            reducer = self._linker.reducer
            # Transform is row-independent, so stacking the new rows
            # under the fitted matrix equals transforming the grown
            # corpus in one shot — with the old rows untouched, which
            # is exactly what the index delta segment requires.
            new_rows = reducer.extractor.transform(documents)
            grown = sparse.vstack(
                [reducer._known_matrix, new_rows], format="csr")
            reducer._known = self._known
            reducer._known_matrix = grown
            if reducer.active_stage1 == "invindex":
                if reducer._index is None:
                    reducer.rebuild_index()
                else:
                    # Append to the last shard's delta segment;
                    # amortized compaction folds it back in when it
                    # outgrows delta_ratio of the main segment.
                    reducer._index.extend(grown)
            self._linker._known = self._known
            # Invalidate any persistent restage pool: forked workers
            # hold the pre-growth memory image.
            self._linker._state_version += 1

    # -- querying --------------------------------------------------------------

    def link(self, unknowns: Sequence[AliasDocument],
             checkpoint: Optional[object] = None,
             resume: bool = False,
             budget: Optional[DeadlineBudget] = None) -> LinkResult:
        """Link unknowns against everything known so far.

        *checkpoint* / *resume* / *budget* and the quarantine semantics
        are those of :meth:`repro.core.linker.AliasLinker.link`.
        """
        if self._linker is None:
            raise NotFittedError("IncrementalLinker.fit not called")
        return self._linker.link(list(unknowns), checkpoint=checkpoint,
                                 resume=resume, budget=budget)
