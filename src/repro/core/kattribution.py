"""k-attribution: search-space reduction (Section IV-C).

Authorship attribution against ten thousand candidates is both too slow
and too fragile for one-vs-all classifiers, so the paper relaxes the
problem: instead of naming *the* author, return the k most likely
authors by cosine similarity (k = 10 in the paper), and let the precise
second stage decide among them.

:class:`KAttributor` fits the reduction-stage feature space (Table II,
middle column) on the known aliases and ranks them for each unknown
alias.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.config import DEFAULT_K, SPACE_REDUCTION_FEATURES, FeatureBudget
from repro.core.documents import AliasDocument
from repro.core.features import DocumentEncoder, FeatureExtractor, \
    FeatureWeights
from repro.core.similarity import cosine_similarity, rank_of, top_k
from repro.errors import ConfigurationError, NotFittedError
from repro.perf.blocked import blocked_top_k, resolve_block_size
from repro.perf.invindex import ShardedIndex, choose_stage1, \
    resolve_shards
from repro.obs.metrics import counter
from repro.obs.spans import span

#: The stage-1 scoring strategies :meth:`KAttributor.reduce` can run.
#: The first three produce bit-identical candidate sets and differ
#: only in memory shape and work visited; ``"auto"`` measures the
#: fitted corpus and picks one of them (see ``docs/performance.md``).
STAGE1_CHOICES = ("dense", "blocked", "invindex", "auto")

#: Reduction queries answered (one per unknown alias per reduce call).
_QUERIES = counter("kattribution_queries_total")
#: Known aliases discarded by the reduction stage across all queries.
_PRUNED = counter("candidates_pruned_total")
#: Same registry objects as ``repro.perf.invindex`` increments — read
#: around each invindex reduce to spot the pathological corpus where
#: the staged scan visits *more* postings than dense would.
_IVX_VISITED = counter("invindex_postings_visited_total")
_IVX_DENSE = counter("invindex_postings_dense_total")
_IVX_FALLBACK = counter("invindex_fallback_total")


@dataclass(frozen=True)
class Candidates:
    """Reduction output for one unknown alias.

    Attributes
    ----------
    unknown:
        The unknown document.
    documents:
        The k candidate documents, best first.
    scores:
        First-stage cosine similarities aligned with ``documents``.
    """

    unknown: AliasDocument
    documents: Tuple[AliasDocument, ...]
    scores: Tuple[float, ...]

    def contains(self, doc_id: str) -> bool:
        """Whether the candidate set captured *doc_id*."""
        return any(d.doc_id == doc_id for d in self.documents)


class KAttributor:
    """Search-space reduction by cosine ranking.

    Parameters
    ----------
    k:
        Candidate-set size (paper: 10).
    budget:
        Feature budget for this stage (paper: Table II, middle).
    weights:
        Block weights; pass ``weights.without_activity()`` to reproduce
        the text-only rows of Table III / Fig. 4.
    use_activity:
        Append the daily-activity block.
    use_structure:
        Append the reply-graph/thread-structure block (off by
        default; see :mod:`repro.core.structure`).
    encoder:
        Optional shared :class:`DocumentEncoder`.
    block_size:
        Known-corpus rows scored per block during :meth:`reduce`
        (memory bound for the stage-1 similarity matrix); ``None``
        resolves through ``REPRO_BLOCK_SIZE`` and the default.
        Resolved exactly once, here — ``self.block_size`` is always a
        concrete positive int afterwards (manifests record it, and a
        mid-run environment change cannot skew a sweep).
    stage1:
        Scoring strategy for :meth:`reduce` — ``"blocked"`` (default;
        column blocks, top-k folded per block), ``"dense"`` (the
        one-shot similarity matrix), ``"invindex"`` (term-pruned
        sharded inverted index, sublinear in the posting mass on
        prunable corpora) or ``"auto"`` (measure the fitted corpus
        with :func:`~repro.perf.invindex.choose_stage1` and pick one
        of the three).  Every choice returns bit-identical candidate
        sets.
    shards:
        Partition count for the ``"invindex"`` strategy; ``None``
        resolves through ``REPRO_SHARDS`` and defaults to 1.  Also
        resolved once, at construction.
    build_jobs:
        Worker processes for the inverted-index *build* (each shard's
        postings constructed in parallel, bit-identical to serial);
        ``None``/1 builds serially.  Degrades to serial under the
        available-core gate.
    """

    def __init__(self, k: int = DEFAULT_K,
                 budget: FeatureBudget = SPACE_REDUCTION_FEATURES,
                 weights: FeatureWeights | None = None,
                 use_activity: bool = True,
                 use_structure: bool = False,
                 encoder: DocumentEncoder | None = None,
                 block_size: Optional[int] = None,
                 stage1: str = "blocked",
                 shards: Optional[int] = None,
                 build_jobs: Optional[int] = None) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if stage1 not in STAGE1_CHOICES:
            raise ConfigurationError(
                f"stage1 must be one of {STAGE1_CHOICES}, "
                f"got {stage1!r}")
        build_jobs = 1 if build_jobs is None else int(build_jobs)
        if build_jobs < 1:
            raise ConfigurationError(
                f"build_jobs must be >= 1, got {build_jobs}")
        self.k = k
        self.block_size = resolve_block_size(block_size)
        self.stage1 = stage1
        self.shards = resolve_shards(shards)
        self.build_jobs = build_jobs
        #: The measured choice when ``stage1="auto"`` (set at fit,
        #: possibly demoted to ``"blocked"`` by the fallback guard).
        self._stage1_active: Optional[str] = None
        self.extractor = FeatureExtractor(
            budget=budget,
            weights=weights,
            use_activity=use_activity,
            use_structure=use_structure,
            encoder=encoder,
        )
        self._known: Optional[List[AliasDocument]] = None
        self._known_matrix: Optional[sparse.csr_matrix] = None
        self._index: Optional[ShardedIndex] = None

    @property
    def known_documents(self) -> List[AliasDocument]:
        if self._known is None:
            raise NotFittedError("KAttributor.fit has not been called")
        return self._known

    @property
    def active_stage1(self) -> str:
        """The strategy :meth:`reduce` will actually run.

        Identical to ``self.stage1`` unless that is ``"auto"``, in
        which case this is the cost model's measured pick (or
        ``"blocked"`` before :meth:`fit`).
        """
        if self.stage1 != "auto":
            return self.stage1
        return self._stage1_active or "blocked"

    def fit(self, known: Sequence[AliasDocument]) -> "KAttributor":
        """Index the known aliases (the paper's set Z)."""
        if not known:
            raise ConfigurationError("known corpus must not be empty")
        with span("kattribution.fit", n_known=len(known), k=self.k):
            self._known = list(known)
            self._known_matrix = self.extractor.fit_transform(self._known)
            self._index = None
            if self.stage1 == "auto":
                self._stage1_active = choose_stage1(
                    self._known_matrix, self.k)
            if self.active_stage1 == "invindex":
                self.rebuild_index()
        return self

    def rebuild_index(self, jobs: Optional[int] = None) -> "KAttributor":
        """(Re)build the sharded inverted index over the known matrix.

        Called by :meth:`fit` when the active strategy is
        ``"invindex"``, and by the incremental path after it swaps a
        grown known matrix in.  *jobs* overrides the constructor's
        ``build_jobs`` for this build.
        """
        if self._known_matrix is None:
            raise NotFittedError("KAttributor.fit has not been called")
        jobs = self.build_jobs if jobs is None else int(jobs)
        with span("kattribution.build_index",
                  n_known=self._known_matrix.shape[0],
                  shards=self.shards, jobs=jobs):
            self._index = ShardedIndex(self._known_matrix,
                                       shards=self.shards, jobs=jobs)
        return self

    def attach_index(self, index: ShardedIndex) -> "KAttributor":
        """Adopt a prebuilt :class:`~repro.perf.invindex.ShardedIndex`
        (the snapshot load path — posting arrays may be mmap-backed
        views, skipping the build entirely)."""
        if self._known_matrix is None:
            raise NotFittedError("KAttributor.fit has not been called")
        if index.n_docs != self._known_matrix.shape[0]:
            raise ConfigurationError(
                f"index covers {index.n_docs} rows, known matrix has "
                f"{self._known_matrix.shape[0]}")
        self._index = index
        self.shards = index.n_shards
        return self

    def scores(self, unknowns: Sequence[AliasDocument]) -> np.ndarray:
        """Full similarity matrix ``unknowns x known``."""
        if self._known_matrix is None:
            raise NotFittedError("KAttributor.fit has not been called")
        unknown_matrix = self.extractor.transform(unknowns)
        return cosine_similarity(unknown_matrix, self._known_matrix)

    def reduce(self, unknowns: Sequence[AliasDocument],
               executor: Optional[object] = None) -> List[Candidates]:
        """Return the top-k candidate sets for each unknown alias.

        *executor* optionally fans the ``"invindex"`` strategy's shard
        scoring over a :class:`~repro.perf.parallel.ParallelExecutor`;
        the other strategies ignore it.  Every strategy produces the
        same candidate sets bit for bit.
        """
        if self._known_matrix is None:
            raise NotFittedError("KAttributor.fit has not been called")
        active = self.active_stage1
        with span("kattribution.reduce", n_unknowns=len(unknowns),
                  k=self.k, stage1=active):
            unknown_matrix = self.extractor.transform(unknowns)
            if active == "invindex":
                if self._index is None:
                    self.rebuild_index()
                visited_before = _IVX_VISITED.value
                dense_before = _IVX_DENSE.value
                indices, values = self._index.top_k(
                    unknown_matrix, self.k, executor=executor)
                visited = _IVX_VISITED.value - visited_before
                dense = _IVX_DENSE.value - dense_before
                if dense > 0 and visited > dense:
                    # Pathological corpus: the staged scan did *more*
                    # work than dense scoring would have (visited
                    # fraction > 1).  Record it, and under auto demote
                    # to blocked for the queries still to come — this
                    # batch's results are already exact.
                    _IVX_FALLBACK.inc()
                    if self.stage1 == "auto":
                        self._stage1_active = "blocked"
            elif active == "dense":
                # The one-shot similarity matrix: simplest, largest.
                indices, values = top_k(
                    cosine_similarity(unknown_matrix,
                                      self._known_matrix), self.k)
            else:
                # Score in column blocks so the dense (unknowns x
                # known) matrix never materializes whole; the fold is
                # bit-equal to top_k over the one-shot scores.
                indices, values = blocked_top_k(
                    unknown_matrix, self._known_matrix, self.k,
                    self.block_size)
            results: List[Candidates] = []
            for row, unknown in enumerate(unknowns):
                docs = tuple(self._known[int(i)] for i in indices[row])
                results.append(Candidates(
                    unknown=unknown,
                    documents=docs,
                    scores=tuple(float(v) for v in values[row]),
                ))
            _QUERIES.inc(len(unknowns))
            _PRUNED.inc(max(0, len(self._known) - self.k)
                        * len(unknowns))
        return results

    def accuracy_at_k(self, unknowns: Sequence[AliasDocument],
                      truth: Dict[str, str],
                      ks: Sequence[int] = (1, DEFAULT_K),
                      ) -> Dict[int, float]:
        """Reduction accuracy at several k values (Table III, Fig. 4).

        Parameters
        ----------
        unknowns:
            Query documents.
        truth:
            ``unknown doc_id -> known doc_id`` ground truth.  Unknowns
            without an entry are skipped.
        ks:
            Candidate-set sizes to evaluate.

        Returns
        -------
        dict
            ``k -> fraction of unknowns whose true author ranked <= k``.
        """
        if self._known is None:
            raise NotFittedError("KAttributor.fit has not been called")
        known_index = {d.doc_id: i for i, d in enumerate(self._known)}
        score_matrix = self.scores(unknowns)
        ranks: List[int] = []
        for row, unknown in enumerate(unknowns):
            target_doc = truth.get(unknown.doc_id)
            if target_doc is None or target_doc not in known_index:
                continue
            ranks.append(rank_of(score_matrix[row],
                                 known_index[target_doc]))
        if not ranks:
            return {k: 0.0 for k in ks}
        rank_array = np.asarray(ranks)
        return {k: float(np.mean(rank_array <= k)) for k in ks}
