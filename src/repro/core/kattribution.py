"""k-attribution: search-space reduction (Section IV-C).

Authorship attribution against ten thousand candidates is both too slow
and too fragile for one-vs-all classifiers, so the paper relaxes the
problem: instead of naming *the* author, return the k most likely
authors by cosine similarity (k = 10 in the paper), and let the precise
second stage decide among them.

:class:`KAttributor` fits the reduction-stage feature space (Table II,
middle column) on the known aliases and ranks them for each unknown
alias.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.config import DEFAULT_K, SPACE_REDUCTION_FEATURES, FeatureBudget
from repro.core.documents import AliasDocument
from repro.core.features import DocumentEncoder, FeatureExtractor, \
    FeatureWeights
from repro.core.similarity import cosine_similarity, rank_of
from repro.errors import ConfigurationError, NotFittedError
from repro.perf.blocked import blocked_top_k
from repro.obs.metrics import counter
from repro.obs.spans import span

#: Reduction queries answered (one per unknown alias per reduce call).
_QUERIES = counter("kattribution_queries_total")
#: Known aliases discarded by the reduction stage across all queries.
_PRUNED = counter("candidates_pruned_total")


@dataclass(frozen=True)
class Candidates:
    """Reduction output for one unknown alias.

    Attributes
    ----------
    unknown:
        The unknown document.
    documents:
        The k candidate documents, best first.
    scores:
        First-stage cosine similarities aligned with ``documents``.
    """

    unknown: AliasDocument
    documents: Tuple[AliasDocument, ...]
    scores: Tuple[float, ...]

    def contains(self, doc_id: str) -> bool:
        """Whether the candidate set captured *doc_id*."""
        return any(d.doc_id == doc_id for d in self.documents)


class KAttributor:
    """Search-space reduction by cosine ranking.

    Parameters
    ----------
    k:
        Candidate-set size (paper: 10).
    budget:
        Feature budget for this stage (paper: Table II, middle).
    weights:
        Block weights; pass ``weights.without_activity()`` to reproduce
        the text-only rows of Table III / Fig. 4.
    use_activity:
        Append the daily-activity block.
    use_structure:
        Append the reply-graph/thread-structure block (off by
        default; see :mod:`repro.core.structure`).
    encoder:
        Optional shared :class:`DocumentEncoder`.
    block_size:
        Known-corpus rows scored per block during :meth:`reduce`
        (memory bound for the stage-1 similarity matrix); ``None``
        resolves through ``REPRO_BLOCK_SIZE`` and the default.
    """

    def __init__(self, k: int = DEFAULT_K,
                 budget: FeatureBudget = SPACE_REDUCTION_FEATURES,
                 weights: FeatureWeights | None = None,
                 use_activity: bool = True,
                 use_structure: bool = False,
                 encoder: DocumentEncoder | None = None,
                 block_size: Optional[int] = None) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self.k = k
        self.block_size = block_size
        self.extractor = FeatureExtractor(
            budget=budget,
            weights=weights,
            use_activity=use_activity,
            use_structure=use_structure,
            encoder=encoder,
        )
        self._known: Optional[List[AliasDocument]] = None
        self._known_matrix: Optional[sparse.csr_matrix] = None

    @property
    def known_documents(self) -> List[AliasDocument]:
        if self._known is None:
            raise NotFittedError("KAttributor.fit has not been called")
        return self._known

    def fit(self, known: Sequence[AliasDocument]) -> "KAttributor":
        """Index the known aliases (the paper's set Z)."""
        if not known:
            raise ConfigurationError("known corpus must not be empty")
        with span("kattribution.fit", n_known=len(known), k=self.k):
            self._known = list(known)
            self._known_matrix = self.extractor.fit_transform(self._known)
        return self

    def scores(self, unknowns: Sequence[AliasDocument]) -> np.ndarray:
        """Full similarity matrix ``unknowns x known``."""
        if self._known_matrix is None:
            raise NotFittedError("KAttributor.fit has not been called")
        unknown_matrix = self.extractor.transform(unknowns)
        return cosine_similarity(unknown_matrix, self._known_matrix)

    def reduce(self, unknowns: Sequence[AliasDocument],
               ) -> List[Candidates]:
        """Return the top-k candidate sets for each unknown alias."""
        if self._known_matrix is None:
            raise NotFittedError("KAttributor.fit has not been called")
        with span("kattribution.reduce", n_unknowns=len(unknowns),
                  k=self.k):
            unknown_matrix = self.extractor.transform(unknowns)
            # Score in column blocks so the dense (unknowns x known)
            # matrix never materializes whole; the fold is bit-equal
            # to top_k over the one-shot scores.
            indices, values = blocked_top_k(
                unknown_matrix, self._known_matrix, self.k,
                self.block_size)
            results: List[Candidates] = []
            for row, unknown in enumerate(unknowns):
                docs = tuple(self._known[int(i)] for i in indices[row])
                results.append(Candidates(
                    unknown=unknown,
                    documents=docs,
                    scores=tuple(float(v) for v in values[row]),
                ))
            _QUERIES.inc(len(unknowns))
            _PRUNED.inc(max(0, len(self._known) - self.k)
                        * len(unknowns))
        return results

    def accuracy_at_k(self, unknowns: Sequence[AliasDocument],
                      truth: Dict[str, str],
                      ks: Sequence[int] = (1, DEFAULT_K),
                      ) -> Dict[int, float]:
        """Reduction accuracy at several k values (Table III, Fig. 4).

        Parameters
        ----------
        unknowns:
            Query documents.
        truth:
            ``unknown doc_id -> known doc_id`` ground truth.  Unknowns
            without an entry are skipped.
        ks:
            Candidate-set sizes to evaluate.

        Returns
        -------
        dict
            ``k -> fraction of unknowns whose true author ranked <= k``.
        """
        if self._known is None:
            raise NotFittedError("KAttributor.fit has not been called")
        known_index = {d.doc_id: i for i, d in enumerate(self._known)}
        score_matrix = self.scores(unknowns)
        ranks: List[int] = []
        for row, unknown in enumerate(unknowns):
            target_doc = truth.get(unknown.doc_id)
            if target_doc is None or target_doc not in known_index:
                continue
            ranks.append(rank_of(score_matrix[row],
                                 known_index[target_doc]))
        if not ranks:
            return {k: 0.0 for k in ks}
        rank_array = np.asarray(ranks)
        return {k: float(np.mean(rank_array <= k)) for k in ks}
