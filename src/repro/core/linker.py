"""The final two-stage linking algorithm (Section IV-I).

Stage 1 — *search-space reduction*: rank every known alias against the
unknown by cosine similarity over the reduction feature space and keep
the best k (:mod:`repro.core.kattribution`).

Stage 2 — *final attribution*: re-extract features **on the candidate
set only** (top-N selection and Tf-Idf are recomputed over just those k
documents, which changes every vector, including the unknown's), rank
the k candidates by cosine similarity, and accept the best candidate if
its score clears the threshold t (paper: t = 0.4190).

The second stage is what makes the method precise: in a k-document
collection the Idf sharpens dramatically — a feature shared by the
unknown and exactly one candidate becomes decisive — while in the full
corpus it was diluted across thousands of users.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import (
    DEFAULT_K,
    FINAL_FEATURES,
    PAPER_THRESHOLD,
    SPACE_REDUCTION_FEATURES,
    FeatureBudget,
)
from repro.core.documents import AliasDocument
from repro.core.features import (
    DocumentEncoder,
    FeatureExtractor,
    FeatureWeights,
)
from repro.core.kattribution import Candidates, KAttributor
from repro.core.similarity import cosine_similarity
from repro.errors import ConfigurationError, NotFittedError
from repro.obs.logging import get_logger
from repro.obs.metrics import SCORE_BUCKETS, SIZE_BUCKETS, counter, \
    histogram
from repro.obs.spans import span

log = get_logger(__name__)

#: Unknowns whose best candidate cleared the threshold.
_ACCEPTED = counter("attribution_accepted_total")
#: Unknowns whose best candidate fell below the threshold.
_REJECTED = counter("attribution_rejected_total")
#: Distribution of winning second-stage scores.
_BEST_SCORE = histogram("similarity_score", buckets=SCORE_BUCKETS)
#: Candidate-set sizes entering the final stage.
_CANDIDATE_SET = histogram("final_candidate_set_size",
                           buckets=SIZE_BUCKETS)
#: Total candidates rescored by stage 2.
_RESCORED = counter("candidates_rescored_total")


@dataclass(frozen=True)
class Match:
    """One scored pairing of an unknown alias with its best candidate.

    Attributes
    ----------
    unknown_id / candidate_id:
        Document ids of the two aliases.
    score:
        Second-stage cosine similarity.
    accepted:
        Whether ``score >= threshold`` (the pair the algorithm outputs).
    first_stage_score:
        The reduction-stage similarity (diagnostics).
    """

    unknown_id: str
    candidate_id: str
    score: float
    accepted: bool
    first_stage_score: float

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form; the single source of the field list
        for traces, CLI JSON output and eval reporting."""
        return {
            "unknown_id": self.unknown_id,
            "candidate_id": self.candidate_id,
            "score": self.score,
            "accepted": self.accepted,
            "first_stage_score": self.first_stage_score,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Match":
        """Inverse of :meth:`to_dict`."""
        return cls(
            unknown_id=str(data["unknown_id"]),
            candidate_id=str(data["candidate_id"]),
            score=float(data["score"]),
            accepted=bool(data["accepted"]),
            first_stage_score=float(data.get("first_stage_score", 0.0)),
        )


@dataclass(frozen=True)
class LinkResult:
    """Everything a linking run produced.

    ``matches`` holds one entry per unknown alias (its best candidate,
    accepted or not); ``candidate_scores`` holds the second-stage score
    of *every* candidate of every unknown, which the evaluation uses to
    draw precision-recall curves without re-running the pipeline.
    """

    matches: List[Match]
    candidate_scores: Dict[str, List[Tuple[str, float]]]

    def accepted(self) -> List[Match]:
        """Only the pairs the algorithm actually outputs."""
        return [m for m in self.matches if m.accepted]

    def all_scored_pairs(self) -> Iterator[Tuple[str, str, float]]:
        """Yield ``(unknown_id, candidate_id, score)`` for every pair."""
        for unknown_id, pairs in self.candidate_scores.items():
            for candidate_id, score in pairs:
                yield unknown_id, candidate_id, score

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (see :meth:`Match.to_dict`)."""
        return {
            "matches": [m.to_dict() for m in self.matches],
            "candidate_scores": {
                unknown_id: [[cid, score] for cid, score in pairs]
                for unknown_id, pairs in self.candidate_scores.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LinkResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            matches=[Match.from_dict(m) for m in data.get("matches", [])],
            candidate_scores={
                unknown_id: [(str(cid), float(score))
                             for cid, score in pairs]
                for unknown_id, pairs in
                data.get("candidate_scores", {}).items()
            },
        )


class AliasLinker:
    """The paper's complete algorithm, ready to fit and run.

    Parameters
    ----------
    k:
        Candidate-set size of the reduction stage (paper: 10).
    threshold:
        Acceptance threshold on the second-stage score (paper: 0.4190).
    reduction_budget / final_budget:
        Table II feature budgets for the two stages.
    weights:
        Block weights shared by both stages.
    use_activity:
        Use the daily-activity block (Fig. 4 ablates this).
    use_reduction:
        When ``False``, skip stage 1 and score the unknown against
        *every* known alias with the final feature space — the
        "without reduction" rows of Table VI / Fig. 5.
    """

    def __init__(self, k: int = DEFAULT_K,
                 threshold: float = PAPER_THRESHOLD,
                 reduction_budget: FeatureBudget = SPACE_REDUCTION_FEATURES,
                 final_budget: FeatureBudget = FINAL_FEATURES,
                 weights: FeatureWeights | None = None,
                 use_activity: bool = True,
                 use_reduction: bool = True) -> None:
        if k < 1:
            raise ConfigurationError(
                f"k must be a positive integer, got {k}")
        if not 0.0 <= threshold <= 1.0:
            raise ConfigurationError(
                f"threshold must be in [0, 1], got {threshold}")
        self.k = k
        self.threshold = threshold
        self.final_budget = final_budget
        self.weights = weights or FeatureWeights()
        self.use_activity = use_activity
        self.use_reduction = use_reduction
        self.encoder = DocumentEncoder()
        self.reducer = KAttributor(
            k=k,
            budget=reduction_budget,
            weights=self.weights,
            use_activity=use_activity,
            encoder=self.encoder,
        )
        self._known: Optional[List[AliasDocument]] = None

    def fit(self, known: Sequence[AliasDocument]) -> "AliasLinker":
        """Index the known aliases (the paper's set Z)."""
        with span("linker.fit", n_known=len(known)):
            self._known = list(known)
            self.reducer.fit(self._known)
        log.debug("linker.fit", n_known=len(self._known), k=self.k)
        return self

    # -- stage 2 -------------------------------------------------------------

    def _rescore(self, unknown: AliasDocument,
                 candidates: Sequence[AliasDocument],
                 ) -> List[Tuple[str, float]]:
        """Second-stage scores of *candidates* against *unknown*.

        A fresh extractor is fitted on the candidate documents alone:
        "we recompute the Tf-Idf on the documents of these k users ...
        this procedure changes the feature vector of the unknown alias
        too" (Section IV-I).
        """
        extractor = FeatureExtractor(
            budget=self.final_budget,
            weights=self.weights,
            use_activity=self.use_activity,
            encoder=self.encoder,
        )
        extractor.fit(list(candidates))
        candidate_matrix = extractor.transform(list(candidates))
        unknown_matrix = extractor.transform([unknown])
        scores = cosine_similarity(unknown_matrix, candidate_matrix)[0]
        return [(doc.doc_id, float(score))
                for doc, score in zip(candidates, scores)]

    def link(self, unknowns: Sequence[AliasDocument]) -> LinkResult:
        """Run the full pipeline for a batch of unknown aliases."""
        if self._known is None:
            raise NotFittedError("AliasLinker.fit has not been called")
        matches: List[Match] = []
        candidate_scores: Dict[str, List[Tuple[str, float]]] = {}
        n_accepted = 0
        with span("linker.link", n_unknowns=len(unknowns),
                  n_known=len(self._known)):
            with span("linker.stage1", k=self.k,
                      reduction=self.use_reduction):
                if self.use_reduction:
                    reduced = self.reducer.reduce(unknowns)
                else:
                    reduced = [
                        Candidates(unknown=u, documents=tuple(self._known),
                                   scores=tuple([0.0] * len(self._known)))
                        for u in unknowns
                    ]
            for candidates in reduced:
                unknown = candidates.unknown
                with span("linker.stage2", unknown=unknown.doc_id,
                          k=len(candidates.documents)):
                    scored = self._rescore(unknown, candidates.documents)
                _CANDIDATE_SET.observe(len(candidates.documents))
                _RESCORED.inc(len(scored))
                candidate_scores[unknown.doc_id] = scored
                first_stage = dict(
                    (doc.doc_id, score)
                    for doc, score in zip(candidates.documents,
                                          candidates.scores))
                best_id, best_score = max(scored, key=lambda pair: pair[1])
                accepted = best_score >= self.threshold
                _BEST_SCORE.observe(best_score)
                if accepted:
                    _ACCEPTED.inc()
                    n_accepted += 1
                else:
                    _REJECTED.inc()
                matches.append(Match(
                    unknown_id=unknown.doc_id,
                    candidate_id=best_id,
                    score=best_score,
                    accepted=accepted,
                    first_stage_score=first_stage.get(best_id, 0.0),
                ))
        log.info("linker.link", n_unknowns=len(unknowns),
                 n_known=len(self._known), accepted=n_accepted,
                 rejected=len(matches) - n_accepted,
                 threshold=self.threshold)
        return LinkResult(matches=matches,
                          candidate_scores=candidate_scores)

    def link_one(self, unknown: AliasDocument) -> Match:
        """Convenience: link a single unknown alias."""
        return self.link([unknown]).matches[0]
