"""The final two-stage linking algorithm (Section IV-I).

Stage 1 — *search-space reduction*: rank every known alias against the
unknown by cosine similarity over the reduction feature space and keep
the best k (:mod:`repro.core.kattribution`).

Stage 2 — *final attribution*: re-extract features **on the candidate
set only** (top-N selection and Tf-Idf are recomputed over just those k
documents, which changes every vector, including the unknown's), rank
the k candidates by cosine similarity, and accept the best candidate if
its score clears the threshold t (paper: t = 0.4190).

The second stage is what makes the method precise: in a k-document
collection the Idf sharpens dramatically — a feature shared by the
unknown and exactly one candidate becomes decisive — while in the full
corpus it was diluted across thousands of users.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, \
    Sequence, Tuple, Union

import numpy as np
from scipy import sparse

from repro.config import (
    DEFAULT_K,
    FINAL_FEATURES,
    PAPER_THRESHOLD,
    SPACE_REDUCTION_FEATURES,
    FeatureBudget,
)
from repro.core.documents import AliasDocument
from repro.core.features import (
    DocumentEncoder,
    FeatureExtractor,
    FeatureWeights,
)
from repro.core.kattribution import Candidates, KAttributor
from repro.core.similarity import cosine_similarity
from repro.errors import ConfigurationError, DatasetError, NotFittedError
from repro.obs.logging import get_logger
from repro.obs.metrics import SCORE_BUCKETS, SIZE_BUCKETS, counter, \
    histogram
from repro.obs.spans import span
from repro.perf.cache import ProfileCache
from repro.perf.parallel import ParallelExecutor, resolve_workers
from repro.resilience.checkpoint import CheckpointStore, open_store
from repro.resilience.degrade import CircuitBreaker, DeadlineBudget

log = get_logger(__name__)

#: Unknowns whose best candidate cleared the threshold.
_ACCEPTED = counter("attribution_accepted_total")
#: Unknowns whose best candidate fell below the threshold.
_REJECTED = counter("attribution_rejected_total")
#: Unknowns quarantined instead of linked (malformed or failing).
_SKIPPED = counter("attribution_skipped_total")
#: Distribution of winning second-stage scores.
_BEST_SCORE = histogram("similarity_score", buckets=SCORE_BUCKETS)
#: Candidate-set sizes entering the final stage.
_CANDIDATE_SET = histogram("final_candidate_set_size",
                           buckets=SIZE_BUCKETS)
#: Total candidates rescored by stage 2.
_RESCORED = counter("candidates_rescored_total")
#: Matches answered degraded (stage-1 scores, shed activity, ...).
_DEGRADED = counter("attribution_degraded_total")


@dataclass(frozen=True)
class Match:
    """One scored pairing of an unknown alias with its best candidate.

    Attributes
    ----------
    unknown_id / candidate_id:
        Document ids of the two aliases.
    score:
        Second-stage cosine similarity.
    accepted:
        Whether ``score >= threshold`` (the pair the algorithm outputs).
    first_stage_score:
        The reduction-stage similarity (diagnostics).
    degraded:
        ``True`` when the answer was produced on partial evidence (a
        deadline or circuit breaker cut a stage short).  Degraded
        matches are honest — ``score`` is whatever evidence actually
        ran — but not comparable to full-pipeline scores.
    degraded_reasons:
        Why, e.g. ``("stage1_only",)`` or ``("stylometry_only",)``.
    """

    unknown_id: str
    candidate_id: str
    score: float
    accepted: bool
    first_stage_score: float
    degraded: bool = False
    degraded_reasons: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form; the single source of the field list
        for traces, CLI JSON output and eval reporting.

        The degraded keys are emitted only when set, so full-fidelity
        runs serialize byte-identically to pre-degraded-mode output.
        """
        data = {
            "unknown_id": self.unknown_id,
            "candidate_id": self.candidate_id,
            "score": self.score,
            "accepted": self.accepted,
            "first_stage_score": self.first_stage_score,
        }
        if self.degraded:
            data["degraded"] = True
            data["degraded_reasons"] = list(self.degraded_reasons)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Match":
        """Inverse of :meth:`to_dict`."""
        return cls(
            unknown_id=str(data["unknown_id"]),
            candidate_id=str(data["candidate_id"]),
            score=float(data["score"]),
            accepted=bool(data["accepted"]),
            first_stage_score=float(data.get("first_stage_score", 0.0)),
            degraded=bool(data.get("degraded", False)),
            degraded_reasons=tuple(
                str(r) for r in data.get("degraded_reasons", ())),
        )


@dataclass(frozen=True)
class SkippedUnknown:
    """One unknown alias quarantined instead of linked.

    A malformed or failing document must not abort a multi-hour batch
    run (graceful degradation); it is set aside with enough context to
    audit — or re-feed — it later.

    Attributes
    ----------
    unknown_id:
        Document id (or a positional placeholder when the document has
        none).
    reason:
        Human-readable account of what was wrong.
    stage:
        Where it failed: ``"validate"``, ``"reduce"`` or
        ``"attribute"``.
    """

    unknown_id: str
    reason: str
    stage: str = "validate"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form."""
        return {"unknown_id": self.unknown_id, "reason": self.reason,
                "stage": self.stage}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SkippedUnknown":
        """Inverse of :meth:`to_dict`."""
        return cls(unknown_id=str(data["unknown_id"]),
                   reason=str(data.get("reason", "")),
                   stage=str(data.get("stage", "validate")))


@dataclass(frozen=True)
class LinkResult:
    """Everything a linking run produced.

    ``matches`` holds one entry per unknown alias (its best candidate,
    accepted or not); ``candidate_scores`` holds the second-stage score
    of *every* candidate of every unknown, which the evaluation uses to
    draw precision-recall curves without re-running the pipeline;
    ``skipped`` lists the unknowns quarantined instead of linked, so
    ``len(matches) + len(skipped)`` always equals the number of
    unknowns submitted.
    """

    matches: List[Match]
    candidate_scores: Dict[str, List[Tuple[str, float]]]
    skipped: List[SkippedUnknown] = field(default_factory=list)

    def accepted(self) -> List[Match]:
        """Only the pairs the algorithm actually outputs."""
        return [m for m in self.matches if m.accepted]

    def degraded(self) -> List[Match]:
        """Matches answered on partial evidence (deadline/breaker)."""
        return [m for m in self.matches if m.degraded]

    def all_scored_pairs(self) -> Iterator[Tuple[str, str, float]]:
        """Yield ``(unknown_id, candidate_id, score)`` for every pair."""
        for unknown_id, pairs in self.candidate_scores.items():
            for candidate_id, score in pairs:
                yield unknown_id, candidate_id, score

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (see :meth:`Match.to_dict`)."""
        return {
            "matches": [m.to_dict() for m in self.matches],
            "candidate_scores": {
                unknown_id: [[cid, score] for cid, score in pairs]
                for unknown_id, pairs in self.candidate_scores.items()
            },
            "skipped": [s.to_dict() for s in self.skipped],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LinkResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            matches=[Match.from_dict(m) for m in data.get("matches", [])],
            candidate_scores={
                unknown_id: [(str(cid), float(score))
                             for cid, score in pairs]
                for unknown_id, pairs in
                data.get("candidate_scores", {}).items()
            },
            skipped=[SkippedUnknown.from_dict(s)
                     for s in data.get("skipped", [])],
        )


def check_document(document: Any) -> None:
    """Validate that *document* can safely enter the linking stages.

    Raises :class:`~repro.errors.DatasetError` with a precise reason on
    anything the feature extractors would choke on — the linkers call
    this up front so one bad record is quarantined instead of aborting
    a whole run half-way through stage 1.
    """
    if not isinstance(document, AliasDocument):
        raise DatasetError(
            f"not an AliasDocument: {type(document).__name__}")
    if not isinstance(document.doc_id, str) or not document.doc_id:
        raise DatasetError("document has no doc_id")
    if not isinstance(document.text, str):
        raise DatasetError(
            f"{document.doc_id}: text is "
            f"{type(document.text).__name__}, expected str")
    try:
        words_ok = all(isinstance(w, str) for w in document.words)
    except TypeError:
        words_ok = False
    if not words_ok:
        raise DatasetError(
            f"{document.doc_id}: words must be an iterable of strings")
    if document.activity is not None:
        try:
            activity = np.asarray(document.activity, dtype=float)
        except (TypeError, ValueError) as exc:
            raise DatasetError(
                f"{document.doc_id}: activity profile is not "
                f"numeric") from exc
        if activity.ndim != 1:
            raise DatasetError(
                f"{document.doc_id}: activity profile must be "
                f"1-dimensional, got shape {activity.shape}")
        if not np.all(np.isfinite(activity)):
            raise DatasetError(
                f"{document.doc_id}: activity profile contains "
                f"non-finite values")
    if getattr(document, "structure", None) is not None:
        try:
            structure = np.asarray(document.structure, dtype=float)
        except (TypeError, ValueError) as exc:
            raise DatasetError(
                f"{document.doc_id}: structure profile is not "
                f"numeric") from exc
        if structure.ndim != 1:
            raise DatasetError(
                f"{document.doc_id}: structure profile must be "
                f"1-dimensional, got shape {structure.shape}")
        if not np.all(np.isfinite(structure)):
            raise DatasetError(
                f"{document.doc_id}: structure profile contains "
                f"non-finite values")
    if not document.text and not document.words \
            and document.activity is None:
        raise DatasetError(f"{document.doc_id}: document is empty")


def _placeholder_id(document: Any, position: int) -> str:
    """A stable id for quarantine records of id-less documents."""
    doc_id = getattr(document, "doc_id", None)
    if isinstance(doc_id, str) and doc_id:
        return doc_id
    return f"<unknown #{position}>"


def _quarantine(unknown_id: str, reason: str, stage: str,
                skipped: Dict[str, "SkippedUnknown"],
                store: Optional[CheckpointStore]) -> None:
    """Set one unknown aside (shared by every linker variant)."""
    entry = SkippedUnknown(unknown_id=unknown_id, reason=reason,
                           stage=stage)
    skipped[unknown_id] = entry
    _SKIPPED.inc()
    log.warning("linker.skip", unknown=unknown_id, stage=stage,
                reason=reason)
    if store is not None:
        store.record(unknown_id, [], [], skipped=entry.to_dict())


def _assemble(unknowns: Sequence[Any],
              results: Dict[str, Tuple[List[Match],
                                       List[Tuple[str, float]]]],
              skipped: Dict[str, "SkippedUnknown"],
              store: Optional[CheckpointStore]) -> LinkResult:
    """Build the final :class:`LinkResult` in submission order.

    When a checkpoint store is active, *everything* is read back from
    it (fresh results were recorded there too), so a resumed run and an
    uninterrupted run assemble byte-identical results.
    """
    matches: List[Match] = []
    candidate_scores: Dict[str, List[Tuple[str, float]]] = {}
    skipped_list: List[SkippedUnknown] = []
    for position, unknown in enumerate(unknowns):
        unknown_id = _placeholder_id(unknown, position)
        if unknown_id in skipped:
            skipped_list.append(skipped[unknown_id])
            continue
        if store is not None and unknown_id in store:
            quarantined = store.skipped_for(unknown_id)
            if quarantined is not None:
                skipped_list.append(
                    SkippedUnknown.from_dict(quarantined))
                continue
            matches.extend(store.matches_for(unknown_id))
            candidate_scores[unknown_id] = store.scores_for(unknown_id)
            continue
        entry = results.get(unknown_id)
        if entry is None:  # defensive: should be unreachable
            skipped_list.append(SkippedUnknown(
                unknown_id=unknown_id, reason="no result produced",
                stage="attribute"))
            continue
        unknown_matches, scored = entry
        matches.extend(unknown_matches)
        candidate_scores[unknown_id] = scored
    return LinkResult(matches=matches, candidate_scores=candidate_scores,
                      skipped=skipped_list)


def _restage_chunk_size(n_unknowns: int, workers: int) -> int:
    """Unknowns per restage chunk.

    Large enough that the block-diagonal rescore amortizes its setup
    (and, parallel, that per-item pickling is cheap relative to work),
    small enough that workers load-balance (4 chunks per worker) and
    the dense score block stays bounded (64 rows x 64k columns).
    """
    if n_unknowns <= 0:
        return 1
    per_worker = -(-n_unknowns // max(workers * 4, 1))
    return max(1, min(64, per_worker))


def _restage_chunk_task(linker: "AliasLinker",
                        chunk: Sequence[Candidates],
                        ) -> List[Tuple[str, Any]]:
    """``map_shared`` entry point for one restage chunk.

    Module-level so the persistent pool can pickle the function
    reference; the fitted linker rides along as the fork-shared state
    and only the chunk itself crosses the pipe.
    """
    return linker._stage2_chunk(chunk)


class AliasLinker:
    """The paper's complete algorithm, ready to fit and run.

    Parameters
    ----------
    k:
        Candidate-set size of the reduction stage (paper: 10).
    threshold:
        Acceptance threshold on the second-stage score (paper: 0.4190).
    reduction_budget / final_budget:
        Table II feature budgets for the two stages.
    weights:
        Block weights shared by both stages.
    use_activity:
        Use the daily-activity block (Fig. 4 ablates this).
    use_structure:
        Use the reply-graph/thread-structure block in both stages
        (off by default; see :mod:`repro.core.structure`).
    use_reduction:
        When ``False``, skip stage 1 and score the unknown against
        *every* known alias with the final feature space — the
        "without reduction" rows of Table VI / Fig. 5.
    workers:
        Worker processes for the stage-2 restage; ``None`` reads
        ``REPRO_WORKERS`` and defaults to serial.  Output is
        bit-identical at any worker count.
    cache:
        ``True`` (default) computes every document's raw profiles
        exactly once; ``False`` recomputes on every use (same numbers,
        more work).  Pass a :class:`~repro.perf.cache.ProfileCache`
        instance to share profiles across linkers.
    block_size:
        Known-corpus rows scored per stage-1 block (memory bound);
        ``None`` resolves through ``REPRO_BLOCK_SIZE``.  Resolved once
        at construction; ``self.block_size`` is always a concrete int.
    stage1:
        Stage-1 scoring strategy: ``"blocked"`` (default), ``"dense"``,
        ``"invindex"`` (term-pruned sharded inverted index) or
        ``"auto"`` (cost model measures the fitted corpus and picks
        one of the three).  Every choice returns bit-identical
        candidate sets; see ``docs/performance.md`` for when each wins.
    shards:
        Partition count for the ``"invindex"`` index; ``None`` resolves
        through ``REPRO_SHARDS`` (default 1).
    build_jobs:
        Worker processes for the inverted-index build (per-shard
        postings in parallel, bit-identical to serial); ``None``/1
        builds serially.
    breaker:
        Optional :class:`~repro.resilience.degrade.CircuitBreaker`
        guarding stage 2: after enough consecutive restage failures it
        opens and subsequent unknowns are answered degraded from their
        stage-1 scores instead of burning time on a failing stage.
    """

    def __init__(self, k: int = DEFAULT_K,
                 threshold: float = PAPER_THRESHOLD,
                 reduction_budget: FeatureBudget = SPACE_REDUCTION_FEATURES,
                 final_budget: FeatureBudget = FINAL_FEATURES,
                 weights: FeatureWeights | None = None,
                 use_activity: bool = True,
                 use_structure: bool = False,
                 use_reduction: bool = True,
                 workers: Optional[int] = None,
                 cache: Union[bool, ProfileCache] = True,
                 block_size: Optional[int] = None,
                 stage1: str = "blocked",
                 shards: Optional[int] = None,
                 build_jobs: Optional[int] = None,
                 breaker: Optional[CircuitBreaker] = None) -> None:
        if k < 1:
            raise ConfigurationError(
                f"k must be a positive integer, got {k}")
        if not 0.0 <= threshold <= 1.0:
            raise ConfigurationError(
                f"threshold must be in [0, 1], got {threshold}")
        self.k = k
        self.threshold = threshold
        self.final_budget = final_budget
        self.weights = weights or FeatureWeights()
        self.use_activity = use_activity
        self.use_structure = use_structure
        self.use_reduction = use_reduction
        self.workers = resolve_workers(workers)
        self.breaker = breaker
        if isinstance(cache, ProfileCache):
            profile_cache = cache
        else:
            profile_cache = ProfileCache(enabled=bool(cache))
        self.cache = profile_cache
        self.encoder = DocumentEncoder(cache=profile_cache)
        self.reducer = KAttributor(
            k=k,
            budget=reduction_budget,
            weights=self.weights,
            use_activity=use_activity,
            use_structure=use_structure,
            encoder=self.encoder,
            block_size=block_size,
            stage1=stage1,
            shards=shards,
            build_jobs=build_jobs,
        )
        # The reducer resolves the perf knobs exactly once; mirror the
        # concrete values here so manifests and snapshots read them
        # without re-consulting the environment.
        self.stage1 = self.reducer.stage1
        self.shards = self.reducer.shards
        self.build_jobs = self.reducer.build_jobs
        self.block_size = self.reducer.block_size
        self._known: Optional[List[AliasDocument]] = None
        #: Bumped on every (re)fit; keys the persistent restage pool so
        #: stale forked state is never reused across fits.
        self._state_version = 0

    def fit(self, known: Sequence[AliasDocument]) -> "AliasLinker":
        """Index the known aliases (the paper's set Z)."""
        with span("linker.fit", n_known=len(known)):
            self._known = list(known)
            self.reducer.fit(self._known)
            self._state_version += 1
        log.debug("linker.fit", n_known=len(self._known), k=self.k)
        return self

    # -- stage 2 -------------------------------------------------------------

    def _rescore(self, unknown: AliasDocument,
                 candidates: Sequence[AliasDocument],
                 use_activity: Optional[bool] = None,
                 ) -> List[Tuple[str, float]]:
        """Second-stage scores of *candidates* against *unknown*.

        A fresh extractor is fitted on the candidate documents alone:
        "we recompute the Tf-Idf on the documents of these k users ...
        this procedure changes the feature vector of the unknown alias
        too" (Section IV-I).

        *use_activity* overrides the linker-level setting for this one
        restage; degraded mode uses it to shed the activity block when
        a deadline is nearly spent.
        """
        candidate_matrix, unknown_matrix = self._stage2_vectors(
            unknown, candidates, use_activity=use_activity)
        scores = cosine_similarity(unknown_matrix, candidate_matrix)[0]
        return [(doc.doc_id, float(score))
                for doc, score in zip(candidates, scores)]

    def _stage2_vectors(self, unknown: AliasDocument,
                        candidates: Sequence[AliasDocument],
                        use_activity: Optional[bool] = None,
                        ) -> Tuple[sparse.csr_matrix, sparse.csr_matrix]:
        """The per-pair candidate-set fit, returning the two stage-2
        matrices (candidates, then the unknown) without scoring them —
        the batched restage folds many pairs into one similarity call.
        """
        if use_activity is None:
            use_activity = self.use_activity
        extractor = FeatureExtractor(
            budget=self.final_budget,
            weights=self.weights,
            use_activity=use_activity,
            use_structure=self.use_structure,
            encoder=self.encoder,
        )
        extractor.fit(list(candidates))
        candidate_matrix = extractor.transform(list(candidates))
        unknown_matrix = extractor.transform([unknown])
        return candidate_matrix, unknown_matrix

    @staticmethod
    def _cosine_blocks(blocks: Sequence[Tuple[sparse.csr_matrix,
                                              sparse.csr_matrix]],
                       ) -> List[np.ndarray]:
        """Cosine score rows for many independent ``(candidates,
        unknown)`` pairs via one block-diagonal sparse product.

        Each pair lives in its own feature space, so the pairs are laid
        out on a block diagonal and multiplied in a single matmul.
        scipy's CSR matmul accumulates every output cell along the
        stored order of the left row's entries; the diagonal layout
        shifts column ids without reordering any row, so row *i* of the
        big product is bit-identical to pair *i*'s own
        ``cosine_similarity`` call.
        """
        if len(blocks) == 1:
            candidate_matrix, unknown_matrix = blocks[0]
            return [cosine_similarity(unknown_matrix,
                                      candidate_matrix)[0]]
        big_unknown = sparse.block_diag(
            [unknown for _, unknown in blocks], format="csr")
        big_candidates = sparse.block_diag(
            [cand for cand, _ in blocks], format="csr")
        scores = cosine_similarity(big_unknown, big_candidates)
        rows: List[np.ndarray] = []
        offset = 0
        for row, (candidate_matrix, _) in enumerate(blocks):
            width = candidate_matrix.shape[0]
            rows.append(scores[row, offset:offset + width])
            offset += width
        return rows

    def rescore(self, unknown: AliasDocument,
                candidates: Sequence[AliasDocument],
                ) -> List[Tuple[str, float]]:
        """Public second-stage restage of one unknown.

        Exposed so benchmarks and callers with their own candidate sets
        can time or drive the restage in isolation; :meth:`link` goes
        through the same code path.
        """
        return self._rescore(unknown, list(candidates))

    def rescore_batch(self, pairs: Sequence[Tuple[AliasDocument,
                                                  Sequence[AliasDocument]]],
                      ) -> List[List[Tuple[str, float]]]:
        """Vectorized restage of many ``(unknown, candidates)`` pairs.

        Semantically ``[self.rescore(u, c) for u, c in pairs]`` — every
        pair keeps its own candidate-set fit, which is what makes the
        second stage precise — but the per-pair cosine products are
        folded into one block-diagonal sparse matmul, so the scores are
        bit-identical while the Python/BLAS dispatch overhead is paid
        once per batch instead of once per unknown.  Unlike
        :meth:`link`'s internal chunking, errors propagate: callers
        own their pairs.
        """
        normalized = [(unknown, list(candidates))
                      for unknown, candidates in pairs]
        if not normalized:
            return []
        blocks = [self._stage2_vectors(unknown, candidates)
                  for unknown, candidates in normalized]
        rows = self._cosine_blocks(blocks)
        return [
            [(doc.doc_id, float(score))
             for doc, score in zip(candidates, pair_scores)]
            for (_, candidates), pair_scores in zip(normalized, rows)
        ]

    def _warm(self, unknowns: Iterable[AliasDocument]) -> None:
        """Intern every unknown's profiles in submission order.

        The restage may run in forked workers whose vocabulary copies
        are frozen at fork time; interning everything in the parent
        first keeps word-id assignment — and therefore n-gram codes and
        tie-breaking — identical across worker counts.  With stage 1
        enabled this is all cache hits (the reduce already touched
        every pending unknown); it only does real work for
        ``use_reduction=False`` runs.  Failing documents are left for
        the restage to quarantine with its usual error message.
        """
        cache = self.encoder.cache
        for unknown in unknowns:
            try:
                self.encoder.word_profile(unknown)
                self.encoder.char_profile(unknown)
                if self.weights.frequencies > 0:
                    self.encoder.freq_features(unknown)
                if self.use_activity and self.weights.activity > 0:
                    cache.activity_row(unknown,
                                       self.final_budget.activity_bins)
                if self.use_structure and self.weights.structure > 0:
                    cache.structure_row(unknown)
            except Exception:  # noqa: BLE001 - requarantined in stage 2
                continue

    def _stage2_task(self, candidates: Candidates,
                     ) -> Tuple[str, Any]:
        """One unknown's restage: a pure function of the fitted state.

        Returns ``("ok", (scored, best_id, best_score))`` or
        ``("error", reason)`` — exceptions are folded into the return
        value so the parallel map never aborts the batch and the parent
        quarantines with the exact message the serial path would use.
        """
        unknown = candidates.unknown
        try:
            with span("linker.stage2", unknown=unknown.doc_id,
                      k=len(candidates.documents)):
                scored = self._rescore(unknown, candidates.documents)
            best_id, best_score = max(scored, key=lambda pair: pair[1])
        except Exception as exc:  # noqa: BLE001 - quarantined by caller
            return ("error", f"final attribution failed: {exc}")
        return ("ok", (scored, best_id, float(best_score)))

    def _stage2_chunk(self, chunk: Sequence[Candidates],
                      ) -> List[Tuple[str, Any]]:
        """Restage a chunk of unknowns with one batched similarity.

        Error isolation stays per-unknown: a pair whose candidate-set
        fit raises is reported as ``("error", reason)`` — with the same
        message :meth:`_stage2_task` would produce — without dragging
        down its chunk-mates, whose matrices still enter the shared
        block-diagonal product.
        """
        outcomes: List[Optional[Tuple[str, Any]]] = [None] * len(chunk)
        prepped: List[Tuple[int, sparse.csr_matrix,
                            sparse.csr_matrix]] = []
        for pos, candidates in enumerate(chunk):
            unknown = candidates.unknown
            try:
                with span("linker.stage2", unknown=unknown.doc_id,
                          k=len(candidates.documents)):
                    cand_matrix, unk_matrix = self._stage2_vectors(
                        unknown, candidates.documents)
                prepped.append((pos, cand_matrix, unk_matrix))
            except Exception as exc:  # noqa: BLE001 - quarantined later
                outcomes[pos] = ("error",
                                 f"final attribution failed: {exc}")
        if prepped:
            rows = self._cosine_blocks(
                [(cand, unk) for _, cand, unk in prepped])
            for (pos, _, _), pair_scores in zip(prepped, rows):
                candidates = chunk[pos]
                scored = [(doc.doc_id, float(score))
                          for doc, score in zip(candidates.documents,
                                                pair_scores)]
                best_id, best_score = max(scored,
                                          key=lambda pair: pair[1])
                outcomes[pos] = ("ok", (scored, best_id,
                                        float(best_score)))
        return list(outcomes)

    def _stage2_guarded(self, candidates: Candidates,
                        budget: Optional[DeadlineBudget],
                        ) -> Tuple[str, Any]:
        """One unknown's restage under a deadline budget and/or circuit
        breaker (always serial — degraded mode needs honest per-call
        accounting, not fork-time snapshots of the budget clock).

        Returns ``("ok", (scored, best_id, best_score, reasons))``,
        ``("degraded", reasons)`` — answer from stage-1 evidence — or
        ``("error", reason)``.
        """
        unknown = candidates.unknown
        if self.breaker is not None and not self.breaker.allow():
            return ("degraded", ("stage2_circuit_open",))
        if budget is not None and budget.expired():
            budget.check("restage")  # raises unless degraded_ok
            return ("degraded", ("stage1_only",))
        reasons: List[str] = []
        use_activity: Optional[bool] = None
        activity_on = self.use_activity and self.weights.activity > 0
        if activity_on and budget is not None and budget.activity_low():
            # Not enough budget left for the activity block: restage on
            # stylometry alone rather than blow the deadline.
            use_activity = False
            reasons.append("stylometry_only")
        elif activity_on and unknown.activity is None:
            # Full restage runs, but the unknown brought no activity
            # evidence — flag the gap instead of implying it was used.
            reasons.append("stylometry_only")
        try:
            with span("linker.stage2", unknown=unknown.doc_id,
                      k=len(candidates.documents)):
                scored = self._rescore(unknown, candidates.documents,
                                       use_activity=use_activity)
            best_id, best_score = max(scored, key=lambda pair: pair[1])
        except Exception as exc:  # noqa: BLE001 - quarantined by caller
            if self.breaker is not None:
                self.breaker.record_failure()
            return ("error", f"final attribution failed: {exc}")
        if self.breaker is not None:
            self.breaker.record_success()
        return ("ok", (scored, best_id, float(best_score),
                       tuple(reasons)))

    def _fingerprint(self) -> Dict[str, Any]:
        """Run configuration pinned into checkpoint files."""
        return {"algo": "alias-linker",
                "n_known": len(self._known or ()),
                "k": self.k,
                "threshold": self.threshold}

    def _reduce_isolated(self, pending: Sequence[AliasDocument],
                         skipped: Dict[str, SkippedUnknown],
                         store: Optional[CheckpointStore],
                         executor: Optional[ParallelExecutor] = None,
                         ) -> List[Candidates]:
        """Stage 1 with per-document error isolation.

        The fast path reduces the whole batch in one matrix operation;
        if that raises, the batch is retried one document at a time so
        only the genuinely bad documents are quarantined.  *executor*
        is forwarded to the reducer for ``"invindex"`` shard fan-out.
        """
        if not pending:
            return []
        with span("linker.stage1", k=self.k,
                  reduction=self.use_reduction):
            if not self.use_reduction:
                return [
                    Candidates(unknown=u, documents=tuple(self._known),
                               scores=tuple([0.0] * len(self._known)))
                    for u in pending
                ]
            try:
                return self.reducer.reduce(pending, executor=executor)
            except Exception:
                survivors: List[Candidates] = []
                for unknown in pending:
                    try:
                        survivors.extend(self.reducer.reduce([unknown]))
                    except Exception as exc:
                        _quarantine(
                            unknown.doc_id,
                            f"search-space reduction failed: {exc}",
                            "reduce", skipped, store)
                return survivors

    def link(self, unknowns: Sequence[AliasDocument],
             checkpoint: Optional[Any] = None,
             resume: bool = False,
             budget: Optional[DeadlineBudget] = None) -> LinkResult:
        """Run the full pipeline for a batch of unknown aliases.

        Malformed or failing unknowns are quarantined into
        ``LinkResult.skipped`` instead of aborting the run.  With
        *checkpoint* set, every finished unknown is persisted
        atomically to that path; *resume* additionally skips the
        unknowns an earlier (interrupted) run already completed, and
        the assembled result is identical to an uninterrupted run.

        With a *budget*, linking degrades instead of overrunning: once
        the deadline passes, remaining unknowns are answered from their
        stage-1 scores (``Match.degraded`` set, reasons populated) or —
        when the budget was spent before stage 1 even ran — quarantined
        with ``stage="deadline"``.  A budget with ``degraded_ok=False``
        raises :class:`~repro.errors.DeadlineExceededError` instead.
        Without a budget (and no breaker) this method is byte-identical
        to its pre-degraded-mode behavior.
        """
        if self._known is None:
            raise NotFittedError("AliasLinker.fit has not been called")
        unknowns = list(unknowns)
        store = open_store(checkpoint, fingerprint=self._fingerprint(),
                           resume=resume)
        skipped: Dict[str, SkippedUnknown] = {}
        results: Dict[str, Tuple[List[Match],
                                 List[Tuple[str, float]]]] = {}
        valid: List[AliasDocument] = []
        for position, unknown in enumerate(unknowns):
            try:
                check_document(unknown)
            except DatasetError as exc:
                _quarantine(_placeholder_id(unknown, position),
                            str(exc), "validate", skipped, store)
                continue
            valid.append(unknown)
        pending = [u for u in valid
                   if store is None or u.doc_id not in store]
        guarded = budget is not None or self.breaker is not None
        n_accepted = 0
        n_degraded = 0
        with span("linker.link", n_unknowns=len(unknowns),
                  n_known=len(self._known)):
            if budget is not None and budget.expired():
                # Nothing ran: stage-1 evidence does not exist, so
                # there is no honest answer to degrade to.
                budget.check("reduce")
                for unknown in pending:
                    _quarantine(unknown.doc_id,
                                "deadline budget exhausted before "
                                "search-space reduction",
                                "deadline", skipped, store)
                pending = []
            # Guarded runs stay fully serial (the budget clock and
            # breaker live here and must see every call); otherwise one
            # executor serves both the stage-1 shard fan-out and the
            # restage, so its persistent pool is forked at most once.
            executor = None if guarded else ParallelExecutor(self.workers)
            if executor is None:
                reduced = self._reduce_isolated(pending, skipped, store)
            else:
                reduced = self._reduce_isolated(pending, skipped, store,
                                                executor=executor)
            self._warm(c.unknown for c in reduced)
            if guarded:
                with span("linker.restage", n_unknowns=len(reduced),
                          workers=1):
                    outcomes = [self._stage2_guarded(c, budget)
                                for c in reduced]
            else:
                chunk = _restage_chunk_size(len(reduced),
                                            executor.workers)
                chunks = [list(reduced[i:i + chunk])
                          for i in range(0, len(reduced), chunk)]
                with span("linker.restage", n_unknowns=len(reduced),
                          workers=executor.workers):
                    folded = executor.map_shared(
                        _restage_chunk_task, chunks, state=self,
                        version=self._state_version)
                outcomes = [outcome for part in folded
                            for outcome in part]
            # Match construction, metrics and checkpoint records stay in
            # the parent, in reduced order — a workers=4 run writes the
            # same records in the same order as workers=1.
            for candidates, (status, payload) in zip(reduced, outcomes):
                unknown = candidates.unknown
                if status == "error":
                    _quarantine(unknown.doc_id, payload, "attribute",
                                skipped, store)
                    continue
                if status == "degraded":
                    reasons = tuple(payload)
                    scored = [(doc.doc_id, float(score))
                              for doc, score in zip(candidates.documents,
                                                    candidates.scores)]
                    if not scored:
                        _quarantine(unknown.doc_id,
                                    "no stage-1 evidence to degrade to",
                                    "deadline", skipped, store)
                        continue
                    best_id, best_score = max(scored,
                                              key=lambda pair: pair[1])
                else:
                    scored, best_id, best_score, *rest = payload
                    reasons = rest[0] if rest else ()
                    _CANDIDATE_SET.observe(len(candidates.documents))
                    _RESCORED.inc(len(scored))
                    _BEST_SCORE.observe(best_score)
                first_stage = dict(
                    (doc.doc_id, score)
                    for doc, score in zip(candidates.documents,
                                          candidates.scores))
                accepted = best_score >= self.threshold
                if accepted:
                    _ACCEPTED.inc()
                    n_accepted += 1
                else:
                    _REJECTED.inc()
                degraded = bool(reasons)
                if degraded:
                    _DEGRADED.inc()
                    n_degraded += 1
                    log.info("linker.degraded", unknown=unknown.doc_id,
                             reasons=list(reasons))
                match = Match(
                    unknown_id=unknown.doc_id,
                    candidate_id=best_id,
                    score=best_score,
                    accepted=accepted,
                    first_stage_score=first_stage.get(best_id, 0.0),
                    degraded=degraded,
                    degraded_reasons=reasons,
                )
                results[unknown.doc_id] = ([match], scored)
                if store is not None:
                    store.record(unknown.doc_id, [match], scored)
        log.info("linker.link", n_unknowns=len(unknowns),
                 n_known=len(self._known), accepted=n_accepted,
                 skipped=len(skipped), degraded=n_degraded,
                 threshold=self.threshold)
        return _assemble(unknowns, results, skipped, store)

    def link_one(self, unknown: AliasDocument) -> Match:
        """Convenience: link a single unknown alias.

        Unlike :meth:`link`, a malformed document raises here — with a
        single unknown there is no batch to protect.
        """
        result = self.link([unknown])
        if result.skipped and not result.matches:
            entry = result.skipped[0]
            raise DatasetError(
                f"{entry.unknown_id}: {entry.reason} "
                f"(stage: {entry.stage})")
        return result.matches[0]
