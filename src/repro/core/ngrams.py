"""Fast n-gram counting with integer-coded grams.

Counting word 1–3-grams and character 1–5-grams per user with Python
``Counter`` objects is the textbook approach — and orders of magnitude
too slow for corpora with thousands of 1,500-word aliases.  This module
packs every n-gram into a single ``uint64`` code:

* characters are Latin-1 bytes (the polishing pipeline strips emoji and
  non-English text, so forum messages are effectively Latin-1); a
  5-gram is five bytes plus a 4-bit order tag,
* words are interned into a shared :class:`WordVocab` (18 bits per word
  id, three ids plus the order and kind tags).

Per-document counting then reduces to a vectorized sliding-window
encode followed by ``numpy.unique`` — about two orders of magnitude
faster than hashing strings — and per-corpus aggregation, top-N
selection and sparse-matrix construction all operate on sorted integer
arrays.

Codes are unambiguous: equal codes always mean the same n-gram, and the
original gram can be decoded back for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Bits reserved per word id; three ids (a word 3-gram) must fit below
#: the kind bit (59), so 18 bits each: vocabularies cap at 262,144
#: distinct words — ample for forum corpora after polishing.
_WORD_BITS = 18
_WORD_CAP = 1 << _WORD_BITS

#: Bits for the order tag (stored in the top nibble of the code).
_ORDER_SHIFT = 60

#: Word codes set this bit so they can never collide with char codes
#: even if profiles of both kinds are merged by mistake.
_WORD_KIND_BIT = np.uint64(1) << np.uint64(59)

#: n-gram orders used by the pipeline (Table II).
WORD_ORDERS = (1, 2, 3)
CHAR_ORDERS = (1, 2, 3, 4, 5)


class WordVocab:
    """A shared word-interning table.

    Word ids are assigned on first sight and never change, so codes
    computed at different times remain comparable.  The vocabulary is
    capped at 2**21 entries to keep three ids inside a ``uint64``.
    """

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        self._words: List[str] = []

    def __len__(self) -> int:
        return len(self._words)

    def intern(self, word: str) -> int:
        """Return the id of *word*, assigning a new one if needed."""
        word_id = self._ids.get(word)
        if word_id is None:
            word_id = len(self._words)
            if word_id >= _WORD_CAP:
                raise ConfigurationError(
                    f"word vocabulary exceeded {_WORD_CAP} entries")
            self._ids[word] = word_id
            self._words.append(word)
        return word_id

    def encode(self, words: Sequence[str]) -> np.ndarray:
        """Intern a token sequence into an id array."""
        intern = self.intern
        return np.fromiter((intern(w) for w in words),
                           dtype=np.uint64, count=len(words))

    def word(self, word_id: int) -> str:
        """The word behind an id (for decoding)."""
        return self._words[word_id]


def _sliding_codes(ids: np.ndarray, order: int, bits: int) -> np.ndarray:
    """Pack consecutive runs of *order* ids into single codes."""
    n = len(ids) - order + 1
    if n <= 0:
        return np.empty(0, dtype=np.uint64)
    codes = np.zeros(n, dtype=np.uint64)
    for j in range(order):
        codes |= ids[j:j + n] << np.uint64(bits * (order - 1 - j))
    codes |= np.uint64(order) << np.uint64(_ORDER_SHIFT)
    return codes


def encode_text_chars(text: str) -> np.ndarray:
    """Latin-1 byte ids of *text* (unencodable chars become ``?``)."""
    raw = text.encode("latin-1", "replace")
    return np.frombuffer(raw, dtype=np.uint8).astype(np.uint64)


def char_ngram_codes(text: str,
                     orders: Iterable[int] = CHAR_ORDERS) -> np.ndarray:
    """All character n-gram codes of *text* (one entry per occurrence)."""
    ids = encode_text_chars(text)
    parts = [_sliding_codes(ids, order, 8) for order in orders]
    if not parts:
        return np.empty(0, dtype=np.uint64)
    return np.concatenate(parts)


def word_ngram_codes(tokens: Sequence[str], vocab: WordVocab,
                     orders: Iterable[int] = WORD_ORDERS) -> np.ndarray:
    """All word n-gram codes of a token sequence."""
    ids = vocab.encode(tokens)
    parts = [_sliding_codes(ids, order, _WORD_BITS) | _WORD_KIND_BIT
             for order in orders]
    if not parts:
        return np.empty(0, dtype=np.uint64)
    return np.concatenate(parts)


def count_codes(codes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Collapse an occurrence array into (sorted unique codes, counts)."""
    if codes.size == 0:
        return (np.empty(0, dtype=np.uint64),
                np.empty(0, dtype=np.int64))
    return np.unique(codes, return_counts=True)


@dataclass(frozen=True)
class CodeCounts:
    """A document's n-gram profile: sorted codes with their counts."""

    codes: np.ndarray
    counts: np.ndarray

    def __post_init__(self) -> None:
        if self.codes.shape != self.counts.shape:
            raise ConfigurationError("codes/counts shape mismatch")

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    @classmethod
    def from_occurrences(cls, codes: np.ndarray) -> "CodeCounts":
        unique, counts = count_codes(codes)
        return cls(codes=unique, counts=counts)


def merge_counts(profiles: Iterable[CodeCounts]) -> CodeCounts:
    """Aggregate several documents' profiles into corpus totals."""
    code_parts: List[np.ndarray] = []
    count_parts: List[np.ndarray] = []
    for profile in profiles:
        if profile.codes.size:
            code_parts.append(profile.codes)
            count_parts.append(profile.counts)
    if not code_parts:
        return CodeCounts(np.empty(0, dtype=np.uint64),
                          np.empty(0, dtype=np.int64))
    all_codes = np.concatenate(code_parts)
    all_counts = np.concatenate(count_parts)
    order = np.argsort(all_codes, kind="stable")
    sorted_codes = all_codes[order]
    sorted_counts = all_counts[order]
    boundaries = np.empty(len(sorted_codes), dtype=bool)
    boundaries[0] = True
    np.not_equal(sorted_codes[1:], sorted_codes[:-1], out=boundaries[1:])
    starts = np.flatnonzero(boundaries)
    merged_counts = np.add.reduceat(sorted_counts, starts)
    return CodeCounts(codes=sorted_codes[starts], counts=merged_counts)


def document_frequencies(profiles: Iterable[CodeCounts]) -> CodeCounts:
    """Count in how many documents each code appears (for the Idf)."""
    binary = (CodeCounts(p.codes, np.ones(len(p.codes), dtype=np.int64))
              for p in profiles)
    return merge_counts(binary)


def select_top(corpus: CodeCounts, budget: int) -> np.ndarray:
    """The *budget* most frequent codes, returned sorted by code value.

    Ties are broken by code value so selection is deterministic.  The
    returned array is sorted ascending so that per-document projection
    can use :func:`numpy.searchsorted`.
    """
    if budget < 0:
        raise ConfigurationError("budget must be >= 0")
    if budget == 0 or corpus.codes.size == 0:
        return np.empty(0, dtype=np.uint64)
    if corpus.codes.size <= budget:
        return np.sort(corpus.codes)
    # argsort on (-count, code): stable sort on code first, then count.
    order = np.argsort(-corpus.counts, kind="stable")
    chosen = corpus.codes[order[:budget]]
    return np.sort(chosen)


def project_counts(profile: CodeCounts,
                   selected: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Project a document profile onto a selected code set.

    Returns ``(column_indices, counts)`` for the codes of *profile*
    present in *selected* (which must be sorted ascending).
    """
    if profile.codes.size == 0 or selected.size == 0:
        return (np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64))
    positions = np.searchsorted(selected, profile.codes)
    positions = np.minimum(positions, len(selected) - 1)
    hits = selected[positions] == profile.codes
    return positions[hits].astype(np.int64), profile.counts[hits]


def decode_char_code(code: int) -> str:
    """Recover the character n-gram behind a char code."""
    order = code >> _ORDER_SHIFT
    chars = []
    for j in range(int(order)):
        byte = (code >> (8 * (int(order) - 1 - j))) & 0xFF
        chars.append(chr(byte))
    return "".join(chars)


def decode_word_code(code: int, vocab: WordVocab) -> str:
    """Recover the word n-gram behind a word code."""
    code = int(code) & ~int(_WORD_KIND_BIT)
    order = code >> _ORDER_SHIFT
    mask = _WORD_CAP - 1
    words = []
    for j in range(int(order)):
        word_id = (code >> (_WORD_BITS * (int(order) - 1 - j))) & mask
        words.append(vocab.word(int(word_id)))
    return " ".join(words)
