"""Cosine similarity over sparse feature matrices (eq. 2 of the paper).

Feature vectors leave :class:`~repro.core.features.FeatureExtractor`
L2-normalized, so cosine similarity is a plain sparse dot product; the
helpers here keep that invariant explicit and provide the ranking
primitives k-attribution builds on.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import sparse

from repro.core.tfidf import l2_normalize_rows


def cosine_similarity(queries: sparse.spmatrix,
                      corpus: sparse.spmatrix,
                      assume_normalized: bool = True) -> np.ndarray:
    """Pairwise cosine similarities, ``queries x corpus``.

    Parameters
    ----------
    queries / corpus:
        Sparse matrices with one row per document.
    assume_normalized:
        Skip re-normalization when rows are already unit-length (the
        pipeline's default).  Set to ``False`` for raw count matrices.

    Returns
    -------
    numpy.ndarray
        Dense ``(n_queries, n_corpus)`` similarity matrix in [0, 1]
        (all pipeline features are non-negative).
    """
    q = sparse.csr_matrix(queries, dtype=np.float64)
    c = sparse.csr_matrix(corpus, dtype=np.float64)
    if q.shape[1] != c.shape[1]:
        raise ValueError(
            f"dimension mismatch: {q.shape[1]} vs {c.shape[1]}")
    if not assume_normalized:
        q = l2_normalize_rows(q)
        c = l2_normalize_rows(c)
    # .toarray() yields a plain ndarray directly; .todense() returns
    # np.matrix and forces an extra conversion.
    return (q @ c.T).toarray()


def cosine_pair(vector_a: sparse.spmatrix,
                vector_b: sparse.spmatrix) -> float:
    """Cosine similarity of two single-row sparse vectors."""
    return float(cosine_similarity(vector_a, vector_b)[0, 0])


def top_k(scores: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row top-*k* candidates of a score matrix.

    Returns ``(indices, values)``, both of shape ``(n_rows, k)``, with
    candidates sorted by descending score within each row.  ``k`` is
    clamped to the number of columns.

    Ties are broken by ascending column index (stable sort), making
    the selection fully deterministic — the invariant the blocked
    stage-1 fold (:func:`repro.perf.blocked.blocked_top_k`) relies on
    to be exactly equivalent to the one-shot computation.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n_rows, n_cols = scores.shape
    k = min(k, n_cols)
    order = np.argsort(-scores, axis=1, kind="stable")[:, :k]
    values = np.take_along_axis(scores, order, axis=1)
    return order, values


def rank_of(scores_row: np.ndarray, target_index: int) -> int:
    """1-based rank of *target_index* in a descending ordering of scores.

    Used by the accuracy@k evaluations (Table III, Fig. 4): the match
    counts as correct at *k* when its rank is <= k.  Ties are resolved
    pessimistically (equal scores ahead of the target count against it).
    """
    target = scores_row[target_index]
    better = int(np.sum(scores_row > target))
    ties_before = int(np.sum(
        (scores_row == target)[:target_index]))
    return better + ties_before + 1
