"""Reply-graph and thread-structure features (the third feature family).

SYSML-style interaction structure: darknet-forum users are identified
not only by *how* they write but by *whom* they talk to and *when* they
post inside threads.  This module turns a :class:`~repro.forums.models.Forum`
— its threads plus the ``parent_id`` reply links on messages — into one
fixed-length non-negative vector per alias:

==  =============================  =========================================
 #  name                           meaning
==  =============================  =========================================
 0  replies_out                    log1p(# replies the alias posted)
 1  replies_in                     log1p(# replies the alias received)
 2  reply_partners_out             log1p(# distinct aliases replied to)
 3  reply_partners_in              log1p(# distinct aliases replying to it)
 4  reply_ratio                    replies posted / messages posted
 5  root_ratio                     threads started / threads participated
 6  threads                        log1p(# threads participated in)
 7  thread_burst                   mean own messages per participated thread
 8  cooccurrence                   log1p(mean # distinct co-posters/thread)
 9  cadence                        log1p(median minutes between own
                                   consecutive posts within one thread)
10  fast_follow                    fraction of replies within one hour of
                                   the parent post
11  reciprocity                    |out ∩ in partners| / |out ∪ in partners|
==  =============================  =========================================

Counts use ``log1p`` so prolific aliases do not drown the ratio
features; the extractor L2-normalizes the whole block anyway, so only
relative magnitudes matter.  Every entry is deterministic: threads are
visited in sorted ``thread_id`` order and messages in thread order.

Aliases that never appear in a thread get the zero vector — the family
then contributes nothing to their cosine, which is the honest reading
of "no structural evidence".
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Set

import numpy as np

from repro.forums.models import Forum

#: Length of the structure feature vector.
STRUCTURE_DIM = 12

#: Feature names, index-aligned with the vector.
STRUCTURE_FEATURE_NAMES = (
    "replies_out", "replies_in", "reply_partners_out",
    "reply_partners_in", "reply_ratio", "root_ratio", "threads",
    "thread_burst", "cooccurrence", "cadence", "fast_follow",
    "reciprocity",
)

#: A reply within this many seconds of its parent is a "fast follow".
FAST_FOLLOW_SECONDS = 3600


class _AliasStats:
    """Mutable per-alias accumulator (internal)."""

    __slots__ = ("messages", "replies_out", "replies_in",
                 "partners_out", "partners_in", "threads_started",
                 "threads", "own_per_thread", "coposters_per_thread",
                 "gaps", "fast_follows")

    def __init__(self) -> None:
        self.messages = 0
        self.replies_out = 0
        self.replies_in = 0
        self.partners_out: Set[str] = set()
        self.partners_in: Set[str] = set()
        self.threads_started = 0
        self.threads = 0
        self.own_per_thread: List[int] = []
        self.coposters_per_thread: List[int] = []
        self.gaps: List[float] = []
        self.fast_follows: List[bool] = []

    def vector(self) -> np.ndarray:
        out = np.zeros(STRUCTURE_DIM, dtype=np.float64)
        out[0] = math.log1p(self.replies_out)
        out[1] = math.log1p(self.replies_in)
        out[2] = math.log1p(len(self.partners_out))
        out[3] = math.log1p(len(self.partners_in))
        if self.messages:
            out[4] = self.replies_out / self.messages
        if self.threads:
            out[5] = self.threads_started / self.threads
        out[6] = math.log1p(self.threads)
        if self.own_per_thread:
            out[7] = float(np.mean(self.own_per_thread))
        if self.coposters_per_thread:
            out[8] = math.log1p(float(np.mean(self.coposters_per_thread)))
        if self.gaps:
            out[9] = math.log1p(float(np.median(self.gaps)) / 60.0)
        if self.fast_follows:
            out[10] = sum(self.fast_follows) / len(self.fast_follows)
        union = self.partners_out | self.partners_in
        if union:
            out[11] = len(self.partners_out & self.partners_in) / len(union)
        return out


def structure_profiles(forum: Forum,
                       alias_prefix: str = "",
                       ) -> Dict[str, np.ndarray]:
    """Compute one structure vector per alias of *forum*.

    Returns a mapping for **every** user of the forum (zero vectors for
    aliases absent from all threads), keyed ``alias_prefix + alias`` —
    pass ``alias_prefix="tmg/"`` when the profiles will be attached to
    a merged forum whose aliases are namespaced by source forum
    (:func:`~repro.forums.models.merge_forums` does not carry threads).
    """
    authors: Dict[str, str] = {}
    timestamps: Dict[str, int] = {}
    for message in forum.iter_messages():
        authors[message.message_id] = message.author
        timestamps[message.message_id] = message.timestamp

    stats: Dict[str, _AliasStats] = {}

    def stat(alias: str) -> _AliasStats:
        if alias not in stats:
            stats[alias] = _AliasStats()
        return stats[alias]

    for record in forum.users.values():
        entry = stat(record.alias)
        entry.messages = len(record.messages)
        for message in record.messages:
            parent = message.parent_id
            if parent is None or parent not in authors:
                continue
            parent_author = authors[parent]
            entry.replies_out += 1
            if parent_author != record.alias:
                entry.partners_out.add(parent_author)
                other = stat(parent_author)
                other.replies_in += 1
                other.partners_in.add(record.alias)
            gap = message.timestamp - timestamps[parent]
            entry.fast_follows.append(0 <= gap <= FAST_FOLLOW_SECONDS)

    for thread_id in sorted(forum.threads):
        thread = forum.threads[thread_id]
        present = [mid for mid in thread.message_ids if mid in authors]
        if not present:
            continue
        by_author: Dict[str, List[int]] = {}
        for mid in present:
            by_author.setdefault(authors[mid], []).append(timestamps[mid])
        for alias, own_ts in by_author.items():
            entry = stat(alias)
            entry.threads += 1
            entry.own_per_thread.append(len(own_ts))
            entry.coposters_per_thread.append(len(by_author) - 1)
            if alias == thread.author:
                entry.threads_started += 1
            own_ts.sort()
            entry.gaps.extend(
                float(b - a) for a, b in zip(own_ts, own_ts[1:]))

    profiles: Dict[str, np.ndarray] = {}
    for alias in forum.users:
        entry = stats.get(alias)
        vector = entry.vector() if entry is not None \
            else np.zeros(STRUCTURE_DIM, dtype=np.float64)
        profiles[alias_prefix + alias] = vector
    return profiles


def merge_profile_maps(*maps: Mapping[str, np.ndarray],
                       ) -> Dict[str, Optional[np.ndarray]]:
    """Union several per-forum profile maps (later maps win on clashes)."""
    merged: Dict[str, Optional[np.ndarray]] = {}
    for mapping in maps:
        merged.update(mapping)
    return merged
