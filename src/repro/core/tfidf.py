"""Tf-Idf weighting over sparse count matrices.

Section IV-A: after selecting the top-N n-grams by corpus frequency,
"we compute their weight with the Tf-Idf ... This measure gives more
importance to features that are frequently used by only one user and
less importance to popular features such as stop-words."

The smooth formulation is used (as in scikit-learn):

.. math::

    \\mathrm{idf}(t) = \\ln\\frac{1 + N}{1 + \\mathrm{df}(t)} + 1

so no selected feature ever receives a zero or negative weight, and
rows are L2-normalized so that dot products between rows *are* cosine
similarities.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import sparse

from repro.errors import NotFittedError


class TfidfModel:
    """Idf statistics learned from a count matrix.

    Usage::

        model = TfidfModel().fit(counts)      # counts: CSR, docs x terms
        weighted = model.transform(counts)    # L2-normalized Tf-Idf
    """

    def __init__(self) -> None:
        self._idf: Optional[np.ndarray] = None

    @property
    def idf(self) -> np.ndarray:
        """The fitted idf vector (raises before :meth:`fit`)."""
        if self._idf is None:
            raise NotFittedError("TfidfModel.fit has not been called")
        return self._idf

    def fit(self, counts: sparse.spmatrix) -> "TfidfModel":
        """Learn idf weights from a documents-by-terms count matrix."""
        matrix = sparse.csr_matrix(counts)
        n_docs = matrix.shape[0]
        df = np.bincount(matrix.indices, minlength=matrix.shape[1])
        self._idf = np.log((1.0 + n_docs) / (1.0 + df)) + 1.0
        return self

    def transform(self, counts: sparse.spmatrix) -> sparse.csr_matrix:
        """Apply Tf-Idf weighting and L2 row normalization."""
        if self._idf is None:
            raise NotFittedError("TfidfModel.fit has not been called")
        matrix = sparse.csr_matrix(counts, dtype=np.float64, copy=True)
        if matrix.shape[1] != self._idf.shape[0]:
            raise ValueError(
                f"matrix has {matrix.shape[1]} columns, model was fitted "
                f"on {self._idf.shape[0]}")
        matrix.data *= self._idf[matrix.indices]
        # The matrix is already a private copy: normalize it in place.
        return l2_normalize_rows(matrix, copy=False)

    def fit_transform(self, counts: sparse.spmatrix) -> sparse.csr_matrix:
        """Convenience: :meth:`fit` then :meth:`transform`."""
        return self.fit(counts).transform(counts)


def l2_normalize_rows(matrix: sparse.spmatrix,
                      copy: bool = True) -> sparse.csr_matrix:
    """Scale every row of a CSR matrix to unit L2 norm (zero rows kept).

    The scaling happens directly on ``matrix.data`` — no ``diags``
    construction, no sparse matmul, no second copy of the matrix.  By
    default the input is copied first; callers that own a freshly
    built matrix pass ``copy=False`` to normalize it in place (the hot
    paths: every Tf-Idf transform and every block stack).
    """
    if not sparse.isspmatrix_csr(matrix) or matrix.dtype != np.float64:
        matrix = sparse.csr_matrix(matrix, dtype=np.float64)
    elif copy:
        matrix = matrix.copy()
    if matrix.nnz == 0:
        return matrix
    row_nnz = np.diff(matrix.indptr)
    squared = matrix.data * matrix.data
    row_sums = np.zeros(matrix.shape[0], dtype=np.float64)
    occupied = np.flatnonzero(row_nnz > 0)
    # reduceat over the starts of the occupied rows sums each row's
    # squared data exactly (empty rows contribute no segments).
    row_sums[occupied] = np.add.reduceat(
        squared, matrix.indptr[occupied].astype(np.int64))
    norms = np.sqrt(row_sums)
    scale = np.divide(1.0, norms, out=np.zeros_like(norms),
                      where=norms > 0)
    matrix.data *= np.repeat(scale, row_nnz)
    return matrix
