"""Threshold calibration (Section IV-E).

The acceptance threshold *t* is found once, on Reddit alter-egos, and
then applied unchanged everywhere (the paper's transferability claim,
Table V): take 1,000 alter egos, split them into two 500-user sets W1
and W2, run the full pipeline for W1 against the known Reddit aliases,
sweep the second-stage scores as candidate thresholds, and pick the
point trading precision against recall (the paper lands on t = 0.4190,
giving 94% precision at 80% recall on W1 and 87%/82% on W2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.linker import LinkResult, Match
from repro.errors import ConfigurationError
from repro.eval.metrics import PRCurve, pr_curve


def matches_to_curve(matches: Sequence[Match],
                     truth: Dict[str, str],
                     n_positive: int | None = None) -> PRCurve:
    """Precision-recall curve from a linking run.

    Parameters
    ----------
    matches:
        Best-candidate matches (one per unknown), from
        :meth:`repro.core.linker.AliasLinker.link`.
    truth:
        ``unknown doc_id -> true known doc_id``.
    n_positive:
        Recall denominator; defaults to the number of unknowns that
        have an entry in *truth*.
    """
    scores: List[float] = []
    labels: List[bool] = []
    with_truth = 0
    for match in matches:
        expected = truth.get(match.unknown_id)
        if expected is not None:
            with_truth += 1
        scores.append(match.score)
        labels.append(expected == match.candidate_id)
    if n_positive is None:
        n_positive = with_truth
    return pr_curve(scores, labels, n_positive)


@dataclass(frozen=True)
class Calibration:
    """Result of a threshold calibration.

    Attributes
    ----------
    threshold:
        The chosen acceptance threshold.
    precision / recall:
        Point metrics at the chosen threshold on the calibration set.
    curve:
        The full curve (for plotting Figs. 2/5).
    """

    threshold: float
    precision: float
    recall: float
    curve: PRCurve


class ThresholdCalibrator:
    """Pick the acceptance threshold from a calibration run.

    Parameters
    ----------
    target_recall:
        The recall the threshold must reach (paper: 80%).
    """

    def __init__(self, target_recall: float = 0.80) -> None:
        if not 0.0 < target_recall <= 1.0:
            raise ConfigurationError(
                f"target_recall must be in (0, 1], got {target_recall}")
        self.target_recall = target_recall

    def calibrate(self, matches: Sequence[Match],
                  truth: Dict[str, str],
                  n_positive: int | None = None) -> Calibration:
        """Choose the threshold reaching the target recall."""
        curve = matches_to_curve(matches, truth, n_positive)
        if len(curve.thresholds) == 0:
            raise ConfigurationError(
                "cannot calibrate on an empty match set")
        threshold = curve.threshold_for_recall(self.target_recall)
        precision, recall = curve.at_threshold(threshold)
        return Calibration(threshold=threshold, precision=precision,
                           recall=recall, curve=curve)

    def validate(self, calibration: Calibration,
                 matches: Sequence[Match],
                 truth: Dict[str, str],
                 n_positive: int | None = None,
                 ) -> Tuple[float, float, PRCurve]:
        """Apply a calibrated threshold to a held-out set (W2).

        Returns ``(precision, recall, curve)`` on the new set at the
        previously chosen threshold.
        """
        curve = matches_to_curve(matches, truth, n_positive)
        precision, recall = curve.at_threshold(calibration.threshold)
        return precision, recall, curve
