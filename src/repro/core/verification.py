"""Authorship Verification on top of the attribution pipeline (§II-B).

The paper frames its task as the hard variant of authorship analysis:
*Authorship Verification* — "the task of finding if the author is one
of the candidates and, if it is, determine who among them".  The
k-attribution + threshold machinery already embodies that; this module
gives it an explicit, reusable API:

* :class:`PairVerifier` — is this *specific* pair of documents the same
  author?  (score + calibrated decision);
* :class:`OpenSetAttributor` — who among the known aliases wrote this,
  *if anyone*?  Returns an attribution or an explicit abstention, with
  the decision margin exposed for triage.

Both reuse the linker's second-stage scoring so their thresholds live
on the same scale as the calibrated t of Section IV-E.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.config import (
    DEFAULT_K,
    FINAL_FEATURES,
    PAPER_THRESHOLD,
    FeatureBudget,
)
from repro.core.documents import AliasDocument
from repro.core.features import (
    DocumentEncoder,
    FeatureExtractor,
    FeatureWeights,
)
from repro.core.linker import AliasLinker
from repro.core.similarity import cosine_similarity
from repro.errors import ConfigurationError, NotFittedError


@dataclass(frozen=True)
class Verdict:
    """Outcome of a verification query.

    Attributes
    ----------
    same_author:
        The calibrated decision.
    score:
        Second-stage cosine similarity of the pair.
    threshold:
        The threshold the decision used.
    margin:
        ``score - threshold``; positive means accepted, and its
        magnitude is a crude confidence proxy.
    """

    same_author: bool
    score: float
    threshold: float

    @property
    def margin(self) -> float:
        return self.score - self.threshold


class PairVerifier:
    """Verify whether two alias documents share an author.

    The pair is scored inside a *context corpus* (other documents from
    the same population) so the Tf-Idf weighting is meaningful: scoring
    two documents in isolation would make every shared feature look
    rare and inflate the similarity.

    Parameters
    ----------
    threshold:
        Acceptance threshold on the second-stage score.
    context_size:
        How many context documents to include alongside the pair.
    """

    def __init__(self, threshold: float = PAPER_THRESHOLD,
                 context_size: int = DEFAULT_K,
                 budget: FeatureBudget = FINAL_FEATURES,
                 weights: FeatureWeights | None = None,
                 use_activity: bool = True) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ConfigurationError("threshold must be in [0, 1]")
        if context_size < 0:
            raise ConfigurationError("context_size must be >= 0")
        self.threshold = threshold
        self.context_size = context_size
        self.budget = budget
        self.weights = weights or FeatureWeights()
        self.use_activity = use_activity
        self._context: List[AliasDocument] = []

    def fit(self, context: Sequence[AliasDocument]) -> "PairVerifier":
        """Provide the population documents used as Idf context."""
        self._context = list(context)
        return self

    def verify(self, doc_a: AliasDocument,
               doc_b: AliasDocument) -> Verdict:
        """Score the pair and decide.

        Works without :meth:`fit` (pure pairwise scoring) but is more
        reliable with a context corpus.
        """
        context = [d for d in self._context
                   if d.doc_id not in (doc_a.doc_id, doc_b.doc_id)]
        context = context[:self.context_size]
        corpus = [doc_b] + context
        extractor = FeatureExtractor(
            budget=self.budget,
            weights=self.weights,
            use_activity=self.use_activity,
            encoder=DocumentEncoder(),
        )
        extractor.fit(corpus)
        corpus_matrix = extractor.transform([doc_b])
        query_matrix = extractor.transform([doc_a])
        score = float(
            cosine_similarity(query_matrix, corpus_matrix)[0, 0])
        return Verdict(same_author=score >= self.threshold,
                       score=score, threshold=self.threshold)


@dataclass(frozen=True)
class Attribution:
    """Outcome of an open-set attribution query.

    ``author_id`` is ``None`` when the system abstains (no candidate
    cleared the threshold) — the open-set answer "none of them".
    """

    author_id: Optional[str]
    score: float
    threshold: float
    runner_up_id: Optional[str]
    runner_up_score: float

    @property
    def attributed(self) -> bool:
        return self.author_id is not None

    @property
    def margin_over_runner_up(self) -> float:
        """Gap between the winner and the second-best candidate."""
        return self.score - self.runner_up_score


class OpenSetAttributor:
    """Open-set authorship attribution: name the author or abstain.

    A thin, explicit wrapper over :class:`~repro.core.linker.AliasLinker`
    that exposes the abstention case and the runner-up margin.
    """

    def __init__(self, threshold: float = PAPER_THRESHOLD,
                 k: int = DEFAULT_K,
                 use_activity: bool = True) -> None:
        self._linker = AliasLinker(k=k, threshold=threshold,
                                   use_activity=use_activity)
        self.threshold = threshold

    def fit(self, known: Sequence[AliasDocument]) -> "OpenSetAttributor":
        self._linker.fit(known)
        return self

    def attribute(self, unknown: AliasDocument) -> Attribution:
        """Attribute one unknown document, or abstain."""
        try:
            result = self._linker.link([unknown])
        except NotFittedError:
            raise
        scored = sorted(result.candidate_scores[unknown.doc_id],
                        key=lambda pair: -pair[1])
        best_id, best_score = scored[0]
        runner_id, runner_score = (scored[1] if len(scored) > 1
                                   else (None, 0.0))
        accepted = best_score >= self.threshold
        return Attribution(
            author_id=best_id if accepted else None,
            score=best_score,
            threshold=self.threshold,
            runner_up_id=runner_id,
            runner_up_score=runner_score,
        )

    def attribute_many(self, unknowns: Sequence[AliasDocument],
                       ) -> List[Attribution]:
        """Attribute a batch of unknowns."""
        return [self.attribute(u) for u in unknowns]
