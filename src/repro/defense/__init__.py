"""Countermeasures against the linking attack (Section VI).

The paper closes with a discussion of how a user could defend herself:
adversarial stylometry for the text features and schedule discipline
for the daily activity profile.  This package implements both so the
mitigation claims can be measured (see
``benchmarks/bench_defense_countermeasures.py``).
"""

from repro.defense.obfuscation import (
    ObfuscationConfig,
    SLANG_EXPANSIONS,
    SYNONYM_CANON,
    StyleObfuscator,
    TYPO_FIXES,
)
from repro.defense.scheduling import ScheduleJitterer, ScheduleShifter

__all__ = [
    "ObfuscationConfig",
    "SLANG_EXPANSIONS",
    "SYNONYM_CANON",
    "StyleObfuscator",
    "TYPO_FIXES",
    "ScheduleJitterer",
    "ScheduleShifter",
]
