"""Adversarial stylometry: writing-style obfuscation (Section VI).

The paper's countermeasures discussion: "a user can use adversarial
stylometry tools in order to obfuscate her linguistic features"
(citing Anonymouth).  This module implements that tool for the
reproduction, so the mitigation claim can be *measured* instead of
asserted:

* **case flattening** — removes capitalization habits;
* **punctuation regularization** — every sentence ends with a single
  period; ellipses, exclamation runs and emoticons disappear;
* **typo correction** — habitual misspellings are repaired (they are
  among the strongest character-n-gram fingerprints);
* **slang expansion** — personal abbreviations are expanded to their
  canonical forms;
* **synonym canonicalization** — words in a synonym class are replaced
  by the class representative, flattening vocabulary preferences.

Each transform can be toggled; the defense bench sweeps them.  The
obfuscator intentionally does *not* touch the daily activity profile —
that is :mod:`repro.defense.scheduling`'s job, mirroring the paper's
separate treatment of the two feature families.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.forums.models import Forum, Message, UserRecord
from repro.synth import wordlists

#: Slang token -> canonical expansion.
SLANG_EXPANSIONS: Dict[str, str] = {
    "u": "you", "ur": "your", "r": "are", "y": "why", "ppl": "people",
    "bc": "because", "cuz": "because", "tho": "though", "rn": "now",
    "thx": "thanks", "pls": "please", "plz": "please", "ya": "you",
    "yea": "yes", "yeah": "yes", "yep": "yes", "nah": "no",
    "nope": "no", "imo": "in my opinion", "imho": "in my opinion",
    "tbh": "to be honest", "ngl": "not going to lie",
    "idk": "i do not know", "iirc": "if i recall correctly",
    "afaik": "as far as i know", "btw": "by the way",
    "fyi": "for your information", "gonna": "going to",
    "wanna": "want to", "gotta": "got to", "dunno": "do not know",
    "lemme": "let me", "gimme": "give me", "kinda": "kind of",
    "sorta": "sort of", "lol": "", "lmao": "", "rofl": "", "smh": "",
    "omg": "", "wtf": "", "bruh": "", "fam": "", "bro": "",
}

#: Synonym classes: every member maps to the first (canonical) word.
_SYNONYM_CLASSES = (
    ("big", "large", "huge"),
    ("small", "little", "tiny"),
    ("good", "great", "awesome", "amazing", "incredible"),
    ("bad", "terrible", "awful"),
    ("fast", "quick", "rapid"),
    ("happy", "glad"),
    ("sad", "unhappy"),
    ("start", "begin"),
    ("stop", "end", "finish"),
    ("buy", "purchase"),
    ("need", "require"),
    ("think", "believe", "reckon"),
    ("maybe", "perhaps"),
    ("really", "truly", "genuinely"),
    ("smart", "clever"),
    ("reliable", "solid", "legit", "decent"),
    ("strange", "weird", "odd"),
    ("help", "assist"),
    ("problem", "issue"),
    ("answer", "reply"),
)

SYNONYM_CANON: Dict[str, str] = {
    member: cls[0] for cls in _SYNONYM_CLASSES for member in cls[1:]
}

#: Reverse of the habitual-typo table: misspelling -> correct form.
TYPO_FIXES: Dict[str, str] = {v: k for k, v in wordlists.TYPO_MAP.items()}

_EMOTICON_RE = re.compile(
    "|".join(re.escape(e) for e in
             sorted(wordlists.EMOTICONS, key=len, reverse=True)))
_PUNCT_RUN_RE = re.compile(r"\.{2,}|[!?]{2,}")
_WORD_RE = re.compile(r"[A-Za-z']+")


@dataclass(frozen=True)
class ObfuscationConfig:
    """Which obfuscation transforms to apply."""

    flatten_case: bool = True
    regularize_punctuation: bool = True
    fix_typos: bool = True
    expand_slang: bool = True
    canonicalize_synonyms: bool = True


class StyleObfuscator:
    """Rewrite messages to suppress stylometric fingerprints.

    Examples
    --------
    >>> obf = StyleObfuscator()
    >>> obf.obfuscate_text("Ngl this vendor is AWESOME!!! :)")
    'not going to lie this vendor is good.'
    """

    def __init__(self, config: ObfuscationConfig | None = None) -> None:
        self.config = config or ObfuscationConfig()

    @staticmethod
    def _fix_typo(word: str) -> str:
        """Repair a habitual misspelling, inflections included."""
        for suffix in ("", "d", "ed", "s", "ing"):
            base = word[:len(word) - len(suffix)] if suffix else word
            if base in TYPO_FIXES:
                return TYPO_FIXES[base] + suffix
        return word

    def _rewrite_word(self, word: str) -> str:
        lowered = word.lower()
        rewritten = lowered
        if self.config.expand_slang and rewritten in SLANG_EXPANSIONS:
            rewritten = SLANG_EXPANSIONS[rewritten]
            if not rewritten:
                return ""
        if self.config.fix_typos:
            rewritten = self._fix_typo(rewritten)
        if self.config.canonicalize_synonyms and \
                rewritten in SYNONYM_CANON:
            rewritten = SYNONYM_CANON[rewritten]
        if self.config.flatten_case:
            return rewritten
        if rewritten == lowered:
            return word  # nothing changed: keep original casing
        if word[:1].isupper():
            return rewritten[:1].upper() + rewritten[1:]
        return rewritten

    def obfuscate_text(self, text: str) -> str:
        """Return the obfuscated version of one message."""
        if self.config.regularize_punctuation:
            text = _EMOTICON_RE.sub("", text)
            text = _PUNCT_RUN_RE.sub(".", text)
            text = text.replace("!", ".").replace("?", ".")
            text = re.sub(r"[;:]", ",", text)
        pieces: List[str] = []
        last = 0
        for match in _WORD_RE.finditer(text):
            pieces.append(text[last:match.start()])
            pieces.append(self._rewrite_word(match.group(0)))
            last = match.end()
        pieces.append(text[last:])
        out = "".join(pieces)
        out = re.sub(r"\s+", " ", out).strip()
        out = re.sub(r"\s+([.,])", r"\1", out)
        if self.config.regularize_punctuation:
            # single-char replacements and the space-before-punctuation
            # fix can create fresh runs ("!." -> "..", ". ." -> "..");
            # collapse them last so the transform is idempotent
            out = re.sub(r"\.{2,}", ".", out)
        return out

    def obfuscate_record(self, record: UserRecord) -> UserRecord:
        """Obfuscate every message of one alias (new record)."""
        clean = UserRecord(alias=record.alias, forum=record.forum,
                           metadata=dict(record.metadata))
        for message in record.messages:
            clean.messages.append(
                message.with_text(self.obfuscate_text(message.text)))
        return clean

    def obfuscate_forum(self, forum: Forum) -> Forum:
        """Obfuscate an entire forum (the population-level defense)."""
        out = Forum(name=forum.name,
                    utc_offset_hours=forum.utc_offset_hours,
                    sections=list(forum.sections))
        for alias, record in forum.users.items():
            out.users[alias] = self.obfuscate_record(record)
        out.threads = dict(forum.threads)
        return out
