"""Posting-schedule countermeasures (Section VI).

"The best way to protect themselves against daily activity profiles
attack on different platforms is to post on a completely different
time, for example on one forum in the morning and the other in the
evening."  The paper argues this is *almost impractical* for a human —
but a defense tool can do it mechanically.  Two strategies:

* :class:`ScheduleShifter` — move every post to a fixed target window
  (the paper's morning-vs-evening advice), destroying the cross-forum
  profile correlation while keeping the user's day structure plausible;
* :class:`ScheduleJitterer` — spread posts uniformly over the day,
  flattening the profile entirely (a delay-posting queue bot).

Both operate on timestamps only; text is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.forums.models import DAY, HOUR, Forum, Message, UserRecord


def _retime_record(record: UserRecord, new_hour_of) -> UserRecord:
    """Rebuild a record with per-message hours from *new_hour_of*."""
    out = UserRecord(alias=record.alias, forum=record.forum,
                     metadata=dict(record.metadata))
    for message in record.messages:
        day_start = message.timestamp - (message.timestamp % DAY)
        hour, minute_seconds = new_hour_of(message)
        from dataclasses import replace

        out.messages.append(replace(
            message, timestamp=day_start + hour * HOUR + minute_seconds))
    return out


@dataclass(frozen=True)
class ScheduleShifter:
    """Move every post into a fixed daily window.

    Parameters
    ----------
    target_hour:
        Start of the posting window (0..23, UTC).
    window_hours:
        Width of the window posts are spread over.
    seed:
        Randomness for the position inside the window.
    """

    target_hour: int = 8
    window_hours: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.target_hour < 24:
            raise ConfigurationError("target_hour must be in 0..23")
        if not 1 <= self.window_hours <= 24:
            raise ConfigurationError("window_hours must be in 1..24")

    def apply_record(self, record: UserRecord) -> UserRecord:
        rng = np.random.default_rng(self.seed)

        def new_hour(message: Message):
            offset = int(rng.integers(self.window_hours))
            hour = (self.target_hour + offset) % 24
            return hour, int(rng.integers(HOUR))

        return _retime_record(record, new_hour)

    def apply_forum(self, forum: Forum) -> Forum:
        out = Forum(name=forum.name,
                    utc_offset_hours=forum.utc_offset_hours,
                    sections=list(forum.sections))
        for alias, record in forum.users.items():
            out.users[alias] = self.apply_record(record)
        out.threads = dict(forum.threads)
        return out


@dataclass(frozen=True)
class ScheduleJitterer:
    """Spread posts uniformly over the 24 hours (a queue bot).

    A flat profile carries no information: every candidate looks the
    same to the activity feature, reducing the attack to pure
    stylometry.
    """

    seed: int = 0

    def apply_record(self, record: UserRecord) -> UserRecord:
        rng = np.random.default_rng(self.seed)

        def new_hour(message: Message):
            return int(rng.integers(24)), int(rng.integers(HOUR))

        return _retime_record(record, new_hour)

    def apply_forum(self, forum: Forum) -> Forum:
        out = Forum(name=forum.name,
                    utc_offset_hours=forum.utc_offset_hours,
                    sections=list(forum.sections))
        for alias, record in forum.users.items():
            out.users[alias] = self.apply_record(record)
        out.threads = dict(forum.threads)
        return out
