"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while
still being able to discriminate precise failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied.

    Raised eagerly at construction time (e.g. a negative n-gram order, a
    ``k`` of zero for k-attribution, an empty feature budget) so that
    misconfigurations fail before any expensive computation starts.
    """


class InsufficientDataError(ReproError):
    """A user or dataset does not meet the minimum data requirements.

    The paper requires at least 30 usable timestamps to build a daily
    activity profile and at least 1,500 words of polished text per alias
    (Section IV-D).  Operations that cannot proceed below these floors
    raise this error instead of silently producing unreliable profiles.
    """


class DatasetError(ReproError):
    """A dataset file or in-memory dataset is malformed or inconsistent."""


class ScrapeError(ReproError):
    """The simulated scraper could not complete a collection run."""


class ResilienceError(ReproError):
    """Base class for fault-tolerance failures (retries, checkpoints).

    The resilience layer (:mod:`repro.resilience`) distinguishes
    *transient* conditions, which a :class:`~repro.resilience.policy.
    RetryPolicy` may retry, from *terminal* ones, which abort.  This
    branch of the hierarchy covers the terminal ones.
    """


class TransientError(ResilienceError):
    """A failure that is expected to succeed when retried.

    Raised by the fault-injection harness and by simulated I/O; retry
    policies treat it (and any exception type registered as retryable)
    as a signal to back off and try again rather than to abort.
    """


class RetryExhaustedError(ResilienceError):
    """Every permitted retry attempt failed (or the deadline passed).

    Attributes
    ----------
    attempts:
        Number of attempts actually made.
    backoff_seconds:
        Total backoff time consumed between attempts.
    last_error:
        The exception raised by the final attempt, also chained as
        ``__cause__``.
    """

    def __init__(self, message: str, attempts: int = 0,
                 backoff_seconds: float = 0.0,
                 last_error: Exception | None = None) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.backoff_seconds = backoff_seconds
        self.last_error = last_error


class CheckpointError(ResilienceError):
    """A checkpoint file is missing, corrupt, or inconsistent with the
    run attempting to resume from it."""


class SnapshotError(ResilienceError):
    """An index snapshot is missing, damaged, or incompatible.

    Raised instead of ever returning silently-wrong scores: a snapshot
    whose header, version, config digest or any section checksum does
    not verify refuses to load.

    Attributes
    ----------
    section:
        Name of the damaged section when one specific section failed
        verification, else ``None`` (e.g. a bad header).
    """

    def __init__(self, message: str,
                 section: str | None = None) -> None:
        super().__init__(message)
        self.section = section


class DeadlineExceededError(ResilienceError):
    """A deadline-budgeted call ran out of time and was not allowed to
    degrade (``DeadlineBudget(degraded_ok=False)``).

    Attributes
    ----------
    stage:
        The pipeline stage that observed the expiry.
    """

    def __init__(self, message: str, stage: str = "") -> None:
        super().__init__(message)
        self.stage = stage


class NotFittedError(ReproError):
    """A model-like object was used before being fitted.

    Mirrors the scikit-learn convention: vectorizers and linkers must be
    fitted on a corpus of known aliases before they can score unknowns.
    """


class LanguageDetectionError(ReproError):
    """The language detector could not produce a usable verdict."""
