"""Evaluation: metrics, alter-ego dataset generation, the simulated
manual-inspection protocol of Section V-A, and experiment orchestration.
"""

from repro.eval.alterego import (
    AlterEgoDataset,
    build_alter_ego_dataset,
    prune_trivial_pairs,
    split_record,
)
from repro.eval.groundtruth import (
    FALSE,
    PROBABLY_TRUE,
    TRUE,
    UNCLEAR,
    VERDICTS,
    EvaluationReport,
    PairEvidence,
    classify_pair,
    disclosed_facts,
    evaluate_matches,
    ground_truth_verdicts,
)
from repro.eval.metrics import (
    PRCurve,
    accuracy_at_k,
    curve_table,
    pr_curve,
    precision_recall_f1,
)

__all__ = [
    "AlterEgoDataset",
    "build_alter_ego_dataset",
    "prune_trivial_pairs",
    "split_record",
    "FALSE",
    "PROBABLY_TRUE",
    "TRUE",
    "UNCLEAR",
    "VERDICTS",
    "EvaluationReport",
    "PairEvidence",
    "classify_pair",
    "disclosed_facts",
    "evaluate_matches",
    "ground_truth_verdicts",
    "PRCurve",
    "accuracy_at_k",
    "curve_table",
    "pr_curve",
    "precision_recall_f1",
]
