"""Alter-ego dataset generation (Section IV-D).

Without ground truth, the paper manufactures it: every user with more
than 3,000 words and more than 60 usable timestamps is split into two
disjoint aliases — the *original* keeps one random half of the messages
and half of the timestamps, the *alter ego* gets the rest — so the two
can be treated as different aliases of the same (known) person.

The resulting pairs drive every quantitative experiment: Table III's
word sweeps, the threshold calibration of Fig. 2, the baseline
comparison of Fig. 3, and Tables V/VI.

The paper also prunes pathological pairs: "some users and their
alter-egos achieve an extremely high cosine score ... most of them are
bots, others are users that write multiple times the same messages";
:func:`prune_trivial_pairs` reproduces that filter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import (
    ALTER_EGO_MIN_TIMESTAMPS,
    ALTER_EGO_MIN_WORDS,
    MIN_TIMESTAMPS,
    WORDS_PER_ALIAS,
)
from repro.core.documents import AliasDocument, build_document
from repro.core.ngrams import CodeCounts, char_ngram_codes
from repro.forums.models import Forum, UserRecord
from repro.textproc.tokenizer import count_words


@dataclass
class AlterEgoDataset:
    """The paired datasets of Table IV.

    Attributes
    ----------
    originals:
        The refined "known" aliases (paper: Reddit / TMG / DM).  Users
        that were split contribute their original half; users that were
        not eligible for splitting contribute whole.
    alter_egos:
        The synthetic second aliases (paper: AE_Reddit / AE_TMG / AE_DM).
    truth:
        Ground truth, ``alter-ego doc_id -> original doc_id``.
    """

    originals: List[AliasDocument] = field(default_factory=list)
    alter_egos: List[AliasDocument] = field(default_factory=list)
    truth: Dict[str, str] = field(default_factory=dict)

    @property
    def n_originals(self) -> int:
        return len(self.originals)

    @property
    def n_alter_egos(self) -> int:
        return len(self.alter_egos)

    def subset(self, alter_ego_ids: Sequence[str]) -> "AlterEgoDataset":
        """A view keeping only the given alter egos (originals intact)."""
        wanted = set(alter_ego_ids)
        kept = [d for d in self.alter_egos if d.doc_id in wanted]
        return AlterEgoDataset(
            originals=self.originals,
            alter_egos=kept,
            truth={d.doc_id: self.truth[d.doc_id] for d in kept},
        )


def split_record(record: UserRecord, rng: np.random.Generator,
                 mode: str = "random",
                 ) -> Tuple[UserRecord, UserRecord]:
    """Split a user into (original half, alter-ego half).

    ``mode="random"`` (the paper's protocol): messages are split by
    random assignment of whole messages; the timestamp pools are then
    *evenly* divided in a randomized way (text and time are treated as
    separate resources).

    ``mode="chronological"``: the original gets the chronologically
    first half, the alter ego the second — the §VI "sampling time
    range" scenario, where the two aliases are observed in different
    periods and habit drift erodes the activity feature.
    """
    if mode not in ("random", "chronological"):
        raise ValueError(f"unknown split mode {mode!r}")
    n = len(record.messages)
    if mode == "chronological":
        order = np.argsort([m.timestamp for m in record.messages],
                           kind="stable")
    else:
        order = rng.permutation(n)
    half = n // 2
    original_ids = set(int(i) for i in order[:half])
    original = UserRecord(alias=record.alias, forum=record.forum,
                          metadata=dict(record.metadata))
    alter = UserRecord(alias=f"{record.alias}#ae", forum=record.forum,
                       metadata=dict(record.metadata))
    alter.metadata["alter_ego_of"] = record.alias
    timestamps = sorted(record.timestamps)
    if mode == "chronological":
        original_stamps = timestamps[:len(timestamps) // 2]
        alter_stamps = timestamps[len(timestamps) // 2:]
    else:
        stamp_order = rng.permutation(len(timestamps))
        original_stamps = sorted(
            timestamps[int(i)]
            for i in stamp_order[:len(timestamps) // 2])
        alter_stamps = sorted(
            timestamps[int(i)]
            for i in stamp_order[len(timestamps) // 2:])
    # Re-pair messages with the divided timestamp pools.
    orig_messages = [m for i, m in enumerate(record.messages)
                     if i in original_ids]
    alter_messages = [m for i, m in enumerate(record.messages)
                      if i not in original_ids]
    for i, message in enumerate(orig_messages):
        stamp = original_stamps[i % len(original_stamps)] \
            if original_stamps else message.timestamp
        original.messages.append(message.with_text(message.text))
        original.messages[-1] = _with_author_and_stamp(
            original.messages[-1], record.alias, stamp)
    for i, message in enumerate(alter_messages):
        stamp = alter_stamps[i % len(alter_stamps)] \
            if alter_stamps else message.timestamp
        alter.messages.append(_with_author_and_stamp(
            message, alter.alias, stamp))
    return original, alter


def _with_author_and_stamp(message, author: str, timestamp: int):
    from dataclasses import replace

    return replace(message, author=author, timestamp=timestamp)


def build_alter_ego_dataset(
        forum: Forum,
        seed: int = 0,
        words_per_alias: int = WORDS_PER_ALIAS,
        min_timestamps: int = MIN_TIMESTAMPS,
        split_min_words: int = ALTER_EGO_MIN_WORDS,
        split_min_timestamps: int = ALTER_EGO_MIN_TIMESTAMPS,
        use_lemmatization: bool = True,
        prune_threshold: Optional[float] = 0.995,
        utc_shift_hours: int = 0,
        split_mode: str = "random") -> AlterEgoDataset:
    """Refine *forum* and generate its alter-ego companion dataset.

    Follows Section IV-D end to end: refinement floors, splitting
    eligibility, longest-first word budgeting, and the near-duplicate
    prune (``prune_threshold=None`` disables it).  ``split_mode``
    selects the paper's random split or the §VI chronological variant
    (see :func:`split_record`).
    """
    rng = np.random.default_rng(seed)
    dataset = AlterEgoDataset()
    for alias in sorted(forum.users):
        record = forum.users[alias]
        total_words = sum(count_words(m.text) for m in record.messages)
        from repro.core.activity import usable_timestamps

        usable = len(usable_timestamps(record.timestamps))
        if total_words >= split_min_words and usable >= split_min_timestamps:
            original_half, alter_half = split_record(record, rng,
                                                     split_mode)
            original_doc = build_document(
                original_half, words_per_alias, min_timestamps,
                use_lemmatization, utc_shift_hours=utc_shift_hours)
            alter_doc = build_document(
                alter_half, words_per_alias, min_timestamps,
                use_lemmatization, utc_shift_hours=utc_shift_hours,
                doc_id=f"{forum.name}/{alter_half.alias}")
            if original_doc is not None:
                dataset.originals.append(original_doc)
                if alter_doc is not None:
                    dataset.alter_egos.append(alter_doc)
                    dataset.truth[alter_doc.doc_id] = original_doc.doc_id
        else:
            document = build_document(
                record, words_per_alias, min_timestamps,
                use_lemmatization, utc_shift_hours=utc_shift_hours)
            if document is not None:
                dataset.originals.append(document)
    if prune_threshold is not None:
        prune_trivial_pairs(dataset, prune_threshold)
    return dataset


def _char_cosine(doc_a: AliasDocument, doc_b: AliasDocument) -> float:
    """Cheap char-3-gram cosine used by the near-duplicate prune."""
    prof_a = CodeCounts.from_occurrences(
        char_ngram_codes(doc_a.text, orders=(3,)))
    prof_b = CodeCounts.from_occurrences(
        char_ngram_codes(doc_b.text, orders=(3,)))
    common_a = np.isin(prof_a.codes, prof_b.codes)
    common_b = np.isin(prof_b.codes, prof_a.codes)
    dot = float(np.dot(
        prof_a.counts[common_a].astype(np.float64),
        prof_b.counts[common_b].astype(np.float64)))
    norm = (np.linalg.norm(prof_a.counts.astype(np.float64))
            * np.linalg.norm(prof_b.counts.astype(np.float64)))
    if norm == 0:
        return 0.0
    return dot / norm


def prune_trivial_pairs(dataset: AlterEgoDataset,
                        threshold: float = 0.995) -> int:
    """Drop (original, alter-ego) pairs that match *too* well.

    An extremely high similarity between the halves means the user is a
    bot or a copy-paster; such pairs would inflate every metric.
    Returns the number of pairs removed.
    """
    removed = 0
    by_id = {d.doc_id: d for d in dataset.originals}
    kept: List[AliasDocument] = []
    for alter in dataset.alter_egos:
        original = by_id.get(dataset.truth[alter.doc_id])
        if original is not None and \
                _char_cosine(alter, original) >= threshold:
            del dataset.truth[alter.doc_id]
            removed += 1
            continue
        kept.append(alter)
    dataset.alter_egos = kept
    return removed
