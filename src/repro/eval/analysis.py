"""Statistical analysis utilities for the experiments.

The paper reports point estimates (accuracy, precision, recall) without
uncertainty.  On a synthetic reproduction, where experiments are cheap
to repeat, we can do better; this module provides:

* :func:`bootstrap_ci` — percentile bootstrap confidence intervals for
  any per-query statistic (accuracy@k, precision at a threshold);
* :func:`mcnemar` — McNemar's paired test for "does configuration A
  really beat configuration B on the same queries?" (used to check the
  Fig. 4 activity-feature claim);
* :func:`compare_accuracy` — the convenience wrapper the ablation
  benches use, combining both;
* :class:`ForumStatistics` — descriptive statistics of a forum
  (message/word distributions, vocabulary richness, posting-hour
  histogram) for dataset reporting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.forums.models import DAY, HOUR, Forum
from repro.textproc.tokenizer import count_words, word_tokens


@dataclass(frozen=True)
class ConfidenceInterval:
    """A bootstrap interval for a statistic.

    Attributes
    ----------
    estimate:
        The point estimate on the full sample.
    low / high:
        Percentile bootstrap bounds.
    level:
        Coverage level (e.g. 0.95).
    """

    estimate: float
    low: float
    high: float
    level: float

    def __str__(self) -> str:
        return (f"{self.estimate:.3f} "
                f"[{self.low:.3f}, {self.high:.3f}]@{self.level:.0%}")

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def bootstrap_ci(values: Sequence[float],
                 statistic: Callable[[np.ndarray], float] = np.mean,
                 n_resamples: int = 2000,
                 level: float = 0.95,
                 seed: int = 0) -> ConfidenceInterval:
    """Percentile bootstrap CI for *statistic* over *values*.

    Parameters
    ----------
    values:
        Per-query outcomes (e.g. 0/1 correctness indicators).
    statistic:
        Function mapping a sample to a scalar (default: mean).
    n_resamples:
        Bootstrap resamples.
    level:
        Interval coverage.
    seed:
        Resampling seed (results are deterministic given it).
    """
    data = np.asarray(values, dtype=np.float64)
    if data.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < level < 1.0:
        raise ValueError("level must be in (0, 1)")
    rng = np.random.default_rng(seed)
    estimates = np.empty(n_resamples)
    n = data.size
    for i in range(n_resamples):
        sample = data[rng.integers(0, n, size=n)]
        estimates[i] = statistic(sample)
    alpha = (1.0 - level) / 2.0
    return ConfidenceInterval(
        estimate=float(statistic(data)),
        low=float(np.quantile(estimates, alpha)),
        high=float(np.quantile(estimates, 1.0 - alpha)),
        level=level,
    )


@dataclass(frozen=True)
class McNemarResult:
    """Outcome of McNemar's paired test.

    ``b`` counts queries A got right and B wrong; ``c`` the reverse.
    The exact binomial p-value tests the null that both configurations
    are equally accurate.
    """

    b: int
    c: int
    p_value: float

    @property
    def significant(self) -> bool:
        return self.p_value < 0.05


def mcnemar(correct_a: Sequence[bool],
            correct_b: Sequence[bool]) -> McNemarResult:
    """Exact McNemar test on paired per-query correctness vectors."""
    if len(correct_a) != len(correct_b):
        raise ValueError("paired vectors must have equal length")
    b = sum(1 for x, y in zip(correct_a, correct_b) if x and not y)
    c = sum(1 for x, y in zip(correct_a, correct_b) if y and not x)
    n = b + c
    if n == 0:
        return McNemarResult(b=0, c=0, p_value=1.0)
    # two-sided exact binomial test with p = 0.5
    k = min(b, c)
    tail = sum(math.comb(n, i) for i in range(0, k + 1)) / (2.0 ** n)
    p_value = min(1.0, 2.0 * tail)
    return McNemarResult(b=b, c=c, p_value=p_value)


@dataclass(frozen=True)
class AccuracyComparison:
    """A full paired comparison of two configurations."""

    ci_a: ConfidenceInterval
    ci_b: ConfidenceInterval
    test: McNemarResult

    def summary(self, name_a: str = "A", name_b: str = "B") -> str:
        verdict = ("significant"
                   if self.test.significant else "not significant")
        return (f"{name_a}: {self.ci_a}  {name_b}: {self.ci_b}  "
                f"McNemar b={self.test.b} c={self.test.c} "
                f"p={self.test.p_value:.4f} ({verdict})")


def compare_accuracy(correct_a: Sequence[bool],
                     correct_b: Sequence[bool],
                     seed: int = 0) -> AccuracyComparison:
    """Bootstrap both accuracies and McNemar-test the difference."""
    return AccuracyComparison(
        ci_a=bootstrap_ci([float(x) for x in correct_a], seed=seed),
        ci_b=bootstrap_ci([float(x) for x in correct_b], seed=seed),
        test=mcnemar(correct_a, correct_b),
    )


@dataclass
class ForumStatistics:
    """Descriptive statistics of one forum.

    Attributes
    ----------
    n_users / n_messages / n_words:
        Corpus sizes.
    words_per_user:
        Percentiles of the per-user word counts (the Fig. 1 data).
    messages_per_user:
        Percentiles of per-user message counts.
    vocabulary_size:
        Distinct (casefolded) word types in the corpus.
    type_token_ratio:
        Vocabulary richness: types / tokens.
    hour_histogram:
        Fraction of messages per UTC hour (24 bins).
    """

    n_users: int
    n_messages: int
    n_words: int
    words_per_user: Dict[int, float]
    messages_per_user: Dict[int, float]
    vocabulary_size: int
    type_token_ratio: float
    hour_histogram: np.ndarray

    PERCENTILES = (10, 25, 50, 75, 90)

    @classmethod
    def of(cls, forum: Forum) -> "ForumStatistics":
        """Compute the statistics of *forum*."""
        words_per_user: List[int] = []
        messages_per_user: List[int] = []
        vocabulary: set = set()
        total_words = 0
        hours = np.zeros(24, dtype=np.float64)
        for record in forum.users.values():
            user_words = 0
            for message in record.messages:
                tokens = word_tokens(message.text)
                user_words += len(tokens)
                vocabulary.update(tokens)
                hours[(message.timestamp % DAY) // HOUR] += 1
            words_per_user.append(user_words)
            messages_per_user.append(len(record.messages))
            total_words += user_words
        words_arr = np.asarray(words_per_user, dtype=np.float64)
        msgs_arr = np.asarray(messages_per_user, dtype=np.float64)
        total_messages = int(msgs_arr.sum()) if msgs_arr.size else 0
        return cls(
            n_users=forum.n_users,
            n_messages=total_messages,
            n_words=total_words,
            words_per_user={
                p: float(np.percentile(words_arr, p))
                for p in cls.PERCENTILES
            } if words_arr.size else {},
            messages_per_user={
                p: float(np.percentile(msgs_arr, p))
                for p in cls.PERCENTILES
            } if msgs_arr.size else {},
            vocabulary_size=len(vocabulary),
            type_token_ratio=(len(vocabulary) / total_words
                              if total_words else 0.0),
            hour_histogram=(hours / hours.sum()
                            if hours.sum() else hours),
        )

    def summary_lines(self) -> List[str]:
        """Human-readable summary."""
        lines = [
            f"users: {self.n_users}  messages: {self.n_messages}  "
            f"words: {self.n_words}",
            f"vocabulary: {self.vocabulary_size} types "
            f"(TTR {self.type_token_ratio:.4f})",
        ]
        if self.words_per_user:
            per = "  ".join(f"p{p}={v:.0f}"
                            for p, v in self.words_per_user.items())
            lines.append(f"words/user: {per}")
        peak = int(np.argmax(self.hour_histogram))
        lines.append(f"busiest UTC hour: {peak:02d}:00 "
                     f"({self.hour_histogram[peak]:.1%} of messages)")
        return lines
