"""Episode-style evaluation harness (Section V, re-cast as episodes).

The perf layer already watches the pipeline's *speed* with benchmark
trajectories and regression diffs; this module is its *quality* twin.
It samples deterministic N-way verification **episodes** from a
synthetic world — one unknown alias against a small candidate panel,
with the true author either present ("closed") or absent ("open") —
runs any configured linker variant over them, and scores per-cell
PR-AUC, accuracy@k and Brier calibration.  Because everything is a
pure function of the seed, the episode manifests and their scores can
be committed as **golden episodes** and asserted within tolerance in
CI: a change that silently degrades linking quality fails the build
the same way a perf regression fails the bench diff.

Cells are ``(drift, text-size bucket)`` pairs:

* drift ``"dark-dark"`` links Dream Market unknowns against The
  Majestic Garden (the paper's easier §V-B setting);
* drift ``"open-dark"`` links merged dark-web unknowns against Reddit
  (the harder §V-C setting, extra style drift);
* the bucket is the per-alias word budget used to build documents
  (the Table III text-size axis).

Everything honours the feature-family configuration
(:class:`repro.config.FeatureConfig`), including the reply-graph
structure family, and the resilience variants: deadline budgets,
circuit breakers and snapshot round-trips can be injected per run
with honest per-episode degraded accounting — degraded or skipped
episodes are counted, never silently folded into the quality metrics.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, \
    Tuple, Union

import numpy as np

from repro.config import PAPER_THRESHOLD, FeatureConfig
from repro.core.documents import AliasDocument, refine_forum
from repro.core.features import DocumentEncoder
from repro.core.kattribution import KAttributor
from repro.core.linker import AliasLinker
from repro.core.similarity import rank_of
from repro.core.structure import merge_profile_maps, structure_profiles
from repro.errors import ConfigurationError, DatasetError
from repro.eval.metrics import accuracy_at_k, pr_curve
from repro.forums.models import Forum, merge_forums
from repro.obs.logging import get_logger
from repro.obs.metrics import counter
from repro.obs.spans import span
from repro.perf.cache import ProfileCache
from repro.resilience.degrade import CircuitBreaker, DeadlineBudget
from repro.synth.rng import substream

log = get_logger(__name__)

#: Episodes scored (any variant, any fidelity).
_EPISODES_RUN = counter("episodes_run_total")
#: Episodes answered on partial evidence (deadline / breaker).
_EPISODES_DEGRADED = counter("episodes_degraded_total")
#: Episodes quarantined instead of scored.
_EPISODES_SKIPPED = counter("episodes_skipped_total")

#: Linker variants the runner knows how to drive.
VARIANTS = ("full", "stage1")
#: Drift settings an episode suite can cover.
DRIFTS = ("dark-dark", "open-dark")
#: Default tolerance of the golden-episode gate (absolute, per metric).
DEFAULT_TOLERANCE = 0.05
#: Repo-relative home of the committed golden suite.
GOLDEN_PATH = "benchmarks/golden/golden_episodes.json"
#: Metrics the golden gate compares (each within the tolerance).
GOLDEN_METRICS = ("auc", "accuracy_at_1", "brier")


# --------------------------------------------------------------------------
# Configuration and episode records
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class EpisodeConfig:
    """Recipe for a deterministic episode suite.

    Attributes
    ----------
    seed:
        Master seed; the same seed always yields a byte-identical
        manifest (and, with the same code, identical scores).
    n_way:
        Candidate-panel size of each episode (the true author, when
        present, is one of them).
    episodes_per_cell:
        Episodes sampled per ``(drift, bucket)`` cell.
    buckets:
        Per-alias word budgets (the text-size axis of Table III).
    drifts:
        Which drift settings to cover (subset of :data:`DRIFTS`).
    open_fraction:
        Fraction of episodes sampled *open* — the true author is held
        out of the panel, so the only correct behaviour is a score
        below threshold.
    features:
        Feature families used for both document construction and the
        linkers (see :class:`repro.config.FeatureConfig`).
    """

    seed: int = 7
    n_way: int = 8
    episodes_per_cell: int = 12
    buckets: Tuple[int, ...] = (300, 800)
    drifts: Tuple[str, ...] = DRIFTS
    open_fraction: float = 0.25
    features: FeatureConfig = field(default_factory=FeatureConfig)

    def __post_init__(self) -> None:
        if self.n_way < 2:
            raise ConfigurationError(
                f"n_way must be >= 2, got {self.n_way}")
        if self.episodes_per_cell < 1:
            raise ConfigurationError(
                f"episodes_per_cell must be >= 1, "
                f"got {self.episodes_per_cell}")
        if not self.buckets:
            raise ConfigurationError("buckets must not be empty")
        if any(b < 1 for b in self.buckets):
            raise ConfigurationError(
                f"buckets must be positive, got {self.buckets}")
        if len(set(self.buckets)) != len(self.buckets):
            raise ConfigurationError(
                f"buckets must be distinct, got {self.buckets}")
        unknown = sorted(set(self.drifts) - set(DRIFTS))
        if unknown:
            raise ConfigurationError(
                f"unknown drifts {unknown}; choose from {list(DRIFTS)}")
        if not self.drifts:
            raise ConfigurationError("drifts must not be empty")
        if not 0.0 <= self.open_fraction <= 1.0:
            raise ConfigurationError(
                f"open_fraction must be in [0, 1], "
                f"got {self.open_fraction}")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (pinned into manifests and goldens)."""
        return {
            "seed": self.seed,
            "n_way": self.n_way,
            "episodes_per_cell": self.episodes_per_cell,
            "buckets": list(self.buckets),
            "drifts": list(self.drifts),
            "open_fraction": self.open_fraction,
            "features": self.features.spec(),
        }


@dataclass(frozen=True)
class EpisodePool:
    """Refined documents one ``(drift, bucket)`` cell samples from.

    ``truth`` maps unknown doc_ids to the known doc_id of the same
    persona (absent keys are unlinkable unknowns, usable only for open
    episodes).
    """

    drift: str
    bucket: int
    known: Tuple[AliasDocument, ...]
    unknown: Tuple[AliasDocument, ...]
    truth: Dict[str, str]


@dataclass(frozen=True)
class Episode:
    """One N-way verification episode.

    ``true_id`` is the doc_id of the true author's panel entry, or
    ``None`` for an open episode (the true author was held out).
    """

    episode_id: str
    drift: str
    bucket: int
    unknown: AliasDocument
    candidates: Tuple[AliasDocument, ...]
    true_id: Optional[str]

    @property
    def closed(self) -> bool:
        return self.true_id is not None


@dataclass(frozen=True)
class EpisodeOutcome:
    """What one episode run produced.

    ``rank`` is the 1-based rank of the true candidate (closed
    episodes answered at full fidelity only).  ``degraded`` episodes
    were answered on partial evidence; ``skipped`` ones were
    quarantined — both are excluded from the quality metrics and
    reported separately (honest accounting).
    """

    episode_id: str
    drift: str
    bucket: int
    best_id: str = ""
    best_score: float = 0.0
    accepted: bool = False
    true_id: Optional[str] = None
    rank: Optional[int] = None
    degraded: bool = False
    degraded_reasons: Tuple[str, ...] = ()
    skipped: bool = False
    reason: str = ""

    @property
    def full_fidelity(self) -> bool:
        return not self.degraded and not self.skipped

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "episode_id": self.episode_id,
            "drift": self.drift,
            "bucket": self.bucket,
            "best_id": self.best_id,
            "best_score": self.best_score,
            "accepted": self.accepted,
            "true_id": self.true_id,
            "rank": self.rank,
        }
        if self.degraded:
            data["degraded"] = True
            data["degraded_reasons"] = list(self.degraded_reasons)
        if self.skipped:
            data["skipped"] = True
            data["reason"] = self.reason
        return data


def cell_key(drift: str, bucket: int) -> str:
    """Canonical cell name used in reports and goldens."""
    return f"{drift}/w{bucket}"


# --------------------------------------------------------------------------
# Pool construction
# --------------------------------------------------------------------------

def _bucketed(documents: Sequence[AliasDocument], bucket: int,
              ) -> Tuple[AliasDocument, ...]:
    """Qualify doc_ids with the bucket so documents of the same alias
    built at different word budgets never collide in a shared
    :class:`~repro.perf.cache.ProfileCache`."""
    return tuple(replace(d, doc_id=f"{d.doc_id}@w{bucket}")
                 for d in documents)


def _refine(forum: Forum, bucket: int, features: FeatureConfig,
            profiles: Optional[Dict[str, np.ndarray]],
            ) -> Tuple[AliasDocument, ...]:
    documents = refine_forum(
        forum,
        words_per_alias=bucket,
        require_activity=features.activity,
        structure_profiles=profiles if features.structure else None,
    )
    return _bucketed(documents, bucket)


def world_pools(world: Any, config: EpisodeConfig) -> List[EpisodePool]:
    """Build the per-cell document pools of *world*.

    Documents are refined straight from the raw forums (synthetic text
    needs no polishing) at each bucket's word budget; ground truth
    comes from the world's :class:`~repro.synth.world.LinkedPair`
    records.  Structure profiles, when the family is enabled, are
    computed per source forum — the merged dark-web forum carries no
    threads, so its profiles are merged from the sources with
    alias re-keying.
    """
    from repro.synth.world import DM, REDDIT, TMG

    tmg = world.forum(TMG)
    dm = world.forum(DM)
    reddit = world.forum(REDDIT)
    dark = merge_forums("dark", [tmg, dm])
    profiles: Dict[str, Dict[str, np.ndarray]] = {}
    if config.features.structure:
        profiles = {
            TMG: structure_profiles(tmg),
            REDDIT: structure_profiles(reddit),
            "dark": merge_profile_maps(
                structure_profiles(tmg, alias_prefix=f"{TMG}/"),
                structure_profiles(dm, alias_prefix=f"{DM}/")),
        }
    pools: List[EpisodePool] = []
    for drift in config.drifts:
        if drift == "dark-dark":
            known_forum, unknown_forum = tmg, dm
            alias_truth = {
                f"{DM}/{a}": f"{TMG}/{b}"
                for a, b in world.linked_aliases(DM, TMG).items()
            }
            unknown_profiles = (structure_profiles(dm)
                                if config.features.structure else None)
        else:
            known_forum, unknown_forum = reddit, dark
            alias_truth = {}
            for source, name in ((tmg, TMG), (dm, DM)):
                for a, b in world.linked_aliases(name, REDDIT).items():
                    alias_truth[f"dark/{name}/{a}"] = f"{REDDIT}/{b}"
            unknown_profiles = profiles.get("dark")
        known_profiles = profiles.get(known_forum.name)
        for bucket in config.buckets:
            known = _refine(known_forum, bucket, config.features,
                            known_profiles)
            unknown = _refine(unknown_forum, bucket, config.features,
                              unknown_profiles)
            known_ids = {d.doc_id for d in known}
            truth = {}
            for u, k in alias_truth.items():
                uid = f"{u}@w{bucket}"
                kid = f"{k}@w{bucket}"
                if kid in known_ids:
                    truth[uid] = kid
            pools.append(EpisodePool(
                drift=drift, bucket=bucket,
                known=known, unknown=unknown, truth=truth))
    return pools


# --------------------------------------------------------------------------
# Sampling
# --------------------------------------------------------------------------

def sample_from_pools(pools: Sequence[EpisodePool],
                      config: EpisodeConfig) -> List[Episode]:
    """Sample the episode suite from pre-built pools.

    Deterministic given ``config.seed``: every cell draws from its own
    rng substream, so adding a cell never disturbs another cell's
    episodes.  Closed episodes pick a linked unknown and plant its
    true author in the panel; open episodes pick an unlinkable unknown
    (or hold the author out when none exists).
    """
    episodes: List[Episode] = []
    for pool in pools:
        if len(pool.known) < 2:
            raise ConfigurationError(
                f"cell {cell_key(pool.drift, pool.bucket)} has "
                f"{len(pool.known)} known aliases; need >= 2")
        if not pool.unknown:
            raise ConfigurationError(
                f"cell {cell_key(pool.drift, pool.bucket)} has no "
                f"unknown aliases")
        rng = substream(config.seed, "episodes", pool.drift,
                        pool.bucket)
        known_by_id = {d.doc_id: d for d in pool.known}
        unknown_by_id = {d.doc_id: d for d in pool.unknown}
        linked = sorted(u for u in unknown_by_id
                        if pool.truth.get(u) in known_by_id)
        unlinked = sorted(u for u in unknown_by_id
                          if pool.truth.get(u) not in known_by_id)
        panel_ids = sorted(known_by_id)
        for number in range(config.episodes_per_cell):
            open_episode = rng.random() < config.open_fraction
            true_id: Optional[str] = None
            if open_episode and unlinked:
                uid = unlinked[int(rng.integers(len(unlinked)))]
            elif linked:
                uid = linked[int(rng.integers(len(linked)))]
                if open_episode:
                    # No unlinkable unknowns: hold the author out of
                    # the panel instead.
                    pass
                else:
                    true_id = pool.truth[uid]
            elif unlinked:
                uid = unlinked[int(rng.integers(len(unlinked)))]
            else:  # unreachable: pool.unknown is non-empty
                raise ConfigurationError(
                    f"cell {cell_key(pool.drift, pool.bucket)} has "
                    f"no sampleable unknowns")
            held_out = pool.truth.get(uid) if true_id is None else None
            distractors = [d for d in panel_ids
                           if d != true_id and d != held_out]
            n_distract = min(config.n_way - (1 if true_id else 0),
                             len(distractors))
            picks = rng.choice(len(distractors), size=n_distract,
                               replace=False)
            panel = [distractors[int(i)] for i in picks]
            if true_id is not None:
                panel.append(true_id)
            order = rng.permutation(len(panel))
            panel = [panel[int(i)] for i in order]
            episodes.append(Episode(
                episode_id=(f"{pool.drift}/w{pool.bucket}"
                            f"/e{number:03d}"),
                drift=pool.drift,
                bucket=pool.bucket,
                unknown=unknown_by_id[uid],
                candidates=tuple(known_by_id[c] for c in panel),
                true_id=true_id,
            ))
    return episodes


def sample_episodes(world: Any, config: EpisodeConfig) -> List[Episode]:
    """Sample a full episode suite from a synthetic world."""
    with span("eval.sample_episodes", seed=config.seed,
              n_way=config.n_way, cells=(len(config.drifts)
                                         * len(config.buckets))):
        pools = world_pools(world, config)
        episodes = sample_from_pools(pools, config)
    log.info("eval.sample_episodes", seed=config.seed,
             episodes=len(episodes))
    return episodes


# --------------------------------------------------------------------------
# Manifest
# --------------------------------------------------------------------------

def manifest_dict(episodes: Sequence[Episode],
                  config: EpisodeConfig) -> Dict[str, Any]:
    """The identity of an episode suite, ready for canonical JSON.

    Contains the config plus every episode's ids — enough to prove
    two runs sampled exactly the same work, without carrying document
    text.
    """
    return {
        "config": config.to_dict(),
        "episodes": [
            {
                "episode_id": e.episode_id,
                "drift": e.drift,
                "bucket": e.bucket,
                "unknown": e.unknown.doc_id,
                "candidates": [d.doc_id for d in e.candidates],
                "true_id": e.true_id,
            }
            for e in sorted(episodes, key=lambda e: e.episode_id)
        ],
    }


def manifest_bytes(episodes: Sequence[Episode],
                   config: EpisodeConfig) -> bytes:
    """Canonical JSON encoding of :func:`manifest_dict`.

    Sorted keys, compact separators, UTF-8 — byte-identical across
    runs and platforms for the same seed.
    """
    return json.dumps(manifest_dict(episodes, config), sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def manifest_digest(episodes: Sequence[Episode],
                    config: EpisodeConfig) -> str:
    """SHA-256 over :func:`manifest_bytes` (pinned into goldens)."""
    return hashlib.sha256(manifest_bytes(episodes, config)).hexdigest()


# --------------------------------------------------------------------------
# Running
# --------------------------------------------------------------------------

@dataclass
class EpisodeReport:
    """Scores of one episode-suite run.

    ``cells`` maps :func:`cell_key` names to metric dicts; metrics are
    computed over full-fidelity episodes only, with degraded and
    skipped episodes counted per cell instead of polluting the
    averages.
    """

    variant: str
    features: str
    outcomes: List[EpisodeOutcome] = field(default_factory=list)
    cells: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def n_degraded(self) -> int:
        return sum(1 for o in self.outcomes if o.degraded)

    @property
    def n_skipped(self) -> int:
        return sum(1 for o in self.outcomes if o.skipped)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "variant": self.variant,
            "features": self.features,
            "cells": self.cells,
            "outcomes": [o.to_dict() for o in self.outcomes],
        }


def _warm_cache(cache: ProfileCache, documents: Sequence[AliasDocument],
                features: FeatureConfig) -> None:
    """Intern every document's profiles in sorted doc_id order.

    Word-id assignment happens at first sight of each word; warming in
    a canonical order makes the shared vocabulary — and therefore every
    downstream vector — independent of the order episodes are run in.
    """
    from repro.config import FINAL_FEATURES

    encoder = DocumentEncoder(cache=cache)
    for document in sorted({d.doc_id: d for d in documents}.values(),
                           key=lambda d: d.doc_id):
        encoder.word_profile(document)
        encoder.char_profile(document)
        encoder.freq_features(document)
        if features.activity:
            cache.activity_row(document, FINAL_FEATURES.activity_bins)
        if features.structure:
            cache.structure_row(document)


def _score_episode_full(episode: Episode, features: FeatureConfig,
                        threshold: float, cache: ProfileCache,
                        breaker: Optional[CircuitBreaker],
                        budget: Optional[DeadlineBudget],
                        snapshot_dir: Optional[Path],
                        ) -> EpisodeOutcome:
    """Run the paper's two-stage linker over one episode panel."""
    linker = AliasLinker(
        k=len(episode.candidates),
        threshold=threshold,
        use_activity=features.activity,
        use_structure=features.structure,
        cache=cache,
        breaker=breaker,
    )
    linker.fit(list(episode.candidates))
    if snapshot_dir is not None:
        from repro.resilience.snapshot import load_index, save_index

        path = Path(snapshot_dir) / "episode.idx"
        save_index(linker, path)
        linker = load_index(path)
    result = linker.link([episode.unknown], budget=budget)
    if result.skipped:
        entry = result.skipped[0]
        return EpisodeOutcome(
            episode_id=episode.episode_id, drift=episode.drift,
            bucket=episode.bucket, true_id=episode.true_id,
            skipped=True, reason=f"{entry.stage}: {entry.reason}")
    match = result.matches[0]
    scored = result.candidate_scores[episode.unknown.doc_id]
    rank: Optional[int] = None
    if episode.true_id is not None and not match.degraded:
        ids = [cid for cid, _ in scored]
        scores = np.asarray([s for _, s in scored], dtype=np.float64)
        rank = rank_of(scores, ids.index(episode.true_id))
    return EpisodeOutcome(
        episode_id=episode.episode_id, drift=episode.drift,
        bucket=episode.bucket, best_id=match.candidate_id,
        best_score=float(match.score), accepted=match.accepted,
        true_id=episode.true_id, rank=rank,
        degraded=match.degraded,
        degraded_reasons=match.degraded_reasons)


def _cell_corpora(episodes: Sequence[Episode],
                  ) -> Dict[str, List[AliasDocument]]:
    """Per-cell candidate unions, sorted by doc_id.

    The stage-1 variant fits its feature space on the whole cell
    corpus — like the real reduction stage does on the full known
    pool — rather than on each episode's panel (which would smuggle
    the restage's per-panel Idf sharpening back in).
    """
    corpora: Dict[str, Dict[str, AliasDocument]] = {}
    for episode in episodes:
        cell = cell_key(episode.drift, episode.bucket)
        pool = corpora.setdefault(cell, {})
        for document in episode.candidates:
            pool[document.doc_id] = document
    return {cell: [pool[doc_id] for doc_id in sorted(pool)]
            for cell, pool in corpora.items()}


def _score_episode_stage1(episode: Episode,
                          attributor: KAttributor,
                          corpus_index: Dict[str, int],
                          threshold: float) -> EpisodeOutcome:
    """Score one episode with the reduction stage alone.

    This is the deliberately degraded variant the golden gate must
    catch: stage-1 cosines over the cell-wide feature space lack the
    restaged per-panel Idf sharpening, so its scores (and, under
    drift, its ranking) measurably trail the full pipeline.
    """
    all_scores = attributor.scores([episode.unknown])[0]
    panel_ids = [d.doc_id for d in episode.candidates]
    scores = np.asarray([all_scores[corpus_index[doc_id]]
                         for doc_id in panel_ids], dtype=np.float64)
    best = int(np.argmax(scores))
    best_score = float(scores[best])
    rank: Optional[int] = None
    if episode.true_id is not None:
        rank = rank_of(scores, panel_ids.index(episode.true_id))
    return EpisodeOutcome(
        episode_id=episode.episode_id, drift=episode.drift,
        bucket=episode.bucket,
        best_id=panel_ids[best],
        best_score=best_score,
        accepted=best_score >= threshold,
        true_id=episode.true_id, rank=rank)


def _cell_metrics(outcomes: Sequence[EpisodeOutcome]) -> Dict[str, float]:
    """Quality metrics of one cell (full-fidelity outcomes only).

    Aggregated in episode_id order so the float summation order — and
    therefore every metric bit — is independent of run order.
    """
    outcomes = sorted(outcomes, key=lambda o: o.episode_id)
    full = [o for o in outcomes if o.full_fidelity]
    closed = [o for o in full if o.true_id is not None]
    scores = [o.best_score for o in full]
    labels = [o.true_id is not None and o.best_id == o.true_id
              for o in full]
    auc = pr_curve(scores, labels, n_positive=len(closed)).auc() \
        if closed else 0.0
    ranks = [o.rank for o in closed if o.rank is not None]
    brier = float(np.mean([
        (min(max(o.best_score, 0.0), 1.0) - float(label)) ** 2
        for o, label in zip(full, labels)])) if full else 0.0
    return {
        "auc": auc,
        "accuracy_at_1": accuracy_at_k(ranks, 1) if ranks else 0.0,
        "accuracy_at_3": accuracy_at_k(ranks, 3) if ranks else 0.0,
        "brier": brier,
        "n_episodes": float(len(outcomes)),
        "n_full": float(len(full)),
        "n_closed": float(len(closed)),
        "n_degraded": float(sum(1 for o in outcomes if o.degraded)),
        "n_skipped": float(sum(1 for o in outcomes if o.skipped)),
    }


def run_episodes(episodes: Sequence[Episode],
                 features: FeatureConfig | None = None,
                 variant: str = "full",
                 threshold: float = PAPER_THRESHOLD,
                 budget_factory: Optional[
                     Callable[[], DeadlineBudget]] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 snapshot_dir: Optional[Union[str, Path]] = None,
                 cache: Optional[ProfileCache] = None) -> EpisodeReport:
    """Score an episode suite with a configured linker variant.

    Parameters
    ----------
    features:
        Feature families for the linkers; must match the families the
        episodes' documents were built with.
    variant:
        ``"full"`` runs the paper's two-stage linker; ``"stage1"``
        scores with the reduction stage alone (the deliberately
        degraded variant the golden gate must reject).
    threshold:
        Acceptance threshold on the best-candidate score.
    budget_factory:
        When set, called once per episode to produce a fresh
        :class:`~repro.resilience.degrade.DeadlineBudget`; episodes
        answered degraded (or quarantined) under it are counted per
        cell and excluded from the quality metrics.  Full variant
        only.
    breaker:
        Optional circuit breaker shared across episodes (full variant
        only).
    snapshot_dir:
        When set, every fitted linker is saved to and reloaded from
        an index snapshot in this directory before scoring — the
        round-trip must be invisible in the scores.
    cache:
        Optional shared :class:`~repro.perf.cache.ProfileCache`.  By
        default every full-variant episode runs on its own fresh
        cache — bit-identical to running the two-stage linker
        standalone on that panel, and trivially invariant under
        episode reordering.  Pass a cache to share profile work
        across overlapping panels instead (scores may then differ in
        the last float bit, because word interning order changes
        summation order).  The stage-1 variant always shares one
        cache, pre-warmed in canonical doc_id order so its scores
        stay order-invariant too.
    """
    if variant not in VARIANTS:
        raise ConfigurationError(
            f"unknown variant {variant!r}; choose from {list(VARIANTS)}")
    features = features or FeatureConfig()
    episodes = list(episodes)
    shared = cache
    if shared is None and variant == "stage1":
        shared = ProfileCache()
    documents: List[AliasDocument] = []
    for episode in episodes:
        documents.append(episode.unknown)
        documents.extend(episode.candidates)
    report = EpisodeReport(variant=variant, features=features.spec())
    with span("eval.run_episodes", n_episodes=len(episodes),
              variant=variant, features=features.spec()):
        if shared is not None:
            _warm_cache(shared, documents, features)
        attributors: Dict[str, Tuple[KAttributor, Dict[str, int]]] = {}
        if variant == "stage1":
            for cell, corpus in _cell_corpora(episodes).items():
                attributor = KAttributor(
                    k=len(corpus),
                    use_activity=features.activity,
                    use_structure=features.structure,
                    encoder=DocumentEncoder(cache=shared),
                )
                attributor.fit(corpus)
                attributors[cell] = (attributor, {
                    d.doc_id: i for i, d in enumerate(corpus)})
        by_cell: Dict[str, List[EpisodeOutcome]] = {}
        for episode in episodes:
            with span("eval.episode", episode=episode.episode_id,
                      variant=variant, n_way=len(episode.candidates)):
                if variant == "stage1":
                    attributor, corpus_index = attributors[
                        cell_key(episode.drift, episode.bucket)]
                    outcome = _score_episode_stage1(
                        episode, attributor, corpus_index, threshold)
                else:
                    budget = budget_factory() if budget_factory \
                        else None
                    outcome = _score_episode_full(
                        episode, features, threshold,
                        shared if shared is not None
                        else ProfileCache(), breaker, budget,
                        Path(snapshot_dir)
                        if snapshot_dir is not None else None)
            _EPISODES_RUN.inc()
            if outcome.degraded:
                _EPISODES_DEGRADED.inc()
            if outcome.skipped:
                _EPISODES_SKIPPED.inc()
            report.outcomes.append(outcome)
            by_cell.setdefault(
                cell_key(episode.drift, episode.bucket),
                []).append(outcome)
        report.cells = {key: _cell_metrics(outcomes)
                        for key, outcomes in sorted(by_cell.items())}
    log.info("eval.run_episodes", variant=variant,
             episodes=len(episodes), degraded=report.n_degraded,
             skipped=report.n_skipped)
    return report


# --------------------------------------------------------------------------
# Golden episodes
# --------------------------------------------------------------------------

#: Episode config of the committed golden suite.  n_way=8 panels over
#: a 400/1200-word bucket axis give the two-stage pipeline and the
#: stage-1-only variant measurably different per-cell scores, which is
#: what lets the golden gate reject a silently degraded linker.
GOLDEN_CONFIG = EpisodeConfig(seed=11, n_way=8, episodes_per_cell=10,
                              buckets=(400, 1200))


def golden_world_config() -> Any:
    """World recipe behind the golden suite (dense enough that every
    cell clears the refinement floors at both buckets, small enough
    for CI)."""
    from repro.synth.world import ForumLoad, WorldConfig

    load = dict(heavy_fraction=0.85, heavy_messages=(120, 180),
                light_messages=(5, 25))
    return WorldConfig(
        seed=11, reddit_users=60, tmg_users=30, dm_users=22,
        tmg_dm_overlap=10, reddit_dark_overlap=12,
        reddit_load=ForumLoad(heavy_fraction=0.8,
                              heavy_messages=(120, 180),
                              light_messages=(5, 25)),
        tmg_load=ForumLoad(message_length_factor=1.4, **load),
        dm_load=ForumLoad(**load),
    )


def golden_suite(features: FeatureConfig | None = None,
                 ) -> Tuple[List[Episode], EpisodeConfig]:
    """Build the canonical golden world and sample its episode suite.

    The CLI, the tests and the CI smoke job all go through here, so
    they gate against literally the same episodes.
    """
    config = GOLDEN_CONFIG if features is None \
        else replace(GOLDEN_CONFIG, features=features)
    from repro.synth.world import build_world

    world = build_world(golden_world_config())
    return sample_episodes(world, config), config


def golden_payload(report: EpisodeReport, episodes: Sequence[Episode],
                   config: EpisodeConfig) -> Dict[str, Any]:
    """What the committed golden file records for one suite."""
    return {
        "config": config.to_dict(),
        "manifest_sha256": manifest_digest(episodes, config),
        "variant": report.variant,
        "cells": report.cells,
    }


def write_golden(path: Union[str, Path], report: EpisodeReport,
                 episodes: Sequence[Episode],
                 config: EpisodeConfig) -> Dict[str, Any]:
    """Write (or refresh) the golden suite at *path*."""
    payload = golden_payload(report, episodes, config)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True)
                      + "\n", encoding="utf-8")
    return payload


def check_golden(path: Union[str, Path], report: EpisodeReport,
                 episodes: Sequence[Episode], config: EpisodeConfig,
                 tolerance: float = DEFAULT_TOLERANCE) -> List[str]:
    """Compare a run against the committed golden suite.

    Returns a list of human-readable breaches (empty = the run is
    within tolerance).  A manifest digest mismatch is itself a breach:
    scores are only comparable over identical episodes.
    """
    if tolerance < 0:
        raise ConfigurationError(
            f"tolerance must be >= 0, got {tolerance}")
    golden_path = Path(path)
    try:
        golden = json.loads(golden_path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise DatasetError(
            f"golden episode file not found: {golden_path} (write one "
            "with `darklight eval episodes --write-golden`)") from None
    except json.JSONDecodeError as exc:
        raise DatasetError(
            f"golden episode file {golden_path} is not valid JSON: "
            f"{exc}") from exc
    breaches: List[str] = []
    digest = manifest_digest(episodes, config)
    if golden.get("manifest_sha256") != digest:
        breaches.append(
            f"manifest drift: golden {golden.get('manifest_sha256')} "
            f"!= run {digest}")
    golden_cells = golden.get("cells", {})
    for key in sorted(set(golden_cells) | set(report.cells)):
        if key not in report.cells:
            breaches.append(f"{key}: cell missing from run")
            continue
        if key not in golden_cells:
            breaches.append(f"{key}: cell missing from golden")
            continue
        for metric in GOLDEN_METRICS:
            expected = float(golden_cells[key].get(metric, 0.0))
            actual = float(report.cells[key].get(metric, 0.0))
            if abs(actual - expected) > tolerance:
                breaches.append(
                    f"{key}: {metric} {actual:.4f} vs golden "
                    f"{expected:.4f} (tolerance {tolerance:g})")
    return breaches
