"""Experiment orchestration: one place that builds, polishes, refines
and links the synthetic worlds for every table and figure.

Benchmarks and examples share these helpers so that the expensive steps
(world generation, polishing, document refinement) happen once per
process per configuration and are reused across experiments — the same
discipline the paper follows by fixing its datasets up front
(Section IV-D) and running every experiment against them.

Scales
------
``REPRO_SCALE=small`` (default) builds laptop-sized worlds whose
experiment *shapes* match the paper; ``REPRO_SCALE=paper`` approaches
the paper's dataset sizes (much slower).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import MIN_TIMESTAMPS, WORDS_PER_ALIAS, bench_scale
from repro.core.documents import AliasDocument, refine_forum
from repro.core.linker import AliasLinker, LinkResult
from repro.eval.alterego import AlterEgoDataset, build_alter_ego_dataset
from repro.forums.models import Forum, merge_forums
from repro.synth.world import (
    DM,
    REDDIT,
    TMG,
    ForumLoad,
    World,
    WorldConfig,
    build_world,
)
from repro.obs.metrics import counter
from repro.obs.spans import span
from repro.textproc.cleaning import CleaningConfig, PolishReport, \
    polish_forum

#: Experiment-cache lookups that found a prebuilt artifact.
_CACHE_HITS = counter("experiment_cache_hits_total")
#: Experiment-cache lookups that had to build the artifact.
_CACHE_MISSES = counter("experiment_cache_misses_total")

# ---------------------------------------------------------------------------
# Scales
# ---------------------------------------------------------------------------

#: Laptop-friendly world used by the benchmark suite by default.  The
#: proportions mirror the paper (Reddit an order of magnitude larger
#: than the dark forums; TMG larger than DM).
SMALL_WORLD = WorldConfig(
    seed=2020,
    reddit_users=420,
    tmg_users=120,
    dm_users=60,
    tmg_dm_overlap=14,
    reddit_dark_overlap=40,
    reddit_load=ForumLoad(heavy_fraction=0.75,
                          heavy_messages=(110, 220),
                          light_messages=(5, 50)),
    tmg_load=ForumLoad(heavy_fraction=0.85,
                       heavy_messages=(100, 200),
                       light_messages=(5, 40),
                       message_length_factor=1.5),
    dm_load=ForumLoad(heavy_fraction=0.85,
                      heavy_messages=(100, 200),
                      light_messages=(5, 40)),
)

#: Paper-approaching world (Reddit 11,679 / TMG 422 / DM 178 refined
#: users are the targets; raw counts here are set so refinement lands
#: near them).  Building this takes tens of minutes.
PAPER_WORLD = WorldConfig(
    seed=2020,
    reddit_users=13_000,
    tmg_users=480,
    dm_users=210,
    tmg_dm_overlap=24,
    reddit_dark_overlap=60,
    reddit_load=ForumLoad(heavy_fraction=0.85,
                          heavy_messages=(110, 220),
                          light_messages=(5, 50)),
    tmg_load=ForumLoad(heavy_fraction=0.88,
                       heavy_messages=(100, 200),
                       light_messages=(5, 40),
                       message_length_factor=1.5),
    dm_load=ForumLoad(heavy_fraction=0.88,
                      heavy_messages=(100, 200),
                      light_messages=(5, 40)),
)


def scaled_world_config() -> WorldConfig:
    """The world config selected by the ``REPRO_SCALE`` environment."""
    return PAPER_WORLD if bench_scale() == "paper" else SMALL_WORLD


# ---------------------------------------------------------------------------
# Caching
# ---------------------------------------------------------------------------

_WORLDS: Dict[str, World] = {}
_POLISHED: Dict[Tuple[str, str], Tuple[Forum, PolishReport]] = {}
_ALTER_EGOS: Dict[Tuple[str, str, int, int], AlterEgoDataset] = {}
_REFINED: Dict[Tuple[str, str, int], List[AliasDocument]] = {}


def _config_key(config: WorldConfig) -> str:
    return repr(config)


def get_world(config: Optional[WorldConfig] = None) -> World:
    """Build (or fetch the cached) world for *config*."""
    config = config or scaled_world_config()
    key = _config_key(config)
    if key not in _WORLDS:
        _CACHE_MISSES.inc()
        with span("experiments.get_world", seed=config.seed):
            _WORLDS[key] = build_world(config)
    else:
        _CACHE_HITS.inc()
    return _WORLDS[key]


def get_polished(world: World, forum_name: str,
                 cleaning: Optional[CleaningConfig] = None,
                 ) -> Tuple[Forum, PolishReport]:
    """Polish one forum of *world* (cached per cleaning config)."""
    cleaning = cleaning or CleaningConfig()
    key = (_config_key(world.config) + repr(cleaning.__dict__), forum_name)
    if key not in _POLISHED:
        _CACHE_MISSES.inc()
        with span("experiments.polish", forum=forum_name):
            _POLISHED[key] = polish_forum(world.forums[forum_name],
                                          cleaning)
    else:
        _CACHE_HITS.inc()
    return _POLISHED[key]


def get_alter_egos(world: World, forum_name: str,
                   words_per_alias: int = WORDS_PER_ALIAS,
                   seed: int = 0) -> AlterEgoDataset:
    """Alter-ego dataset of one polished forum (cached)."""
    key = (_config_key(world.config), forum_name, words_per_alias, seed)
    if key not in _ALTER_EGOS:
        _CACHE_MISSES.inc()
        polished, _ = get_polished(world, forum_name)
        with span("experiments.alter_egos", forum=forum_name):
            _ALTER_EGOS[key] = build_alter_ego_dataset(
                polished, seed=seed, words_per_alias=words_per_alias)
    else:
        _CACHE_HITS.inc()
    return _ALTER_EGOS[key]


def get_refined(world: World, forum_name: str,
                words_per_alias: int = WORDS_PER_ALIAS,
                ) -> List[AliasDocument]:
    """Refined alias documents of one polished forum (cached)."""
    key = (_config_key(world.config), forum_name, words_per_alias)
    if key not in _REFINED:
        _CACHE_MISSES.inc()
        polished, _ = get_polished(world, forum_name)
        with span("experiments.refine", forum=forum_name):
            _REFINED[key] = refine_forum(
                polished, words_per_alias=words_per_alias)
    else:
        _CACHE_HITS.inc()
    return _REFINED[key]


def clear_caches() -> None:
    """Drop every cached world/dataset (tests use this)."""
    _WORLDS.clear()
    _POLISHED.clear()
    _ALTER_EGOS.clear()
    _REFINED.clear()


# ---------------------------------------------------------------------------
# Experiment primitives
# ---------------------------------------------------------------------------

def merged_darkweb(world: World) -> Forum:
    """The merged DarkWeb forum (TMG + DM) of Section IV-G."""
    tmg, _ = get_polished(world, TMG)
    dm, _ = get_polished(world, DM)
    return merge_forums("darkweb", [tmg, dm])


def split_w1_w2(dataset: AlterEgoDataset, n_each: int = 500,
                seed: int = 1) -> Tuple[AlterEgoDataset, AlterEgoDataset]:
    """Randomly split alter egos into the W1/W2 sets of Section IV-E."""
    rng = np.random.default_rng(seed)
    ids = [d.doc_id for d in dataset.alter_egos]
    order = rng.permutation(len(ids))
    n_each = min(n_each, len(ids) // 2)
    w1_ids = [ids[int(i)] for i in order[:n_each]]
    w2_ids = [ids[int(i)] for i in order[n_each:2 * n_each]]
    return dataset.subset(w1_ids), dataset.subset(w2_ids)


def cross_forum_truth(world: World, forum_unknown: str,
                      forum_known: str) -> Dict[str, str]:
    """Ground-truth doc-id mapping for a cross-forum experiment."""
    mapping = world.linked_aliases(forum_unknown, forum_known)
    return {
        f"{forum_unknown}/{alias_a}": f"{forum_known}/{alias_b}"
        for alias_a, alias_b in mapping.items()
    }


def darkweb_refined(world: World,
                    words_per_alias: int = WORDS_PER_ALIAS,
                    ) -> List[AliasDocument]:
    """Refined documents of the merged DarkWeb forum (TMG + DM)."""
    key = (_config_key(world.config), "darkweb-merged", words_per_alias)
    if key not in _REFINED:
        _REFINED[key] = refine_forum(merged_darkweb(world),
                                     words_per_alias=words_per_alias)
    return _REFINED[key]


def reddit_darkweb_truth(world: World) -> Dict[str, str]:
    """Truth for the §V-C experiment: merged-darkweb doc id -> Reddit
    doc id."""
    truth: Dict[str, str] = {}
    for link in world.links:
        if REDDIT not in (link.forum_a, link.forum_b):
            continue
        if link.forum_a == REDDIT:
            reddit_alias, dark_forum, dark_alias = (
                link.alias_a, link.forum_b, link.alias_b)
        else:
            reddit_alias, dark_forum, dark_alias = (
                link.alias_b, link.forum_a, link.alias_a)
        truth[f"darkweb/{dark_forum}/{dark_alias}"] = \
            f"reddit/{reddit_alias}"
    return truth


_CALIBRATIONS: Dict[str, float] = {}


def calibrated_threshold(world: World,
                         words_per_alias: int = WORDS_PER_ALIAS,
                         target_recall: float = 0.80,
                         seed: int = 0) -> float:
    """The world's Section IV-E threshold (cached per world).

    Calibrated once on the W1 half of the Reddit alter egos and then
    reused by every experiment, exactly as the paper applies its
    t = 0.4190 everywhere.
    """
    from repro.core.linker import AliasLinker
    from repro.core.threshold import ThresholdCalibrator

    key = _config_key(world.config) + f"/{words_per_alias}/{target_recall}"
    if key not in _CALIBRATIONS:
        dataset = get_alter_egos(world, REDDIT, words_per_alias, seed)
        w1, _ = split_w1_w2(dataset, n_each=500, seed=1)
        linker = AliasLinker(threshold=0.0)
        linker.fit(dataset.originals)
        matches = linker.link(w1.alter_egos).matches
        calibration = ThresholdCalibrator(target_recall).calibrate(
            matches, w1.truth)
        _CALIBRATIONS[key] = calibration.threshold
    return _CALIBRATIONS[key]


def link_datasets(known: Sequence[AliasDocument],
                  unknown: Sequence[AliasDocument],
                  threshold: float,
                  k: int = 10,
                  use_activity: bool = True,
                  use_reduction: bool = True) -> LinkResult:
    """Fit a linker on *known* and link *unknown* (one-call helper)."""
    linker = AliasLinker(
        k=k,
        threshold=threshold,
        use_activity=use_activity,
        use_reduction=use_reduction,
    )
    linker.fit(list(known))
    return linker.link(list(unknown))
