"""Simulated manual evaluation (Section V-A).

The paper has no ground truth for its real experiments, so every output
pair was inspected by hand and classified:

* **True** — "clear evidence that the two aliases belong to the same
  user", e.g. the user declares her username on the other forum, or
  leaks unique data (same e-mail, same referral link with her nickname
  in the URL);
* **Probably True** — strong but not unique overlaps (same country,
  same vendor, same drugs, same hobbies);
* **Unclear** — no exploitable information on either side;
* **False** — contradictory disclosures (one alias is 20, the other 34;
  Christian vs Atheist; Poland vs USA...).

The synthetic world records every disclosure in message metadata, so
this module can replay exactly that protocol automatically — both over
the algorithm's output pairs (benches for §V-B and §V-C) and over
arbitrary alias pairs in tests.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.documents import AliasDocument
from repro.core.linker import Match
from repro.synth import evidence as ev

#: The four verdicts of Section V-A.
TRUE = "True"
PROBABLY_TRUE = "Probably True"
UNCLEAR = "Unclear"
FALSE = "False"

VERDICTS = (TRUE, PROBABLY_TRUE, UNCLEAR, FALSE)

#: Minimum number of agreeing soft facts for a Probably-True verdict.
MIN_SOFT_AGREEMENTS = 2


def disclosed_facts(document: AliasDocument) -> Dict[str, Set[str]]:
    """All facts an alias disclosed, grouped by kind.

    Reads the structured ``disclosures`` metadata that
    :func:`repro.core.documents.build_document` aggregates from message
    metadata.  A kind can hold several values (a user may mention two
    hobbies).
    """
    raw = document.metadata.get("disclosures", {})
    return {kind: set(values) for kind, values in raw.items()}


@dataclass(frozen=True)
class PairEvidence:
    """The evidence supporting one verdict.

    Attributes
    ----------
    verdict:
        One of :data:`VERDICTS`.
    unique_matches:
        Unique-identifier kinds that matched (alias refs, e-mails,
        referral links) — the paper's True-grade evidence.
    agreements:
        Soft kinds where both aliases disclosed the same value.
    contradictions:
        Kinds where both aliases disclosed *different* values.
    """

    verdict: str
    unique_matches: Tuple[str, ...] = ()
    agreements: Tuple[str, ...] = ()
    contradictions: Tuple[str, ...] = ()


def _alias_ref_hits(facts_a: Mapping[str, Set[str]],
                    doc_b: AliasDocument) -> bool:
    """Did alias A declare alias B (``forum:alias`` reference)?"""
    for ref in facts_a.get(ev.ALIAS_REF, ()):
        _, _, referred = ref.partition(":")
        if referred and (referred == doc_b.alias
                         or doc_b.alias.endswith("/" + referred)
                         or referred == doc_b.alias.split("/")[-1]):
            return True
    return False


def classify_pair(doc_a: AliasDocument,
                  doc_b: AliasDocument) -> PairEvidence:
    """Classify an alias pair exactly as the paper's human protocol.

    Priority: unique identity leaks make the pair **True** regardless of
    anything else (the paper trusts an explicit self-declaration over
    inconsistent chatter); otherwise any contradiction makes it
    **False**; otherwise enough soft agreements make it **Probably
    True**; otherwise **Unclear**.
    """
    facts_a = disclosed_facts(doc_a)
    facts_b = disclosed_facts(doc_b)

    unique: List[str] = []
    bare_a = doc_a.alias.split("/")[-1].lower()
    bare_b = doc_b.alias.split("/")[-1].lower()
    if bare_a == bare_b:
        # vendors "use their name as a brand" across forums (§V-C):
        # an identical nickname is the strongest possible evidence.
        unique.append("same_alias")
    if _alias_ref_hits(facts_a, doc_b) or _alias_ref_hits(facts_b, doc_a):
        unique.append(ev.ALIAS_REF)
    for kind in (ev.REFERRAL_LINK, ev.EMAIL):
        if facts_a.get(kind) and facts_a.get(kind) == facts_b.get(kind):
            unique.append(kind)

    agreements: List[str] = []
    contradictions: List[str] = []
    shared_kinds = set(facts_a) & set(facts_b)
    for kind in sorted(shared_kinds):
        if kind in ev.UNIQUE_KINDS:
            continue
        values_a, values_b = facts_a[kind], facts_b[kind]
        if values_a & values_b:
            agreements.append(kind)
        elif kind in ev.CONTRADICTION_KINDS:
            contradictions.append(kind)

    if unique:
        verdict = TRUE
    elif contradictions:
        verdict = FALSE
    elif len(agreements) >= MIN_SOFT_AGREEMENTS:
        verdict = PROBABLY_TRUE
    else:
        verdict = UNCLEAR
    return PairEvidence(
        verdict=verdict,
        unique_matches=tuple(unique),
        agreements=tuple(agreements),
        contradictions=tuple(contradictions),
    )


@dataclass
class EvaluationReport:
    """Outcome of evaluating a set of output pairs (§V-B / §V-C style).

    Attributes
    ----------
    classified:
        ``(match, evidence)`` for every accepted pair.
    counts:
        Verdict histogram, e.g. ``{"True": 7, "Unclear": 1, "False": 3}``.
    """

    classified: List[Tuple[Match, PairEvidence]] = field(
        default_factory=list)
    counts: Counter = field(default_factory=Counter)

    @property
    def n_pairs(self) -> int:
        return len(self.classified)

    def summary_rows(self) -> List[Tuple[str, int]]:
        """Rows for printing: one per verdict, Table-like."""
        return [(verdict, self.counts.get(verdict, 0))
                for verdict in VERDICTS]


def evaluate_matches(matches: Sequence[Match],
                     documents: Mapping[str, AliasDocument],
                     accepted_only: bool = True) -> EvaluationReport:
    """Run the §V-A protocol over a linker's output.

    Parameters
    ----------
    matches:
        Output of :meth:`repro.core.linker.AliasLinker.link`.
    documents:
        ``doc_id -> document`` covering both sides of every match.
    accepted_only:
        Evaluate only pairs above the threshold (the paper inspects the
        algorithm's actual output).
    """
    report = EvaluationReport()
    for match in matches:
        if accepted_only and not match.accepted:
            continue
        doc_a = documents[match.unknown_id]
        doc_b = documents[match.candidate_id]
        evidence = classify_pair(doc_a, doc_b)
        report.classified.append((match, evidence))
        report.counts[evidence.verdict] += 1
    return report


def ground_truth_verdicts(matches: Sequence[Match],
                          truth: Mapping[str, str]) -> Dict[str, int]:
    """Exact correctness counts when real ground truth *is* available.

    The synthetic world knows the links, so benches can report both the
    paper-style evidence verdicts and the exact confusion counts.
    """
    correct = wrong = no_truth = 0
    for match in matches:
        if not match.accepted:
            continue
        expected = truth.get(match.unknown_id)
        if expected is None:
            no_truth += 1
        elif expected == match.candidate_id:
            correct += 1
        else:
            wrong += 1
    return {"correct": correct, "wrong": wrong, "no_truth": no_truth}
