"""Evaluation metrics: precision-recall curves, AUC, accuracy@k.

The paper evaluates its matcher with precision-recall curves swept over
the second-stage cosine score (Figs. 2, 3, 5), the area under those
curves (Table VI), and reduction accuracy at k (Table III, Fig. 4).

Conventions (matching Section IV-E):

* every unknown alias contributes at most one *output pair* — its best
  candidate;
* a pair is **correct** when the candidate is the unknown's true alias;
* **recall** divides by the number of unknowns that truly have a match
  among the known aliases (an unknown with no alter ego in the corpus
  can only hurt precision, never recall);
* **precision** divides by the number of pairs output at the threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class PRCurve:
    """A precision-recall curve swept over score thresholds.

    Attributes
    ----------
    thresholds:
        Candidate thresholds, descending (every distinct score).
    precisions / recalls:
        Metrics of the output set at each threshold.
    n_positive:
        The recall denominator (unknowns with a true match).
    """

    thresholds: np.ndarray
    precisions: np.ndarray
    recalls: np.ndarray
    n_positive: int

    def auc(self) -> float:
        """Area under the precision-recall curve.

        Computed with the trapezoid rule over recall after anchoring
        the curve at recall 0 (with the first precision value).  The
        result is in [0, 1]; higher is better (Table VI).
        """
        if len(self.recalls) == 0:
            return 0.0
        recalls = np.concatenate([[0.0], self.recalls])
        precisions = np.concatenate([[self.precisions[0]],
                                     self.precisions])
        order = np.argsort(recalls, kind="stable")
        return float(np.trapezoid(precisions[order], recalls[order]))

    def at_threshold(self, threshold: float) -> Tuple[float, float]:
        """(precision, recall) of the output set at *threshold*."""
        mask = self.thresholds >= threshold
        if not mask.any():
            return 1.0, 0.0
        idx = int(np.flatnonzero(mask)[-1])
        return float(self.precisions[idx]), float(self.recalls[idx])

    def threshold_for_recall(self, target_recall: float) -> float:
        """Smallest threshold whose recall reaches *target_recall*.

        This is how Table V picks per-forum thresholds ("the thresholds
        associated with 80% recall").  When the target is unreachable,
        the lowest available threshold is returned.
        """
        mask = self.recalls >= target_recall
        if not mask.any():
            return float(self.thresholds[-1])
        idx = int(np.flatnonzero(mask)[0])
        return float(self.thresholds[idx])


def pr_curve(scores: Sequence[float], labels: Sequence[bool],
             n_positive: Optional[int] = None) -> PRCurve:
    """Build a :class:`PRCurve` from per-pair scores and correctness.

    Parameters
    ----------
    scores:
        Best-candidate score of each unknown alias.
    labels:
        Whether that best candidate is the true match.
    n_positive:
        Recall denominator; defaults to ``sum(labels)`` (i.e. assumes
        every true match that exists was ranked first by someone).
        Experiments that know the real number of linked aliases should
        pass it explicitly.
    """
    score_array = np.asarray(scores, dtype=np.float64)
    label_array = np.asarray(labels, dtype=bool)
    if score_array.shape != label_array.shape:
        raise ValueError("scores and labels must have the same length")
    if n_positive is None:
        n_positive = int(label_array.sum())
    if score_array.size == 0 or n_positive == 0:
        return PRCurve(thresholds=np.empty(0), precisions=np.empty(0),
                       recalls=np.empty(0), n_positive=n_positive)
    order = np.argsort(-score_array, kind="stable")
    sorted_scores = score_array[order]
    sorted_labels = label_array[order]
    tp = np.cumsum(sorted_labels)
    output = np.arange(1, len(sorted_labels) + 1)
    precision = tp / output
    recall = tp / n_positive
    # Collapse ties: keep the last entry of every distinct score.
    distinct = np.ones(len(sorted_scores), dtype=bool)
    distinct[:-1] = sorted_scores[1:] != sorted_scores[:-1]
    return PRCurve(
        thresholds=sorted_scores[distinct],
        precisions=precision[distinct],
        recalls=recall[distinct],
        n_positive=n_positive,
    )


def precision_recall_f1(n_correct: int, n_output: int,
                        n_positive: int) -> Tuple[float, float, float]:
    """Point metrics from raw counts (used by the §V result tables)."""
    precision = n_correct / n_output if n_output else 0.0
    recall = n_correct / n_positive if n_positive else 0.0
    f1 = (2 * precision * recall / (precision + recall)
          if precision + recall else 0.0)
    return precision, recall, f1


def accuracy_at_k(ranks: Sequence[int], k: int) -> float:
    """Fraction of queries whose true match ranked within the top k."""
    if k < 1:
        raise ValueError("k must be >= 1")
    rank_array = np.asarray(ranks)
    if rank_array.size == 0:
        return 0.0
    return float(np.mean(rank_array <= k))


def curve_table(curve: PRCurve, points: int = 20) -> List[Dict[str, float]]:
    """Downsample a curve into printable rows (for the benches)."""
    if len(curve.thresholds) == 0:
        return []
    idx = np.linspace(0, len(curve.thresholds) - 1,
                      min(points, len(curve.thresholds))).astype(int)
    return [
        {
            "threshold": float(curve.thresholds[i]),
            "precision": float(curve.precisions[i]),
            "recall": float(curve.recalls[i]),
        }
        for i in idx
    ]
