"""Aggregate benchmark result files into a single report.

Every bench writes its measured table under ``benchmarks/results/``;
this module collects those files into one markdown document so
EXPERIMENTS.md's "measured" sections can be regenerated after a bench
run instead of being copied by hand:

    python -m repro.eval.reporting benchmarks/results > report.md
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence

#: Preferred ordering of result sections (paper order); anything not
#: listed is appended alphabetically.
SECTION_ORDER = (
    "table1_reddit_composition",
    "fig1_word_cdf",
    "table2_feature_config",
    "table3_kattribution_words",
    "table4_dataset_sizes",
    "fig2_threshold_calibration",
    "fig3_baseline_comparison",
    "table5_threshold_transfer",
    "table6_auc_reduction",
    "fig4_activity_impact_reddit",
    "fig4_activity_impact_darkweb",
    "batch_processing",
    "results_tmg_vs_dm",
    "results_reddit_vs_darkweb",
    "profile_extraction",
    "ablation_restage",
    "ablation_lemmatization",
    "ablation_polishing",
    "defense_countermeasures",
    "time_range_sensitivity",
)


@dataclass(frozen=True)
class ResultSection:
    """One bench's persisted output."""

    name: str
    body: str

    @property
    def title(self) -> str:
        return self.name.replace("_", " ")


def load_sections(results_dir: Path) -> List[ResultSection]:
    """Read every ``*.txt`` result file in paper order."""
    if not results_dir.is_dir():
        raise FileNotFoundError(f"{results_dir} is not a directory")
    available = {p.stem: p for p in sorted(results_dir.glob("*.txt"))}
    ordered: List[ResultSection] = []
    for name in SECTION_ORDER:
        path = available.pop(name, None)
        if path is not None:
            ordered.append(ResultSection(
                name=name, body=path.read_text(encoding="utf-8")))
    for name in sorted(available):
        ordered.append(ResultSection(
            name=name,
            body=available[name].read_text(encoding="utf-8")))
    return ordered


def render_markdown(sections: Sequence[ResultSection],
                    heading: str = "Measured benchmark results",
                    ) -> str:
    """Render the sections as one markdown document."""
    lines: List[str] = [f"# {heading}", ""]
    for section in sections:
        lines.append(f"## {section.title}")
        lines.append("")
        lines.append("```text")
        lines.append(section.body.rstrip("\n"))
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if len(args) != 1:
        print("usage: python -m repro.eval.reporting <results-dir>",
              file=sys.stderr)
        return 2
    try:
        sections = load_sections(Path(args[0]))
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not sections:
        print("error: no result files found", file=sys.stderr)
        return 1
    print(render_markdown(sections))
    return 0


if __name__ == "__main__":
    sys.exit(main())
