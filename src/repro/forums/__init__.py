"""Forum substrate: data model, storage, topic taxonomy and simulated
scrapers for Reddit, The Majestic Garden, and the Dream Market forum.
"""

from repro.forums.models import (
    DAY,
    HOUR,
    Forum,
    Message,
    Thread,
    UserRecord,
    merge_forums,
)
from repro.forums.storage import (
    iter_user_records,
    load_forum,
    load_world,
    save_forum,
    save_world,
)
from repro.forums.topics import (
    TABLE_I,
    TOPICS_BY_NAME,
    TopicSpec,
    topic_names,
)

__all__ = [
    "DAY",
    "HOUR",
    "Forum",
    "Message",
    "Thread",
    "UserRecord",
    "merge_forums",
    "iter_user_records",
    "load_forum",
    "load_world",
    "save_forum",
    "save_world",
    "TABLE_I",
    "TOPICS_BY_NAME",
    "TopicSpec",
    "topic_names",
]
