"""Simulated dark-web forum collection (Section III-B).

The Majestic Garden and the Dream Market forum are hidden services:
slow Tor circuits, no API, occasional circuit failures.  The simulated
scraper models those conditions (higher latency, higher transient
failure rate) on top of the generic pagination machinery, and — like
the paper — collects every accessible section.

On The Majestic Garden each vendor has their own thread whose first
post is the showcase; :meth:`DarkWebScraper.vendor_threads` exposes
them, since the §V-C analysis leans on vendors using their alias as a
brand.
"""

from __future__ import annotations

from typing import List, Optional

from repro.forums.models import Forum, Thread
from repro.forums.scraper import ForumScraper, ScrapeSession

#: Hidden services answer slowly and fail more often than the clearnet.
TOR_MEAN_LATENCY = 2.5
TOR_FAILURE_RATE = 0.05


def tor_session(seed: int = 0) -> ScrapeSession:
    """A scrape session parameterized like a Tor circuit."""
    return ScrapeSession(
        seed=seed,
        min_interval=2.0,
        failure_rate=TOR_FAILURE_RATE,
        mean_latency=TOR_MEAN_LATENCY,
        max_retries=5,
    )


class DarkWebScraper(ForumScraper):
    """Crawl a hidden-service forum over a simulated Tor session."""

    def __init__(self, source: Forum,
                 session: Optional[ScrapeSession] = None,
                 seed: int = 0) -> None:
        super().__init__(source, session or tor_session(seed))

    def vendor_threads(self) -> List[Thread]:
        """Threads whose opener looks like a vendor showcase.

        Heuristic matching the synthetic generator (and the real TMG
        convention): the first post introduces an "official ... thread".
        """
        index = self._message_index()
        vendors: List[Thread] = []
        for thread in self.source.threads.values():
            if not thread.message_ids:
                continue
            first = index.get(thread.message_ids[0])
            if first is not None and "official" in first.text.lower() \
                    and "thread" in first.text.lower():
                vendors.append(thread)
        return vendors

    def collect(self) -> Forum:
        """Scrape every accessible section (Section III-B)."""
        return super().collect()
