"""Data model for forums, users, threads, and messages.

Every dataset in the reproduction — the synthetic Reddit world, The
Majestic Garden, the Dream Market forum — is represented with the same
small set of immutable records.  Timestamps are stored as Unix epoch
seconds in UTC; each :class:`Forum` additionally records the UTC offset
its *displayed* times use, because the paper must re-align per-forum
local times to UTC before comparing daily activity profiles
(Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.errors import DatasetError

#: Seconds in an hour/day, used throughout timestamp arithmetic.
HOUR = 3600
DAY = 24 * HOUR


@dataclass(frozen=True)
class Message:
    """A single forum post.

    Attributes
    ----------
    message_id:
        Identifier unique within its forum.
    author:
        The alias (nickname) that posted the message.
    text:
        Raw message text as collected; polishing happens later.
    timestamp:
        Posting time, Unix epoch seconds, always UTC.
    forum:
        Name of the forum the message was collected from.
    section:
        Sub-community: a subreddit on Reddit, a board section on the
        dark-web forums.
    parent_id:
        The message this one replies to, if any.
    metadata:
        Free-form extras (e.g. synthetic ground-truth annotations).
    """

    message_id: str
    author: str
    text: str
    timestamp: int
    forum: str
    section: str = ""
    parent_id: Optional[str] = None
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def with_text(self, text: str) -> "Message":
        """Return a copy of this message with *text* replaced."""
        return replace(self, text=text)

    @property
    def hour_utc(self) -> int:
        """Hour of day (0..23) of the posting time in UTC."""
        return (self.timestamp % DAY) // HOUR

    @property
    def day_index(self) -> int:
        """Number of whole days since the epoch (UTC)."""
        return self.timestamp // DAY

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a JSON-compatible dict."""
        data: Dict[str, Any] = {
            "message_id": self.message_id,
            "author": self.author,
            "text": self.text,
            "timestamp": self.timestamp,
            "forum": self.forum,
            "section": self.section,
        }
        if self.parent_id is not None:
            data["parent_id"] = self.parent_id
        if self.metadata:
            data["metadata"] = dict(self.metadata)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Message":
        """Deserialize from :meth:`to_dict` output."""
        try:
            return cls(
                message_id=str(data["message_id"]),
                author=str(data["author"]),
                text=str(data["text"]),
                timestamp=int(data["timestamp"]),
                forum=str(data["forum"]),
                section=str(data.get("section", "")),
                parent_id=data.get("parent_id"),
                metadata=dict(data.get("metadata", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DatasetError(f"malformed message record: {exc}") from exc


@dataclass(frozen=True)
class Thread:
    """A discussion thread: an ordered sequence of message ids.

    Threads matter to the simulated scrapers (topics are collected from
    most- to least-upvoted, Section III-A) and to vendor showcases on
    The Majestic Garden, where the first post is the vendor's ad and the
    replies are customer reviews.
    """

    thread_id: str
    forum: str
    section: str
    title: str
    author: str
    message_ids: Tuple[str, ...] = ()
    upvotes: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "thread_id": self.thread_id,
            "forum": self.forum,
            "section": self.section,
            "title": self.title,
            "author": self.author,
            "message_ids": list(self.message_ids),
            "upvotes": self.upvotes,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Thread":
        try:
            return cls(
                thread_id=str(data["thread_id"]),
                forum=str(data["forum"]),
                section=str(data["section"]),
                title=str(data.get("title", "")),
                author=str(data.get("author", "")),
                message_ids=tuple(data.get("message_ids", ())),
                upvotes=int(data.get("upvotes", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DatasetError(f"malformed thread record: {exc}") from exc


@dataclass
class UserRecord:
    """An alias on one forum together with everything it posted.

    This is the unit the whole pipeline operates on: polishing filters
    its messages, the refinement step checks its word/timestamp floors,
    the feature extractor turns it into a vector.
    """

    alias: str
    forum: str
    messages: List[Message] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)

    def add(self, message: Message) -> None:
        """Append a message; the author must match this alias."""
        if message.author != self.alias:
            raise DatasetError(
                f"message author {message.author!r} does not match "
                f"user record alias {self.alias!r}")
        self.messages.append(message)

    @property
    def timestamps(self) -> List[int]:
        """All posting timestamps (epoch seconds, UTC)."""
        return [m.timestamp for m in self.messages]

    def total_words(self) -> int:
        """Total word-token count over all messages (lazy import)."""
        from repro.textproc.tokenizer import count_words

        return sum(count_words(m.text) for m in self.messages)

    def sections(self) -> Dict[str, int]:
        """Message counts per section (subreddit / board)."""
        counts: Dict[str, int] = {}
        for m in self.messages:
            counts[m.section] = counts.get(m.section, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, Any]:
        return {
            "alias": self.alias,
            "forum": self.forum,
            "messages": [m.to_dict() for m in self.messages],
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "UserRecord":
        try:
            record = cls(
                alias=str(data["alias"]),
                forum=str(data["forum"]),
                metadata=dict(data.get("metadata", {})),
            )
        except (KeyError, TypeError) as exc:
            raise DatasetError(f"malformed user record: {exc}") from exc
        for raw in data.get("messages", ()):
            record.messages.append(Message.from_dict(raw))
        return record


@dataclass
class Forum:
    """A forum: a named collection of users, messages and threads.

    Attributes
    ----------
    name:
        Forum name, e.g. ``"reddit"``, ``"tmg"``, ``"dm"``.
    utc_offset_hours:
        The UTC offset of timestamps as *displayed* by the forum
        software.  Raw scraped timestamps arrive in this local time and
        must be shifted back to UTC (Section IV-B); the simulated
        scrapers reproduce this quirk.
    sections:
        Known sections (subreddits / boards).
    """

    name: str
    utc_offset_hours: int = 0
    sections: List[str] = field(default_factory=list)
    users: Dict[str, UserRecord] = field(default_factory=dict)
    threads: Dict[str, Thread] = field(default_factory=dict)

    def user(self, alias: str) -> UserRecord:
        """Get (or lazily create) the record for *alias*."""
        if alias not in self.users:
            self.users[alias] = UserRecord(alias=alias, forum=self.name)
        return self.users[alias]

    def add_message(self, message: Message) -> None:
        """Insert a message, creating the author record if needed."""
        if message.forum != self.name:
            raise DatasetError(
                f"message forum {message.forum!r} does not match "
                f"forum {self.name!r}")
        self.user(message.author).add(message)
        if message.section and message.section not in self.sections:
            self.sections.append(message.section)

    def add_thread(self, thread: Thread) -> None:
        if thread.forum != self.name:
            raise DatasetError(
                f"thread forum {thread.forum!r} does not match "
                f"forum {self.name!r}")
        self.threads[thread.thread_id] = thread

    def iter_messages(self) -> Iterator[Message]:
        """Iterate over every message of every user."""
        for record in self.users.values():
            yield from record.messages

    @property
    def n_users(self) -> int:
        return len(self.users)

    @property
    def n_messages(self) -> int:
        return sum(len(u.messages) for u in self.users.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "utc_offset_hours": self.utc_offset_hours,
            "sections": list(self.sections),
            "users": [u.to_dict() for u in self.users.values()],
            "threads": [t.to_dict() for t in self.threads.values()],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Forum":
        try:
            forum = cls(
                name=str(data["name"]),
                utc_offset_hours=int(data.get("utc_offset_hours", 0)),
                sections=list(data.get("sections", [])),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DatasetError(f"malformed forum record: {exc}") from exc
        for raw in data.get("users", ()):
            record = UserRecord.from_dict(raw)
            forum.users[record.alias] = record
        for raw in data.get("threads", ()):
            thread = Thread.from_dict(raw)
            forum.threads[thread.thread_id] = thread
        return forum


def merge_forums(name: str, forums: Iterable[Forum]) -> Forum:
    """Merge several forums into one (used for the DarkWeb = TMG + DM set).

    Aliases are namespaced with their source forum (``tmg/gardenlover``)
    so that identically-named users on different forums never collide.
    Messages keep their original ``forum`` field; only the container and
    the author alias change.
    """
    merged = Forum(name=name)
    for forum in forums:
        for record in forum.users.values():
            qualified = f"{forum.name}/{record.alias}"
            new_record = UserRecord(alias=qualified, forum=name,
                                    metadata=dict(record.metadata))
            new_record.metadata.setdefault("source_forum", forum.name)
            new_record.metadata.setdefault("source_alias", record.alias)
            for message in record.messages:
                new_record.messages.append(
                    replace(message, author=qualified, forum=name))
            if qualified in merged.users:
                raise DatasetError(f"duplicate qualified alias {qualified!r}")
            merged.users[qualified] = new_record
        for section in forum.sections:
            qualified_section = f"{forum.name}/{section}"
            if qualified_section not in merged.sections:
                merged.sections.append(qualified_section)
    return merged
