"""Simulated Reddit collection (Section III-A).

The paper's Reddit procedure, reproduced against a synthetic world:

1. take the topics of the seed subreddit (r/DarkNetMarkets), "from the
   most upvoted to the least", and keep the first 1,000;
2. collect every user who commented in those topics;
3. for each user, fetch "the last 1000 messages across all the
   subreddits".

The output is a fresh :class:`~repro.forums.models.Forum` holding only
what the crawler saw — typically a subset of the world, exactly like a
real crawl.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Set

from repro.errors import ScrapeError
from repro.forums.models import HOUR, Forum, Message
from repro.forums.scraper import ForumScraper, ScrapeSession

#: The seed subreddit of the study.
SEED_SUBREDDIT = "r/DarkNetMarkets"

#: Paper parameters.
DEFAULT_TOP_TOPICS = 1000
DEFAULT_HISTORY_LIMIT = 1000


class RedditScraper(ForumScraper):
    """Crawl a synthetic Reddit following the paper's procedure."""

    def __init__(self, source: Forum,
                 session: Optional[ScrapeSession] = None,
                 seed_subreddit: str = SEED_SUBREDDIT) -> None:
        super().__init__(source, session)
        self.seed_subreddit = seed_subreddit

    def seed_commenters(self, n_topics: int = DEFAULT_TOP_TOPICS,
                        ) -> List[str]:
        """Users who commented in the top *n_topics* seed threads."""
        threads = self.list_threads(self.seed_subreddit)[:n_topics]
        if not threads:
            raise ScrapeError(
                f"seed subreddit {self.seed_subreddit!r} has no threads")
        commenters: Set[str] = set()
        for thread in threads:
            for message in self.fetch_thread(thread):
                commenters.add(message.author)
        return sorted(commenters)

    def user_history(self, alias: str,
                     limit: int = DEFAULT_HISTORY_LIMIT) -> List[Message]:
        """The user's last *limit* messages across all subreddits.

        Timestamps arrive forum-local (Reddit displays account-local
        times; the synthetic forum models one display offset) and are
        returned as-is — :meth:`collect_study_dataset` realigns them.
        """
        record = self.source.users.get(alias)
        self.session.request(f"u/{alias}/comments")
        if record is None:
            return []
        ordered = sorted(record.messages, key=lambda m: m.timestamp,
                         reverse=True)[:limit]
        offset = self.source.utc_offset_hours * HOUR
        pages = max(1, (len(ordered) + 99) // 100)
        for page in range(1, pages):
            self.session.request(f"u/{alias}/comments?page={page}")
        return [replace(m, timestamp=m.timestamp + offset)
                for m in ordered]

    def collect_study_dataset(self,
                              n_topics: int = DEFAULT_TOP_TOPICS,
                              history_limit: int = DEFAULT_HISTORY_LIMIT,
                              ) -> Forum:
        """Run the full §III-A procedure and return the collected forum."""
        collected = Forum(name=self.source.name, utc_offset_hours=0)
        offset = self.source.utc_offset_hours * HOUR
        for alias in self.seed_commenters(n_topics):
            for message in self.user_history(alias, history_limit):
                collected.add_message(
                    replace(message, timestamp=message.timestamp - offset))
                self.session.stats.messages_collected += 1
        return collected
