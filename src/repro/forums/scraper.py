"""Simulated scraping infrastructure.

The paper's datasets were scraped: "these sites do not have open APIs;
we had to scrape the content of the forums".  This reproduction has no
network (and no Tor), so scraping is simulated against in-memory
:class:`~repro.forums.models.Forum` worlds — but the *collection
semantics* are reproduced faithfully, because they shape the data:

* requests are paginated and rate-limited, with a virtual clock so
  collection cost is measurable;
* transient failures occur and are retried with backoff, like real
  hidden-service fetches;
* the forum software displays timestamps in its own timezone, so the
  scraper receives local times and the collector must realign them to
  UTC (Section IV-B) — getting this wrong silently ruins the daily
  activity profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import RetryExhaustedError, ScrapeError, TransientError
from repro.forums.models import HOUR, Forum, Message, Thread, UserRecord
from repro.obs.metrics import counter
from repro.resilience.policy import RetryPolicy

#: Messages returned per page by the simulated forum software.
PAGE_SIZE = 25

#: Simulated requests issued across all sessions.
_REQUESTS = counter("scrape_requests_total")
#: Transient request failures observed (before retrying).
_FAILURES = counter("scrape_failures_total")
#: Retries performed after transient failures.
_RETRIES = counter("scrape_retries_total")


@dataclass
class ScrapeStats:
    """Accounting for a collection run."""

    requests: int = 0
    retries: int = 0
    failures: int = 0
    virtual_seconds: float = 0.0
    messages_collected: int = 0


class ScrapeSession:
    """A deterministic simulated HTTP(S)/Tor session.

    Parameters
    ----------
    seed:
        Randomness seed for latency and transient failures.
    min_interval:
        Rate limit: virtual seconds enforced between requests.
    failure_rate:
        Probability that a request fails transiently.
    mean_latency:
        Mean virtual latency per request (Tor circuits are slow; use a
        higher value for hidden services).
    max_retries:
        Transient failures are retried this many times before a
        :class:`~repro.errors.ScrapeError` is raised.  Shorthand for
        the default *retry_policy*.
    retry_policy:
        Full control over backoff: any
        :class:`~repro.resilience.policy.RetryPolicy`.  Backoff and
        deadline accounting run on the session's *virtual* clock, so
        a policy deadline bounds virtual collection time, not wall
        time.
    """

    def __init__(self, seed: int = 0, min_interval: float = 1.0,
                 failure_rate: float = 0.01, mean_latency: float = 0.4,
                 max_retries: int = 3,
                 retry_policy: Optional[RetryPolicy] = None) -> None:
        if not 0.0 <= failure_rate < 1.0:
            raise ValueError("failure_rate must be in [0, 1)")
        self._rng = np.random.default_rng(seed)
        self.min_interval = min_interval
        self.failure_rate = failure_rate
        self.mean_latency = mean_latency
        self.retry_policy = retry_policy if retry_policy is not None \
            else RetryPolicy(max_retries=max_retries, base_delay=1.0,
                             multiplier=2.0, max_delay=64.0,
                             retryable=(TransientError,))
        self.max_retries = self.retry_policy.max_retries
        self.stats = ScrapeStats()

    def _attempt(self, resource: str) -> None:
        """One request attempt on the virtual clock."""
        self.stats.requests += 1
        _REQUESTS.inc()
        latency = float(self._rng.exponential(self.mean_latency))
        self.stats.virtual_seconds += max(self.min_interval, latency)
        if self._rng.random() < self.failure_rate:
            self.stats.failures += 1
            _FAILURES.inc()
            raise TransientError(
                f"simulated transient failure fetching {resource!r}")

    def request(self, resource: str) -> None:
        """Simulate one request (advances the virtual clock).

        Transient failures are retried under :attr:`retry_policy`, with
        the exponential backoff spent on the virtual clock.  Raises
        :class:`~repro.errors.ScrapeError` — carrying the attempt count
        and the total backoff consumed — when every retry fails.
        """

        def _sleep(seconds: float) -> None:
            self.stats.virtual_seconds += seconds

        def _on_retry(attempt: int, error: BaseException) -> None:
            self.stats.retries += 1
            _RETRIES.inc()

        try:
            self.retry_policy.call(
                self._attempt, resource,
                sleep=_sleep,
                clock=lambda: self.stats.virtual_seconds,
                on_retry=_on_retry,
            )
        except RetryExhaustedError as exc:
            raise ScrapeError(
                f"giving up on {resource!r} after {exc.attempts} "
                f"attempt(s) and {exc.backoff_seconds:.1f}s of "
                f"backoff") from exc


class ForumScraper:
    """Base scraper: paginate threads and posts of a source forum.

    The source forum stores UTC timestamps; :meth:`_fetch_page` hands
    out *local* times (what the forum software displays) and
    :meth:`collect` realigns them, modelling the paper's UTC
    adjustment.
    """

    def __init__(self, source: Forum,
                 session: Optional[ScrapeSession] = None) -> None:
        self.source = source
        self.session = session or ScrapeSession()

    # -- simulated site endpoints -------------------------------------------

    def list_sections(self) -> List[str]:
        """The forum's boards/subreddits (one request)."""
        self.session.request(f"{self.source.name}/sections")
        return list(self.source.sections)

    def list_threads(self, section: str) -> List[Thread]:
        """Threads of a section, most-upvoted first (one request/page)."""
        threads = [t for t in self.source.threads.values()
                   if t.section == section]
        threads.sort(key=lambda t: (-t.upvotes, t.thread_id))
        pages = max(1, (len(threads) + PAGE_SIZE - 1) // PAGE_SIZE)
        for page in range(pages):
            self.session.request(
                f"{self.source.name}/{section}?page={page}")
        return threads

    def _fetch_page(self, thread: Thread, page: int) -> List[Message]:
        """One page of posts, timestamps in forum-local time."""
        self.session.request(
            f"{self.source.name}/thread/{thread.thread_id}?page={page}")
        start = page * PAGE_SIZE
        ids = thread.message_ids[start:start + PAGE_SIZE]
        by_id = self._message_index()
        offset = self.source.utc_offset_hours * HOUR
        page_messages: List[Message] = []
        for message_id in ids:
            message = by_id.get(message_id)
            if message is None:
                continue
            from dataclasses import replace

            page_messages.append(
                replace(message, timestamp=message.timestamp + offset))
        return page_messages

    def fetch_thread(self, thread: Thread) -> List[Message]:
        """Every post of a thread (local-time stamps)."""
        messages: List[Message] = []
        page = 0
        while page * PAGE_SIZE < len(thread.message_ids):
            messages.extend(self._fetch_page(thread, page))
            page += 1
        return messages

    def _message_index(self) -> Dict[str, Message]:
        index = getattr(self, "_index_cache", None)
        if index is None:
            index = {m.message_id: m
                     for m in self.source.iter_messages()}
            self._index_cache = index
        return index

    # -- collection ----------------------------------------------------------

    def collect(self) -> Forum:
        """Scrape the whole forum and realign timestamps to UTC."""
        collected = Forum(name=self.source.name,
                          utc_offset_hours=0,
                          sections=[])
        offset = self.source.utc_offset_hours * HOUR
        for section in self.list_sections():
            for thread in self.list_threads(section):
                for message in self.fetch_thread(thread):
                    from dataclasses import replace

                    utc_message = replace(message,
                                          timestamp=message.timestamp
                                          - offset)
                    collected.add_message(utc_message)
                    self.session.stats.messages_collected += 1
                collected.add_thread(thread)
        return collected
