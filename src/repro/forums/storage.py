"""JSONL persistence for forum datasets.

Forums are stored as one JSON object per line: a header line describing
the forum, followed by one line per user record.  JSONL keeps memory
bounded on load (users stream one at a time) and diffs well under
version control.  A whole-directory layout maps one forum per file.

Crash safety (the collection runs the paper describes were multi-hour
scrapes; losing a dataset to a crash mid-save is not acceptable):

* :func:`save_forum` writes to a sibling temp file and atomically
  :func:`os.replace`-s it into place, so readers never observe a
  half-written file;
* the header records ``n_users``, and loaders verify it — a truncated
  file (power loss, full disk, torn copy) raises
  :class:`~repro.errors.DatasetError` instead of silently yielding a
  smaller forum;
* ``recover=True`` flips loaders into salvage mode: corrupt lines and
  the truncated tail are skipped (and counted in the
  ``storage_recovered_records_total`` metric) and everything parseable
  is returned.

Storage I/O is fault-injection aware: when a
:class:`~repro.resilience.faults.FaultPlan` is active, loads and saves
run under a retry policy so injected transient failures are absorbed,
exactly like flaky disks or network filesystems would be in production.
"""

from __future__ import annotations

import gzip
import json
import os
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Union

from repro.errors import DatasetError
from repro.forums.models import Forum, Thread, UserRecord
from repro.obs.logging import get_logger
from repro.obs.metrics import counter
from repro.resilience.faults import guarded_call

log = get_logger(__name__)

PathLike = Union[str, os.PathLike]

#: Schema version written in every header; bumped on breaking changes.
SCHEMA_VERSION = 1

#: Corrupt or surplus records skipped by ``recover=True`` loads.
_RECOVERED = counter("storage_recovered_records_total")
#: Atomic save_forum completions.
_SAVES = counter("storage_saves_total")


def _is_gz(path: Path) -> bool:
    return path.name.endswith(".gz")


def _open(path: Path, mode: str, compressed: Optional[bool] = None):
    """Open *path*, transparently handling gzip compression.

    *compressed* overrides suffix sniffing — needed when writing to a
    ``*.tmp`` staging file that will be renamed over a ``.gz`` target.
    """
    if compressed is None:
        compressed = _is_gz(path)
    if compressed:
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def _fsync_path(path: Path) -> None:
    """Flush *path*'s contents to stable storage (best effort)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def save_forum(forum: Forum, path: PathLike, atomic: bool = True) -> None:
    """Write *forum* to *path* in JSONL format.

    The first line is a header with the forum name, UTC offset,
    sections, threads and the user-record count; each following line is
    one user record.  With *atomic* (the default) the bytes land in a
    sibling ``*.tmp`` file that is fsynced and renamed over *path*, so
    a crash mid-save leaves any previous version intact and never a
    torn file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "schema": SCHEMA_VERSION,
        "kind": "forum-header",
        "name": forum.name,
        "utc_offset_hours": forum.utc_offset_hours,
        "sections": list(forum.sections),
        "threads": [t.to_dict() for t in forum.threads.values()],
        "n_users": forum.n_users,
    }
    target = path.with_name(path.name + ".tmp") if atomic else path

    def _write() -> None:
        with _open(target, "w", compressed=_is_gz(path)) as fh:
            fh.write(json.dumps(header, ensure_ascii=False) + "\n")
            for record in forum.users.values():
                fh.write(json.dumps(record.to_dict(),
                                    ensure_ascii=False) + "\n")
        if atomic:
            _fsync_path(target)
            os.replace(target, path)

    try:
        guarded_call("storage.save", _write)
    except BaseException:
        if atomic:
            try:
                target.unlink()
            except FileNotFoundError:
                pass
        raise
    _SAVES.inc()


def _parse_record(path: Path, lineno: int, line: str) -> UserRecord:
    """One JSONL body line -> UserRecord, with uniform error wrapping."""
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise DatasetError(f"{path}:{lineno}: invalid JSON") from exc
    try:
        return UserRecord.from_dict(data)
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise DatasetError(
            f"{path}:{lineno}: malformed user record: {exc}") from exc


def _check_complete(path: Path, header: Dict, n_read: int) -> None:
    """Raise on a short (or padded) read vs. the header's promise."""
    expected = header.get("n_users")
    if expected is None:
        return
    expected = int(expected)
    if n_read != expected:
        kind = "truncated" if n_read < expected else "overlong"
        raise DatasetError(
            f"{path}: {kind} dataset: header promises {expected} user "
            f"record(s), found {n_read}")


def iter_user_records(path: PathLike,
                      recover: bool = False) -> Iterator[UserRecord]:
    """Stream the user records of a stored forum without loading it all.

    Validates the header's ``n_users`` against what the file actually
    contains and raises :class:`~repro.errors.DatasetError` on a short
    read.  With *recover*, corrupt lines and a truncated tail are
    skipped instead (salvage mode).
    """
    path = Path(path)
    with _open(path, "r") as fh:
        header_line = fh.readline()
        if not header_line:
            raise DatasetError(f"{path}: empty dataset file")
        header = _parse_header(path, header_line)
        n_read = 0
        for lineno, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                record = _parse_record(path, lineno, line)
            except DatasetError as exc:
                if recover:
                    _RECOVERED.inc()
                    log.warning("storage.recover", path=str(path),
                                line=lineno, reason=str(exc))
                    continue
                raise
            n_read += 1
            yield record
        if not recover:
            _check_complete(path, header, n_read)


def load_forum(path: PathLike,
               keep: Optional[Callable[[UserRecord], bool]] = None,
               recover: bool = False) -> Forum:
    """Load a forum from *path*.

    Parameters
    ----------
    path:
        JSONL file written by :func:`save_forum` (optionally ``.gz``).
    keep:
        Optional predicate; user records for which it returns ``False``
        are skipped at load time (useful to subsample huge datasets).
    recover:
        Salvage mode for damaged files: corrupt lines, duplicate
        aliases and a truncated tail are skipped (and counted in the
        ``storage_recovered_records_total`` metric) instead of raising.
    """
    path = Path(path)

    def _load() -> Forum:
        with _open(path, "r") as fh:
            header_line = fh.readline()
            if not header_line:
                raise DatasetError(f"{path}: empty dataset file")
            header = _parse_header(path, header_line)
            forum = Forum(
                name=str(header["name"]),
                utc_offset_hours=int(header.get("utc_offset_hours", 0)),
                sections=list(header.get("sections", [])),
            )
            for raw in header.get("threads", ()):
                thread = Thread.from_dict(raw)
                forum.threads[thread.thread_id] = thread
            n_read = 0
            for lineno, line in enumerate(fh, start=2):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = _parse_record(path, lineno, line)
                except DatasetError as exc:
                    if recover:
                        _RECOVERED.inc()
                        log.warning("storage.recover", path=str(path),
                                    line=lineno, reason=str(exc))
                        continue
                    raise
                if record.alias in forum.users:
                    if recover:
                        _RECOVERED.inc()
                        log.warning("storage.recover", path=str(path),
                                    line=lineno,
                                    reason=f"duplicate alias "
                                           f"{record.alias!r}")
                        continue
                    raise DatasetError(
                        f"{path}:{lineno}: duplicate alias "
                        f"{record.alias!r}")
                n_read += 1
                if keep is not None and not keep(record):
                    continue
                forum.users[record.alias] = record
            if not recover:
                _check_complete(path, header, n_read)
        return forum

    return guarded_call("storage.load", _load)


def _parse_header(path: Path, line: str) -> Dict:
    try:
        header = json.loads(line)
    except json.JSONDecodeError as exc:
        raise DatasetError(f"{path}: invalid header line") from exc
    if not isinstance(header, dict) or header.get("kind") != "forum-header":
        raise DatasetError(f"{path}: missing forum header")
    schema = header.get("schema")
    if schema != SCHEMA_VERSION:
        raise DatasetError(
            f"{path}: unsupported schema version {schema!r} "
            f"(expected {SCHEMA_VERSION})")
    if "name" not in header:
        raise DatasetError(f"{path}: header lacks forum name")
    return header


def save_world(forums: List[Forum], directory: PathLike) -> List[Path]:
    """Save several forums, one file per forum, into *directory*.

    Returns the written paths.  File names are ``<forum-name>.jsonl``.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for forum in forums:
        path = directory / f"{forum.name}.jsonl"
        save_forum(forum, path)
        paths.append(path)
    return paths


def load_world(directory: PathLike,
               recover: bool = False) -> Dict[str, Forum]:
    """Load every ``*.jsonl`` / ``*.jsonl.gz`` forum file in *directory*."""
    directory = Path(directory)
    if not directory.is_dir():
        raise DatasetError(f"{directory} is not a directory")
    forums: Dict[str, Forum] = {}
    for path in sorted(directory.iterdir()):
        if path.name.endswith(".tmp"):
            continue  # an interrupted atomic save; never a dataset
        if path.suffix == ".jsonl" or path.name.endswith(".jsonl.gz"):
            forum = load_forum(path, recover=recover)
            forums[forum.name] = forum
    if not forums:
        raise DatasetError(f"no forum files found in {directory}")
    return forums
