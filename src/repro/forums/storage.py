"""JSONL persistence for forum datasets.

Forums are stored as one JSON object per line: a header line describing
the forum, followed by one line per user record.  JSONL keeps memory
bounded on load (users stream one at a time) and diffs well under
version control.  A whole-directory layout maps one forum per file.
"""

from __future__ import annotations

import gzip
import json
import os
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Union

from repro.errors import DatasetError
from repro.forums.models import Forum, Thread, UserRecord

PathLike = Union[str, os.PathLike]

#: Schema version written in every header; bumped on breaking changes.
SCHEMA_VERSION = 1


def _open(path: Path, mode: str):
    """Open *path*, transparently handling ``.gz`` suffixes."""
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def save_forum(forum: Forum, path: PathLike) -> None:
    """Write *forum* to *path* in JSONL format.

    The first line is a header with the forum name, UTC offset, sections
    and threads; each following line is one user record.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "schema": SCHEMA_VERSION,
        "kind": "forum-header",
        "name": forum.name,
        "utc_offset_hours": forum.utc_offset_hours,
        "sections": list(forum.sections),
        "threads": [t.to_dict() for t in forum.threads.values()],
        "n_users": forum.n_users,
    }
    with _open(path, "w") as fh:
        fh.write(json.dumps(header, ensure_ascii=False) + "\n")
        for record in forum.users.values():
            fh.write(json.dumps(record.to_dict(), ensure_ascii=False) + "\n")


def iter_user_records(path: PathLike) -> Iterator[UserRecord]:
    """Stream the user records of a stored forum without loading it all."""
    path = Path(path)
    with _open(path, "r") as fh:
        header_line = fh.readline()
        if not header_line:
            raise DatasetError(f"{path}: empty dataset file")
        header = _parse_header(path, header_line)
        del header  # header validated; users follow
        for lineno, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise DatasetError(f"{path}:{lineno}: invalid JSON") from exc
            yield UserRecord.from_dict(data)


def load_forum(path: PathLike,
               keep: Optional[Callable[[UserRecord], bool]] = None) -> Forum:
    """Load a forum from *path*.

    Parameters
    ----------
    path:
        JSONL file written by :func:`save_forum` (optionally ``.gz``).
    keep:
        Optional predicate; user records for which it returns ``False``
        are skipped at load time (useful to subsample huge datasets).
    """
    path = Path(path)
    with _open(path, "r") as fh:
        header_line = fh.readline()
        if not header_line:
            raise DatasetError(f"{path}: empty dataset file")
        header = _parse_header(path, header_line)
        forum = Forum(
            name=str(header["name"]),
            utc_offset_hours=int(header.get("utc_offset_hours", 0)),
            sections=list(header.get("sections", [])),
        )
        for raw in header.get("threads", ()):
            thread = Thread.from_dict(raw)
            forum.threads[thread.thread_id] = thread
        for lineno, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise DatasetError(f"{path}:{lineno}: invalid JSON") from exc
            record = UserRecord.from_dict(data)
            if keep is not None and not keep(record):
                continue
            if record.alias in forum.users:
                raise DatasetError(
                    f"{path}:{lineno}: duplicate alias {record.alias!r}")
            forum.users[record.alias] = record
    return forum


def _parse_header(path: Path, line: str) -> Dict:
    try:
        header = json.loads(line)
    except json.JSONDecodeError as exc:
        raise DatasetError(f"{path}: invalid header line") from exc
    if not isinstance(header, dict) or header.get("kind") != "forum-header":
        raise DatasetError(f"{path}: missing forum header")
    schema = header.get("schema")
    if schema != SCHEMA_VERSION:
        raise DatasetError(
            f"{path}: unsupported schema version {schema!r} "
            f"(expected {SCHEMA_VERSION})")
    if "name" not in header:
        raise DatasetError(f"{path}: header lacks forum name")
    return header


def save_world(forums: List[Forum], directory: PathLike) -> List[Path]:
    """Save several forums, one file per forum, into *directory*.

    Returns the written paths.  File names are ``<forum-name>.jsonl``.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for forum in forums:
        path = directory / f"{forum.name}.jsonl"
        save_forum(forum, path)
        paths.append(path)
    return paths


def load_world(directory: PathLike) -> Dict[str, Forum]:
    """Load every ``*.jsonl`` / ``*.jsonl.gz`` forum file in *directory*."""
    directory = Path(directory)
    if not directory.is_dir():
        raise DatasetError(f"{directory} is not a directory")
    forums: Dict[str, Forum] = {}
    for path in sorted(directory.iterdir()):
        if path.suffix == ".jsonl" or path.name.endswith(".jsonl.gz"):
            forum = load_forum(path)
            forums[forum.name] = forum
    if not forums:
        raise DatasetError(f"no forum files found in {directory}")
    return forums
