"""The subreddit topic taxonomy of Table I.

The paper labels 656 subreddits with 12 topics and reports, per topic,
the number of subreddits, the share of user subscriptions, the share of
messages, and the most popular subreddit.  This module encodes that
taxonomy; the synthetic Reddit world samples subreddits and message
volume from it, and the Table I benchmark prints the same rows back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class TopicSpec:
    """One row of Table I.

    Attributes
    ----------
    name:
        Topic label ("Drugs", "Entertainment", ...).
    n_subreddits:
        How many of the 656 labelled subreddits carry this topic.
    subscription_share:
        Fraction of user subscriptions falling in the topic (Table I's
        ``subscriptions(%)`` column, as a fraction of 1).
    message_share:
        Fraction of collected messages in the topic.
    flagship:
        The most popular subreddit of the topic.
    flagship_messages:
        Message count of the flagship subreddit in the paper's dataset.
    keywords:
        Topical content words used by the synthetic text generator to
        give each topic a recognizable vocabulary.
    """

    name: str
    n_subreddits: int
    subscription_share: float
    message_share: float
    flagship: str
    flagship_messages: int
    keywords: Tuple[str, ...]


#: Table I, row by row.  Shares are fractions (paper reports percents).
TABLE_I: Tuple[TopicSpec, ...] = (
    TopicSpec("Culture", 18, 0.047, 0.020, "r/science", 17_442,
              ("science", "study", "history", "book", "art", "research",
               "theory", "culture", "museum", "paper")),
    TopicSpec("Cryptocurrencies", 39, 0.032, 0.060, "r/bitcoin", 96_407,
              ("bitcoin", "wallet", "blockchain", "monero", "exchange",
               "coin", "crypto", "mining", "ledger", "satoshi")),
    TopicSpec("Drugs", 117, 0.156, 0.337, "r/DarkNetMarkets", 670_483,
              ("vendor", "shipping", "stealth", "mdma", "lsd", "dose",
               "gram", "quality", "escrow", "market", "order", "package",
               "tabs", "molly", "review")),
    TopicSpec("Entertainment", 166, 0.391, 0.224, "r/pics", 75_454,
              ("movie", "song", "show", "episode", "album", "meme",
               "picture", "actor", "season", "trailer")),
    TopicSpec("Financial", 15, 0.016, 0.009, "r/personalfinance", 11_590,
              ("money", "budget", "savings", "credit", "debt", "loan",
               "invest", "salary", "account", "tax")),
    TopicSpec("Lifestyle/Sports", 72, 0.099, 0.095, "r/LifeProTips", 12_109,
              ("workout", "recipe", "team", "game", "training", "advice",
               "habit", "fitness", "coach", "league")),
    TopicSpec("News", 18, 0.048, 0.045, "r/worldnews", 89_189,
              ("breaking", "report", "government", "country", "minister",
               "crisis", "election", "statement", "attack", "press")),
    TopicSpec("Places", 43, 0.014, 0.030, "r/canada", 11_291,
              ("city", "downtown", "province", "weather", "bus", "rent",
               "neighborhood", "local", "visit", "street")),
    TopicSpec("Politics", 24, 0.040, 0.059, "r/politics", 119_238,
              ("senate", "president", "vote", "policy", "campaign",
               "congress", "bill", "party", "debate", "candidate")),
    TopicSpec("R18+", 12, 0.016, 0.045, "r/sex", 10_676,
              ("relationship", "partner", "dating", "nsfw", "adult",
               "intimacy", "couple", "attraction", "consent", "romance")),
    TopicSpec("Psychological help", 11, 0.017, 0.005, "r/GetMotivated",
              3_733,
              ("anxiety", "therapy", "depression", "motivation", "mindset",
               "support", "healing", "stress", "recovery", "selfcare")),
    TopicSpec("Tech/Tor", 52, 0.054, 0.036, "r/technology", 26_919,
              ("tor", "vpn", "encryption", "linux", "privacy", "server",
               "browser", "software", "opsec", "protocol")),
    TopicSpec("Videogame", 61, 0.070, 0.073, "r/gaming", 41_183,
              ("console", "fps", "rpg", "quest", "server", "loot",
               "patch", "multiplayer", "steam", "controller")),
)

#: Number of distinct labelled subreddits in the paper (after dropping
#: subreddits with fewer than 10 messages).
TOTAL_SUBREDDITS = 656

#: Lookup by topic name.
TOPICS_BY_NAME: Dict[str, TopicSpec] = {t.name: t for t in TABLE_I}


def topic_names() -> List[str]:
    """All topic names, in Table I order."""
    return [t.name for t in TABLE_I]


def subreddit_names(topic: TopicSpec, count: int | None = None) -> List[str]:
    """Deterministic subreddit names for *topic*.

    The first name is always the topic's flagship subreddit; the rest
    are synthetic ``r/<topic><i>`` fillers.  *count* defaults to the
    paper's per-topic subreddit count.
    """
    count = topic.n_subreddits if count is None else count
    if count < 1:
        return []
    base = topic.name.lower().replace("/", "_").replace(" ", "_").replace(
        "+", "plus")
    names = [topic.flagship]
    for i in range(1, count):
        names.append(f"r/{base}_{i}")
    return names


def message_share_weights(specs: Sequence[TopicSpec] = TABLE_I,
                          ) -> List[float]:
    """Normalized per-topic message-volume weights.

    Table I's shares do not sum exactly to 1 (rounding in the paper), so
    they are renormalized here before the generator samples from them.
    """
    raw = [t.message_share for t in specs]
    total = sum(raw)
    return [r / total for r in raw]


def darknet_topic() -> TopicSpec:
    """The Drugs topic — the domain shared by the Dark Web forums."""
    return TOPICS_BY_NAME["Drugs"]
