"""repro.obs — the observability layer: spans, metrics, logging.

One import point for the whole telemetry substrate:

* :mod:`repro.obs.spans` — hierarchical trace spans with wall/CPU
  timing (``with span("linker.stage2", k=10): ...``), disabled by
  default with a zero-allocation fast path;
* :mod:`repro.obs.metrics` — process-wide counters, gauges and
  fixed-bucket histograms with snapshot/reset/merge;
* :mod:`repro.obs.logging` — structured ``key=value`` / JSON-lines
  logging on stdlib :mod:`logging` (``REPRO_LOG_LEVEL`` /
  ``REPRO_LOG_FORMAT``);
* :mod:`repro.obs.instrument` — the ``@traced`` decorator;
* :mod:`repro.obs.report` — trace-file persistence, Chrome Trace
  Event export and the ``darklight stats`` renderer;
* :mod:`repro.obs.prof` — span-level resource profiling (RSS deltas,
  GC activity, opt-in tracemalloc allocation stats);
* :mod:`repro.obs.manifest` — run manifests: config, seeds, env
  knobs, interpreter/library versions, git rev and input digests
  written alongside every trace and benchmark result;
* :mod:`repro.obs.diff` — benchmark and trace regression diffing
  (``darklight bench-diff`` / ``stats --compare``).

Span and metric naming conventions live in ``docs/observability.md``.
"""

from repro.obs.diff import (
    diff_benchmarks,
    diff_metrics,
    diff_traces,
    render_diff,
    render_trace_diff,
)
from repro.obs.instrument import traced
from repro.obs.manifest import (
    build_manifest,
    load_manifest,
    manifest_equal,
    manifest_path_for,
    write_manifest,
)
from repro.obs.prof import (
    ResourceProfiler,
    disable_profiling,
    enable_profiling,
    peak_rss_kb,
    profiling_enabled,
    read_rss_kb,
)
from repro.obs.logging import (
    JsonLinesFormatter,
    KeyValueFormatter,
    StructuredLogger,
    configure_logging,
    get_logger,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_MS_BUCKETS,
    MetricsRegistry,
    SCORE_BUCKETS,
    SIZE_BUCKETS,
    counter,
    gauge,
    get_registry,
    histogram,
)
from repro.obs.report import (
    build_trace_document,
    export_chrome_trace,
    load_trace,
    render_stats,
    write_chrome_trace,
    write_trace,
)
from repro.obs.spans import (
    Span,
    Tracer,
    aggregate_spans,
    current_span,
    disable_tracing,
    enable_tracing,
    get_trace,
    get_tracer,
    iter_spans,
    render_flame,
    reset_trace,
    span,
    timer,
    tracing_enabled,
)

__all__ = [
    "traced",
    "diff_benchmarks",
    "diff_metrics",
    "diff_traces",
    "render_diff",
    "render_trace_diff",
    "build_manifest",
    "load_manifest",
    "manifest_equal",
    "manifest_path_for",
    "write_manifest",
    "ResourceProfiler",
    "disable_profiling",
    "enable_profiling",
    "peak_rss_kb",
    "profiling_enabled",
    "read_rss_kb",
    "export_chrome_trace",
    "write_chrome_trace",
    "JsonLinesFormatter",
    "KeyValueFormatter",
    "StructuredLogger",
    "configure_logging",
    "get_logger",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_MS_BUCKETS",
    "MetricsRegistry",
    "SCORE_BUCKETS",
    "SIZE_BUCKETS",
    "counter",
    "gauge",
    "get_registry",
    "histogram",
    "build_trace_document",
    "load_trace",
    "render_stats",
    "write_trace",
    "Span",
    "Tracer",
    "aggregate_spans",
    "current_span",
    "disable_tracing",
    "enable_tracing",
    "get_trace",
    "get_tracer",
    "iter_spans",
    "render_flame",
    "reset_trace",
    "span",
    "timer",
    "tracing_enabled",
]
