"""Benchmark and trace regression diffing.

``BENCH_linking.json`` used to be a snapshot that every run
overwrote; this module is what turns it into an *enforced trajectory*:

* :func:`diff_benchmarks` — compare two benchmark result documents
  row-by-row (rows matched on their ``n_known``/``n_unknown``/
  ``workers`` key) and flag per-metric regressions beyond a relative
  threshold;
* :func:`diff_traces` — compare two ``--trace`` files per stage
  (aggregate wall-ms by span name), the engine behind
  ``darklight stats --compare``;
* :func:`render_diff` / :func:`render_trace_diff` — the human tables.

Metric direction is inferred from the name: ``*_s``/``*_ms``/
``*_kb``/``*_mb``/``*_bytes`` are lower-is-better, ``*_speedup`` /
``*_per_s`` / ``*_throughput`` are higher-is-better; anything else
(counts, booleans, ids) is compared but never gated.  A regression is
a worsening of more than ``threshold`` relative to the old value
(default 20%, the CI gate), ignoring metrics whose old value sits
below ``min_value`` — sub-millisecond timings are scheduler noise,
not signal.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs import spans as _spans

__all__ = [
    "metric_direction",
    "diff_metrics",
    "diff_benchmarks",
    "diff_traces",
    "render_diff",
    "render_trace_diff",
    "DEFAULT_THRESHOLD",
]

#: Relative worsening tolerated before a metric counts as a
#: regression (the CI gate uses this default).
DEFAULT_THRESHOLD = 0.20

_LOWER_SUFFIXES = ("_s", "_ms", "_us", "_kb", "_mb", "_bytes")
_HIGHER_SUFFIXES = ("_speedup", "_per_s", "_throughput", "_auc",
                    "_accuracy", "_precision", "_recall")


def metric_direction(name: str) -> Optional[str]:
    """``"lower"``/``"higher"`` is better, or ``None`` (ungated)."""
    lowered = name.lower()
    if lowered.endswith(_HIGHER_SUFFIXES):
        return "higher"
    if lowered.endswith(_LOWER_SUFFIXES):
        return "lower"
    return None


def diff_metrics(old: Mapping[str, Any], new: Mapping[str, Any],
                 threshold: float = DEFAULT_THRESHOLD,
                 min_value: float = 1e-3) -> List[Dict[str, Any]]:
    """Per-metric deltas between two flat numeric mappings.

    Returns one entry per shared numeric metric, sorted by name:
    ``{"metric", "old", "new", "delta", "ratio", "direction",
    "regressed"}``.  ``ratio`` is ``new / old`` (``None`` when the old
    value is ~0).
    """
    if threshold < 0:
        raise ConfigurationError(
            f"threshold must be >= 0, got {threshold}")
    entries: List[Dict[str, Any]] = []
    for name in sorted(set(old) & set(new)):
        old_value, new_value = old[name], new[name]
        if isinstance(old_value, bool) or isinstance(new_value, bool) \
                or not isinstance(old_value, (int, float)) \
                or not isinstance(new_value, (int, float)):
            continue
        direction = metric_direction(name)
        ratio = (new_value / old_value) if abs(old_value) > 1e-12 \
            else None
        regressed = False
        if direction is not None and ratio is not None \
                and abs(old_value) >= min_value:
            if direction == "lower":
                regressed = ratio > 1.0 + threshold
            else:
                regressed = ratio < 1.0 - threshold
        entries.append({
            "metric": name,
            "old": old_value,
            "new": new_value,
            "delta": new_value - old_value,
            "ratio": ratio,
            "direction": direction,
            "regressed": regressed,
        })
    return entries


def _bench_rows(document: Mapping[str, Any],
                ) -> Dict[Tuple[Any, ...], Mapping[str, Any]]:
    """Index a benchmark document's ``sizes`` rows by corpus key."""
    rows = document.get("sizes") or ()
    indexed: Dict[Tuple[Any, ...], Mapping[str, Any]] = {}
    for row in rows:
        if not isinstance(row, Mapping):
            continue
        key = (row.get("n_known"), row.get("n_unknown"),
               row.get("workers"))
        indexed[key] = row
    return indexed


def diff_benchmarks(old: Mapping[str, Any], new: Mapping[str, Any],
                    threshold: float = DEFAULT_THRESHOLD,
                    min_value: float = 1e-3) -> Dict[str, Any]:
    """Compare two benchmark result documents.

    Rows are matched on ``(n_known, n_unknown, workers)``; rows present
    on only one side are reported (``only_old`` / ``only_new``) but do
    not gate.  The returned document carries every per-metric entry
    plus the flat ``regressions`` list the CLI prints and exits on.
    """
    old_rows = _bench_rows(old)
    new_rows = _bench_rows(new)
    shared = sorted(set(old_rows) & set(new_rows),
                    key=lambda k: tuple(str(p) for p in k))
    rows: List[Dict[str, Any]] = []
    regressions: List[Dict[str, Any]] = []
    for key in shared:
        entries = [e for e in diff_metrics(old_rows[key], new_rows[key],
                                           threshold=threshold,
                                           min_value=min_value)
                   if e["metric"] not in ("n_known", "n_unknown",
                                          "workers")]
        row_regressions = [e for e in entries if e["regressed"]]
        label = (f"n_known={key[0]} n_unknown={key[1]} "
                 f"workers={key[2]}")
        rows.append({"key": label, "entries": entries,
                     "regressions": row_regressions})
        for entry in row_regressions:
            regressions.append({**entry, "key": label})
    return {
        "threshold": threshold,
        "rows": rows,
        "regressions": regressions,
        "only_old": [str(k) for k in sorted(set(old_rows) - set(new_rows),
                                            key=str)],
        "only_new": [str(k) for k in sorted(set(new_rows) - set(old_rows),
                                            key=str)],
    }


def render_diff(result: Mapping[str, Any]) -> str:
    """Human-readable report of a :func:`diff_benchmarks` result."""
    lines: List[str] = []
    threshold = result.get("threshold", DEFAULT_THRESHOLD)
    for row in result.get("rows", ()):
        lines.append(row["key"])
        for entry in row["entries"]:
            ratio = entry["ratio"]
            ratio_text = f"{ratio:>7.3f}x" if ratio is not None \
                else "     n/a"
            flag = "  REGRESSION" if entry["regressed"] else ""
            gate = {"lower": "↓", "higher": "↑"}.get(
                entry["direction"] or "", " ")
            lines.append(
                f"  {entry['metric']:<24} {gate} "
                f"{entry['old']:>12.4f} -> {entry['new']:>12.4f} "
                f"{ratio_text}{flag}")
        lines.append("")
    for side, label in (("only_old", "only in OLD"),
                        ("only_new", "only in NEW")):
        for key in result.get(side, ()):
            lines.append(f"{label}: {key}")
    n_regressions = len(result.get("regressions", ()))
    lines.append(
        f"{n_regressions} regression(s) beyond "
        f"{threshold:.0%} threshold")
    return "\n".join(lines)


def diff_traces(old: Mapping[str, Any], new: Mapping[str, Any],
                threshold: float = DEFAULT_THRESHOLD,
                min_value: float = 1.0) -> Dict[str, Any]:
    """Per-stage wall-time comparison of two trace documents.

    Aggregates each trace by span name (as ``darklight stats`` does)
    and diffs total wall ms per stage; stages whose old total is under
    *min_value* ms never gate.
    """
    old_totals = _spans.aggregate_spans(dict(old))
    new_totals = _spans.aggregate_spans(dict(new))
    stages: List[Dict[str, Any]] = []
    regressions: List[Dict[str, Any]] = []
    for name in sorted(set(old_totals) & set(new_totals)):
        old_ms = old_totals[name]["wall_ms"]
        new_ms = new_totals[name]["wall_ms"]
        ratio = (new_ms / old_ms) if old_ms > 1e-12 else None
        regressed = (ratio is not None and old_ms >= min_value
                     and ratio > 1.0 + threshold)
        entry = {
            "stage": name,
            "old_wall_ms": old_ms,
            "new_wall_ms": new_ms,
            "old_calls": int(old_totals[name]["calls"]),
            "new_calls": int(new_totals[name]["calls"]),
            "ratio": ratio,
            "regressed": regressed,
        }
        stages.append(entry)
        if regressed:
            regressions.append(entry)
    return {
        "threshold": threshold,
        "stages": stages,
        "regressions": regressions,
        "only_old": sorted(set(old_totals) - set(new_totals)),
        "only_new": sorted(set(new_totals) - set(old_totals)),
    }


def render_trace_diff(result: Mapping[str, Any]) -> str:
    """Human-readable report of a :func:`diff_traces` result."""
    lines = [f"{'stage':<40} {'old ms':>12} {'new ms':>12} "
             f"{'ratio':>8}"]
    lines.append("-" * len(lines[0]))
    for entry in result.get("stages", ()):
        ratio = entry["ratio"]
        ratio_text = f"{ratio:.3f}x" if ratio is not None else "n/a"
        flag = "  REGRESSION" if entry["regressed"] else ""
        lines.append(
            f"{entry['stage']:<40} {entry['old_wall_ms']:>12.2f} "
            f"{entry['new_wall_ms']:>12.2f} {ratio_text:>8}{flag}")
    for side, label in (("only_old", "only in OLD"),
                        ("only_new", "only in NEW")):
        for name in result.get(side, ()):
            lines.append(f"{label}: {name}")
    lines.append(f"{len(result.get('regressions', ()))} stage "
                 f"regression(s) beyond "
                 f"{result.get('threshold', DEFAULT_THRESHOLD):.0%}")
    return "\n".join(lines)
