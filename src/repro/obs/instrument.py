"""Decorator-level instrumentation: ``@traced``.

Wrapping a function in a span by hand is three lines; the decorator
makes it zero::

    from repro.obs import traced

    @traced("linker.fit")
    def fit(self, known):
        ...

When tracing is disabled the wrapper falls through to the original
function after a single module-attribute check — no span object, no
context manager, no kwargs merging — so decorating hot functions is
safe (the overhead budget is < 2% on the batch bench; see
``tests/obs/test_instrument.py``).
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Optional, TypeVar, overload

from repro.obs import spans as _spans

__all__ = ["traced"]

F = TypeVar("F", bound=Callable[..., Any])


@overload
def traced(name: F) -> F: ...


@overload
def traced(name: Optional[str] = None,
           **attributes: Any) -> Callable[[F], F]: ...


def traced(name: Any = None, **attributes: Any) -> Any:
    """Trace calls of the decorated function as spans.

    Usable bare (``@traced``) or with arguments
    (``@traced("linker.fit", stage=1)``).  Without an explicit *name*
    the span is named after the function's qualified name.  Static
    *attributes* are attached to every span.
    """

    def decorate(func: F) -> F:
        span_name = name if isinstance(name, str) else func.__qualname__
        tracer = _spans.get_tracer()

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not tracer.enabled:
                return func(*args, **kwargs)
            with tracer.span(span_name, **attributes):
                return func(*args, **kwargs)

        wrapper.__traced_name__ = span_name  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    if callable(name):
        return decorate(name)
    return decorate
