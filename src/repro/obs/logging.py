"""Structured logging on top of stdlib :mod:`logging`.

Every module logs through :func:`get_logger`, which returns a thin
wrapper whose methods take an *event* name plus key/value fields::

    from repro.obs.logging import get_logger

    log = get_logger(__name__)
    log.info("link.complete", unknowns=40, accepted=31, wall_ms=812.4)

Two output formats are supported, selected by ``REPRO_LOG_FORMAT``:

* ``kv`` (default) — one ``key=value`` line per record::

      2026-08-05T12:00:00Z INFO repro.core.linker link.complete unknowns=40 accepted=31

* ``json`` — one JSON object per line (machine-ingestable).

``REPRO_LOG_LEVEL`` sets the threshold (default ``WARNING``, so the
library is silent unless asked).  The CLI's ``--log-level`` /
``--log-format`` flags override both.  Following library convention,
no handler is attached until :func:`configure_logging` is called.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import time
from typing import Any, IO, Optional

from repro.errors import ConfigurationError

__all__ = [
    "LOG_LEVEL_ENV",
    "LOG_FORMAT_ENV",
    "KeyValueFormatter",
    "JsonLinesFormatter",
    "StructuredLogger",
    "configure_logging",
    "get_logger",
]

#: Environment variable naming the minimum level (DEBUG/INFO/...).
LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

#: Environment variable selecting the output format (``kv``/``json``).
LOG_FORMAT_ENV = "REPRO_LOG_FORMAT"

#: Root of the library's logger hierarchy.
ROOT_LOGGER = "repro"

_VALID_FORMATS = ("kv", "json")


def _timestamp(record: logging.LogRecord) -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ",
                         time.gmtime(record.created))


def _record_fields(record: logging.LogRecord) -> dict:
    fields = getattr(record, "fields", None)
    return fields if isinstance(fields, dict) else {}


class KeyValueFormatter(logging.Formatter):
    """``key=value`` lines; values with spaces are repr-quoted."""

    def format(self, record: logging.LogRecord) -> str:
        parts = [_timestamp(record), record.levelname, record.name,
                 record.getMessage()]
        for key, value in _record_fields(record).items():
            text = str(value)
            if " " in text or "=" in text or not text:
                text = repr(value)
            parts.append(f"{key}={text}")
        if record.exc_info and record.exc_info[0] is not None:
            parts.append(f"exc={record.exc_info[0].__name__}")
        return " ".join(parts)


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per record (``event`` carries the message)."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict = {
            "ts": _timestamp(record),
            "level": record.levelname,
            "logger": record.name,
            "event": record.getMessage(),
        }
        payload.update(_record_fields(record))
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = record.exc_info[0].__name__
        return json.dumps(payload, default=str)


def _resolve_level(level: Optional[str]) -> int:
    name = (level or os.environ.get(LOG_LEVEL_ENV) or "WARNING").upper()
    resolved = logging.getLevelName(name)
    if not isinstance(resolved, int):
        raise ConfigurationError(f"unknown log level {name!r}")
    return resolved


def _resolve_format(fmt: Optional[str]) -> str:
    name = (fmt or os.environ.get(LOG_FORMAT_ENV) or "kv").lower()
    if name not in _VALID_FORMATS:
        raise ConfigurationError(
            f"unknown log format {name!r} (expected one of "
            f"{'/'.join(_VALID_FORMATS)})")
    return name


def configure_logging(level: Optional[str] = None,
                      fmt: Optional[str] = None,
                      stream: Optional[IO[str]] = None,
                      ) -> logging.Logger:
    """Attach (or re-attach) the library's single stream handler.

    Parameters
    ----------
    level / fmt:
        Explicit overrides; when omitted the ``REPRO_LOG_LEVEL`` /
        ``REPRO_LOG_FORMAT`` environment variables are consulted, then
        the defaults (``WARNING``, ``kv``).
    stream:
        Target stream (default ``sys.stderr``).

    Calling again replaces the previous handler, so the CLI can
    reconfigure freely.  Returns the ``repro`` root logger.
    """
    root = logging.getLogger(ROOT_LOGGER)
    formatter: logging.Formatter
    if _resolve_format(fmt) == "json":
        formatter = JsonLinesFormatter()
    else:
        formatter = KeyValueFormatter()
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(formatter)
    for old in [h for h in root.handlers
                if getattr(h, "_repro_obs", False)]:
        root.removeHandler(old)
    handler._repro_obs = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(_resolve_level(level))
    root.propagate = False
    return root


class StructuredLogger:
    """Event + fields façade over one stdlib logger.

    The level check happens before any formatting work, so disabled
    levels cost one dict lookup and one comparison.
    """

    __slots__ = ("_logger",)

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    @property
    def stdlib(self) -> logging.Logger:
        """The wrapped :class:`logging.Logger`."""
        return self._logger

    def _log(self, level: int, event: str, fields: dict) -> None:
        if self._logger.isEnabledFor(level):
            self._logger.log(level, event, extra={"fields": fields})

    def debug(self, event: str, **fields: Any) -> None:
        self._log(logging.DEBUG, event, fields)

    def info(self, event: str, **fields: Any) -> None:
        self._log(logging.INFO, event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        self._log(logging.WARNING, event, fields)

    def error(self, event: str, **fields: Any) -> None:
        self._log(logging.ERROR, event, fields)

    def exception(self, event: str, **fields: Any) -> None:
        if self._logger.isEnabledFor(logging.ERROR):
            self._logger.error(event, extra={"fields": fields},
                               exc_info=True)


def get_logger(name: str) -> StructuredLogger:
    """A structured logger under the ``repro`` hierarchy.

    Names outside the hierarchy are re-rooted (``eval.foo`` →
    ``repro.eval.foo``) so one handler covers everything.
    """
    if name != ROOT_LOGGER and not name.startswith(ROOT_LOGGER + "."):
        name = f"{ROOT_LOGGER}.{name}"
    return StructuredLogger(logging.getLogger(name))
