"""Run manifests: the provenance record written next to every result.

A trace, a Chrome trace, or a benchmark JSON is only evidence if you
can say *what produced it*.  A manifest pins that down::

    {"manifest_version": 1,
     "command": "link",
     "argv": ["--known", "dm.jsonl", ...],
     "config": {"k": 10, "threshold": 0.419, ...},
     "seed": 7,
     "env": {"REPRO_WORKERS": "4"},          # only the knobs that are set
     "python": "3.12.3", "numpy": "1.26.4",
     "platform": "Linux-6.8...-x86_64",
     "git_rev": "c5cbe09...",                # None outside a checkout
     "inputs": {"known": {"path": ..., "sha256": ..., "bytes": ...}},
     "created_at": "2026-08-07T12:00:00+00:00",
     "elapsed_s": 12.4}

Determinism contract: two runs of the same command with the same seed
on the same checkout produce **identical manifests modulo the timing
fields** (``created_at``, ``elapsed_s``) — asserted by
:func:`manifest_equal` in ``tests/obs/test_manifest.py``.  The CLI
writes ``FILE.manifest.json`` beside every ``--trace`` /
``--trace-chrome`` output, and the benchmark suite embeds a manifest
in every results JSON.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.errors import DatasetError

__all__ = [
    "MANIFEST_VERSION",
    "TIMING_FIELDS",
    "ENV_KNOBS",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "manifest_equal",
    "manifest_path_for",
    "file_digest",
    "git_revision",
]

MANIFEST_VERSION = 1

#: Fields that legitimately differ between two otherwise-identical
#: runs; :func:`manifest_equal` ignores them.
TIMING_FIELDS: Tuple[str, ...] = ("created_at", "elapsed_s")

#: Every environment knob the pipeline reads.  Only knobs that are
#: actually set land in the manifest, so an unset environment stays an
#: empty (and therefore comparable) dict.
ENV_KNOBS: Tuple[str, ...] = (
    "REPRO_WORKERS",
    "REPRO_BLOCK_SIZE",
    "REPRO_SHARDS",
    "REPRO_CACHE",
    "REPRO_FAULT_SEED",
    "REPRO_FAULT_RATE",
    "REPRO_FAULT_KINDS",
    "REPRO_PARALLEL_GATE",
    "REPRO_LOG_LEVEL",
    "REPRO_LOG_FORMAT",
    "REPRO_PROFILE",
    "REPRO_SCALE",
    "REPRO_BENCH_SIZES",
    "REPRO_BENCH_WORKERS",
    "REPRO_BENCH_STAGE1",
    "REPRO_BENCH_SHARDS",
)


def git_revision(cwd: Optional[Union[str, Path]] = None) -> Optional[str]:
    """The checkout's HEAD commit hash, or ``None`` when unavailable."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True, text=True, timeout=5, check=False)
    except (OSError, subprocess.SubprocessError):
        return None
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else None


def file_digest(path: Union[str, Path]) -> Dict[str, Any]:
    """SHA-256 + byte count of one input file (streamed)."""
    path = Path(path)
    digest = hashlib.sha256()
    size = 0
    with path.open("rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
            size += len(chunk)
    return {"path": str(path), "sha256": digest.hexdigest(),
            "bytes": size}


def _numpy_version() -> Optional[str]:
    try:
        import numpy
        return str(numpy.__version__)
    except Exception:  # pragma: no cover - numpy is a hard dep today
        return None


def _available_cores() -> Optional[int]:
    """Cores available to this process (lazy import: keeps the obs
    layer free of a hard perf-layer dependency at module load)."""
    try:
        from repro.perf.parallel import available_cores
        return int(available_cores())
    except Exception:  # pragma: no cover - defensive
        return None


def _parallel_gate_enabled() -> Optional[bool]:
    """Whether the available-core gate (``REPRO_PARALLEL_GATE``) is
    active — i.e. whether over-subscribed worker counts silently ran
    serial in this process."""
    try:
        from repro.perf.parallel import _gate_enabled
        return bool(_gate_enabled())
    except Exception:  # pragma: no cover - defensive
        return None


def build_manifest(command: Optional[str] = None,
                   argv: Optional[Iterable[str]] = None,
                   config: Optional[Mapping[str, Any]] = None,
                   seed: Optional[int] = None,
                   inputs: Optional[Mapping[str, Union[str, Path]]] = None,
                   elapsed_s: Optional[float] = None,
                   extra: Optional[Mapping[str, Any]] = None,
                   ) -> Dict[str, Any]:
    """Assemble a manifest for the current process and *inputs*.

    *inputs* maps a role name (``known``, ``unknown``, ...) to a file
    path; each is digested.  Paths that do not exist are recorded with
    ``sha256: None`` rather than raising — a manifest must never kill
    the run it documents.
    """
    digests: Dict[str, Any] = {}
    for role, path in sorted((inputs or {}).items()):
        try:
            digests[role] = file_digest(path)
        except OSError:
            digests[role] = {"path": str(path), "sha256": None,
                             "bytes": None}
    manifest: Dict[str, Any] = {
        "manifest_version": MANIFEST_VERSION,
        "command": command,
        "argv": list(argv) if argv is not None else None,
        "config": dict(config) if config is not None else None,
        "seed": seed,
        "env": {knob: os.environ[knob] for knob in ENV_KNOBS
                if knob in os.environ},
        # Parallel provenance: how many cores the run could actually
        # use and whether the core gate was active — a workers=4 row
        # measured on 1 core (gated onto the serial path) must never
        # read as a real 4-worker measurement.
        "cores": _available_cores(),
        "parallel_gate": _parallel_gate_enabled(),
        "python": platform.python_version(),
        "numpy": _numpy_version(),
        "platform": platform.platform(),
        "executable": sys.executable,
        "git_rev": git_revision(),
        "inputs": digests,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z",
                                    time.localtime()),
    }
    if elapsed_s is not None:
        manifest["elapsed_s"] = round(float(elapsed_s), 3)
    if extra:
        manifest.update(dict(extra))
    return manifest


def manifest_path_for(path: Union[str, Path]) -> Path:
    """The sidecar manifest path for a result file
    (``trace.json`` → ``trace.manifest.json``)."""
    path = Path(path)
    return path.with_name(f"{path.stem}.manifest.json")


def write_manifest(path: Union[str, Path],
                   manifest: Mapping[str, Any]) -> Path:
    """Write *manifest* as pretty JSON to *path*."""
    path = Path(path)
    path.write_text(json.dumps(dict(manifest), indent=2, sort_keys=True,
                               default=str) + "\n", encoding="utf-8")
    return path


def load_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a manifest file, validating the basic shape."""
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise DatasetError(f"manifest file {path} does not exist")
    except json.JSONDecodeError as exc:
        raise DatasetError(
            f"manifest file {path} is not valid JSON: {exc}")
    if not isinstance(document, dict) \
            or "manifest_version" not in document:
        raise DatasetError(
            f"manifest file {path} is missing 'manifest_version'")
    return document


def manifest_equal(a: Mapping[str, Any], b: Mapping[str, Any],
                   ignore: Iterable[str] = TIMING_FIELDS) -> bool:
    """Whether two manifests describe the same run setup.

    Timing fields (and any extra *ignore* keys) are dropped before the
    comparison — the determinism contract for same-seed runs.
    """
    skip = set(ignore)
    trimmed_a = {k: v for k, v in a.items() if k not in skip}
    trimmed_b = {k: v for k, v in b.items() if k not in skip}
    return trimmed_a == trimmed_b
