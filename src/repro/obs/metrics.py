"""Process-wide metrics registry: counters, gauges, histograms.

Unlike spans (:mod:`repro.obs.spans`), metrics are **always live** —
they are plain in-memory numbers cheap enough for the hot paths, and
they give the pipeline its accounting invariants, e.g.::

    attribution_accepted_total + attribution_rejected_total
        == number of unknown aliases linked

The three instrument kinds follow the Prometheus vocabulary without
the dependency:

* :class:`Counter` — monotonically increasing totals (suffix
  ``_total`` by convention);
* :class:`Gauge` — last-write-wins instantaneous values
  (``encoder_vocab_size``);
* :class:`Histogram` — fixed-bucket distribution with count/sum/min/
  max (``similarity_score``).

A snapshot is a plain JSON-serializable dict; snapshots from worker
processes can be merged back into a registry with
:meth:`MetricsRegistry.merge`.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "counter",
    "gauge",
    "histogram",
    "SCORE_BUCKETS",
    "SIZE_BUCKETS",
    "LATENCY_MS_BUCKETS",
]

#: Bucket edges for cosine-similarity scores (scores live in [0, 1]).
SCORE_BUCKETS: Tuple[float, ...] = (
    0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.4190, 0.5,
    0.6, 0.7, 0.8, 0.9, 1.0,
)

#: Bucket edges for set sizes (candidate pools, batches).
SIZE_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 5_000, 10_000,
)

#: Bucket edges for millisecond latencies.
LATENCY_MS_BUCKETS: Tuple[float, ...] = (
    0.1, 0.5, 1, 5, 10, 50, 100, 500, 1_000, 5_000, 10_000, 60_000,
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "_value", "_lock")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc by {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self._value}

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def merge(self, other: Mapping[str, Any]) -> None:
        with self._lock:
            self._value += int(other.get("value", 0))


class Gauge:
    """An instantaneous value (last write wins)."""

    __slots__ = ("name", "_value", "_lock")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self._value}

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def merge(self, other: Mapping[str, Any]) -> None:
        # Gauges are instantaneous: the merged-in snapshot wins.
        with self._lock:
            self._value = float(other.get("value", 0.0))


def _estimate_percentile(buckets: Sequence[float], counts: Sequence[int],
                         count: int, lo: Optional[float],
                         hi: Optional[float], q: float) -> Optional[float]:
    """Percentile estimate from fixed-bucket counts.

    Walks the cumulative counts to the bucket containing the target
    rank, linearly interpolates inside it, and clamps to the observed
    min/max so the open-ended edge buckets cannot extrapolate.
    """
    if count <= 0:
        return None
    rank = (q / 100.0) * count
    cumulative = 0
    for i, bucket_count in enumerate(counts):
        if bucket_count <= 0:
            continue
        if cumulative + bucket_count >= rank:
            lower = buckets[i - 1] if i > 0 else (
                lo if lo is not None else 0.0)
            upper = buckets[i] if i < len(buckets) else (
                hi if hi is not None else lower)
            fraction = (rank - cumulative) / bucket_count
            value = lower + (upper - lower) * max(fraction, 0.0)
            if lo is not None:
                value = max(value, lo)
            if hi is not None:
                value = min(value, hi)
            return value
        cumulative += bucket_count
    return hi


class Histogram:
    """A fixed-bucket distribution.

    Buckets are defined by their strictly increasing upper edges: an
    observation ``v`` lands in the first bucket whose edge satisfies
    ``v <= edge``; values above the last edge land in the implicit
    overflow bucket, so ``len(counts) == len(buckets) + 1``.

    Percentiles (p50/p95/p99 in snapshots, arbitrary via
    :meth:`percentile`) are *estimates* interpolated inside the
    containing bucket and clamped to the observed min/max — good to a
    bucket's width, which is what fixed buckets can promise.
    """

    __slots__ = ("name", "buckets", "_counts", "_count", "_sum",
                 "_min", "_max", "_lock")

    kind = "histogram"

    def __init__(self, name: str,
                 buckets: Sequence[float] = LATENCY_MS_BUCKETS) -> None:
        edges = tuple(float(b) for b in buckets)
        if not edges:
            raise ConfigurationError(
                f"histogram {name!r} needs at least one bucket edge")
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise ConfigurationError(
                f"histogram {name!r} bucket edges must be strictly "
                f"increasing, got {edges}")
        self.name = name
        self.buckets = edges
        self._counts = [0] * (len(edges) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """Estimated q-th percentile (0–100), ``None`` with no data."""
        with self._lock:
            return _estimate_percentile(self.buckets, self._counts,
                                        self._count, self._min,
                                        self._max, q)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            snap = {
                "type": "histogram",
                "buckets": list(self.buckets),
                "counts": list(self._counts),
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
            }
            for q in (50, 95, 99):
                snap[f"p{q}"] = _estimate_percentile(
                    self.buckets, self._counts, self._count,
                    self._min, self._max, q)
            return snap

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = None
            self._max = None

    def merge(self, other: Mapping[str, Any]) -> None:
        edges = tuple(float(b) for b in other.get("buckets", ()))
        if edges != self.buckets:
            raise ConfigurationError(
                f"cannot merge histogram {self.name!r}: bucket edges "
                f"{edges} != {self.buckets}")
        with self._lock:
            for i, c in enumerate(other.get("counts", ())):
                self._counts[i] += int(c)
            self._count += int(other.get("count", 0))
            self._sum += float(other.get("sum", 0.0))
            for key, op in (("min", min), ("max", max)):
                theirs = other.get(key)
                if theirs is None:
                    continue
                mine = getattr(self, f"_{key}")
                setattr(self, f"_{key}",
                        float(theirs) if mine is None
                        else op(mine, float(theirs)))


_SNAPSHOT_KINDS = {"counter": Counter, "gauge": Gauge,
                   "histogram": Histogram}


class MetricsRegistry:
    """A named collection of instruments with get-or-create semantics.

    Asking twice for the same name returns the same instrument; asking
    for an existing name with a different kind raises
    :class:`~repro.errors.ConfigurationError` (silent type clashes are
    how telemetry rots).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind: type, **kwargs: Any) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{metric.kind}, requested {kind.kind}")
            return metric

    def counter(self, name: str) -> Counter:
        """Get or create the counter *name*."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge *name*."""
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str,
                  buckets: Sequence[float] = LATENCY_MS_BUCKETS,
                  ) -> Histogram:
        """Get or create the histogram *name* with *buckets* edges."""
        return self._get_or_create(name, Histogram, buckets=buckets)

    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._metrics))

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All metrics as one JSON-serializable dict (sorted names)."""
        with self._lock:
            metrics = dict(self._metrics)
        return {name: metrics[name].snapshot()
                for name in sorted(metrics)}

    def reset(self) -> None:
        """Zero every instrument (instances stay registered)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()

    def merge(self, snapshot: Mapping[str, Mapping[str, Any]]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker) into this
        registry, creating missing instruments on the fly."""
        for name, data in snapshot.items():
            kind = _SNAPSHOT_KINDS.get(data.get("type", ""))
            if kind is None:
                raise ConfigurationError(
                    f"unknown metric type {data.get('type')!r} "
                    f"for {name!r}")
            kwargs = {}
            if kind is Histogram:
                kwargs["buckets"] = data.get("buckets", LATENCY_MS_BUCKETS)
            self._get_or_create(name, kind, **kwargs).merge(data)


# ---------------------------------------------------------------------------
# Process-wide default registry + module-level conveniences
# ---------------------------------------------------------------------------

_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry used by the module-level helpers."""
    return _REGISTRY


def counter(name: str) -> Counter:
    """Get or create a counter on the default registry."""
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """Get or create a gauge on the default registry."""
    return _REGISTRY.gauge(name)


def histogram(name: str,
              buckets: Sequence[float] = LATENCY_MS_BUCKETS) -> Histogram:
    """Get or create a histogram on the default registry."""
    return _REGISTRY.histogram(name, buckets=buckets)
