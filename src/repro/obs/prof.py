"""Span-level resource profiling: RSS, GC and allocation telemetry.

Spans (:mod:`repro.obs.spans`) time the pipeline; this module makes
them explain *where the memory went*.  While profiling is enabled,
every span that opens and closes gains a ``resources`` payload::

    {"rss_kb": 514320,        # resident set size at span exit
     "rss_delta_kb": 1204,    # growth across the span
     "peak_rss_kb": 520104,   # process high-water mark at exit
     "gc_collections": 2,     # GC cycles that ran inside the span
     "gc_objects": 18231,     # gc.get_count() delta (allocation churn)
     "alloc_net_kb": 310.2,   # tracemalloc net allocation (opt-in)
     "alloc_peak_kb": 902.7}  # tracemalloc peak while profiling (opt-in)

Design constraints mirror the span layer:

* **no-op when off** — the span hot path pays one global load and an
  ``is None`` check; nothing is allocated and no ``prof.py`` frame
  runs (asserted by ``tests/obs/test_prof.py`` with tracemalloc);
* **sampling** — ``sample_every=N`` profiles every Nth span so deep
  traces (one span per unknown alias) don't drown in ``/proc`` reads;
  unsampled spans carry no payload;
* **allocation stats are opt-in** — :mod:`tracemalloc` costs real
  time and memory, so ``alloc=True`` must be requested explicitly
  (CLI: ``--profile-alloc``, env: ``REPRO_PROFILE=alloc``).

Reading RSS uses ``/proc/self/statm`` on Linux (one small read, no
fork); platforms without procfs degrade to the ``getrusage`` peak so
the payload stays well-formed everywhere.
"""

from __future__ import annotations

import gc
import os
import resource
import sys
import tracemalloc
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs import spans as _spans

__all__ = [
    "ResourceProfiler",
    "enable_profiling",
    "disable_profiling",
    "profiling_enabled",
    "get_profiler",
    "read_rss_kb",
    "peak_rss_kb",
    "PROFILE_ENV",
]

#: Environment switch: ``1``/``on`` enables profiling, ``alloc``
#: additionally turns on tracemalloc allocation stats.
PROFILE_ENV = "REPRO_PROFILE"

_PAGE_KB = resource.getpagesize() / 1024.0
_STATM = "/proc/self/statm"
_HAS_PROCFS = os.path.exists(_STATM)


def read_rss_kb() -> float:
    """Current resident set size in KiB (0.0 when unknowable).

    Linux reads ``/proc/self/statm`` (resident pages * page size);
    elsewhere the ``getrusage`` high-water mark is the best stdlib
    proxy for "how big is this process".
    """
    if _HAS_PROCFS:
        try:
            with open(_STATM, "rb", buffering=0) as fh:
                fields = fh.read().split()
            return int(fields[1]) * _PAGE_KB
        except (OSError, IndexError, ValueError):  # pragma: no cover
            return peak_rss_kb()
    return peak_rss_kb()  # pragma: no cover - non-Linux fallback


def peak_rss_kb() -> float:
    """Process peak RSS (``ru_maxrss``) in KiB."""
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes.
    return usage / 1024.0 if sys.platform == "darwin" else float(usage)


def _gc_collections() -> int:
    """Total completed GC cycles across all generations."""
    return sum(s.get("collections", 0) for s in gc.get_stats())


class ResourceProfiler:
    """Samples process resources at span boundaries.

    Installed into the span layer by :func:`enable_profiling`; the
    span's ``_start`` calls :meth:`begin` and its ``_finish`` calls
    :meth:`end` with the returned token.  A ``None`` token (span not
    sampled) short-circuits both sides.

    Parameters
    ----------
    sample_every:
        Profile every Nth span (1 = every span).
    alloc:
        Also record :mod:`tracemalloc` net/peak allocation per span;
        starts tracemalloc if it is not already tracing.
    """

    def __init__(self, sample_every: int = 1, alloc: bool = False) -> None:
        if sample_every < 1:
            raise ConfigurationError(
                f"sample_every must be >= 1, got {sample_every}")
        self.sample_every = int(sample_every)
        self.alloc = bool(alloc)
        self._seen = 0
        self._started_tracemalloc = False

    # -- span-boundary hooks --------------------------------------------------

    def begin(self) -> Optional[Tuple[float, int, int, float]]:
        """Open one sample; returns ``None`` for unsampled spans."""
        self._seen += 1
        if (self._seen - 1) % self.sample_every:
            return None
        alloc_now = (tracemalloc.get_traced_memory()[0]
                     if self.alloc and tracemalloc.is_tracing() else -1.0)
        # sum(gc.get_count()) is O(1); len(gc.get_objects()) would be
        # O(heap) per span and is far too slow for per-unknown spans.
        return (read_rss_kb(), _gc_collections(), sum(gc.get_count()),
                alloc_now)

    def end(self, token: Optional[Tuple[float, int, int, float]],
            ) -> Optional[Dict[str, Any]]:
        """Close one sample into a span ``resources`` payload."""
        if token is None:
            return None
        rss0, gc0, objs0, alloc0 = token
        rss1 = read_rss_kb()
        payload: Dict[str, Any] = {
            "rss_kb": round(rss1, 1),
            "rss_delta_kb": round(rss1 - rss0, 1),
            "peak_rss_kb": round(peak_rss_kb(), 1),
            "gc_collections": _gc_collections() - gc0,
            "gc_objects": sum(gc.get_count()) - objs0,
        }
        if alloc0 >= 0 and tracemalloc.is_tracing():
            current, peak = tracemalloc.get_traced_memory()
            payload["alloc_net_kb"] = round((current - alloc0) / 1024.0, 2)
            payload["alloc_peak_kb"] = round(peak / 1024.0, 2)
        return payload

    # -- lifecycle ------------------------------------------------------------

    def install(self) -> None:
        """Attach to the span layer (starts tracemalloc when opted in)."""
        if self.alloc and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        _spans._set_profile_hook(self)

    def uninstall(self) -> None:
        """Detach; stops tracemalloc only if this profiler started it."""
        if _spans._get_profile_hook() is self:
            _spans._set_profile_hook(None)
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._started_tracemalloc = False


def enable_profiling(sample_every: int = 1,
                     alloc: bool = False) -> ResourceProfiler:
    """Start attaching resource payloads to every sampled span."""
    profiler = ResourceProfiler(sample_every=sample_every, alloc=alloc)
    profiler.install()
    return profiler


def disable_profiling() -> None:
    """Stop resource profiling (already-captured payloads are kept)."""
    profiler = _spans._get_profile_hook()
    if isinstance(profiler, ResourceProfiler):
        profiler.uninstall()
    else:
        _spans._set_profile_hook(None)


def profiling_enabled() -> bool:
    """Whether a profiler is currently attached to the span layer."""
    return _spans._get_profile_hook() is not None


def get_profiler() -> Optional[ResourceProfiler]:
    """The installed profiler, or ``None``."""
    hook = _spans._get_profile_hook()
    return hook if isinstance(hook, ResourceProfiler) else None


def profiling_from_env() -> Optional[ResourceProfiler]:
    """Honour ``REPRO_PROFILE`` (``1``/``on``/``alloc``); ``None`` if
    unset or explicitly off."""
    raw = os.environ.get(PROFILE_ENV, "").strip().lower()
    if raw in ("", "0", "off", "false"):
        return None
    if raw in ("1", "on", "true", "rss"):
        return enable_profiling()
    if raw == "alloc":
        return enable_profiling(alloc=True)
    raise ConfigurationError(
        f"{PROFILE_ENV} must be one of 0/1/on/off/alloc, got {raw!r}")
