"""Trace-file persistence and the ``darklight stats`` renderer.

A trace file is one JSON document combining the span tree of
:mod:`repro.obs.spans` with a metrics snapshot from
:mod:`repro.obs.metrics`::

    {"version": 1,
     "spans": [...],            # nested span dicts
     "metrics": {...},          # registry snapshot
     "metadata": {...}}         # free-form (CLI argv, scale, ...)

:func:`render_stats` turns that document back into the human view:
per-stage totals, the slowest individual spans, the metric table and
the flame-style tree.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.errors import DatasetError
from repro.obs import metrics as _metrics
from repro.obs import spans as _spans

__all__ = [
    "build_trace_document",
    "write_trace",
    "load_trace",
    "render_stats",
    "render_metrics",
    "export_chrome_trace",
    "write_chrome_trace",
]


def build_trace_document(metadata: Optional[Mapping[str, Any]] = None,
                         tracer: Optional[_spans.Tracer] = None,
                         registry: Optional[_metrics.MetricsRegistry] = None,
                         ) -> Dict[str, Any]:
    """Combine the current trace + metrics into one export dict."""
    tracer = tracer or _spans.get_tracer()
    registry = registry or _metrics.get_registry()
    document = tracer.to_dict()
    document["metrics"] = registry.snapshot()
    if metadata:
        document["metadata"] = dict(metadata)
    return document


def write_trace(path: Union[str, Path],
                metadata: Optional[Mapping[str, Any]] = None,
                tracer: Optional[_spans.Tracer] = None,
                registry: Optional[_metrics.MetricsRegistry] = None,
                ) -> Path:
    """Write the current trace + metrics snapshot as JSON to *path*."""
    path = Path(path)
    document = build_trace_document(metadata, tracer, registry)
    path.write_text(json.dumps(document, indent=2, default=str) + "\n",
                    encoding="utf-8")
    return path


def load_trace(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a trace file, validating the basic shape."""
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise DatasetError(f"trace file {path} does not exist")
    except json.JSONDecodeError as exc:
        raise DatasetError(f"trace file {path} is not valid JSON: {exc}")
    if not isinstance(document, dict) or "spans" not in document:
        raise DatasetError(
            f"trace file {path} is missing the 'spans' key")
    # Tolerate degenerate-but-declared sections: a trace of a run that
    # recorded nothing ("spans": null/[]) or predates metrics must
    # still render, not crash the stats command.
    if not isinstance(document.get("spans"), list):
        document["spans"] = []
    if not isinstance(document.get("metrics"), dict):
        document["metrics"] = {}
    return document


# ---------------------------------------------------------------------------
# Chrome Trace Event export
# ---------------------------------------------------------------------------

def _chrome_events(node: Mapping[str, Any], origin_us: float,
                   fallback_ts: float, fallback_pid: int,
                   events: List[Dict[str, Any]]) -> float:
    """Emit one span subtree as complete ("X") events; returns the
    span's duration in µs so siblings without timestamps can be laid
    out sequentially after it."""
    dur_us = max(float(node.get("wall_ms", 0.0)) * 1000.0, 0.0)
    ts_raw = float(node.get("ts_us") or 0.0)
    ts = ts_raw - origin_us if ts_raw > 0 else fallback_ts
    pid = int(node.get("pid") or 0) or fallback_pid
    tid = int(node.get("tid") or 0) or 1
    args: Dict[str, Any] = dict(node.get("attributes") or {})
    args["cpu_ms"] = node.get("cpu_ms", 0.0)
    if node.get("resources"):
        args["resources"] = node["resources"]
    if node.get("error"):
        args["error"] = node["error"]
    events.append({
        "name": str(node.get("name", "?")),
        "cat": "span" if node.get("status", "ok") == "ok" else "error",
        "ph": "X",
        "ts": round(ts, 1),
        "dur": round(dur_us, 1),
        "pid": pid,
        "tid": tid,
        "args": args,
    })
    cursor = ts
    for child in node.get("children") or ():
        child_dur = _chrome_events(child, origin_us, cursor, pid, events)
        cursor += child_dur
    return dur_us


def export_chrome_trace(document: Mapping[str, Any]) -> Dict[str, Any]:
    """Convert a trace document into Chrome Trace Event JSON.

    The output loads directly in ``about://tracing`` and Perfetto:
    every span becomes a complete ("X") event with microsecond
    timestamps, and spans recorded in forked restage workers keep
    their own pid so each worker renders as a separate process lane —
    the view that makes parallel-restage overhead visible.

    Spans from pre-v2 traces carry no timestamps; they are laid out
    sequentially from their parent's start so old files still render.
    """
    roots = document.get("spans") or ()
    all_ts = [float(n.get("ts_us") or 0.0)
              for root in roots for n in _spans.iter_spans(root)]
    positive = [t for t in all_ts if t > 0]
    origin = min(positive) if positive else 0.0
    main_pid = 0
    for root in roots:
        main_pid = int(root.get("pid") or 0)
        if main_pid:
            break

    events: List[Dict[str, Any]] = []
    cursor = 0.0
    for root in roots:
        cursor += _chrome_events(root, origin, cursor, main_pid, events)

    lanes = sorted({(e["pid"], e["tid"]) for e in events})
    pids = sorted({pid for pid, _ in lanes})
    for pid in pids:
        name = "darklight" if pid in (main_pid, 0) else f"worker-{pid}"
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": name}})
    metadata = dict(document.get("metadata") or {})
    metadata["trace_version"] = document.get("version")
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": metadata}


def write_chrome_trace(path: Union[str, Path],
                       document: Optional[Mapping[str, Any]] = None,
                       metadata: Optional[Mapping[str, Any]] = None,
                       ) -> Path:
    """Write the current (or given) trace in Chrome Trace Event format."""
    if document is None:
        document = build_trace_document(metadata)
    path = Path(path)
    path.write_text(
        json.dumps(export_chrome_trace(document), indent=2, default=str)
        + "\n", encoding="utf-8")
    return path


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def _table(headers: Sequence[str],
           rows: Sequence[Sequence[object]]) -> List[str]:
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in str_rows)
    return out


def _stage_totals(trace: Mapping[str, Any]) -> List[str]:
    totals = _spans.aggregate_spans(dict(trace))
    if not totals:
        return ["(no spans recorded)"]
    grand = sum(r.get("wall_ms", 0.0)
                for r in trace.get("spans") or ()) or 1.0
    rows = []
    for name, entry in sorted(totals.items(),
                              key=lambda kv: -kv[1]["wall_ms"]):
        rows.append((
            name,
            int(entry["calls"]),
            f"{entry['wall_ms']:.2f}",
            f"{entry['cpu_ms']:.2f}",
            f"{entry['wall_ms'] / entry['calls']:.2f}",
            f"{entry['wall_ms'] / grand:.1%}",
        ))
    return _table(("span", "calls", "wall ms", "cpu ms", "avg ms", "share"),
                  rows)


def _slowest_spans(trace: Mapping[str, Any], top: int = 10) -> List[str]:
    flat: List[Dict[str, Any]] = []
    for root in trace.get("spans") or ():
        flat.extend(_spans.iter_spans(root))
    flat.sort(key=lambda n: -n.get("wall_ms", 0.0))
    rows = []
    for node in flat[:top]:
        attrs = node.get("attributes") or {}
        attr_text = " ".join(f"{k}={v}" for k, v in attrs.items())
        rows.append((str(node.get("name", "?")),
                     f"{node.get('wall_ms', 0.0):.2f}",
                     node.get("status", "ok"), attr_text))
    if not rows:
        return ["(no spans recorded)"]
    return _table(("span", "wall ms", "status", "attributes"), rows)


def render_metrics(metrics: Mapping[str, Mapping[str, Any]]) -> List[str]:
    """Render a metrics snapshot as an aligned text table."""
    if not metrics:
        return ["(no metrics recorded)"]
    rows = []
    for name in sorted(metrics):
        data = metrics[name]
        kind = data.get("type", "?")
        if kind == "histogram":
            count = data.get("count", 0)
            mean = (data.get("sum", 0.0) / count) if count else 0.0
            detail = (f"count={count} mean={mean:.4f} "
                      f"min={data.get('min')} max={data.get('max')}")
            quantiles = " ".join(
                f"p{q}={data[f'p{q}']:.4f}" for q in (50, 95, 99)
                if isinstance(data.get(f"p{q}"), (int, float)))
            if quantiles:
                detail = f"{detail} {quantiles}"
            rows.append((name, kind, detail))
        else:
            rows.append((name, kind, str(data.get("value"))))
    return _table(("metric", "type", "value"), rows)


def render_stats(trace: Mapping[str, Any]) -> str:
    """The full ``darklight stats`` report for one trace document."""
    lines: List[str] = []
    metadata = trace.get("metadata") or {}
    if metadata:
        lines.append("metadata")
        for key in sorted(metadata):
            lines.append(f"  {key}: {metadata[key]}")
        lines.append("")
    lines.append("per-stage totals")
    lines.extend(_stage_totals(trace))
    lines.append("")
    lines.append("slowest spans")
    lines.extend(_slowest_spans(trace))
    lines.append("")
    lines.append("metrics")
    lines.extend(render_metrics(trace.get("metrics") or {}))
    lines.append("")
    lines.append("trace tree")
    lines.append(_spans.render_flame(dict(trace)))
    return "\n".join(lines)
