"""Trace-file persistence and the ``darklight stats`` renderer.

A trace file is one JSON document combining the span tree of
:mod:`repro.obs.spans` with a metrics snapshot from
:mod:`repro.obs.metrics`::

    {"version": 1,
     "spans": [...],            # nested span dicts
     "metrics": {...},          # registry snapshot
     "metadata": {...}}         # free-form (CLI argv, scale, ...)

:func:`render_stats` turns that document back into the human view:
per-stage totals, the slowest individual spans, the metric table and
the flame-style tree.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.errors import DatasetError
from repro.obs import metrics as _metrics
from repro.obs import spans as _spans

__all__ = [
    "build_trace_document",
    "write_trace",
    "load_trace",
    "render_stats",
    "render_metrics",
]


def build_trace_document(metadata: Optional[Mapping[str, Any]] = None,
                         tracer: Optional[_spans.Tracer] = None,
                         registry: Optional[_metrics.MetricsRegistry] = None,
                         ) -> Dict[str, Any]:
    """Combine the current trace + metrics into one export dict."""
    tracer = tracer or _spans.get_tracer()
    registry = registry or _metrics.get_registry()
    document = tracer.to_dict()
    document["metrics"] = registry.snapshot()
    if metadata:
        document["metadata"] = dict(metadata)
    return document


def write_trace(path: Union[str, Path],
                metadata: Optional[Mapping[str, Any]] = None,
                tracer: Optional[_spans.Tracer] = None,
                registry: Optional[_metrics.MetricsRegistry] = None,
                ) -> Path:
    """Write the current trace + metrics snapshot as JSON to *path*."""
    path = Path(path)
    document = build_trace_document(metadata, tracer, registry)
    path.write_text(json.dumps(document, indent=2, default=str) + "\n",
                    encoding="utf-8")
    return path


def load_trace(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a trace file, validating the basic shape."""
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise DatasetError(f"trace file {path} does not exist")
    except json.JSONDecodeError as exc:
        raise DatasetError(f"trace file {path} is not valid JSON: {exc}")
    if not isinstance(document, dict) or "spans" not in document:
        raise DatasetError(
            f"trace file {path} is missing the 'spans' key")
    return document


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def _table(headers: Sequence[str],
           rows: Sequence[Sequence[object]]) -> List[str]:
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in str_rows)
    return out


def _stage_totals(trace: Mapping[str, Any]) -> List[str]:
    totals = _spans.aggregate_spans(dict(trace))
    if not totals:
        return ["(no spans recorded)"]
    grand = sum(r.get("wall_ms", 0.0) for r in trace.get("spans", ())) or 1.0
    rows = []
    for name, entry in sorted(totals.items(),
                              key=lambda kv: -kv[1]["wall_ms"]):
        rows.append((
            name,
            int(entry["calls"]),
            f"{entry['wall_ms']:.2f}",
            f"{entry['cpu_ms']:.2f}",
            f"{entry['wall_ms'] / entry['calls']:.2f}",
            f"{entry['wall_ms'] / grand:.1%}",
        ))
    return _table(("span", "calls", "wall ms", "cpu ms", "avg ms", "share"),
                  rows)


def _slowest_spans(trace: Mapping[str, Any], top: int = 10) -> List[str]:
    flat: List[Dict[str, Any]] = []
    for root in trace.get("spans", ()):
        flat.extend(_spans.iter_spans(root))
    flat.sort(key=lambda n: -n.get("wall_ms", 0.0))
    rows = []
    for node in flat[:top]:
        attrs = node.get("attributes") or {}
        attr_text = " ".join(f"{k}={v}" for k, v in attrs.items())
        rows.append((node["name"], f"{node.get('wall_ms', 0.0):.2f}",
                     node.get("status", "ok"), attr_text))
    if not rows:
        return ["(no spans recorded)"]
    return _table(("span", "wall ms", "status", "attributes"), rows)


def render_metrics(metrics: Mapping[str, Mapping[str, Any]]) -> List[str]:
    """Render a metrics snapshot as an aligned text table."""
    if not metrics:
        return ["(no metrics recorded)"]
    rows = []
    for name in sorted(metrics):
        data = metrics[name]
        kind = data.get("type", "?")
        if kind == "histogram":
            count = data.get("count", 0)
            mean = (data.get("sum", 0.0) / count) if count else 0.0
            detail = (f"count={count} mean={mean:.4f} "
                      f"min={data.get('min')} max={data.get('max')}")
            rows.append((name, kind, detail))
        else:
            rows.append((name, kind, str(data.get("value"))))
    return _table(("metric", "type", "value"), rows)


def render_stats(trace: Mapping[str, Any]) -> str:
    """The full ``darklight stats`` report for one trace document."""
    lines: List[str] = []
    metadata = trace.get("metadata") or {}
    if metadata:
        lines.append("metadata")
        for key in sorted(metadata):
            lines.append(f"  {key}: {metadata[key]}")
        lines.append("")
    lines.append("per-stage totals")
    lines.extend(_stage_totals(trace))
    lines.append("")
    lines.append("slowest spans")
    lines.extend(_slowest_spans(trace))
    lines.append("")
    lines.append("metrics")
    lines.extend(render_metrics(trace.get("metrics") or {}))
    lines.append("")
    lines.append("trace tree")
    lines.append(_spans.render_flame(dict(trace)))
    return "\n".join(lines)
