"""Hierarchical tracing spans with wall/CPU timing.

The span API is the backbone of the observability layer: every stage of
the two-stage attribution pipeline wraps its work in a span, producing
a trace *tree* that records wall-clock and CPU time per stage::

    from repro.obs import span, enable_tracing, get_trace

    enable_tracing()
    with span("linker.link", n_unknowns=40):
        with span("linker.stage1", k=10):
            ...
        with span("linker.stage2", k=10):
            ...
    tree = get_trace()          # JSON-serializable dict

Design constraints (and how they are met):

* **zero dependencies** — stdlib ``time``/``threading`` only;
* **thread safety** — each thread keeps its own active-span stack in a
  ``threading.local``; finished root spans are appended to a shared
  list under a lock, so worker threads can trace concurrently;
* **negligible overhead when disabled** — ``span()`` checks one module
  attribute and returns a shared no-op context manager without
  allocating anything (see :mod:`repro.obs.instrument` for the
  decorator equivalent).

Tracing is **disabled by default**; the CLI enables it for ``--trace``
runs and tests enable it explicitly.  Metric counters
(:mod:`repro.obs.metrics`) are independent of this switch and are
always live.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence

__all__ = [
    "Span",
    "Tracer",
    "span",
    "timer",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "current_span",
    "get_trace",
    "reset_trace",
    "iter_spans",
    "aggregate_spans",
    "render_flame",
    "get_tracer",
]

#: Trace-file schema version (bumped on incompatible changes).
TRACE_VERSION = 2

#: Installed by :mod:`repro.obs.prof` while profiling is enabled; the
#: span hot path pays exactly one global load + ``is None`` check when
#: it is off, and allocates nothing.
_PROFILE_HOOK: Optional[Any] = None


def _set_profile_hook(hook: Optional[Any]) -> None:
    """Install (or clear) the span-boundary resource profiler."""
    global _PROFILE_HOOK
    _PROFILE_HOOK = hook


def _get_profile_hook() -> Optional[Any]:
    return _PROFILE_HOOK


class Span:
    """One timed operation in the trace tree.

    Attributes
    ----------
    name:
        Dotted stage name, e.g. ``"linker.stage2"`` (conventions in
        ``docs/observability.md``).
    attributes:
        Arbitrary JSON-serializable key/value payload.
    wall_ms / cpu_ms:
        Wall-clock and CPU duration in milliseconds (set on exit).
    status:
        ``"ok"`` or ``"error"``; errors record ``repr(exc)`` in
        ``error`` and propagate.
    children:
        Sub-spans finished while this span was active on the same
        thread.
    ts_us / pid / tid:
        Start timestamp in microseconds on the shared monotonic clock
        (``time.perf_counter``, comparable across forked workers on
        Linux), and the process/thread that ran the span — together
        they place the span on a Chrome-trace timeline lane.
    resources:
        Resource-profile payload (RSS delta, GC counts, allocation
        stats) attached by :mod:`repro.obs.prof` when profiling is
        enabled; ``None`` otherwise.
    """

    __slots__ = ("name", "attributes", "children", "status", "error",
                 "wall_ms", "cpu_ms", "ts_us", "pid", "tid",
                 "resources", "_start_wall", "_start_cpu", "_prof")

    def __init__(self, name: str,
                 attributes: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.children: List["Span"] = []
        self.status = "ok"
        self.error: Optional[str] = None
        self.wall_ms = 0.0
        self.cpu_ms = 0.0
        self.ts_us = 0.0
        self.pid = 0
        self.tid = 0
        self.resources: Optional[Dict[str, Any]] = None
        self._start_wall = 0.0
        self._start_cpu = 0.0
        self._prof: Optional[Any] = None

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach one attribute to an open (or finished) span."""
        self.attributes[key] = value

    # -- timing ---------------------------------------------------------------

    def _start(self) -> None:
        self.pid = os.getpid()
        self.tid = threading.get_ident()
        hook = _PROFILE_HOOK
        if hook is not None:
            self._prof = hook.begin()
        self._start_wall = time.perf_counter()
        self._start_cpu = time.process_time()
        self.ts_us = self._start_wall * 1e6

    def _finish(self, exc: Optional[BaseException] = None) -> None:
        self.wall_ms = (time.perf_counter() - self._start_wall) * 1000.0
        self.cpu_ms = (time.process_time() - self._start_cpu) * 1000.0
        if self._prof is not None:
            hook = _PROFILE_HOOK
            if hook is not None:
                self.resources = hook.end(self._prof)
            self._prof = None
        if exc is not None:
            self.status = "error"
            self.error = repr(exc)

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation (children recurse)."""
        out: Dict[str, Any] = {
            "name": self.name,
            "wall_ms": round(self.wall_ms, 4),
            "cpu_ms": round(self.cpu_ms, 4),
            "status": self.status,
            "ts_us": round(self.ts_us, 1),
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.attributes:
            out["attributes"] = self.attributes
        if self.error is not None:
            out["error"] = self.error
        if self.resources is not None:
            out["resources"] = self.resources
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        """Rebuild a finished span from :meth:`to_dict` output.

        Used to graft spans recorded in forked worker processes back
        into the parent's trace tree (see
        :class:`~repro.perf.parallel.ParallelExecutor`).
        """
        span_obj = cls(str(data.get("name", "?")),
                       data.get("attributes"))
        span_obj.wall_ms = float(data.get("wall_ms", 0.0))
        span_obj.cpu_ms = float(data.get("cpu_ms", 0.0))
        span_obj.status = str(data.get("status", "ok"))
        span_obj.error = data.get("error")
        span_obj.ts_us = float(data.get("ts_us", 0.0))
        span_obj.pid = int(data.get("pid", 0))
        span_obj.tid = int(data.get("tid", 0))
        span_obj.resources = data.get("resources")
        span_obj.children = [cls.from_dict(c)
                             for c in data.get("children", ())]
        return span_obj

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, wall_ms={self.wall_ms:.3f}, "
                f"children={len(self.children)})")


class _NoopSpan:
    """Shared do-nothing context manager for the disabled fast path.

    A single module-level instance is handed out by :func:`span` when
    tracing is off, so the disabled path costs one attribute check and
    no allocation.  It is stateless, hence safely reentrant and
    shareable across threads.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set_attribute(self, key: str, value: Any) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class _ActiveSpan:
    """Context manager binding a :class:`Span` to a tracer's stack."""

    __slots__ = ("_tracer", "_span", "_record")

    def __init__(self, tracer: "Tracer", name: str,
                 attributes: Dict[str, Any], record: bool = True) -> None:
        self._tracer = tracer
        self._span = Span(name, attributes)
        self._record = record

    def __enter__(self) -> Span:
        if self._record:
            self._tracer._push(self._span)
        self._span._start()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._span._finish(exc)
        if self._record:
            self._tracer._pop(self._span)
        return False


class Tracer:
    """Collects spans into per-thread trees under one root list.

    Normally the process-wide instance from :func:`get_tracer` is all
    you need; private tracers exist for tests and for merging traces
    from subprocesses.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._local = threading.local()
        self._roots: List[Span] = []
        self._lock = threading.Lock()

    # -- stack maintenance ----------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span_obj: Span) -> None:
        self._stack().append(span_obj)

    def _pop(self, span_obj: Span) -> None:
        """Detach *span_obj* and restore the previously active span.

        Runs in ``__exit__`` so the active-span stack is restored even
        when the traced block raises.  Out-of-order exits (a generator
        finalized late, say) are tolerated by removing the span from
        wherever it sits in the stack.
        """
        stack = self._stack()
        if stack and stack[-1] is span_obj:
            stack.pop()
        elif span_obj in stack:  # pragma: no cover - defensive
            stack.remove(span_obj)
        parent = stack[-1] if stack else None
        if parent is not None:
            parent.children.append(span_obj)
        else:
            with self._lock:
                self._roots.append(span_obj)

    # -- public API -----------------------------------------------------------

    def span(self, name: str, **attributes: Any):
        """Open a span (or a shared no-op when tracing is disabled)."""
        if not self.enabled:
            return _NOOP_SPAN
        return _ActiveSpan(self, name, attributes)

    def timer(self, name: str, **attributes: Any) -> _ActiveSpan:
        """A context manager that *always* measures.

        Unlike :meth:`span`, the yielded :class:`Span` is timed even
        with tracing disabled — benchmarks use this so bench timing and
        pipeline telemetry share one code path.  The span only joins
        the trace tree when tracing is enabled.
        """
        return _ActiveSpan(self, name, attributes, record=self.enabled)

    def current_span(self) -> Optional[Span]:
        """The innermost open span on this thread, or ``None``."""
        stack = self._stack()
        return stack[-1] if stack else None

    def attach(self, span_obj: Span) -> None:
        """Adopt an already-finished span into the live tree.

        The span becomes a child of this thread's innermost open span,
        or a new root when no span is open — how worker-recorded spans
        (rebuilt with :meth:`Span.from_dict`) join the parent trace.
        """
        stack = self._stack()
        if stack:
            stack[-1].children.append(span_obj)
        else:
            with self._lock:
                self._roots.append(span_obj)

    def clear_thread_state(self) -> None:
        """Forget every thread's active-span stack (and finished roots).

        Forked workers inherit the parent's open spans on the surviving
        thread's stack; a worker calls this once after fork so its own
        spans form fresh root trees instead of mutating copied parents.
        """
        with self._lock:
            self._roots.clear()
        self._local = threading.local()

    def roots(self) -> List[Span]:
        """Finished top-level spans (snapshot copy)."""
        with self._lock:
            return list(self._roots)

    def reset(self) -> None:
        """Drop all finished spans (open spans are unaffected)."""
        with self._lock:
            self._roots.clear()

    def to_dict(self) -> Dict[str, Any]:
        """The whole trace as a JSON-serializable dict."""
        return {
            "version": TRACE_VERSION,
            "spans": [s.to_dict() for s in self.roots()],
        }


# ---------------------------------------------------------------------------
# Process-wide default tracer + module-level conveniences
# ---------------------------------------------------------------------------

_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer used by the module-level helpers."""
    return _TRACER


def span(name: str, **attributes: Any):
    """Open a span on the default tracer (no-op while disabled)."""
    if not _TRACER.enabled:
        return _NOOP_SPAN
    return _ActiveSpan(_TRACER, name, attributes)


def timer(name: str, **attributes: Any) -> _ActiveSpan:
    """Always-on timing context manager on the default tracer."""
    return _TRACER.timer(name, **attributes)


def enable_tracing() -> None:
    """Start recording spans process-wide."""
    _TRACER.enabled = True


def disable_tracing() -> None:
    """Stop recording spans (already-finished spans are kept)."""
    _TRACER.enabled = False


def tracing_enabled() -> bool:
    """Whether the default tracer is currently recording."""
    return _TRACER.enabled


def current_span() -> Optional[Span]:
    """The innermost open span on this thread, or ``None``."""
    return _TRACER.current_span()


def get_trace() -> Dict[str, Any]:
    """The default tracer's trace as a JSON-serializable dict."""
    return _TRACER.to_dict()


def reset_trace() -> None:
    """Drop every finished span on the default tracer."""
    _TRACER.reset()


# ---------------------------------------------------------------------------
# Trace analysis
# ---------------------------------------------------------------------------

def iter_spans(node: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    """Depth-first walk over one exported span dict and its children."""
    yield node
    for child in node.get("children") or ():
        yield from iter_spans(child)


def aggregate_spans(trace: Dict[str, Any]) -> Dict[str, Dict[str, float]]:
    """Per-name totals over an exported trace.

    Returns ``name -> {"calls", "wall_ms", "cpu_ms", "max_wall_ms"}``
    summed over every span of that name anywhere in the tree — the
    "per-stage totals" view of ``darklight stats``.
    """
    totals: Dict[str, Dict[str, float]] = {}
    for root in trace.get("spans") or ():
        for node in iter_spans(root):
            entry = totals.setdefault(str(node.get("name", "?")), {
                "calls": 0, "wall_ms": 0.0, "cpu_ms": 0.0,
                "max_wall_ms": 0.0,
            })
            entry["calls"] += 1
            entry["wall_ms"] += node.get("wall_ms", 0.0)
            entry["cpu_ms"] += node.get("cpu_ms", 0.0)
            entry["max_wall_ms"] = max(entry["max_wall_ms"],
                                       node.get("wall_ms", 0.0))
    return totals


def _render_node(node: Dict[str, Any], total_ms: float, depth: int,
                 lines: List[str], bar_width: int = 20) -> None:
    wall = node.get("wall_ms", 0.0)
    share = wall / total_ms if total_ms > 0 else 0.0
    bar = "#" * max(1, round(share * bar_width)) if wall > 0 else ""
    marker = " !" if node.get("status") == "error" else ""
    name = str(node.get("name", "?"))
    lines.append(f"{'  ' * depth}{name:<{40 - 2 * depth}} "
                 f"{wall:>10.2f}ms {share:>6.1%}  {bar}{marker}")
    # Collapse identical-name siblings so loops read as one line.
    groups: Dict[str, List[Dict[str, Any]]] = {}
    order: List[str] = []
    for child in node.get("children") or ():
        child_name = str(child.get("name", "?"))
        if child_name not in groups:
            order.append(child_name)
        groups.setdefault(child_name, []).append(child)
    for name in order:
        members = groups[name]
        if len(members) == 1:
            _render_node(members[0], total_ms, depth + 1, lines, bar_width)
        else:
            merged: Dict[str, Any] = {
                "name": f"{name} [x{len(members)}]",
                "wall_ms": sum(m.get("wall_ms", 0.0) for m in members),
                "cpu_ms": sum(m.get("cpu_ms", 0.0) for m in members),
                "status": ("error" if any(m.get("status") == "error"
                                          for m in members) else "ok"),
                "children": [c for m in members
                             for c in m.get("children") or ()],
            }
            _render_node(merged, total_ms, depth + 1, lines, bar_width)


def render_flame(trace: Dict[str, Any]) -> str:
    """Flame-style indented text report of an exported trace.

    Sibling spans with identical names (loop iterations) are collapsed
    into one ``name [xN]`` line with summed durations; percentages are
    relative to the total wall time of all root spans.
    """
    roots: Sequence[Dict[str, Any]] = trace.get("spans") or ()
    if not roots:
        return "(empty trace)"
    total = sum(r.get("wall_ms", 0.0) for r in roots) or 1.0
    lines: List[str] = []
    for root in roots:
        _render_node(root, total, 0, lines)
    return "\n".join(lines)
