"""Performance subsystem: profile caching, parallel restage, blocked
stage-1 scoring.

Three levers that together let the two-stage linker scale to corpus
sizes the paper never touched:

* :class:`~repro.perf.cache.ProfileCache` — every document's raw
  n-gram counts, frequency features and activity row are computed
  exactly once and reused by both stages and every restage;
* :class:`~repro.perf.parallel.ParallelExecutor` — per-unknown stage-2
  work fans across cores over a fork pool, with the cache shared
  read-only and deterministic, order-stable output;
* :func:`~repro.perf.blocked.blocked_top_k` — stage-1 similarity is
  scored in column blocks with the top-k folded per block, so the
  dense ``(n_unknowns, n_known)`` matrix never materializes whole.

Tuning knobs: ``REPRO_WORKERS`` (or ``link --workers`` / the linkers'
``workers=`` parameter) and ``REPRO_BLOCK_SIZE`` (or ``block_size=``).
See ``docs/performance.md``.
"""

from repro.perf.blocked import (
    BLOCK_SIZE_ENV,
    DEFAULT_BLOCK_SIZE,
    blocked_top_k,
    resolve_block_size,
)
from repro.perf.cache import ProfileCache
from repro.perf.parallel import (
    WORKERS_ENV,
    ParallelExecutor,
    resolve_workers,
)

__all__ = [
    "BLOCK_SIZE_ENV",
    "DEFAULT_BLOCK_SIZE",
    "ParallelExecutor",
    "ProfileCache",
    "WORKERS_ENV",
    "blocked_top_k",
    "resolve_block_size",
    "resolve_workers",
]
