"""Performance subsystem: profile caching, parallel restage, blocked
and inverted-index stage-1 scoring.

Four levers that together let the two-stage linker scale to corpus
sizes the paper never touched:

* :class:`~repro.perf.cache.ProfileCache` — every document's raw
  n-gram counts, frequency features and activity row are computed
  exactly once and reused by both stages and every restage;
* :class:`~repro.perf.parallel.ParallelExecutor` — per-unknown stage-2
  work fans across cores over a fork pool (per-call, or persistent
  across ``link()`` calls via ``map_shared``), with the cache shared
  read-only and deterministic, order-stable output;
* :func:`~repro.perf.blocked.blocked_top_k` — stage-1 similarity is
  scored in column blocks with the top-k folded per block, so the
  dense ``(n_unknowns, n_known)`` matrix never materializes whole;
* :class:`~repro.perf.invindex.ShardedIndex` — stage-1 goes
  *sublinear*: a term-pruned inverted index visits only the posting
  mass the top-k actually needs, sharded into independently scored,
  exactly merged partitions — bit-identical to ``blocked_top_k``.

Tuning knobs: ``REPRO_WORKERS`` (or ``link --workers`` / the linkers'
``workers=`` parameter), ``REPRO_BLOCK_SIZE`` (or ``block_size=``),
``REPRO_SHARDS`` (or ``link --shards`` / ``shards=``) and the linkers'
``stage1=`` strategy selector.  See ``docs/performance.md``.
"""

from repro.perf.blocked import (
    BLOCK_SIZE_ENV,
    DEFAULT_BLOCK_SIZE,
    blocked_top_k,
    resolve_block_size,
)
from repro.perf.cache import ProfileCache
from repro.perf.invindex import (
    DEFAULT_SHARDS,
    SHARDS_ENV,
    InvertedIndex,
    ShardedIndex,
    choose_stage1,
    resolve_shards,
)
from repro.perf.parallel import (
    WORKERS_ENV,
    ParallelExecutor,
    gated_serial,
    resolve_workers,
    shutdown_pools,
)

__all__ = [
    "BLOCK_SIZE_ENV",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_SHARDS",
    "InvertedIndex",
    "ParallelExecutor",
    "ProfileCache",
    "SHARDS_ENV",
    "ShardedIndex",
    "WORKERS_ENV",
    "blocked_top_k",
    "choose_stage1",
    "gated_serial",
    "resolve_block_size",
    "resolve_shards",
    "resolve_workers",
    "shutdown_pools",
]
