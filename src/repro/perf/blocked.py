"""Memory-bounded stage-1 scoring: top-k folded per block.

Ranking ``n_unknowns`` queries against ``n_known`` aliases produces a
dense ``(n_unknowns, n_known)`` similarity matrix — 160 MB of float64
at 200 x 100,000, and growing linearly with the known corpus.  The
reduction stage only ever needs the best *k* per row, so the matrix
never has to exist whole: score the known corpus in column blocks and
fold a running top-k after each block.  Peak memory becomes
``O(n_unknowns * (k + block_size))`` regardless of corpus size.

The fold is **exactly** equivalent to the unblocked computation,
including tie handling: :func:`repro.core.similarity.top_k` orders
ties by ascending corpus index, the running best always holds smaller
indices than the incoming block, and a stable sort over the
concatenated candidates therefore preserves the same total order
``(-score, index)`` the one-shot path uses.  Blocked and unblocked
candidate sets are identical element-for-element (property-tested in
``tests/perf/test_blocked.py``).

The block size comes from the argument, then the
``REPRO_BLOCK_SIZE`` environment variable, then
:data:`DEFAULT_BLOCK_SIZE`.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

import numpy as np
from scipy import sparse

from repro.core.similarity import cosine_similarity, top_k
from repro.errors import ConfigurationError
from repro.obs.metrics import counter, gauge

__all__ = ["blocked_top_k", "resolve_block_size", "BLOCK_SIZE_ENV",
           "DEFAULT_BLOCK_SIZE"]

#: Environment variable overriding the default block size.
BLOCK_SIZE_ENV = "REPRO_BLOCK_SIZE"

#: Known-corpus rows scored per block when nothing else is configured.
#: 4096 known aliases x 200 unknowns of float64 is ~6.5 MB per block —
#: small enough to sit in cache-friendly territory, large enough that
#: the sparse matmul dominates the fold bookkeeping.
DEFAULT_BLOCK_SIZE = 4096

#: Similarity blocks scored across all reductions.
_BLOCKS = counter("stage1_blocks_total")
#: Block size used by the most recent blocked scoring call.
_BLOCK_GAUGE = gauge("stage1_block_size")


def resolve_block_size(block_size: Optional[int] = None) -> int:
    """Resolve a block size: argument > ``REPRO_BLOCK_SIZE`` > default."""
    if block_size is None:
        raw = os.environ.get(BLOCK_SIZE_ENV)
        if raw is None or not raw.strip():
            return DEFAULT_BLOCK_SIZE
        try:
            block_size = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"{BLOCK_SIZE_ENV} must be an integer, got {raw!r}"
            ) from None
    block_size = int(block_size)
    if block_size < 1:
        raise ConfigurationError(
            f"block_size must be a positive integer, got {block_size}")
    return block_size


def blocked_top_k(queries: sparse.spmatrix, corpus: sparse.spmatrix,
                  k: int, block_size: Optional[int] = None,
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """Per-query top-*k* corpus rows by cosine, scored in blocks.

    Parameters
    ----------
    queries / corpus:
        L2-normalized sparse matrices, one row per document.
    k:
        Candidates to keep per query (clamped to the corpus size).
    block_size:
        Corpus rows scored per block; ``None`` resolves through
        ``REPRO_BLOCK_SIZE`` / :data:`DEFAULT_BLOCK_SIZE`.

    Returns
    -------
    (indices, values):
        Both of shape ``(n_queries, min(k, n_corpus))``, candidates
        sorted by descending score (ties by ascending index) — exactly
        the output of ``top_k(cosine_similarity(queries, corpus), k)``
        without ever materializing the full similarity matrix.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    block = resolve_block_size(block_size)
    _BLOCK_GAUGE.set(block)
    n_corpus = corpus.shape[0]
    if n_corpus <= block:
        _BLOCKS.inc()
        return top_k(cosine_similarity(queries, corpus), k)
    best_indices: Optional[np.ndarray] = None
    best_values: Optional[np.ndarray] = None
    for start in range(0, n_corpus, block):
        _BLOCKS.inc()
        scores = cosine_similarity(queries, corpus[start:start + block])
        indices, values = top_k(scores, min(k, scores.shape[1]))
        indices = indices.astype(np.int64) + start
        if best_indices is None:
            best_indices, best_values = indices, values
            continue
        # Fold: previous winners carry strictly smaller corpus indices
        # than the incoming block, so the stable (-score, index) sort
        # inside top_k keeps the global tie order intact.
        merged_values = np.concatenate([best_values, values], axis=1)
        merged_indices = np.concatenate([best_indices, indices], axis=1)
        keep, best_values = top_k(merged_values,
                                  min(k, merged_values.shape[1]))
        best_indices = np.take_along_axis(merged_indices, keep, axis=1)
    assert best_indices is not None and best_values is not None
    return best_indices, best_values
