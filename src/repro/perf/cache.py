"""Per-document feature-profile caching.

The two-stage linker touches every document many times: stage 1 fits
the reduction feature space over the full known corpus, and stage 2
re-fits a fresh Tf-Idf on each unknown's candidate set — candidate
sets that overlap heavily between unknowns while the underlying
documents never change.  Narayanan et al.'s internet-scale stylometry
(100k authors) hinges on exactly one idea: compute each author's raw
feature profile **once** and reuse it across every query.

:class:`ProfileCache` is that idea for this pipeline.  It owns the
shared :class:`~repro.core.ngrams.WordVocab` and memoizes, per
document id:

* the word 1–3-gram :class:`~repro.core.ngrams.CodeCounts`,
* the character 1–5-gram :class:`~repro.core.ngrams.CodeCounts`,
* the punctuation/digit/special-character frequency vector,
* the (zero-filled when absent) daily-activity row,
* the (zero-filled when absent) reply-graph structure row.

With warm profiles the stage-2 restage is pure numpy work — re-select
top-N codes from cached counts, re-fit Tf-Idf on the candidate slice,
re-normalize — with **zero** re-tokenization.

Everything is observable through ``repro.obs``:
``profile_cache_hits_total`` / ``profile_cache_misses_total`` count
lookups, ``profile_cache_bytes`` gauges resident profile bytes, and
``tokenizations_total`` counts every raw text walk (one per n-gram
encode), which is what the CI smoke asserts goes *down* when the cache
is on.

A cache constructed with ``enabled=False`` recomputes every profile on
every call but still shares the word vocabulary — interning order, and
therefore n-gram code values and feature-column order, are identical
either way, which is what makes cached and uncached linking runs
**bit-identical** (see ``tests/perf/test_equivalence.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Optional, Tuple

import numpy as np

from repro.core import ngrams
from repro.obs.metrics import counter, gauge

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.documents import AliasDocument

__all__ = ["ProfileCache"]

#: Profile lookups answered from memory.
_HITS = counter("profile_cache_hits_total")
#: Profile lookups that had to (re)compute.
_MISSES = counter("profile_cache_misses_total")
#: Bytes of profile arrays currently resident in the cache.
_BYTES = gauge("profile_cache_bytes")
#: Raw text walks: every word- or char-n-gram encode of a document.
_TOKENIZATIONS = counter("tokenizations_total")


class ProfileCache:
    """Compute-once store of per-document raw feature profiles.

    Parameters
    ----------
    vocab:
        The shared word-interning table.  A private one is created when
        omitted.  Sharing the vocab is what keeps n-gram codes
        comparable across every consumer of the cache.
    enabled:
        When ``False`` nothing is memoized: every lookup recomputes
        (and re-tokenizes).  The vocabulary is still shared, so a
        disabled cache changes *nothing* about the numbers a linking
        run produces — only how often they are recomputed.
    """

    def __init__(self, vocab: Optional[ngrams.WordVocab] = None,
                 enabled: bool = True) -> None:
        self.vocab = vocab if vocab is not None else ngrams.WordVocab()
        self.enabled = enabled
        self._word: Dict[str, ngrams.CodeCounts] = {}
        self._char: Dict[str, ngrams.CodeCounts] = {}
        self._freq: Dict[str, np.ndarray] = {}
        self._activity: Dict[Tuple[str, int], np.ndarray] = {}
        self._structure: Dict[str, np.ndarray] = {}
        self._bytes = 0

    # -- accounting -----------------------------------------------------------

    def __len__(self) -> int:
        """Number of cached profile entries (all families)."""
        return (len(self._word) + len(self._char) + len(self._freq)
                + len(self._activity) + len(self._structure))

    @property
    def nbytes(self) -> int:
        """Approximate bytes held by cached profile arrays."""
        return self._bytes

    def _grow(self, amount: int) -> None:
        self._bytes += amount
        _BYTES.set(self._bytes)

    # -- profiles -------------------------------------------------------------

    def word_profile(self, document: "AliasDocument") -> ngrams.CodeCounts:
        """Word 1–3-gram counts of *document*, computed at most once."""
        if self.enabled:
            profile = self._word.get(document.doc_id)
            if profile is not None:
                _HITS.inc()
                return profile
        _MISSES.inc()
        _TOKENIZATIONS.inc()
        codes = ngrams.word_ngram_codes(document.words, self.vocab)
        profile = ngrams.CodeCounts.from_occurrences(codes)
        if self.enabled:
            self._word[document.doc_id] = profile
            self._grow(profile.codes.nbytes + profile.counts.nbytes)
        return profile

    def char_profile(self, document: "AliasDocument") -> ngrams.CodeCounts:
        """Character 1–5-gram counts of *document*, computed at most once."""
        if self.enabled:
            profile = self._char.get(document.doc_id)
            if profile is not None:
                _HITS.inc()
                return profile
        _MISSES.inc()
        _TOKENIZATIONS.inc()
        codes = ngrams.char_ngram_codes(document.text)
        profile = ngrams.CodeCounts.from_occurrences(codes)
        if self.enabled:
            self._char[document.doc_id] = profile
            self._grow(profile.codes.nbytes + profile.counts.nbytes)
        return profile

    def freq_features(self, document: "AliasDocument") -> np.ndarray:
        """Frequency features of *document*, computed at most once."""
        if self.enabled:
            features = self._freq.get(document.doc_id)
            if features is not None:
                _HITS.inc()
                return features
        _MISSES.inc()
        # Local import: repro.core.features imports this module.
        from repro.core.features import frequency_features

        features = frequency_features(document.text)
        if self.enabled:
            self._freq[document.doc_id] = features
            self._grow(features.nbytes)
        return features

    def activity_row(self, document: "AliasDocument",
                     bins: int) -> np.ndarray:
        """The daily-activity row of *document* as float64.

        Documents without an activity profile get a zero row of *bins*
        entries (their activity contributes nothing to any cosine).
        The returned array is shared — callers must not mutate it
        (every pipeline consumer copies it into a stacked matrix).
        """
        key = (document.doc_id, bins)
        if self.enabled:
            row = self._activity.get(key)
            if row is not None:
                _HITS.inc()
                return row
        _MISSES.inc()
        if document.activity is not None:
            row = np.asarray(document.activity, dtype=np.float64)
        else:
            row = np.zeros(bins, dtype=np.float64)
        if self.enabled:
            self._activity[key] = row
            self._grow(row.nbytes)
        return row

    def structure_row(self, document: "AliasDocument") -> np.ndarray:
        """The reply-graph structure row of *document* as float64.

        Documents without a structure vector get a zero row of
        :data:`repro.core.structure.STRUCTURE_DIM` entries.  Like
        :meth:`activity_row` the returned array is shared — callers
        must not mutate it.
        """
        if self.enabled:
            row = self._structure.get(document.doc_id)
            if row is not None:
                _HITS.inc()
                return row
        _MISSES.inc()
        # Local import: repro.core.features imports this module.
        from repro.core.structure import STRUCTURE_DIM

        if document.structure is not None:
            row = np.asarray(document.structure, dtype=np.float64)
        else:
            row = np.zeros(STRUCTURE_DIM, dtype=np.float64)
        if self.enabled:
            self._structure[document.doc_id] = row
            self._grow(row.nbytes)
        return row

    # -- persistence ----------------------------------------------------------

    def export_state(self) -> Dict[str, Dict[str, object]]:
        """Pack every cached profile into flat numpy arrays.

        The format is what :mod:`repro.resilience.snapshot` persists:
        per profile family a key list plus concatenated value arrays
        with an ``indptr`` boundary array (CSR-style), so a snapshot
        can store each family as a handful of mmap-able sections
        instead of thousands of tiny arrays.  The vocabulary is *not*
        included — it is shared state serialized by the snapshot
        itself.
        """
        def pack_counts(family: Dict[str, ngrams.CodeCounts],
                        ) -> Dict[str, object]:
            doc_ids = list(family)
            indptr = np.zeros(len(doc_ids) + 1, dtype=np.int64)
            codes_parts: list = []
            counts_parts: list = []
            for i, doc_id in enumerate(doc_ids):
                profile = family[doc_id]
                codes_parts.append(profile.codes)
                counts_parts.append(profile.counts)
                indptr[i + 1] = indptr[i] + len(profile.codes)
            codes = np.concatenate(codes_parts) if codes_parts \
                else np.empty(0, dtype=np.uint64)
            counts = np.concatenate(counts_parts) if counts_parts \
                else np.empty(0, dtype=np.int64)
            return {"keys": doc_ids,
                    "codes": codes.astype(np.uint64, copy=False),
                    "counts": counts.astype(np.int64, copy=False),
                    "indptr": indptr}

        def pack_rows(family: Dict, keys: list) -> Dict[str, object]:
            indptr = np.zeros(len(keys) + 1, dtype=np.int64)
            parts: list = []
            for i, key in enumerate(keys):
                row = family[key]
                parts.append(row)
                indptr[i + 1] = indptr[i] + len(row)
            data = np.concatenate(parts) if parts \
                else np.empty(0, dtype=np.float64)
            return {"data": data.astype(np.float64, copy=False),
                    "indptr": indptr}

        freq_keys = list(self._freq)
        activity_keys = list(self._activity)
        structure_keys = list(self._structure)
        freq = pack_rows(self._freq, freq_keys)
        freq["keys"] = freq_keys
        activity = pack_rows(self._activity, activity_keys)
        activity["keys"] = [[doc_id, int(bins)]
                            for doc_id, bins in activity_keys]
        structure = pack_rows(self._structure, structure_keys)
        structure["keys"] = structure_keys
        return {"word": pack_counts(self._word),
                "char": pack_counts(self._char),
                "freq": freq,
                "activity": activity,
                "structure": structure}

    def import_state(self, state: Dict[str, Dict[str, object]]) -> None:
        """Restore profiles packed by :meth:`export_state`.

        Array slices are taken as views, so profiles restored from a
        memory-mapped snapshot stay memory-mapped.  Existing entries
        with the same keys are replaced; byte accounting is updated.
        """
        def unpack_counts(packed: Dict[str, object],
                          target: Dict[str, ngrams.CodeCounts]) -> None:
            indptr = np.asarray(packed["indptr"], dtype=np.int64)
            codes = np.asarray(packed["codes"], dtype=np.uint64)
            counts = np.asarray(packed["counts"], dtype=np.int64)
            for i, doc_id in enumerate(packed["keys"]):
                lo, hi = int(indptr[i]), int(indptr[i + 1])
                profile = ngrams.CodeCounts(codes=codes[lo:hi],
                                            counts=counts[lo:hi])
                target[str(doc_id)] = profile
                self._grow(profile.codes.nbytes + profile.counts.nbytes)

        unpack_counts(state["word"], self._word)
        unpack_counts(state["char"], self._char)
        freq = state["freq"]
        indptr = np.asarray(freq["indptr"], dtype=np.int64)
        data = np.asarray(freq["data"], dtype=np.float64)
        for i, doc_id in enumerate(freq["keys"]):
            row = data[int(indptr[i]):int(indptr[i + 1])]
            self._freq[str(doc_id)] = row
            self._grow(row.nbytes)
        activity = state["activity"]
        indptr = np.asarray(activity["indptr"], dtype=np.int64)
        data = np.asarray(activity["data"], dtype=np.float64)
        for i, key in enumerate(activity["keys"]):
            doc_id, bins = key
            row = data[int(indptr[i]):int(indptr[i + 1])]
            self._activity[(str(doc_id), int(bins))] = row
            self._grow(row.nbytes)
        # Snapshots written before the structure family lack the key.
        structure = state.get("structure")
        if structure is not None:
            indptr = np.asarray(structure["indptr"], dtype=np.int64)
            data = np.asarray(structure["data"], dtype=np.float64)
            for i, doc_id in enumerate(structure["keys"]):
                row = data[int(indptr[i]):int(indptr[i + 1])]
                self._structure[str(doc_id)] = row
                self._grow(row.nbytes)

    # -- memory control -------------------------------------------------------

    def drop(self, doc_ids: Iterable[str]) -> None:
        """Forget cached profiles (memory control for huge corpora)."""
        for doc_id in doc_ids:
            for family in (self._word, self._char, self._freq,
                           self._structure):
                entry = family.pop(doc_id, None)
                if entry is None:
                    continue
                if isinstance(entry, ngrams.CodeCounts):
                    self._grow(-(entry.codes.nbytes + entry.counts.nbytes))
                else:
                    self._grow(-entry.nbytes)
            for key in [k for k in self._activity if k[0] == doc_id]:
                self._grow(-self._activity.pop(key).nbytes)

    def clear(self) -> None:
        """Drop every cached profile (the vocabulary is kept)."""
        self._word.clear()
        self._char.clear()
        self._freq.clear()
        self._activity.clear()
        self._structure.clear()
        self._bytes = 0
        _BYTES.set(0)
