"""Sublinear stage-1 scoring: pruned inverted-index candidate search.

:func:`~repro.perf.blocked.blocked_top_k` is exact-but-dense — every
query is scored against every corpus row, so stage 1 stays linear in
the known side no matter how selective the top-k actually is.  At
100k+ known aliases (the internet-scale regime the reduction stage
exists for) most of that work is provably wasted: the Tf-Idf features
are sparse and non-negative, so a handful of high-weight terms decides
the top-k long before the long, low-weight posting lists are touched.

:class:`InvertedIndex` exploits that with term-at-a-time max-score
pruning (the TAAT flavor of Turtle & Flood's MaxScore), batched
across queries:

1. posting lists are permuted once, at build time, into a global
   *impact order* — descending per-term max posting weight — and the
   scan walks that order in stages of roughly geometric posting
   mass.  Because the order is shared by every query, one stage is a
   contiguous column range for the whole batch, and the stage's
   partial scores fold into the accumulator as a *single* C-speed
   sparse matrix product over all still-active queries (a per-query
   term order would be slightly tighter per query, but forfeits the
   batching that makes the scan cheaper per entry than a dense
   pass);
2. a dense accumulator tracks the running partial score of every
   corpus row per query, and ``theta`` — the k-th best partial —
   only grows as stages are applied;
3. each step knows a *residual* — an upper bound on what the
   still-unprocessed terms can add to any single row.  Two bounds are
   maintained and the tighter wins: the classic MaxScore sum of
   per-term caps, and the Cauchy-Schwarz bound ``(L2 norm of the
   remaining query weights) x (max corpus row norm)``, which decays
   much faster on dense-ish cosine queries where the cap sum wildly
   overshoots any reachable score;
4. once the residual falls below ``theta`` (minus a float-safety
   margin), no untouched row can reach the top-k, and of the touched
   candidates only the *band* whose partial score is within
   ``residual`` of ``theta`` can still displace anything — so the
   scan may **stop** and exactly re-score just the band, never
   reading the remaining posting lists (the long, low-weight tail of
   a large corpus);
5. stopping at the *first* legal moment is a trap, though: there
   ``residual ~ theta`` and the band is nearly the whole candidate
   pool.  The exit therefore also requires the *benefit* test — the
   estimated re-score cost (band size x mean row nnz) must undercut
   the posting mass still unscanned.  Until it does, scanning
   continues: every further term raises ``theta``, shrinks the
   residual, and tightens the band.  On data with no prunable
   structure the scan simply runs to completion and degrades to a
   dense-equivalent pass (plus a vanishing final band), instead of
   re-scoring everything twice.

**Exactness.**  The pruning decision uses the accumulated partial
scores, but the *returned* scores never do: the surviving band is
re-scored with the same sparse dot product the dense path uses
(identical summation order — scipy's CSR matmul accumulates along the
query row's stored term order), so indices *and* values are
bit-identical to ``blocked_top_k``, tie order included (ties break by
ascending corpus index; untouched rows score exactly 0.0 and fill in
ascending order when the candidate pool runs short).  ``_EPS`` (1e-9,
vs. accumulated float64 error of at most ~1e-12 over the unit-bounded
cosine scores) makes every cut *conservative*: a borderline row is
kept and re-scored rather than trusted to a rounded bound.  At the
early exit, ``theta`` guarantees k candidates whose exact score is at
least ``theta - _EPS``; an untouched row totals at most
``residual < theta - 2 * _EPS``, and a candidate outside the band at
most ``partial + residual < theta - 2 * _EPS``, so neither can reach
the k-th best exact score even through worst-case rounding.  The
equivalence is property-tested in ``tests/perf/test_invindex.py``.

:class:`ShardedIndex` splits the corpus into contiguous row
partitions, each with its own pruned index, scored independently
(serially, or fanned over a
:class:`~repro.perf.parallel.ParallelExecutor`) and exactly merged
with the same stable ``(-score, index)`` fold the blocked path uses —
shard results arrive in ascending row order, so the stable sort
preserves the global tie order.

Telemetry: ``invindex_postings_visited_total`` (posting entries
actually multiply-accumulated, including the exact re-score),
``invindex_postings_dense_total`` (entries a dense pass would score
for the same queries — the denominator of the pruning win),
``invindex_candidates_pruned_total`` (corpus rows never exactly
scored — untouched rows plus candidates cut from the band) and
``invindex_early_exit_total`` (queries whose scan hit the upper-bound
exit), plus one ``invindex.shard`` span per partition scored.

The shard count comes from the argument, then the ``REPRO_SHARDS``
environment variable, then 1.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.core.similarity import top_k
from repro.errors import ConfigurationError
from repro.obs.metrics import counter
from repro.obs.spans import span

__all__ = ["InvertedIndex", "ShardedIndex", "resolve_shards",
           "SHARDS_ENV", "DEFAULT_SHARDS"]

#: Environment variable overriding the default shard count.
SHARDS_ENV = "REPRO_SHARDS"

#: Index partitions when nothing else is configured.
DEFAULT_SHARDS = 1

#: Safety margin for the pruning and re-score band decisions.  Partial
#: scores are float64 sums of unit-bounded non-negative products, so
#: their accumulated rounding error is bounded far below this; pruning
#: strictly *more* conservatively than the error bound is what keeps
#: the fast path bit-identical to the dense one.
_EPS = 1e-9

#: Posting entries multiply-accumulated (scan + exact re-score).
_VISITED = counter("invindex_postings_visited_total")
#: Posting entries a dense pass would have scored for the same queries.
_DENSE = counter("invindex_postings_dense_total")
#: Corpus rows never exactly scored thanks to the upper-bound exit.
_PRUNED = counter("invindex_candidates_pruned_total")
#: Queries whose term scan hit the upper-bound early exit.
_EARLY_EXIT = counter("invindex_early_exit_total")


def resolve_shards(shards: Optional[int] = None) -> int:
    """Resolve a shard count: argument > ``REPRO_SHARDS`` > 1."""
    if shards is None:
        raw = os.environ.get(SHARDS_ENV)
        if raw is None or not raw.strip():
            return DEFAULT_SHARDS
        try:
            shards = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"{SHARDS_ENV} must be an integer, got {raw!r}"
            ) from None
    shards = int(shards)
    if shards < 1:
        raise ConfigurationError(
            f"shards must be a positive integer, got {shards}")
    return shards


class InvertedIndex:
    """Term-pruned exact top-k over one contiguous corpus slice.

    Parameters
    ----------
    corpus:
        L2-normalized non-negative sparse matrix, one row per known
        document (the whole corpus, not the slice — slicing is by
        ``start``/``end`` so shards share the parent matrix).
    start / end:
        Row range this index covers (defaults to the full corpus).
    postings:
        Optional prebuilt ``(data, rows, indptr, max_weight)`` posting
        arrays (e.g. mmap-backed snapshot sections) — skips the CSC
        conversion.  ``rows`` are local to the slice; the CSC arrays
        are in *impact column order* (the deterministic stable argsort
        of descending ``max_weight``, which stays in original term
        order) — i.e. exactly what :attr:`postings` returned when the
        snapshot was written.
    """

    #: Early-exit benefit ratio: exit once the estimated band
    #: re-score cost is below this multiple of the unscanned posting
    #: mass.  The batched stage scan runs ~2x *cheaper* per entry than
    #: the band re-score (one amortized sparse matmat vs per-query row
    #: gathers), so values below 1.0 optimize wall time; exactness
    #: never depends on it.
    benefit_ratio = 0.5

    def __init__(self, corpus: sparse.spmatrix, start: int = 0,
                 end: Optional[int] = None,
                 postings: Optional[Tuple[np.ndarray, np.ndarray,
                                          np.ndarray, np.ndarray]] = None,
                 ) -> None:
        self._corpus = sparse.csr_matrix(corpus, dtype=np.float64)
        self.start = int(start)
        self.end = self._corpus.shape[0] if end is None else int(end)
        if not 0 <= self.start <= self.end <= self._corpus.shape[0]:
            raise ConfigurationError(
                f"invalid index slice [{self.start}, {self.end}) over "
                f"{self._corpus.shape[0]} corpus rows")
        self.n_docs = self.end - self.start
        self.n_terms = self._corpus.shape[1]
        if postings is not None:
            self._data, self._rows, self._indptr, self._maxw = postings
        else:
            csc = sparse.csc_matrix(
                self._corpus[self.start:self.end], dtype=np.float64)
            self._data = csc.data
            self._rows = csc.indices
            self._indptr = csc.indptr
            self._maxw = np.zeros(self.n_terms, dtype=np.float64)
            lengths = np.diff(self._indptr)
            nonempty = np.flatnonzero(lengths > 0)
            if nonempty.size:
                # reduceat segments run from each nonempty column's
                # start to the next one's; interleaved empty columns
                # contribute no entries, so each segment is exactly
                # one column's postings.
                self._maxw[nonempty] = np.maximum.reduceat(
                    self._data, self._indptr[nonempty])
        if self._data.size and float(self._data.min()) < 0.0:
            raise ConfigurationError(
                "inverted-index pruning requires non-negative feature "
                "values (max-weight upper bounds would not hold)")
        # Largest corpus-row L2 norm in the slice: the Cauchy-Schwarz
        # residual bound is ||q_rest|| * this (1.0 for the normalized
        # Tf-Idf matrices the linker feeds in).
        if self._data.size:
            sq = np.bincount(self._rows, weights=self._data * self._data,
                             minlength=self.n_docs)
            self._norm_max = float(np.sqrt(sq.max()))
        else:
            self._norm_max = 0.0
        # Global impact order: posting columns permuted by descending
        # per-term max weight, shared by every query.  One fixed order
        # means a scan stage is a *contiguous* column range for all
        # queries at once, so each stage collapses into a single
        # batched sparse product instead of per-query column gathers.
        # The permutation is a deterministic function of max_weight
        # (stable argsort), so snapshot round-trips rebuild it
        # identically from the saved arrays.
        self._go = np.argsort(-self._maxw, kind="stable")
        if postings is None:
            csc = sparse.csc_matrix(
                (self._data, self._rows, self._indptr),
                shape=(self.n_docs, self.n_terms), copy=False)
            csc = csc[:, self._go]
            csc.sort_indices()
            self._data = csc.data
            self._rows = csc.indices
            self._indptr = csc.indptr
        self._maxw_imp = self._maxw[self._go]
        self._plen_imp = np.diff(self._indptr).astype(np.int64)
        # Zero-copy CSC wrapper over the (impact-ordered) posting
        # arrays: scan stages slice contiguous column ranges out of it
        # (the arrays may be read-only mmap views; slicing only reads).
        self._csc = sparse.csc_matrix(
            (self._data, self._rows, self._indptr),
            shape=(self.n_docs, self.n_terms), copy=False)
        # Stage boundaries: cut points in the impact order at roughly
        # geometric fractions of the total posting mass.  Early stages
        # are cheap (rare, high-bound terms) and give the exit test
        # frequent chances while theta is still climbing; late stages
        # are wide because by then either the scan has exited or the
        # data is unprunable and fewer checks waste less.
        cum = np.cumsum(self._plen_imp, dtype=np.float64)
        total = float(cum[-1]) if cum.size else 0.0
        if total <= 0.0:
            self._stages = [(0, self.n_terms)]
        else:
            fracs = (0.005, 0.01, 0.02, 0.035, 0.055, 0.08, 0.11,
                     0.15, 0.2, 0.26, 0.33, 0.41, 0.5, 0.6, 0.71,
                     0.84, 1.0)
            # Merge cut points until every stage carries at least a
            # few accumulator widths of posting mass: each stage pays
            # O(n_docs) accumulator/bookkeeping traffic per active
            # query, so on low-mass (unprunable) corpora a full
            # ladder would cost more in overhead than in scanning.
            floor = 8.0 * self.n_docs
            ends = []
            last_mass = 0.0
            for f in fracs:
                end = min(int(np.searchsorted(cum, f * total)) + 1,
                          self.n_terms)
                if ends and end <= ends[-1]:
                    continue
                mass = float(cum[end - 1])
                if ends and f < 1.0 and mass - last_mass < floor:
                    continue
                ends.append(end)
                last_mass = mass
            if ends[-1] != self.n_terms:
                ends.append(self.n_terms)
            self._stages = list(zip([0] + ends[:-1], ends))
        # Per-row residual norms, one row per stage boundary: the L2
        # mass each corpus row still has in the columns *after* the
        # boundary.  The scanned column set is query-independent (the
        # global impact order), so these are static per index and give
        # the band test a per-row Cauchy-Schwarz bound — a row that
        # already revealed most of its mass can barely move, no matter
        # what the worst row in the slice could still do.
        if self._data.size:
            row_sq = np.bincount(self._rows,
                                 weights=self._data * self._data,
                                 minlength=self.n_docs)
        else:
            row_sq = np.zeros(self.n_docs, dtype=np.float64)
        self._rest_norm = np.empty((len(self._stages), self.n_docs),
                                   dtype=np.float64)
        self._restmax = np.empty(len(self._stages), dtype=np.float64)
        cumsq = np.zeros(self.n_docs, dtype=np.float64)
        for si, (p0, p1) in enumerate(self._stages):
            lo, hi = self._indptr[p0], self._indptr[p1]
            if hi > lo:
                d = self._data[lo:hi]
                cumsq += np.bincount(self._rows[lo:hi], weights=d * d,
                                     minlength=self.n_docs)
            rest = np.sqrt(np.clip(row_sq - cumsq, 0.0, None))
            self._rest_norm[si] = rest
            self._restmax[si] = float(rest.max()) if rest.size else 0.0
        # Dense query scratch row for the exact band re-score, plus a
        # 0/1 indicator of the query's terms (used to count the
        # re-score's restricted posting visits with one cheap
        # indicator matvec) and a reusable all-ones data buffer.
        self._qscratch = np.zeros(self.n_terms, dtype=np.float64)
        self._qind = np.zeros(self.n_terms, dtype=np.float64)
        self._ones = np.ones(0, dtype=np.float64)

    @property
    def postings(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                np.ndarray]:
        """``(data, rows, indptr, max_weight)`` — snapshot payload.

        The CSC arrays are in impact column order; ``max_weight`` is
        in original term order, and the permutation is rebuilt from it
        deterministically on load.
        """
        return self._data, self._rows, self._indptr, self._maxw

    def top_k(self, queries: sparse.spmatrix, k: int,
              ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-query top-*k* slice rows by cosine, term-pruned.

        Returns ``(indices, values)`` of shape
        ``(n_queries, min(k, n_docs))`` — indices are *local* to the
        slice; :class:`ShardedIndex` re-bases them.  Output is
        bit-identical to ``top_k(cosine_similarity(queries, slice), k)``.
        """
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        q = sparse.csr_matrix(queries, dtype=np.float64)
        if q.shape[1] != self.n_terms:
            raise ConfigurationError(
                f"dimension mismatch: queries have {q.shape[1]} "
                f"features, index has {self.n_terms}")
        kk = min(k, self.n_docs)
        n_queries = q.shape[0]
        indices = np.zeros((n_queries, kk), dtype=np.int64)
        values = np.zeros((n_queries, kk), dtype=np.float64)
        # One column permutation per call puts the queries in the
        # index's impact order, so every scan stage is a contiguous
        # column slice on both sides of the batched partial product.
        q_imp = q[:, self._go]
        q_imp.sort_indices()
        # The dense (batch x n_docs) accumulator caps the query batch:
        # ~256 MB of partial scores per batch.
        batch = max(1, int(32_000_000 // max(self.n_docs, 1)))
        for b0 in range(0, n_queries, batch):
            b1 = min(b0 + batch, n_queries)
            self._topk_batch(q, q_imp, b0, b1, kk, indices, values)
        return indices, values

    # -- one query batch ----------------------------------------------------

    def _topk_batch(self, q: sparse.csr_matrix, q_imp: sparse.csr_matrix,
                    b0: int, b1: int, kk: int, indices: np.ndarray,
                    values: np.ndarray) -> None:
        nb = b1 - b0
        n_docs = self.n_docs
        plen = self._plen_imp
        mean_nnz = float(self._data.size) / max(n_docs, 1)
        # Per-query pruning state, in impact order: the ascending
        # column ranks of the query's live terms, and suffix sums over
        # them.  ``caps_suf[c]`` bounds what the terms still unscanned
        # after ``c`` processed can add to any single row (MaxScore cap
        # sum); ``qsq_suf[c]`` is the squared L2 mass of those weights
        # for the Cauchy-Schwarz bound; ``un_suf[c]`` is their posting
        # mass — the cost of *not* exiting, for the benefit test.
        ranks: List[np.ndarray] = []
        caps_suf: List[Optional[np.ndarray]] = []
        qsq_suf: List[Optional[np.ndarray]] = []
        un_suf: List[Optional[np.ndarray]] = []
        alive = np.zeros(nb, dtype=bool)
        dense_total = 0
        for j in range(nb):
            lo, hi = q_imp.indptr[b0 + j], q_imp.indptr[b0 + j + 1]
            r = q_imp.indices[lo:hi].astype(np.int64)
            w = q_imp.data[lo:hi]
            dense_total += int(plen[r].sum())
            bnd = w * self._maxw_imp[r]
            live = bnd > 0.0
            r, w, bnd = r[live], w[live], bnd[live]
            ranks.append(r)
            if r.size == 0:
                # No query term appears anywhere in the slice: every
                # row scores exactly 0.0, like the dense path, which
                # fills ties in ascending index order.
                _PRUNED.inc(n_docs)
                indices[b0 + j] = np.arange(kk, dtype=np.int64)
                values[b0 + j] = 0.0
                caps_suf.append(None)
                qsq_suf.append(None)
                un_suf.append(None)
                continue
            alive[j] = True
            caps_suf.append(np.concatenate(
                (np.cumsum(bnd[::-1])[::-1], [0.0])))
            qsq_suf.append(np.concatenate(
                (np.cumsum((w * w)[::-1])[::-1], [0.0])))
            un_suf.append(np.concatenate(
                (np.cumsum(plen[r][::-1].astype(np.float64))[::-1],
                 [0.0])))
        _DENSE.inc(dense_total)
        if not np.any(alive):
            return
        acc = np.zeros((nb, n_docs), dtype=np.float64)
        scanned = 0
        for si, (p0, p1) in enumerate(self._stages):
            act = np.flatnonzero(alive)
            if act.size == 0:
                break
            qs = q_imp[b0 + act][:, p0:p1]
            if qs.nnz:
                # csc[:, p0:p1].T is CSR over the same posting arrays
                # (a transpose of a CSC slice costs nothing), so the
                # whole stage is one C-speed CSR matmat across every
                # still-active query.
                part = qs @ self._csc[:, p0:p1].T
                if part.nnz * 5 < act.size * n_docs:
                    # Sparse stage: scatter-add only the touched
                    # (query, row) pairs instead of densifying the
                    # whole accumulator block.  The matmat output is
                    # canonical (each pair appears once), so a fancy
                    # in-place add is exact.
                    row_rep = np.repeat(act.astype(np.int64),
                                        np.diff(part.indptr))
                    flat = row_rep * n_docs + part.indices
                    acc.ravel()[flat] += part.data
                else:
                    acc[act] += part.toarray()
                scanned += int(plen[p0:p1][qs.indices].sum())
            # Residual after this stage, per active query: terms with
            # rank >= p1 are exactly the unscanned ones.  ``rem`` is
            # the query's *global* residual — what the unscanned terms
            # can add to the luckiest row in the slice.
            caps_c = np.empty(act.size, dtype=np.float64)
            qrest_c = np.empty(act.size, dtype=np.float64)
            cuts = np.empty(act.size, dtype=np.int64)
            for jj, j in enumerate(act):
                c = int(np.searchsorted(ranks[j], p1, side="left"))
                cuts[jj] = c
                caps_c[jj] = caps_suf[j][c]
                qrest_c[jj] = float(np.sqrt(qsq_suf[j][c]))
            rems = np.minimum(caps_c, qrest_c * self._restmax[si])
            # Cheap pre-filter: theta can't exceed the row max, so a
            # global residual at or above rowmax means the band would
            # span essentially every unscanned-similar row — skip the
            # partition (a skipped check only delays the exit; it
            # never affects exactness).
            rowmax = acc[act].max(axis=1)
            maybe = np.flatnonzero(rems < rowmax - 2.0 * _EPS)
            if maybe.size == 0:
                continue
            # theta over the dense accumulator *is* the k-th best
            # partial: untouched rows hold 0.0, and the band keeps
            # at least the k rows whose partial reaches theta.
            th = np.partition(acc[act[maybe]], n_docs - kk,
                              axis=1)[:, n_docs - kk]
            rest = self._rest_norm[si]
            for mi, jj in enumerate(maybe):
                j = int(act[jj])
                theta = float(th[mi])
                row = acc[j]
                # Per-row upper bound on the exact score: the partial
                # plus what the unscanned terms can still add to THIS
                # row — min of the MaxScore cap sum and Cauchy-Schwarz
                # against the row's own unscanned L2 mass.  Rows that
                # already revealed most of their mass get a far
                # tighter bound than the global residual allows.
                ub = row + np.minimum(caps_c[jj], qrest_c[jj] * rest)
                # Benefit: re-scoring the band must undercut scanning
                # the remaining posting lists, or the exit would *add*
                # work (at the first legal exit the band is nearly
                # the whole candidate pool).
                n_band = int(np.count_nonzero(ub >= theta - 4.0 * _EPS))
                if (n_band * mean_nnz
                        > self.benefit_ratio * un_suf[j][cuts[jj]]):
                    continue
                _EARLY_EXIT.inc()
                # Keep every row that could still reach the k-th
                # best: ub >= theta, margin-widened (exactness: a row
                # outside the band has exact <= partial + residual
                # < theta - 4*_EPS + float error, while the k-th best
                # exact is >= theta - _EPS — no crossover even through
                # worst-case rounding).  The k rows at or above theta
                # are always in the band, so it never runs short of
                # kk; flatnonzero returns ascending row order, which
                # the stable sort in the re-score needs for global
                # tie order.
                band = np.flatnonzero(ub >= theta - 4.0 * _EPS)
                idx, val = self._rescore_band(q, b0 + j, band,
                                              ub[band], kk)
                indices[b0 + j] = idx
                values[b0 + j] = val
                alive[j] = False
        _VISITED.inc(scanned)
        # Queries that never exited scanned every live term: their
        # partials equal the true scores up to float error, so the
        # same band argument applies with rem = 0 — unless theta is
        # too close to 0.0 to exclude the untouched rows, whose exact
        # 0.0 ties must fill in ascending index order.
        for j in np.flatnonzero(alive):
            row = acc[j]
            theta = float(np.partition(row, n_docs - kk)[n_docs - kk])
            if theta > 2.0 * _EPS:
                band = np.flatnonzero(row >= theta - 2.0 * _EPS)
                idx, val = self._rescore_band(q, b0 + j, band,
                                              row[band], kk)
            else:
                # Zero-score ties can reach the top-k: re-score every
                # touched row and rank through the same dense-row
                # top_k the blocked path uses, so ties (and the fill
                # when the pool runs short of k) order by ascending
                # index bit-identically.
                cand = np.flatnonzero(row > 0.0)
                _PRUNED.inc(n_docs - cand.size)
                idx, val = self._rescore_scatter(q, b0 + j, cand, kk)
            indices[b0 + j] = idx
            values[b0 + j] = val

    def _rescore_band(self, q: sparse.csr_matrix, row: int,
                      band: np.ndarray, ub: np.ndarray, kk: int,
                      ) -> Tuple[np.ndarray, np.ndarray]:
        """Exactly re-score the band under a *rising* exact threshold.

        The band's upper bounds were cut against the k-th best
        *partial* score — loose while much of the query is unscanned.
        Re-scoring in descending-``ub`` chunks replaces that cut with
        the k-th best *exact* score seen so far, which only rises: as
        soon as k chunked rows are exact, every remaining row whose
        upper bound falls short of the exact threshold is dropped
        without ever being read (a dropped row's exact score is at
        most its ``ub < theta_exact - 2 * _EPS``, so it can neither
        enter the top-k nor tie the k-th place).  On prunable data the
        first chunk's scores sit far above the tail's bounds and the
        band collapses after one round; on flat data the loop just
        walks the whole band in geometrically growing chunks.

        Ties still order by ascending corpus row: the final fold is a
        stable ``(-score, row)`` lexsort, which equals the dense
        path's stable argsort on the full score row.
        """
        order = np.argsort(-ub, kind="stable")
        rows_sorted = band[order]
        ub_sorted = ub[order]
        got_rows: List[np.ndarray] = []
        got_vals: List[np.ndarray] = []
        got = 0
        pos = 0
        limit = rows_sorted.size
        csz = max(4 * kk, 64)
        while pos < limit:
            chunk = rows_sorted[pos:pos + csz]
            got_rows.append(chunk)
            got_vals.append(self._exact_band(q, row, chunk))
            got += chunk.size
            pos += csz
            if pos >= limit:
                break
            vals = (np.concatenate(got_vals) if len(got_vals) > 1
                    else got_vals[0])
            if got >= kk:
                theta_e = float(np.partition(vals, got - kk)[got - kk])
                # ub_sorted is descending: keep the prefix of the
                # remaining rows that can still reach theta_e.
                cut = int(np.searchsorted(
                    -ub_sorted[pos:limit], -(theta_e - 2.0 * _EPS),
                    side="right"))
                limit = pos + cut
            csz *= 4
        rows_all = (np.concatenate(got_rows) if len(got_rows) > 1
                    else got_rows[0])
        vals_all = (np.concatenate(got_vals) if len(got_vals) > 1
                    else got_vals[0])
        _PRUNED.inc(self.n_docs - rows_all.size)
        keep = np.lexsort((rows_all, -vals_all))[:kk]
        return rows_all[keep], vals_all[keep]

    def _rescore_scatter(self, q: sparse.csr_matrix, row: int,
                         cand: np.ndarray, kk: int,
                         ) -> Tuple[np.ndarray, np.ndarray]:
        """Re-score ``cand`` and rank through the dense-row top_k."""
        exact = self._exact_band(q, row, cand)
        scores_row = np.zeros((1, self.n_docs), dtype=np.float64)
        scores_row[0, cand] = exact
        idx, val = top_k(scores_row, kk)
        return idx[0].astype(np.int64), val[0]

    def _exact_band(self, q: sparse.csr_matrix, row: int,
                    local_rows: np.ndarray) -> np.ndarray:
        lo, hi = q.indptr[row], q.indptr[row + 1]
        terms = q.indices[lo:hi]
        scratch = self._qscratch
        scratch[terms] = q.data[lo:hi]
        self._qind[terms] = 1.0
        try:
            exact, nnz = self._exact_scores(scratch, local_rows)
        finally:
            scratch[terms] = 0.0
            self._qind[terms] = 0.0
        _VISITED.inc(nnz)
        return exact

    def _exact_scores(self, q_dense: np.ndarray,
                      local_rows: np.ndarray) -> Tuple[np.ndarray, int]:
        """Exact cosine of the query against slice rows, dense-identical.

        ``sub @ q_dense`` accumulates each row's score along the
        corpus row's stored (ascending) term order; entries outside
        the query multiply exactly ``0.0``, and adding ``+0.0`` never
        changes an IEEE float, so the sequence of value-changing
        additions — the shared terms, in ascending term order — is
        the same as in the full sparse product the dense path runs.
        The values are therefore bit-equal to the corresponding
        entries of ``cosine_similarity(queries, corpus)``.
        """
        if local_rows.size == 0:
            return np.zeros(0, dtype=np.float64), 0
        sub = self._corpus[self.start + local_rows]
        # Only entries whose term the query actually carries are
        # postings of this query — the rest multiply exactly 0.0 —
        # so that is what the visited counter charges.  Counting them
        # is itself hot, so it rides the same C matvec kernel as the
        # scores: an all-ones copy of the submatrix against the 0/1
        # query-term indicator sums exactly one per restricted entry.
        if self._ones.size < sub.nnz:
            self._ones = np.ones(sub.nnz, dtype=np.float64)
        ind = sparse.csr_matrix(
            (self._ones[:sub.nnz], sub.indices, sub.indptr),
            shape=sub.shape, copy=False)
        visited = int(round(float(ind.dot(self._qind).sum())))
        return sub.dot(q_dense), visited


class ShardedIndex:
    """K contiguous :class:`InvertedIndex` partitions, exactly merged.

    Parameters
    ----------
    corpus:
        L2-normalized non-negative sparse matrix (shared by all
        shards — no per-shard row copies).
    shards:
        Partition count; ``None`` resolves through ``REPRO_SHARDS``
        and defaults to 1.  Clamped to the corpus row count.
    """

    def __init__(self, corpus: sparse.spmatrix,
                 shards: Optional[int] = None) -> None:
        corpus = sparse.csr_matrix(corpus, dtype=np.float64)
        n_docs = corpus.shape[0]
        if n_docs < 1:
            raise ConfigurationError("corpus must not be empty")
        n_shards = min(resolve_shards(shards), n_docs)
        bounds = [n_docs * i // n_shards for i in range(n_shards + 1)]
        self.n_docs = n_docs
        self.bounds = bounds
        self._shards: List[InvertedIndex] = [
            InvertedIndex(corpus, start=bounds[i], end=bounds[i + 1])
            for i in range(n_shards)
        ]

    @classmethod
    def from_postings(cls, corpus: sparse.spmatrix,
                      bounds: Sequence[int],
                      postings: Sequence[Tuple[np.ndarray, np.ndarray,
                                               np.ndarray, np.ndarray]],
                      ) -> "ShardedIndex":
        """Rebuild from saved posting arrays (snapshot load path).

        The arrays may be read-only mmap-backed views; nothing here
        (or in the query path) writes to them, so forked restage
        workers share the pages with the parent for free.
        """
        corpus = sparse.csr_matrix(corpus, dtype=np.float64)
        if len(bounds) != len(postings) + 1:
            raise ConfigurationError(
                f"shard bounds/postings mismatch: {len(bounds)} bounds "
                f"for {len(postings)} shards")
        index = cls.__new__(cls)
        index.n_docs = corpus.shape[0]
        index.bounds = [int(b) for b in bounds]
        index._shards = [
            InvertedIndex(corpus, start=index.bounds[i],
                          end=index.bounds[i + 1], postings=postings[i])
            for i in range(len(postings))
        ]
        return index

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def _score_shard(self, item: Tuple[int, sparse.csr_matrix, int],
                     ) -> Tuple[np.ndarray, np.ndarray]:
        shard_id, queries, k = item
        shard = self._shards[shard_id]
        with span("invindex.shard", shard=shard_id, rows=shard.n_docs,
                  n_queries=queries.shape[0]):
            idx, val = shard.top_k(queries, k)
        return idx + shard.start, val

    def top_k(self, queries: sparse.spmatrix, k: int,
              executor: Optional[object] = None,
              ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-query top-*k* corpus rows, scored shard by shard.

        Bit-identical to ``blocked_top_k(queries, corpus, k)``: each
        shard's exact local top-k arrives in ascending row order, so
        the stable ``(-score, index)`` fold preserves the global tie
        order (the :func:`~repro.perf.blocked.blocked_top_k` argument).

        *executor* optionally fans the shards over a
        :class:`~repro.perf.parallel.ParallelExecutor` (the index
        travels to workers by fork inheritance, results by pickle).
        """
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        q = sparse.csr_matrix(queries, dtype=np.float64)
        items = [(i, q, k) for i in range(len(self._shards))]
        if executor is not None and len(items) > 1:
            parts = executor.map(self._score_shard, items)
        else:
            parts = [self._score_shard(item) for item in items]
        if len(parts) == 1:
            return parts[0]
        merged_idx = np.concatenate([p[0] for p in parts], axis=1)
        merged_val = np.concatenate([p[1] for p in parts], axis=1)
        keep, best_val = top_k(merged_val,
                               min(k, merged_val.shape[1]))
        best_idx = np.take_along_axis(merged_idx, keep, axis=1)
        return best_idx, best_val
