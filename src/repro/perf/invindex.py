"""Sublinear stage-1 scoring: pruned inverted-index candidate search.

:func:`~repro.perf.blocked.blocked_top_k` is exact-but-dense — every
query is scored against every corpus row, so stage 1 stays linear in
the known side no matter how selective the top-k actually is.  At
100k+ known aliases (the internet-scale regime the reduction stage
exists for) most of that work is provably wasted: the Tf-Idf features
are sparse and non-negative, so a handful of high-weight terms decides
the top-k long before the long, low-weight posting lists are touched.

:class:`InvertedIndex` exploits that with term-at-a-time max-score
pruning (the TAAT flavor of Turtle & Flood's MaxScore), batched
across queries:

1. posting lists are permuted once, at build time, into a global
   *impact order* — descending per-term max posting weight — and the
   scan walks that order in stages of roughly geometric posting
   mass.  Because the order is shared by every query, one stage is a
   contiguous column range for the whole batch, and the stage's
   partial scores fold into the accumulator as a *single* C-speed
   sparse matrix product over all still-active queries (a per-query
   term order would be slightly tighter per query, but forfeits the
   batching that makes the scan cheaper per entry than a dense
   pass);
2. a dense accumulator tracks the running partial score of every
   corpus row per query, and ``theta`` — the k-th best partial —
   only grows as stages are applied;
3. each step knows a *residual* — an upper bound on what the
   still-unprocessed terms can add to any single row.  Two bounds are
   maintained and the tighter wins: the classic MaxScore sum of
   per-term caps, and the Cauchy-Schwarz bound ``(L2 norm of the
   remaining query weights) x (max corpus row norm)``, which decays
   much faster on dense-ish cosine queries where the cap sum wildly
   overshoots any reachable score;
4. once the residual falls below ``theta`` (minus a float-safety
   margin), no untouched row can reach the top-k, and of the touched
   candidates only the *band* whose partial score is within
   ``residual`` of ``theta`` can still displace anything — so the
   scan may **stop** and exactly re-score just the band, never
   reading the remaining posting lists (the long, low-weight tail of
   a large corpus);
5. stopping at the *first* legal moment is a trap, though: there
   ``residual ~ theta`` and the band is nearly the whole candidate
   pool.  The exit therefore also requires the *benefit* test — the
   estimated re-score cost (band size x mean row nnz) must undercut
   the posting mass still unscanned.  Until it does, scanning
   continues: every further term raises ``theta``, shrinks the
   residual, and tightens the band.  On data with no prunable
   structure the scan simply runs to completion and degrades to a
   dense-equivalent pass (plus a vanishing final band), instead of
   re-scoring everything twice.

**Exactness.**  The pruning decision uses the accumulated partial
scores, but the *returned* scores never do: the surviving band is
re-scored with the same sparse dot product the dense path uses
(identical summation order — scipy's CSR matmul accumulates along the
query row's stored term order), so indices *and* values are
bit-identical to ``blocked_top_k``, tie order included (ties break by
ascending corpus index; untouched rows score exactly 0.0 and fill in
ascending order when the candidate pool runs short).  ``_EPS`` (1e-9,
vs. accumulated float64 error of at most ~1e-12 over the unit-bounded
cosine scores) makes every cut *conservative*: a borderline row is
kept and re-scored rather than trusted to a rounded bound.  At the
early exit, ``theta`` guarantees k candidates whose exact score is at
least ``theta - _EPS``; an untouched row totals at most
``residual < theta - 2 * _EPS``, and a candidate outside the band at
most ``partial + residual < theta - 2 * _EPS``, so neither can reach
the k-th best exact score even through worst-case rounding.  The
equivalence is property-tested in ``tests/perf/test_invindex.py``.

:class:`ShardedIndex` splits the corpus into contiguous row
partitions, each with its own pruned index, scored independently
(serially, or fanned over a
:class:`~repro.perf.parallel.ParallelExecutor`) and exactly merged
with the same stable ``(-score, index)`` fold the blocked path uses —
shard results arrive in ascending row order, so the stable sort
preserves the global tie order.

**Delta segment.**  Each :class:`InvertedIndex` carries an
append-only *delta segment* after its impact-ordered main segment:
:meth:`InvertedIndex.extend` registers freshly appended corpus rows
without touching the built posting arrays.  Delta rows are scored
*exactly* (the same stored-order sparse dot the band re-score uses)
for every query and merged with the main segment's top-k through the
stable ``(-score, index)`` lexsort — delta rows carry strictly higher
indices than every main row, so the merge preserves the dense tie
order by the same argument the shard merge rests on.  Once the delta
grows past :attr:`InvertedIndex.delta_ratio` of the main segment the
index compacts (a full rebuild of the slice), amortizing rebuild cost
over many appends; :meth:`compact` forces it.  This is what lets
``IncrementalLinker.add_known`` append to one shard instead of
rebuilding every partition.

**Parallel build.**  ``ShardedIndex(..., jobs=N)`` constructs the
per-shard impact-ordered postings in parallel over a
``ParallelExecutor.map_shared`` fork pool (the corpus travels by fork
inheritance, the posting arrays come back by pickle) — the arrays are
a deterministic function of the corpus slice, so the parallel build
is bit-identical to the serial one.  Under the available-core gate
the build silently degrades to the serial loop.

**Memory diet.**  ``exact=False`` stores the scanned posting data as
float32 (and the CSC index arrays as int32 — scipy requires *signed*
index dtypes, so the "uint32" diet lands as int32), roughly halving
the resident posting mass and the snapshot sections, which
self-describe their dtype and round-trip mmap-friendly.  Outputs stay
bit-identical: every pruning bound is computed from the float64 data
*before* the downcast (so it still upper-bounds the exact scores),
the safety margin widens to cover float32 rounding in the partial
accumulator, and the returned scores always come from the exact
float64 re-score against the corpus matrix.

**Strategy choice.**  :func:`choose_stage1` is the measured cost
model behind ``stage1="auto"``: from cheap O(nnz) corpus statistics —
row count, density, per-term max-weight skew, and k — it predicts
whether the pruned scan can beat the dense/blocked pass and returns
``"dense"``, ``"blocked"`` or ``"invindex"`` (see the function
docstring for the calibrated decision boundary).

Telemetry: ``invindex_postings_visited_total`` (posting entries
actually multiply-accumulated, including the exact re-score and the
delta segment), ``invindex_postings_dense_total`` (entries a dense
pass would score for the same queries — the denominator of the
pruning win), ``invindex_candidates_pruned_total`` (corpus rows never
exactly scored — untouched rows plus candidates cut from the band),
``invindex_early_exit_total`` (queries whose scan hit the upper-bound
exit) and ``invindex_fallback_total`` (calls whose scan visited more
postings than a dense pass would have — the pathological
visited-fraction > 1.0 case ``stage1="auto"`` reacts to by falling
back to blocked), plus one ``invindex.shard`` span per partition
scored.

The shard count comes from the argument, then the ``REPRO_SHARDS``
environment variable, then 1.
"""

from __future__ import annotations

import itertools
import os
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.core.similarity import top_k
from repro.errors import ConfigurationError
from repro.obs.metrics import counter
from repro.obs.spans import span

__all__ = ["InvertedIndex", "ShardedIndex", "choose_stage1",
           "resolve_shards", "SHARDS_ENV", "DEFAULT_SHARDS"]

#: Environment variable overriding the default shard count.
SHARDS_ENV = "REPRO_SHARDS"

#: Index partitions when nothing else is configured.
DEFAULT_SHARDS = 1

#: Safety margin for the pruning and re-score band decisions.  Partial
#: scores are float64 sums of unit-bounded non-negative products, so
#: their accumulated rounding error is bounded far below this; pruning
#: strictly *more* conservatively than the error bound is what keeps
#: the fast path bit-identical to the dense one.
_EPS = 1e-9

#: Safety margin when the posting data is stored float32
#: (``exact=False``): the partial accumulator then sums products of
#: values rounded to 24-bit mantissas, so its error against the exact
#: float64 partial is bounded by ~2^-24 of the unit-bounded row mass —
#: orders of magnitude under this margin.  The pruning *bounds*
#: (max-weight caps, residual norms) are computed from the float64
#: data before the downcast, so they upper-bound the exact scores
#: unconditionally; the margin only has to cover the accumulator.
_EPS32 = 1e-6

#: Monotonic version tag for parallel-build fork pools: every build
#: gets a fresh pool key, so a pool never serves a corpus other than
#: the one it was forked with (``id()`` reuse after gc cannot alias).
_BUILD_SEQ = itertools.count(1)

#: Posting entries multiply-accumulated (scan + exact re-score).
_VISITED = counter("invindex_postings_visited_total")
#: Posting entries a dense pass would have scored for the same queries.
_DENSE = counter("invindex_postings_dense_total")
#: Corpus rows never exactly scored thanks to the upper-bound exit.
_PRUNED = counter("invindex_candidates_pruned_total")
#: Queries whose term scan hit the upper-bound early exit.
_EARLY_EXIT = counter("invindex_early_exit_total")
#: Calls whose scan visited more postings than a dense pass would have
#: (visited fraction > 1.0) — the signal ``stage1="auto"`` uses to
#: fall back to blocked for the remaining queries.
_FALLBACK = counter("invindex_fallback_total")


def _as_float64_csr(matrix: sparse.spmatrix) -> sparse.csr_matrix:
    """Canonical float64 CSR, without copying when already canonical.

    ``sparse.csr_matrix(m, dtype=...)`` copies unconditionally; the
    extend path runs on every incremental add and must not duplicate a
    million-row corpus just to assert its dtype.
    """
    if sparse.isspmatrix_csr(matrix) and matrix.dtype == np.float64:
        return matrix
    return sparse.csr_matrix(matrix, dtype=np.float64)


def resolve_shards(shards: Optional[int] = None) -> int:
    """Resolve a shard count: argument > ``REPRO_SHARDS`` > 1."""
    if shards is None:
        raw = os.environ.get(SHARDS_ENV)
        if raw is None or not raw.strip():
            return DEFAULT_SHARDS
        try:
            shards = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"{SHARDS_ENV} must be an integer, got {raw!r}"
            ) from None
    shards = int(shards)
    if shards < 1:
        raise ConfigurationError(
            f"shards must be a positive integer, got {shards}")
    return shards


#: Below this corpus size the one-shot dense cosine is the cheapest
#: stage 1 (the whole similarity block fits comfortably in cache and
#: neither blocking nor pruning has anything to amortize).
AUTO_DENSE_MAX_DOCS = 2048

#: Below this corpus size the pruned scan never pays for its
#: accumulator and bound bookkeeping, whatever the weight skew —
#: measured: 0.34x vs blocked at 300 known, 0.56x at 1200, break-even
#: in the mid-thousands, 1.2x from 20k up (BENCH_linking.json).
AUTO_INVINDEX_MIN_DOCS = 8192

#: Maximum posting-mass share of the cap-heavy head (the impact-order
#: prefix carrying half the summed max-weight * posting-length bound
#: mass) for the scan to be worth it.  Skewed Tf-Idf corpora measure
#: ~0.05-0.15 here (rare high-weight terms with short posting lists
#: decide the top-k early); flat weights measure ~0.5 and the scan
#: degrades to a dense-equivalent pass plus overhead.
AUTO_MAX_HEAD_MASS = 0.35


def choose_stage1(corpus: sparse.spmatrix, k: int = 10) -> str:
    """Pick a stage-1 strategy for *corpus* — the ``auto`` cost model.

    All three strategies return bit-identical output, so this is purely
    a wall-time decision, made from O(nnz) corpus statistics without
    building anything:

    * ``n_docs <= 2048`` → ``"dense"``: one similarity block, nothing
      to amortize;
    * ``n_docs < 8192`` → ``"blocked"``: the pruned scan's per-stage
      accumulator traffic exceeds the scan it saves (measured 0.34x at
      300 known, 0.56x at 1200);
    * otherwise ``"invindex"`` — *if* the per-term max-weight skew says
      pruning will bite and ``k`` is a small fraction of the corpus.
      The skew statistic walks terms in impact order (descending max
      posting weight) and measures the posting-mass share of the
      *head*: the prefix of terms carrying half the total bound mass
      (``max_weight * posting_length`` summed).  A small head
      (realistic Tf-Idf: ~0.05-0.15) means a cheap prefix scan raises
      ``theta`` enough to prune the long tail; a flat head (~0.5)
      reproduces the adversarial unprunable case where the scan visits
      *more* than dense — the 0.34x regression this model exists to
      avoid.  Large ``k`` (> ~1.5% of the corpus) also forces
      ``"blocked"``: theta is then the k-th best of a huge pool and
      the band re-score swamps the scan savings.
    """
    matrix = corpus if sparse.isspmatrix_csr(corpus) \
        else sparse.csr_matrix(corpus)
    n_docs, n_terms = matrix.shape
    if n_docs <= AUTO_DENSE_MAX_DOCS:
        return "dense"
    if n_docs < AUTO_INVINDEX_MIN_DOCS or matrix.nnz == 0:
        return "blocked"
    if k > max(1, n_docs // 64):
        return "blocked"
    maxw = np.zeros(n_terms, dtype=np.float64)
    np.maximum.at(maxw, matrix.indices, np.abs(matrix.data))
    plen = np.bincount(matrix.indices,
                       minlength=n_terms).astype(np.float64)
    cap_mass = maxw * plen
    total_cap = float(cap_mass.sum())
    if total_cap <= 0.0:
        return "blocked"
    order = np.argsort(-maxw, kind="stable")
    cum_cap = np.cumsum(cap_mass[order])
    head = int(np.searchsorted(cum_cap, 0.5 * total_cap)) + 1
    head_mass = float(plen[order][:head].sum()) / float(matrix.nnz)
    if head_mass <= AUTO_MAX_HEAD_MASS:
        return "invindex"
    return "blocked"


def _build_gated(jobs: int) -> bool:
    """Would a *jobs*-wide parallel build degrade to serial anyway?

    Consulted before forking: the gated ``map_shared`` fallback would
    build each shard in-process and then construct it a second time
    from the returned postings, so a gated host takes the plain serial
    branch instead.
    """
    from repro.perf.parallel import gated_serial
    return gated_serial(jobs)


def _build_shard_postings(corpus: sparse.csr_matrix,
                          item: Tuple[int, int, bool],
                          ) -> Tuple[np.ndarray, np.ndarray,
                                     np.ndarray, np.ndarray]:
    """Fork-pool task: build one shard's posting arrays.

    Module-level so the persistent pool can pickle a reference; the
    corpus is the pool's shared state (travels by fork inheritance),
    the arrays come back by pickle.  They are a deterministic function
    of the corpus slice, so the parallel build is bit-identical to the
    serial one.
    """
    start, end, exact = item
    return InvertedIndex(corpus, start=start, end=end,
                         exact=exact).postings


class InvertedIndex:
    """Term-pruned exact top-k over one contiguous corpus slice.

    Parameters
    ----------
    corpus:
        L2-normalized non-negative sparse matrix, one row per known
        document (the whole corpus, not the slice — slicing is by
        ``start``/``end`` so shards share the parent matrix).
    start / end:
        Row range this index covers (defaults to the full corpus).
    postings:
        Optional prebuilt ``(data, rows, indptr, max_weight)`` posting
        arrays (e.g. mmap-backed snapshot sections) — skips the CSC
        conversion.  ``rows`` are local to the slice; the CSC arrays
        are in *impact column order* (the deterministic stable argsort
        of descending ``max_weight``, which stays in original term
        order) — i.e. exactly what :attr:`postings` returned when the
        snapshot was written.
    main_end:
        Row where the impact-ordered main segment stops (defaults to
        ``end``).  Rows in ``[main_end, end)`` form the append-only
        *delta segment*: they carry no postings and are scored exactly
        for every query (see :meth:`extend`).  When ``postings`` is
        given it describes ``[start, main_end)`` only.
    exact:
        ``True`` (default) stores float64 postings.  ``False`` is the
        memory diet: posting data downcast to float32 and CSC index
        arrays to int32 (scipy requires signed index dtypes, so the
        "uint32" diet lands as int32) after every pruning bound has
        been computed from the float64 data.  Returned indices and
        scores stay bit-identical either way — the scan only *prunes*,
        and the exact re-score always reads the float64 corpus.
    """

    #: Early-exit benefit ratio: exit once the estimated band
    #: re-score cost is below this multiple of the unscanned posting
    #: mass.  The batched stage scan runs ~2x *cheaper* per entry than
    #: the band re-score (one amortized sparse matmat vs per-query row
    #: gathers), so values below 1.0 optimize wall time; exactness
    #: never depends on it.
    benefit_ratio = 0.5

    #: Compact (rebuild the slice's postings) once the delta segment
    #: exceeds this fraction of the main segment: every query pays the
    #: delta's exact scan linearly, so a bounded ratio keeps the
    #: amortized append cost O(rebuild / main) while the common
    #: trickle of small adds never rebuilds at all.
    delta_ratio = 0.25

    def __init__(self, corpus: sparse.spmatrix, start: int = 0,
                 end: Optional[int] = None,
                 postings: Optional[Tuple[np.ndarray, np.ndarray,
                                          np.ndarray, np.ndarray]] = None,
                 main_end: Optional[int] = None,
                 exact: bool = True) -> None:
        self._corpus = _as_float64_csr(corpus)
        self.start = int(start)
        self.end = self._corpus.shape[0] if end is None else int(end)
        self._main_end = self.end if main_end is None else int(main_end)
        if not (0 <= self.start <= self._main_end <= self.end
                <= self._corpus.shape[0]):
            raise ConfigurationError(
                f"invalid index slice [{self.start}, {self._main_end}, "
                f"{self.end}) over {self._corpus.shape[0]} corpus rows")
        self._exact = bool(exact)
        self._delta_plen: Optional[np.ndarray] = None
        n_main = self._main_end - self.start
        self.n_terms = self._corpus.shape[1]
        if postings is not None:
            self._data, self._rows, self._indptr, self._maxw = postings
        else:
            csc = sparse.csc_matrix(
                self._corpus[self.start:self._main_end],
                dtype=np.float64)
            self._data = csc.data
            self._rows = csc.indices
            self._indptr = csc.indptr
            self._maxw = np.zeros(self.n_terms, dtype=np.float64)
            lengths = np.diff(self._indptr)
            nonempty = np.flatnonzero(lengths > 0)
            if nonempty.size:
                # reduceat segments run from each nonempty column's
                # start to the next one's; interleaved empty columns
                # contribute no entries, so each segment is exactly
                # one column's postings.
                self._maxw[nonempty] = np.maximum.reduceat(
                    self._data, self._indptr[nonempty])
        if self._data.size and float(self._data.min()) < 0.0:
            raise ConfigurationError(
                "inverted-index pruning requires non-negative feature "
                "values (max-weight upper bounds would not hold)")
        # Largest corpus-row L2 norm in the slice: the Cauchy-Schwarz
        # residual bound is ||q_rest|| * this (1.0 for the normalized
        # Tf-Idf matrices the linker feeds in).
        if self._data.size:
            sq = np.bincount(self._rows,
                             weights=np.asarray(self._data,
                                                dtype=np.float64) ** 2,
                             minlength=n_main)
            self._norm_max = float(np.sqrt(sq.max()))
        else:
            self._norm_max = 0.0
        # Global impact order: posting columns permuted by descending
        # per-term max weight, shared by every query.  One fixed order
        # means a scan stage is a *contiguous* column range for all
        # queries at once, so each stage collapses into a single
        # batched sparse product instead of per-query column gathers.
        # The permutation is a deterministic function of max_weight
        # (stable argsort), so snapshot round-trips rebuild it
        # identically from the saved arrays.
        self._go = np.argsort(-self._maxw, kind="stable")
        if postings is None:
            csc = sparse.csc_matrix(
                (self._data, self._rows, self._indptr),
                shape=(n_main, self.n_terms), copy=False)
            csc = csc[:, self._go]
            csc.sort_indices()
            self._data = csc.data
            self._rows = csc.indices
            self._indptr = csc.indptr
        # Memory diet: every bound below is computed from the data as
        # float64 (so it stays a true upper bound on the exact
        # scores); only the *scanned* arrays shrink.  int32 indices
        # are scipy's native small-index dtype, so the astype is a
        # no-op copy-guard on corpora under 2^31 postings.
        if not self._exact and self._data.dtype != np.float32:
            data64 = self._data
            self._data = self._data.astype(np.float32)
            if self._rows.dtype != np.int32 \
                    and self._rows.size < 2**31 \
                    and (n_main < 2**31):
                self._rows = self._rows.astype(np.int32)
                self._indptr = self._indptr.astype(np.int32)
        else:
            data64 = None
        self._maxw_imp = self._maxw[self._go]
        self._plen_imp = np.diff(self._indptr).astype(np.int64)
        # Zero-copy CSC wrapper over the (impact-ordered) posting
        # arrays: scan stages slice contiguous column ranges out of it
        # (the arrays may be read-only mmap views; slicing only reads).
        self._csc = sparse.csc_matrix(
            (self._data, self._rows, self._indptr),
            shape=(n_main, self.n_terms), copy=False)
        # Safety margin for the pruning cuts: float32-loaded postings
        # accumulate partials with rounded inputs, so their margin is
        # wider (see _EPS32); bounds stay conservative either way.
        self._eps = _EPS if self._data.dtype == np.float64 else _EPS32
        bound_data = data64 if data64 is not None else np.asarray(
            self._data, dtype=np.float64)
        # Stage boundaries: cut points in the impact order at roughly
        # geometric fractions of the total posting mass.  Early stages
        # are cheap (rare, high-bound terms) and give the exit test
        # frequent chances while theta is still climbing; late stages
        # are wide because by then either the scan has exited or the
        # data is unprunable and fewer checks waste less.
        cum = np.cumsum(self._plen_imp, dtype=np.float64)
        total = float(cum[-1]) if cum.size else 0.0
        if total <= 0.0:
            self._stages = [(0, self.n_terms)]
        else:
            fracs = (0.005, 0.01, 0.02, 0.035, 0.055, 0.08, 0.11,
                     0.15, 0.2, 0.26, 0.33, 0.41, 0.5, 0.6, 0.71,
                     0.84, 1.0)
            # Merge cut points until every stage carries at least a
            # few accumulator widths of posting mass: each stage pays
            # O(n_docs) accumulator/bookkeeping traffic per active
            # query, so on low-mass (unprunable) corpora a full
            # ladder would cost more in overhead than in scanning.
            floor = 8.0 * n_main
            ends = []
            last_mass = 0.0
            for f in fracs:
                end = min(int(np.searchsorted(cum, f * total)) + 1,
                          self.n_terms)
                if ends and end <= ends[-1]:
                    continue
                mass = float(cum[end - 1])
                if ends and f < 1.0 and mass - last_mass < floor:
                    continue
                ends.append(end)
                last_mass = mass
            if ends[-1] != self.n_terms:
                ends.append(self.n_terms)
            self._stages = list(zip([0] + ends[:-1], ends))
        # Per-row residual norms, one row per stage boundary: the L2
        # mass each corpus row still has in the columns *after* the
        # boundary.  The scanned column set is query-independent (the
        # global impact order), so these are static per index and give
        # the band test a per-row Cauchy-Schwarz bound — a row that
        # already revealed most of its mass can barely move, no matter
        # what the worst row in the slice could still do.
        if bound_data.size:
            row_sq = np.bincount(self._rows,
                                 weights=bound_data * bound_data,
                                 minlength=n_main)
        else:
            row_sq = np.zeros(n_main, dtype=np.float64)
        self._rest_norm = np.empty((len(self._stages), n_main),
                                   dtype=np.float64)
        self._restmax = np.empty(len(self._stages), dtype=np.float64)
        cumsq = np.zeros(n_main, dtype=np.float64)
        for si, (p0, p1) in enumerate(self._stages):
            lo, hi = self._indptr[p0], self._indptr[p1]
            if hi > lo:
                d = bound_data[lo:hi]
                cumsq += np.bincount(self._rows[lo:hi], weights=d * d,
                                     minlength=n_main)
            rest = np.sqrt(np.clip(row_sq - cumsq, 0.0, None))
            self._rest_norm[si] = rest
            self._restmax[si] = float(rest.max()) if rest.size else 0.0
        # Dense query scratch row for the exact band re-score, plus a
        # 0/1 indicator of the query's terms (used to count the
        # re-score's restricted posting visits with one cheap
        # indicator matvec) and a reusable all-ones data buffer.
        self._qscratch = np.zeros(self.n_terms, dtype=np.float64)
        self._qind = np.zeros(self.n_terms, dtype=np.float64)
        self._ones = np.ones(0, dtype=np.float64)

    @property
    def n_docs(self) -> int:
        """Total rows covered: main segment plus delta segment."""
        return self.end - self.start

    @property
    def n_main(self) -> int:
        """Rows in the impact-ordered (posting-backed) main segment."""
        return self._main_end - self.start

    @property
    def n_delta(self) -> int:
        """Rows in the append-only delta segment."""
        return self.end - self._main_end

    @property
    def main_end(self) -> int:
        """Absolute corpus row where the main segment stops."""
        return self._main_end

    @property
    def postings(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                np.ndarray]:
        """``(data, rows, indptr, max_weight)`` — snapshot payload.

        The CSC arrays are in impact column order; ``max_weight`` is
        in original term order, and the permutation is rebuilt from it
        deterministically on load.  The arrays describe the *main*
        segment only — delta rows live in the corpus matrix, which the
        snapshot saves anyway.
        """
        return self._data, self._rows, self._indptr, self._maxw

    def extend(self, corpus: sparse.spmatrix, end: int) -> None:
        """Grow the delta segment: the slice now ends at *end*.

        *corpus* is the refreshed corpus matrix — its rows in
        ``[start, end_before)`` must be value-identical to the matrix
        the index was built over (the incremental linker guarantees
        this: frozen feature space, old rows ``vstack``-ed unchanged).
        The appended rows ``[end_before, end)`` join the delta
        segment; no posting array is touched.  Once the delta exceeds
        :attr:`delta_ratio` of the main segment the slice compacts
        (full rebuild) — amortized, appends stay O(new rows).
        """
        matrix = _as_float64_csr(corpus)
        end = int(end)
        if matrix.shape[1] != self.n_terms:
            raise ConfigurationError(
                f"dimension mismatch: extension has {matrix.shape[1]} "
                f"features, index has {self.n_terms}")
        if not self.end <= end <= matrix.shape[0]:
            raise ConfigurationError(
                f"invalid extension to row {end}: index ends at "
                f"{self.end}, matrix has {matrix.shape[0]} rows")
        if matrix.nnz and float(matrix.data.min()) < 0.0:
            raise ConfigurationError(
                "inverted-index pruning requires non-negative feature "
                "values (max-weight upper bounds would not hold)")
        self._corpus = matrix
        self.end = end
        self._delta_plen = None
        if self.n_delta > self.delta_ratio * max(self.n_main, 1):
            self.compact()

    def compact(self) -> None:
        """Fold the delta segment into the main one (full rebuild).

        Afterwards the whole slice is impact-ordered and posting-
        backed again; scoring output is unchanged (a freshly built
        index over the same rows is exact by construction).
        """
        if self.n_delta == 0:
            return
        InvertedIndex.__init__(self, self._corpus, start=self.start,
                               end=self.end, exact=self._exact)

    def _delta_term_counts(self) -> np.ndarray:
        """Per-term posting counts of the delta segment (cached)."""
        if self._delta_plen is None:
            delta = self._corpus[self._main_end:self.end]
            self._delta_plen = np.bincount(
                delta.indices, minlength=self.n_terms
            ).astype(np.int64)
        return self._delta_plen

    def top_k(self, queries: sparse.spmatrix, k: int,
              ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-query top-*k* slice rows by cosine, term-pruned.

        Returns ``(indices, values)`` of shape
        ``(n_queries, min(k, n_docs))`` — indices are *local* to the
        slice; :class:`ShardedIndex` re-bases them.  Output is
        bit-identical to ``top_k(cosine_similarity(queries, slice), k)``,
        delta segment included.
        """
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        q = sparse.csr_matrix(queries, dtype=np.float64)
        if q.shape[1] != self.n_terms:
            raise ConfigurationError(
                f"dimension mismatch: queries have {q.shape[1]} "
                f"features, index has {self.n_terms}")
        n_main = self.n_main
        kk = min(k, n_main)
        n_queries = q.shape[0]
        indices = np.zeros((n_queries, kk), dtype=np.int64)
        values = np.zeros((n_queries, kk), dtype=np.float64)
        if n_main:
            # One column permutation per call puts the queries in the
            # index's impact order, so every scan stage is a contiguous
            # column slice on both sides of the batched partial product.
            q_imp = q[:, self._go]
            q_imp.sort_indices()
            # The dense (batch x n_main) accumulator caps the query
            # batch: ~256 MB of partial scores per batch.
            batch = max(1, int(32_000_000 // max(n_main, 1)))
            for b0 in range(0, n_queries, batch):
                b1 = min(b0 + batch, n_queries)
                self._topk_batch(q, q_imp, b0, b1, kk, indices, values)
        if self.n_delta == 0:
            return indices, values
        return self._merge_delta(q, k, indices, values)

    def _merge_delta(self, q: sparse.csr_matrix, k: int,
                     indices: np.ndarray, values: np.ndarray,
                     ) -> Tuple[np.ndarray, np.ndarray]:
        """Fold the exactly scored delta segment into the main top-k.

        Every delta row is scored with the same stored-order sparse
        dot the band re-score uses, so its value is bit-equal to the
        dense path's.  Exactness of the merge: a main row outside the
        main top-k is dominated (under the ``(-score, index)`` total
        order) by ``kk`` main rows already in it — appending rows can
        push main rows out but never pull excluded ones in — and delta
        rows carry strictly higher indices than every main row, so the
        stable lexsort reproduces the dense tie order, zero-score fill
        included.
        """
        n_main = self.n_main
        kk_all = min(k, self.n_docs)
        n_queries = q.shape[0]
        out_idx = np.empty((n_queries, kk_all), dtype=np.int64)
        out_val = np.empty((n_queries, kk_all), dtype=np.float64)
        delta_rows = np.arange(n_main, self.n_docs, dtype=np.int64)
        delta_plen = self._delta_term_counts()
        for j in range(n_queries):
            lo, hi = q.indptr[j], q.indptr[j + 1]
            _DENSE.inc(int(delta_plen[q.indices[lo:hi]].sum()))
            delta_vals = self._exact_band(q, j, delta_rows)
            rows_all = np.concatenate((indices[j], delta_rows))
            vals_all = np.concatenate((values[j], delta_vals))
            keep = np.lexsort((rows_all, -vals_all))[:kk_all]
            out_idx[j] = rows_all[keep]
            out_val[j] = vals_all[keep]
        return out_idx, out_val

    # -- one query batch ----------------------------------------------------

    def _topk_batch(self, q: sparse.csr_matrix, q_imp: sparse.csr_matrix,
                    b0: int, b1: int, kk: int, indices: np.ndarray,
                    values: np.ndarray) -> None:
        nb = b1 - b0
        n_docs = self.n_main
        eps = self._eps
        plen = self._plen_imp
        mean_nnz = float(self._data.size) / max(n_docs, 1)
        # Per-query pruning state, in impact order: the ascending
        # column ranks of the query's live terms, and suffix sums over
        # them.  ``caps_suf[c]`` bounds what the terms still unscanned
        # after ``c`` processed can add to any single row (MaxScore cap
        # sum); ``qsq_suf[c]`` is the squared L2 mass of those weights
        # for the Cauchy-Schwarz bound; ``un_suf[c]`` is their posting
        # mass — the cost of *not* exiting, for the benefit test.
        ranks: List[np.ndarray] = []
        caps_suf: List[Optional[np.ndarray]] = []
        qsq_suf: List[Optional[np.ndarray]] = []
        un_suf: List[Optional[np.ndarray]] = []
        alive = np.zeros(nb, dtype=bool)
        dense_total = 0
        for j in range(nb):
            lo, hi = q_imp.indptr[b0 + j], q_imp.indptr[b0 + j + 1]
            r = q_imp.indices[lo:hi].astype(np.int64)
            w = q_imp.data[lo:hi]
            dense_total += int(plen[r].sum())
            bnd = w * self._maxw_imp[r]
            live = bnd > 0.0
            r, w, bnd = r[live], w[live], bnd[live]
            ranks.append(r)
            if r.size == 0:
                # No query term appears anywhere in the slice: every
                # row scores exactly 0.0, like the dense path, which
                # fills ties in ascending index order.
                _PRUNED.inc(n_docs)
                indices[b0 + j] = np.arange(kk, dtype=np.int64)
                values[b0 + j] = 0.0
                caps_suf.append(None)
                qsq_suf.append(None)
                un_suf.append(None)
                continue
            alive[j] = True
            caps_suf.append(np.concatenate(
                (np.cumsum(bnd[::-1])[::-1], [0.0])))
            qsq_suf.append(np.concatenate(
                (np.cumsum((w * w)[::-1])[::-1], [0.0])))
            un_suf.append(np.concatenate(
                (np.cumsum(plen[r][::-1].astype(np.float64))[::-1],
                 [0.0])))
        _DENSE.inc(dense_total)
        if not np.any(alive):
            return
        acc = np.zeros((nb, n_docs), dtype=np.float64)
        scanned = 0
        for si, (p0, p1) in enumerate(self._stages):
            act = np.flatnonzero(alive)
            if act.size == 0:
                break
            qs = q_imp[b0 + act][:, p0:p1]
            if qs.nnz:
                # csc[:, p0:p1].T is CSR over the same posting arrays
                # (a transpose of a CSC slice costs nothing), so the
                # whole stage is one C-speed CSR matmat across every
                # still-active query.
                part = qs @ self._csc[:, p0:p1].T
                if part.nnz * 5 < act.size * n_docs:
                    # Sparse stage: scatter-add only the touched
                    # (query, row) pairs instead of densifying the
                    # whole accumulator block.  The matmat output is
                    # canonical (each pair appears once), so a fancy
                    # in-place add is exact.
                    row_rep = np.repeat(act.astype(np.int64),
                                        np.diff(part.indptr))
                    flat = row_rep * n_docs + part.indices
                    acc.ravel()[flat] += part.data
                else:
                    acc[act] += part.toarray()
                scanned += int(plen[p0:p1][qs.indices].sum())
            # Residual after this stage, per active query: terms with
            # rank >= p1 are exactly the unscanned ones.  ``rem`` is
            # the query's *global* residual — what the unscanned terms
            # can add to the luckiest row in the slice.
            caps_c = np.empty(act.size, dtype=np.float64)
            qrest_c = np.empty(act.size, dtype=np.float64)
            cuts = np.empty(act.size, dtype=np.int64)
            for jj, j in enumerate(act):
                c = int(np.searchsorted(ranks[j], p1, side="left"))
                cuts[jj] = c
                caps_c[jj] = caps_suf[j][c]
                qrest_c[jj] = float(np.sqrt(qsq_suf[j][c]))
            rems = np.minimum(caps_c, qrest_c * self._restmax[si])
            # Cheap pre-filter: theta can't exceed the row max, so a
            # global residual at or above rowmax means the band would
            # span essentially every unscanned-similar row — skip the
            # partition (a skipped check only delays the exit; it
            # never affects exactness).
            rowmax = acc[act].max(axis=1)
            maybe = np.flatnonzero(rems < rowmax - 2.0 * eps)
            if maybe.size == 0:
                continue
            # theta over the dense accumulator *is* the k-th best
            # partial: untouched rows hold 0.0, and the band keeps
            # at least the k rows whose partial reaches theta.
            th = np.partition(acc[act[maybe]], n_docs - kk,
                              axis=1)[:, n_docs - kk]
            rest = self._rest_norm[si]
            for mi, jj in enumerate(maybe):
                j = int(act[jj])
                theta = float(th[mi])
                row = acc[j]
                # Per-row upper bound on the exact score: the partial
                # plus what the unscanned terms can still add to THIS
                # row — min of the MaxScore cap sum and Cauchy-Schwarz
                # against the row's own unscanned L2 mass.  Rows that
                # already revealed most of their mass get a far
                # tighter bound than the global residual allows.
                ub = row + np.minimum(caps_c[jj], qrest_c[jj] * rest)
                # Benefit: re-scoring the band must undercut scanning
                # the remaining posting lists, or the exit would *add*
                # work (at the first legal exit the band is nearly
                # the whole candidate pool).
                n_band = int(np.count_nonzero(ub >= theta - 4.0 * eps))
                if (n_band * mean_nnz
                        > self.benefit_ratio * un_suf[j][cuts[jj]]):
                    continue
                _EARLY_EXIT.inc()
                # Keep every row that could still reach the k-th
                # best: ub >= theta, margin-widened (exactness: a row
                # outside the band has exact <= partial + residual
                # < theta - 4*_EPS + float error, while the k-th best
                # exact is >= theta - _EPS — no crossover even through
                # worst-case rounding).  The k rows at or above theta
                # are always in the band, so it never runs short of
                # kk; flatnonzero returns ascending row order, which
                # the stable sort in the re-score needs for global
                # tie order.
                band = np.flatnonzero(ub >= theta - 4.0 * eps)
                idx, val = self._rescore_band(q, b0 + j, band,
                                              ub[band], kk)
                indices[b0 + j] = idx
                values[b0 + j] = val
                alive[j] = False
        _VISITED.inc(scanned)
        # Queries that never exited scanned every live term: their
        # partials equal the true scores up to float error, so the
        # same band argument applies with rem = 0 — unless theta is
        # too close to 0.0 to exclude the untouched rows, whose exact
        # 0.0 ties must fill in ascending index order.
        for j in np.flatnonzero(alive):
            row = acc[j]
            theta = float(np.partition(row, n_docs - kk)[n_docs - kk])
            if theta > 2.0 * eps:
                band = np.flatnonzero(row >= theta - 2.0 * eps)
                idx, val = self._rescore_band(q, b0 + j, band,
                                              row[band], kk)
            else:
                # Zero-score ties can reach the top-k: re-score every
                # touched row and rank through the same dense-row
                # top_k the blocked path uses, so ties (and the fill
                # when the pool runs short of k) order by ascending
                # index bit-identically.
                cand = np.flatnonzero(row > 0.0)
                _PRUNED.inc(n_docs - cand.size)
                idx, val = self._rescore_scatter(q, b0 + j, cand, kk)
            indices[b0 + j] = idx
            values[b0 + j] = val

    def _rescore_band(self, q: sparse.csr_matrix, row: int,
                      band: np.ndarray, ub: np.ndarray, kk: int,
                      ) -> Tuple[np.ndarray, np.ndarray]:
        """Exactly re-score the band under a *rising* exact threshold.

        The band's upper bounds were cut against the k-th best
        *partial* score — loose while much of the query is unscanned.
        Re-scoring in descending-``ub`` chunks replaces that cut with
        the k-th best *exact* score seen so far, which only rises: as
        soon as k chunked rows are exact, every remaining row whose
        upper bound falls short of the exact threshold is dropped
        without ever being read (a dropped row's exact score is at
        most its ``ub < theta_exact - 2 * _EPS``, so it can neither
        enter the top-k nor tie the k-th place).  On prunable data the
        first chunk's scores sit far above the tail's bounds and the
        band collapses after one round; on flat data the loop just
        walks the whole band in geometrically growing chunks.

        Ties still order by ascending corpus row: the final fold is a
        stable ``(-score, row)`` lexsort, which equals the dense
        path's stable argsort on the full score row.
        """
        order = np.argsort(-ub, kind="stable")
        rows_sorted = band[order]
        ub_sorted = ub[order]
        got_rows: List[np.ndarray] = []
        got_vals: List[np.ndarray] = []
        got = 0
        pos = 0
        limit = rows_sorted.size
        csz = max(4 * kk, 64)
        while pos < limit:
            chunk = rows_sorted[pos:pos + csz]
            got_rows.append(chunk)
            got_vals.append(self._exact_band(q, row, chunk))
            got += chunk.size
            pos += csz
            if pos >= limit:
                break
            vals = (np.concatenate(got_vals) if len(got_vals) > 1
                    else got_vals[0])
            if got >= kk:
                theta_e = float(np.partition(vals, got - kk)[got - kk])
                # ub_sorted is descending: keep the prefix of the
                # remaining rows that can still reach theta_e.
                cut = int(np.searchsorted(
                    -ub_sorted[pos:limit], -(theta_e - 2.0 * self._eps),
                    side="right"))
                limit = pos + cut
            csz *= 4
        rows_all = (np.concatenate(got_rows) if len(got_rows) > 1
                    else got_rows[0])
        vals_all = (np.concatenate(got_vals) if len(got_vals) > 1
                    else got_vals[0])
        _PRUNED.inc(self.n_main - rows_all.size)
        keep = np.lexsort((rows_all, -vals_all))[:kk]
        return rows_all[keep], vals_all[keep]

    def _rescore_scatter(self, q: sparse.csr_matrix, row: int,
                         cand: np.ndarray, kk: int,
                         ) -> Tuple[np.ndarray, np.ndarray]:
        """Re-score ``cand`` and rank through the dense-row top_k."""
        exact = self._exact_band(q, row, cand)
        scores_row = np.zeros((1, self.n_main), dtype=np.float64)
        scores_row[0, cand] = exact
        idx, val = top_k(scores_row, kk)
        return idx[0].astype(np.int64), val[0]

    def _exact_band(self, q: sparse.csr_matrix, row: int,
                    local_rows: np.ndarray) -> np.ndarray:
        lo, hi = q.indptr[row], q.indptr[row + 1]
        terms = q.indices[lo:hi]
        scratch = self._qscratch
        scratch[terms] = q.data[lo:hi]
        self._qind[terms] = 1.0
        try:
            exact, nnz = self._exact_scores(scratch, local_rows)
        finally:
            scratch[terms] = 0.0
            self._qind[terms] = 0.0
        _VISITED.inc(nnz)
        return exact

    def _exact_scores(self, q_dense: np.ndarray,
                      local_rows: np.ndarray) -> Tuple[np.ndarray, int]:
        """Exact cosine of the query against slice rows, dense-identical.

        ``sub @ q_dense`` accumulates each row's score along the
        corpus row's stored (ascending) term order; entries outside
        the query multiply exactly ``0.0``, and adding ``+0.0`` never
        changes an IEEE float, so the sequence of value-changing
        additions — the shared terms, in ascending term order — is
        the same as in the full sparse product the dense path runs.
        The values are therefore bit-equal to the corresponding
        entries of ``cosine_similarity(queries, corpus)``.
        """
        if local_rows.size == 0:
            return np.zeros(0, dtype=np.float64), 0
        sub = self._corpus[self.start + local_rows]
        # Only entries whose term the query actually carries are
        # postings of this query — the rest multiply exactly 0.0 —
        # so that is what the visited counter charges.  Counting them
        # is itself hot, so it rides the same C matvec kernel as the
        # scores: an all-ones copy of the submatrix against the 0/1
        # query-term indicator sums exactly one per restricted entry.
        if self._ones.size < sub.nnz:
            self._ones = np.ones(sub.nnz, dtype=np.float64)
        ind = sparse.csr_matrix(
            (self._ones[:sub.nnz], sub.indices, sub.indptr),
            shape=sub.shape, copy=False)
        visited = int(round(float(ind.dot(self._qind).sum())))
        return sub.dot(q_dense), visited


class ShardedIndex:
    """K contiguous :class:`InvertedIndex` partitions, exactly merged.

    Parameters
    ----------
    corpus:
        L2-normalized non-negative sparse matrix (shared by all
        shards — no per-shard row copies).
    shards:
        Partition count; ``None`` resolves through ``REPRO_SHARDS``
        and defaults to 1.  Clamped to the corpus row count.
    jobs:
        Build parallelism: with ``jobs > 1`` (and more than one
        shard) the per-shard posting arrays are constructed in
        parallel over a persistent fork pool — bit-identical to the
        serial build, serial fallback under the available-core gate.
    exact:
        Forwarded to every :class:`InvertedIndex` (the float32/int32
        memory diet when ``False``; output stays bit-identical).
    """

    def __init__(self, corpus: sparse.spmatrix,
                 shards: Optional[int] = None,
                 jobs: Optional[int] = None,
                 exact: bool = True) -> None:
        corpus = _as_float64_csr(corpus)
        n_docs = corpus.shape[0]
        if n_docs < 1:
            raise ConfigurationError("corpus must not be empty")
        n_shards = min(resolve_shards(shards), n_docs)
        bounds = [n_docs * i // n_shards for i in range(n_shards + 1)]
        self.n_docs = n_docs
        self.bounds = bounds
        self._exact = bool(exact)
        jobs = 1 if jobs is None else int(jobs)
        if jobs > 1 and n_shards > 1 and not _build_gated(jobs):
            from repro.perf.parallel import ParallelExecutor
            executor = ParallelExecutor(jobs)
            built = executor.map_shared(
                _build_shard_postings,
                [(bounds[i], bounds[i + 1], exact)
                 for i in range(n_shards)],
                state=corpus, version=next(_BUILD_SEQ))
            self._shards: List[InvertedIndex] = [
                InvertedIndex(corpus, start=bounds[i],
                              end=bounds[i + 1],
                              postings=tuple(built[i]), exact=exact)
                for i in range(n_shards)
            ]
        else:
            self._shards = [
                InvertedIndex(corpus, start=bounds[i],
                              end=bounds[i + 1], exact=exact)
                for i in range(n_shards)
            ]

    @classmethod
    def from_postings(cls, corpus: sparse.spmatrix,
                      bounds: Sequence[int],
                      postings: Sequence[Tuple[np.ndarray, np.ndarray,
                                               np.ndarray, np.ndarray]],
                      main_ends: Optional[Sequence[int]] = None,
                      ) -> "ShardedIndex":
        """Rebuild from saved posting arrays (snapshot load path).

        The arrays may be read-only mmap-backed views; nothing here
        (or in the query path) writes to them, so forked restage
        workers share the pages with the parent for free.

        *main_ends* (one per shard, defaulting to the shard ends)
        restores delta segments: each shard's postings describe
        ``[bounds[i], main_ends[i])`` and the remaining rows up to
        ``bounds[i + 1]`` rejoin the delta, exactly as saved.
        """
        corpus = _as_float64_csr(corpus)
        if len(bounds) != len(postings) + 1:
            raise ConfigurationError(
                f"shard bounds/postings mismatch: {len(bounds)} bounds "
                f"for {len(postings)} shards")
        if main_ends is None:
            main_ends = bounds[1:]
        if len(main_ends) != len(postings):
            raise ConfigurationError(
                f"shard main_ends/postings mismatch: {len(main_ends)} "
                f"main ends for {len(postings)} shards")
        index = cls.__new__(cls)
        index.n_docs = corpus.shape[0]
        index.bounds = [int(b) for b in bounds]
        index._shards = [
            InvertedIndex(corpus, start=index.bounds[i],
                          end=index.bounds[i + 1],
                          postings=postings[i],
                          main_end=int(main_ends[i]))
            for i in range(len(postings))
        ]
        index._exact = all(
            shard._data.dtype == np.float64 for shard in index._shards)
        return index

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def main_ends(self) -> List[int]:
        """Per-shard absolute main-segment ends (snapshot payload)."""
        return [shard.main_end for shard in self._shards]

    @property
    def n_delta(self) -> int:
        """Delta-segment rows across all shards."""
        return sum(shard.n_delta for shard in self._shards)

    def extend(self, corpus: sparse.spmatrix) -> None:
        """Append the corpus's new tail rows to the last shard's delta.

        *corpus* is the refreshed corpus matrix: rows ``[0, n_docs)``
        value-identical to the build-time matrix, new rows after.  All
        shards adopt the new matrix (their slices are unchanged — this
        just lets the old matrix be collected); only the last shard's
        delta grows, so an incremental add touches one shard and the
        compaction amortizes over many appends.
        """
        matrix = _as_float64_csr(corpus)
        new_n = matrix.shape[0]
        if new_n < self.n_docs:
            raise ConfigurationError(
                f"cannot shrink index: corpus has {new_n} rows, index "
                f"covers {self.n_docs}")
        for shard in self._shards[:-1]:
            shard._corpus = matrix
        self._shards[-1].extend(matrix, new_n)
        self.bounds[-1] = new_n
        self.n_docs = new_n

    def compact(self) -> None:
        """Fold every shard's delta segment back into its postings."""
        for shard in self._shards:
            shard.compact()

    def _score_shard(self, item: Tuple[int, sparse.csr_matrix, int],
                     ) -> Tuple[np.ndarray, np.ndarray]:
        shard_id, queries, k = item
        shard = self._shards[shard_id]
        with span("invindex.shard", shard=shard_id, rows=shard.n_docs,
                  n_queries=queries.shape[0]):
            idx, val = shard.top_k(queries, k)
        return idx + shard.start, val

    def top_k(self, queries: sparse.spmatrix, k: int,
              executor: Optional[object] = None,
              ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-query top-*k* corpus rows, scored shard by shard.

        Bit-identical to ``blocked_top_k(queries, corpus, k)``: each
        shard's exact local top-k arrives in ascending row order, so
        the stable ``(-score, index)`` fold preserves the global tie
        order (the :func:`~repro.perf.blocked.blocked_top_k` argument).

        *executor* optionally fans the shards over a
        :class:`~repro.perf.parallel.ParallelExecutor` (the index
        travels to workers by fork inheritance, results by pickle).
        """
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        q = sparse.csr_matrix(queries, dtype=np.float64)
        items = [(i, q, k) for i in range(len(self._shards))]
        if executor is not None and len(items) > 1:
            parts = executor.map(self._score_shard, items)
        else:
            parts = [self._score_shard(item) for item in items]
        if len(parts) == 1:
            return parts[0]
        merged_idx = np.concatenate([p[0] for p in parts], axis=1)
        merged_val = np.concatenate([p[1] for p in parts], axis=1)
        keep, best_val = top_k(merged_val,
                               min(k, merged_val.shape[1]))
        best_idx = np.take_along_axis(merged_idx, keep, axis=1)
        return best_idx, best_val
