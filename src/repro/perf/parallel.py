"""Process-parallel fan-out for per-unknown stage-2 work.

The restage is embarrassingly parallel: each unknown's candidate-set
re-fit is a pure function of the fitted linker state, so the unknowns
can be scored on separate cores with no coordination.  The executor
here uses a **fork** process pool so the parent's fitted matrices and
warm :class:`~repro.perf.cache.ProfileCache` are shared with every
worker read-only (copy-on-write pages — no serialization of the index,
no per-worker re-tokenization).

Determinism is non-negotiable: results come back in submission order,
each task is a pure function of inherited state, and a run with
``workers=4`` is bit-identical to ``workers=1`` (asserted by
``tests/perf/test_equivalence.py``).

Telemetry: each task runs against the worker's (inherited, then reset)
metrics registry and ships a per-task snapshot back with its result;
the parent merges counters and histograms into the live registry, so
``feature_fits_total`` and the cache counters stay truthful under
parallelism.  Worker-side *gauges* are instantaneous values of a dead
process and are dropped.  When tracing is enabled, spans opened inside
workers ship back as dicts and are grafted into the parent's live
trace tree with their worker pid/tid preserved, so ``--trace-chrome``
renders one timeline lane per worker.  Three counters decompose the
overhead the pool pays over the serial path: ``parallel.fork_ms``
(worker spawn-up), ``parallel.pickle_bytes`` (result IPC volume) and
``parallel.merge_ms`` (parent-side result/telemetry folding).

Worker count resolution, in priority order: explicit argument, the
``REPRO_WORKERS`` environment variable, then serial (1).  On platforms
without ``fork`` (or when already inside a worker) the executor
degrades to the serial path — same results, no parallelism.

Two pooling disciplines coexist:

* :meth:`ParallelExecutor.map` forks a fresh pool per call — the
  items travel to workers by fork inheritance, so arbitrary unpicklable
  state rides along for free, but every call pays the fork again;
* :meth:`ParallelExecutor.map_shared` keeps one pool *alive across
  calls*, keyed on ``(identity, version)`` of a caller-provided shared
  state object that the workers inherited at fork time.  Repeat calls
  against the same state version skip the fork entirely
  (``parallel_pool_reuse_total`` counts the skips); bumping the
  version — e.g. after a refit mutated the shared state — retires the
  stale pool and forks a fresh one, because forked workers only ever
  see the memory image from their moment of birth.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.logging import get_logger
from repro.obs.metrics import counter, gauge, get_registry
from repro.obs.spans import Span, get_tracer

__all__ = ["ParallelExecutor", "available_cores", "gated_serial",
           "resolve_workers", "shutdown_pools", "GATE_ENV",
           "WORKERS_ENV"]

#: Environment variable supplying the default worker count.
WORKERS_ENV = "REPRO_WORKERS"

#: Set to ``0``/``off``/``false``/``no`` to disable the available-core
#: gate (e.g. to exercise the fork pool on a single-core CI box).
GATE_ENV = "REPRO_PARALLEL_GATE"

log = get_logger(__name__)

#: Tasks dispatched through executors (serial and parallel).
_TASKS = counter("parallel_tasks_total")
#: Process pools actually forked (serial runs never touch this).
_POOLS = counter("parallel_pools_total")
#: Worker count of the most recent executor.
_WORKERS_GAUGE = gauge("parallel_workers")
#: Bytes of pickled task payloads shipped from workers back to the
#: parent — the per-result IPC volume the fork pool pays that the
#: serial path does not.
_PICKLE_BYTES = counter("parallel.pickle_bytes")
#: Milliseconds spent spawning worker processes (pool start-up).
_FORK_MS = counter("parallel.fork_ms")
#: Milliseconds the parent spends folding worker results, metric
#: snapshots and spans back into its own state.
_MERGE_MS = counter("parallel.merge_ms")
#: Maps gated onto the serial path because requested workers exceeded
#: the cores actually available.
_GATED = counter("parallel_gated_serial_total")
#: map_shared calls that reused an already-forked persistent pool
#: instead of paying the fork again.
_POOL_REUSE = counter("parallel_pool_reuse_total")

#: The in-flight (fn, items) payload, published to forked workers via
#: inherited memory; also the re-entrancy latch that forces nested
#: executors (a worker starting its own pool) onto the serial path.
_PAYLOAD: Optional[Tuple[Callable[[Any], Any], Sequence[Any]]] = None

#: The shared-state object published to *persistent* pool workers at
#: fork time (see :meth:`ParallelExecutor.map_shared`).
_SHARED: Any = None

#: Set in every pool worker (per-call and persistent) via the pool
#: initializer: any executor created inside a worker runs serial.
_IN_WORKER = False

#: The live persistent pool and the (state id, version, workers) key
#: it was forked for.  One pool at a time: the restage is the only
#: map_shared call site, and a second distinct key means the first
#: state is stale anyway.
_POOL: Optional[ProcessPoolExecutor] = None
_POOL_KEY: Optional[Tuple[int, int, int]] = None


def _probe() -> int:
    """No-op task used to force (and time) worker spawn-up."""
    return os.getpid()


def _mark_worker() -> None:
    """Pool initializer: latch this process as a worker forever."""
    global _IN_WORKER
    _IN_WORKER = True


def _run_task(index: int) -> Tuple[Any, dict, List[dict]]:
    """Worker-side entry: run one task, return
    ``(result, metrics delta, span dicts)``.

    The worker's registry is reset before the task so the snapshot it
    ships back is exactly this task's increments — the parent can merge
    deltas from any number of tasks without double counting.  The
    tracer's thread state is likewise cleared: the fork inherited the
    parent's *open* spans on the surviving thread's stack, and without
    the reset the task's spans would attach to dead copies of them
    instead of forming shippable root trees.
    """
    fn, items = _PAYLOAD  # type: ignore[misc]  # set before fork
    registry = get_registry()
    registry.reset()
    tracer = get_tracer()
    tracer.clear_thread_state()
    result = fn(items[index])
    span_dicts = [s.to_dict() for s in tracer.roots()] \
        if tracer.enabled else []
    # Account the IPC volume *before* the snapshot so the parent sees
    # this task's own pickle bytes in the merged counters.
    _PICKLE_BYTES.inc(len(pickle.dumps((result, span_dicts),
                                       pickle.HIGHEST_PROTOCOL)))
    return result, registry.snapshot(), span_dicts


def _run_shared(payload: Tuple[Callable[[Any, Any], Any], Any],
                ) -> Tuple[Any, dict, List[dict]]:
    """Persistent-pool worker entry: ``fn(shared_state, item)``.

    Unlike :func:`_run_task`, the item arrives by pickle (the pool
    outlives any single call, so fork inheritance cannot carry it);
    only the heavyweight shared state — published to :data:`_SHARED`
    before the fork — rides the copy-on-write pages.  Telemetry
    discipline is identical: reset, run, ship the delta.
    """
    fn, item = payload
    registry = get_registry()
    registry.reset()
    tracer = get_tracer()
    tracer.clear_thread_state()
    result = fn(_SHARED, item)
    span_dicts = [s.to_dict() for s in tracer.roots()] \
        if tracer.enabled else []
    _PICKLE_BYTES.inc(len(pickle.dumps((result, span_dicts),
                                       pickle.HIGHEST_PROTOCOL)))
    return result, registry.snapshot(), span_dicts


def shutdown_pools() -> None:
    """Retire the persistent worker pool (if any) and its shared state.

    Called automatically at interpreter exit; safe to call any time —
    the next :meth:`ParallelExecutor.map_shared` simply forks afresh.
    """
    global _POOL, _POOL_KEY, _SHARED
    pool, _POOL, _POOL_KEY, _SHARED = _POOL, None, None, None
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(shutdown_pools)


def available_cores() -> int:
    """CPU cores actually available to this process.

    Prefers ``os.process_cpu_count`` (3.13+), then the scheduling
    affinity mask, then ``os.cpu_count`` — the first is the honest
    answer under cgroup/affinity limits, the rest are fallbacks.
    """
    probe = getattr(os, "process_cpu_count", None)
    if probe is not None:
        cores = probe()
        if cores:
            return cores
    try:
        affinity = os.sched_getaffinity(0)
    except (AttributeError, OSError):
        affinity = None
    if affinity:
        return len(affinity)
    return os.cpu_count() or 1


def _gate_enabled() -> bool:
    raw = os.environ.get(GATE_ENV)
    if raw is None:
        return True
    return raw.strip().lower() not in ("0", "off", "false", "no")


def gated_serial(workers: Optional[int] = None) -> bool:
    """Would an executor with *workers* take the serial path?

    True when any of the serial-degrade conditions in :meth:`map` /
    :meth:`map_shared` would fire: one worker, nested use from inside
    a pool worker, no ``fork`` start method, or the available-core
    gate (more workers requested than cores, with ``REPRO_PARALLEL_GATE``
    on).  Callers with a cheaper native serial path — e.g. the sharded
    index build, where the fallback would construct every shard twice —
    consult this up front instead of paying the degraded pool path.
    """
    workers = resolve_workers(workers)
    if workers <= 1:
        return True
    if _PAYLOAD is not None or _IN_WORKER:
        return True
    if "fork" not in multiprocessing.get_all_start_methods():
        return True
    return _gate_enabled() and workers > available_cores()


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve a worker count: argument > ``REPRO_WORKERS`` > 1."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV)
        if raw is None or not raw.strip():
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"{WORKERS_ENV} must be an integer, got {raw!r}") from None
    workers = int(workers)
    if workers < 1:
        raise ConfigurationError(
            f"workers must be a positive integer, got {workers}")
    return workers


class ParallelExecutor:
    """Order-stable map over a fork process pool (serial at 1 worker).

    Parameters
    ----------
    workers:
        Number of worker processes; ``None`` reads ``REPRO_WORKERS``
        and defaults to 1.  ``workers=1`` runs inline with zero
        process overhead.
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = resolve_workers(workers)

    def map(self, fn: Callable[[Any], Any],
            items: Iterable[Any]) -> List[Any]:
        """Apply *fn* to every item, results in submission order.

        The parallel path requires *fn*'s return values to be
        picklable; *fn* itself and its closed-over state travel to the
        workers by fork inheritance, never by pickling.  Exceptions
        raised by *fn* propagate (callers wanting isolation catch
        inside *fn*).
        """
        items = list(items)
        _WORKERS_GAUGE.set(self.workers)
        _TASKS.inc(len(items))
        if self.workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        cores = available_cores()
        if _gate_enabled() and self.workers > cores:
            # More workers than cores means the pool pays fork + IPC
            # overhead for zero extra parallelism (the measured 0.96x
            # on a single core) — run serial, identically, for free.
            _GATED.inc()
            log.info("parallel.gated_serial", workers=self.workers,
                     cores=cores, n_items=len(items))
            return [fn(item) for item in items]
        global _PAYLOAD
        if _PAYLOAD is not None or _IN_WORKER:
            # Nested use from inside a worker: stay serial.
            log.debug("parallel.nested_serial", n_items=len(items))
            return [fn(item) for item in items]
        if "fork" not in multiprocessing.get_all_start_methods():
            log.warning("parallel.no_fork", n_items=len(items),
                        workers=self.workers)
            return [fn(item) for item in items]
        context = multiprocessing.get_context("fork")
        n_workers = min(self.workers, len(items))
        chunksize = max(1, len(items) // (n_workers * 4))
        _POOLS.inc()
        log.debug("parallel.map", n_items=len(items), workers=n_workers,
                  chunksize=chunksize)
        _PAYLOAD = (fn, items)
        try:
            fork_start = time.perf_counter()
            with ProcessPoolExecutor(max_workers=n_workers,
                                     mp_context=context,
                                     initializer=_mark_worker) as pool:
                # The first submit forks every worker; timing a no-op
                # round-trip isolates spawn-up cost from task cost.
                pool.submit(_probe).result()
                fork_ms = (time.perf_counter() - fork_start) * 1000.0
                _FORK_MS.inc(fork_ms)
                outcomes = list(pool.map(_run_task, range(len(items)),
                                         chunksize=chunksize))
        finally:
            _PAYLOAD = None
        results = _merge_outcomes(outcomes)
        log.debug("parallel.merged", n_items=len(items),
                  fork_ms=round(fork_ms, 2))
        return results

    def map_shared(self, fn: Callable[[Any, Any], Any],
                   items: Iterable[Any], state: Any,
                   version: int = 0) -> List[Any]:
        """Like :meth:`map`, but over a pool that *persists* between
        calls, with *state* shipped to workers once, at fork time.

        Parameters
        ----------
        fn:
            Called as ``fn(state, item)``.  Must be picklable (a
            module-level function) — unlike :meth:`map`, the pool may
            outlive this call, so the task payload travels by pickle;
            only *state* rides the fork.
        items:
            Task items, also pickled per call.  Results return in
            submission order, exceptions propagate.
        state:
            The heavyweight shared object (e.g. a fitted linker).  The
            pool is keyed on ``(id(state), version, workers)``; a call
            with the same key reuses the live workers without forking
            (``parallel_pool_reuse_total``), any other key retires the
            old pool first — a forked worker's memory image is frozen
            at birth, so a mutated or different state *must* re-fork.
        version:
            Caller-maintained state version; bump it after mutating
            *state* (refit, incremental growth) to invalidate the pool.
        """
        global _POOL, _POOL_KEY, _SHARED
        items = list(items)
        _WORKERS_GAUGE.set(self.workers)
        _TASKS.inc(len(items))
        if self.workers <= 1 or len(items) <= 1:
            return [fn(state, item) for item in items]
        cores = available_cores()
        if _gate_enabled() and self.workers > cores:
            _GATED.inc()
            log.info("parallel.gated_serial", workers=self.workers,
                     cores=cores, n_items=len(items))
            return [fn(state, item) for item in items]
        if _PAYLOAD is not None or _IN_WORKER:
            log.debug("parallel.nested_serial", n_items=len(items))
            return [fn(state, item) for item in items]
        if "fork" not in multiprocessing.get_all_start_methods():
            log.warning("parallel.no_fork", n_items=len(items),
                        workers=self.workers)
            return [fn(state, item) for item in items]
        key = (id(state), int(version), self.workers)
        if _POOL is not None and _POOL_KEY == key:
            _POOL_REUSE.inc()
            pool = _POOL
        else:
            shutdown_pools()
            _SHARED = state
            context = multiprocessing.get_context("fork")
            _POOLS.inc()
            fork_start = time.perf_counter()
            pool = ProcessPoolExecutor(max_workers=self.workers,
                                       mp_context=context,
                                       initializer=_mark_worker)
            try:
                pool.submit(_probe).result()
            except Exception:
                pool.shutdown(wait=False, cancel_futures=True)
                _SHARED = None
                raise
            _FORK_MS.inc((time.perf_counter() - fork_start) * 1000.0)
            _POOL, _POOL_KEY = pool, key
            log.debug("parallel.pool_forked", workers=self.workers,
                      version=int(version))
        chunksize = max(1, len(items) // (self.workers * 4))
        try:
            outcomes = list(pool.map(_run_shared,
                                     [(fn, item) for item in items],
                                     chunksize=chunksize))
        except Exception:
            # A broken pool (killed worker, unpicklable payload) must
            # not poison the *next* call with dead processes.
            shutdown_pools()
            raise
        return _merge_outcomes(outcomes)


def _merge_outcomes(outcomes: Sequence[Tuple[Any, dict, List[dict]]],
                    ) -> List[Any]:
    """Fold worker results, metric deltas and spans into the parent."""
    merge_start = time.perf_counter()
    registry = get_registry()
    tracer = get_tracer()
    results: List[Any] = []
    for result, snapshot, span_dicts in outcomes:
        # Gauges are instantaneous values of a dead worker; merging
        # them would clobber live parent values (last-write-wins).
        registry.merge({name: data for name, data in snapshot.items()
                        if data.get("type") != "gauge"})
        if tracer.enabled:
            for span_dict in span_dicts:
                # Worker spans keep their own pid/tid, so the
                # Chrome-trace export renders one lane per worker.
                tracer.attach(Span.from_dict(span_dict))
        results.append(result)
    _MERGE_MS.inc((time.perf_counter() - merge_start) * 1000.0)
    return results
