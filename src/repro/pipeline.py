"""High-level end-to-end API: from raw forums to linked aliases.

This is the entry point a downstream user wants: hand over two raw
forum dumps (or synthetic worlds), get back scored alias pairs.

    from repro import LinkingPipeline
    from repro.synth import build_world

    world = build_world()
    pipeline = LinkingPipeline()
    result = pipeline.link_forums(world.forums["reddit"],
                                  world.forums["tmg"])
    for match in result.accepted():
        print(match.unknown_id, "->", match.candidate_id, match.score)

The pipeline bundles the paper's full method: the 12-step polishing of
Section III-C, the refinement floors of Section IV-D, the two-stage
attribution of Section IV-I, and (optionally) the batched variant of
Section IV-J.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config import PipelineConfig
from repro.core.batch import BatchedLinker
from repro.core.documents import AliasDocument, refine_forum
from repro.core.features import FeatureWeights
from repro.core.linker import AliasLinker, LinkResult
from repro.core.structure import structure_profiles
from repro.errors import ConfigurationError, InsufficientDataError
from repro.forums.models import Forum
from repro.obs.logging import get_logger
from repro.obs.spans import span
from repro.perf.blocked import resolve_block_size
from repro.perf.invindex import resolve_shards
from repro.resilience.degrade import DeadlineBudget
from repro.resilience.faults import GUARD_POLICY_DELAYS, get_fault_plan
from repro.resilience.policy import RetryPolicy
from repro.textproc.cleaning import CleaningConfig, PolishReport, \
    polish_forum

log = get_logger(__name__)


@dataclass
class PipelineReport:
    """What happened at each step of an end-to-end run."""

    polish_known: Optional[PolishReport] = None
    polish_unknown: Optional[PolishReport] = None
    refined_known: int = 0
    refined_unknown: int = 0


class LinkingPipeline:
    """Polish, refine and link two forums end to end.

    Parameters
    ----------
    config:
        Pipeline constants (k, word budget, threshold, feature
        budgets); defaults reproduce the paper's configuration.
    cleaning:
        Polishing configuration (Section III-C).
    weights:
        Feature block weights.
    batch_size:
        When set, the RAM-bounded batched procedure of Section IV-J is
        used with this *B* instead of the in-memory linker.
    retry_policy:
        Retry budget for transient stage failures (injected faults,
        flaky I/O).  ``None`` retries only when a fault plan is active
        (with a default policy); pass an explicit
        :class:`~repro.resilience.policy.RetryPolicy` to also absorb
        real ``TransientError`` / ``ConnectionError`` / ``TimeoutError``
        from the stages, or to tune attempts and the deadline.
    workers:
        Worker processes for the stage-2 restage (``None`` reads
        ``REPRO_WORKERS``; 1 = serial).  Any worker count produces
        bit-identical output.
    cache / block_size:
        Profile-caching policy and stage-1 scoring block size,
        forwarded to the linker (see
        :class:`~repro.core.linker.AliasLinker`).
    stage1 / shards / build_jobs:
        Stage-1 scoring strategy (``"dense"``, ``"blocked"``,
        ``"invindex"`` or ``"auto"``), inverted-index shard count and
        index-build parallelism, forwarded to the linker.  Every
        strategy produces bit-identical links.
    """

    def __init__(self, config: PipelineConfig | None = None,
                 cleaning: CleaningConfig | None = None,
                 weights: FeatureWeights | None = None,
                 batch_size: Optional[int] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 workers: Optional[int] = None,
                 cache: bool = True,
                 block_size: Optional[int] = None,
                 stage1: str = "blocked",
                 shards: Optional[int] = None,
                 build_jobs: Optional[int] = None) -> None:
        self.config = config or PipelineConfig()
        self.cleaning = cleaning or CleaningConfig()
        self.weights = weights or FeatureWeights()
        self.batch_size = batch_size
        self.retry_policy = retry_policy
        self.workers = workers
        self.cache = cache
        self.block_size = block_size
        self.stage1 = stage1
        self.shards = shards
        self.build_jobs = build_jobs
        self.report = PipelineReport()

    def manifest_config(self) -> Dict[str, object]:
        """The pipeline's effective knobs for a run manifest.

        Everything that changes the output (or its performance shape)
        of a run, flattened to JSON scalars — what
        :func:`repro.obs.manifest.build_manifest` records so two
        result files can be compared knowing they came from the same
        setup.
        """
        return {
            "k": self.config.k,
            "words_per_alias": self.config.words_per_alias,
            "threshold": self.config.threshold,
            "use_activity": self.config.use_activity,
            "use_structure": self.config.use_structure,
            "use_lemmatization": self.config.use_lemmatization,
            "min_timestamps": self.config.min_timestamps,
            "batch_size": self.batch_size,
            "workers": self.workers,
            "cache": self.cache,
            # Perf knobs are recorded *resolved* (argument > env >
            # default), so the manifest states the concrete values the
            # run actually used, not "None, ask the environment".
            "block_size": resolve_block_size(self.block_size),
            "stage1": self.stage1,
            "shards": resolve_shards(self.shards),
            "build_jobs": self.build_jobs or 1,
        }

    def _guard(self, site: str, fn, *args, **kwargs):
        """Run one pipeline stage under fault injection + retries.

        Stages are pure functions of their inputs, so retrying a whole
        stage after a transient failure reproduces exactly the result
        an undisturbed run would have produced.
        """
        plan = get_fault_plan()
        target = plan.wrap(site, fn) if plan is not None else fn
        policy = self.retry_policy
        if policy is None:
            if plan is None:
                return fn(*args, **kwargs)
            policy = RetryPolicy(seed=plan.seed, **GUARD_POLICY_DELAYS)
        return policy.call(target, *args, **kwargs)

    def prepare_forum(self, forum: Forum,
                      is_known: bool = True) -> List[AliasDocument]:
        """Polish and refine one forum into alias documents.

        Timestamps in :class:`~repro.forums.models.Message` are UTC by
        contract (the simulated scrapers already realign the local
        times the forum software displays, Section IV-B), so no further
        shift is applied here.  Callers holding *naively* collected
        local-time dumps should refine with
        :func:`repro.core.documents.refine_forum` and an explicit
        ``utc_shift_hours``.
        """
        role = "known" if is_known else "unknown"
        with span("pipeline.prepare_forum", forum=forum.name, role=role):
            profiles = None
            if self.config.use_structure:
                # Structure comes from collection metadata (reply
                # graph, threads, timestamps), so it is computed on
                # the raw forum: polishing only rewrites text and
                # must not disturb it.
                with span("pipeline.structure", forum=forum.name):
                    profiles = self._guard(
                        "pipeline.structure", structure_profiles, forum)
            with span("pipeline.polish", forum=forum.name):
                polished, polish_report = self._guard(
                    "pipeline.polish", polish_forum, forum,
                    self.cleaning)
            with span("pipeline.refine", forum=forum.name):
                documents = self._guard(
                    "pipeline.refine", refine_forum,
                    polished,
                    words_per_alias=self.config.words_per_alias,
                    min_timestamps=self.config.min_timestamps,
                    use_lemmatization=self.config.use_lemmatization,
                    require_activity=self.config.use_activity,
                    structure_profiles=profiles,
                )
        log.info("pipeline.prepare_forum", forum=forum.name, role=role,
                 refined=len(documents))
        if is_known:
            self.report.polish_known = polish_report
            self.report.refined_known = len(documents)
        else:
            self.report.polish_unknown = polish_report
            self.report.refined_unknown = len(documents)
        return documents

    def _make_linker(self):
        weights = self.weights if self.config.use_activity \
            else self.weights.without_activity()
        if self.batch_size is not None:
            return BatchedLinker(
                batch_size=self.batch_size,
                k=self.config.k,
                threshold=self.config.threshold,
                reduction_budget=self.config.reduction_budget,
                final_budget=self.config.final_budget,
                weights=weights,
                use_activity=self.config.use_activity,
                use_structure=self.config.use_structure,
                workers=self.workers,
                cache=self.cache,
                block_size=self.block_size,
                stage1=self.stage1,
                shards=self.shards,
                build_jobs=self.build_jobs,
            )
        return AliasLinker(
            k=self.config.k,
            threshold=self.config.threshold,
            reduction_budget=self.config.reduction_budget,
            final_budget=self.config.final_budget,
            weights=weights,
            use_activity=self.config.use_activity,
            use_structure=self.config.use_structure,
            workers=self.workers,
            cache=self.cache,
            block_size=self.block_size,
            stage1=self.stage1,
            shards=self.shards,
            build_jobs=self.build_jobs,
        )

    def link_documents(self, known: List[AliasDocument],
                       unknown: List[AliasDocument],
                       checkpoint: Optional[object] = None,
                       resume: bool = False,
                       budget: Optional[DeadlineBudget] = None,
                       ) -> LinkResult:
        """Link already-refined document sets.

        *checkpoint* persists every finished unknown atomically to that
        path; *resume* additionally skips the unknowns an interrupted
        run already completed (the result equals an uninterrupted
        run's).  *budget* bounds the linking stage's wall-clock (see
        :meth:`repro.core.linker.AliasLinker.link`).
        """
        if resume and checkpoint is None:
            raise ConfigurationError(
                "resume requires a checkpoint path")
        if not known:
            raise InsufficientDataError(
                "no known aliases survived refinement")
        if not unknown:
            raise InsufficientDataError(
                "no unknown aliases survived refinement")
        with span("pipeline.link_documents", n_known=len(known),
                  n_unknown=len(unknown),
                  batched=self.batch_size is not None):
            linker = self._make_linker()
            self._guard("pipeline.fit", linker.fit, known)
            return self._guard("pipeline.link", linker.link, unknown,
                               checkpoint=checkpoint, resume=resume,
                               budget=budget)

    def link_forums(self, known_forum: Forum,
                    unknown_forum: Forum,
                    checkpoint: Optional[object] = None,
                    resume: bool = False,
                    budget: Optional[DeadlineBudget] = None,
                    ) -> LinkResult:
        """The one-call API: polish, refine and link two raw forums.

        *known_forum* plays the paper's set Z (e.g. Reddit); every
        refined alias of *unknown_forum* (e.g. a dark-web forum) is
        linked against it.  See :meth:`link_documents` for
        *checkpoint* / *resume* / *budget*.
        """
        known = self.prepare_forum(known_forum, is_known=True)
        unknown = self.prepare_forum(unknown_forum, is_known=False)
        return self.link_documents(known, unknown,
                                   checkpoint=checkpoint, resume=resume,
                                   budget=budget)
