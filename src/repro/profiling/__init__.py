"""De-anonymization profiling: extracting personal information from an
open alias's posting history (Section V-D).
"""

from repro.profiling.extractor import (
    Fact,
    ProfileExtractor,
    UserProfile,
)
from repro.profiling.report import render_report, summary_line

__all__ = [
    "Fact",
    "ProfileExtractor",
    "UserProfile",
    "render_report",
    "summary_line",
]
