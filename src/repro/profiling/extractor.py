"""Personal-information extraction from open-web posts (Section V-D).

Once a dark alias is linked to an open alias, the open alias's posting
history is a goldmine: the paper reconstructs a user's age, city,
family situation, job loss, relationship length, video-game accounts,
phone model and travel habits purely from his Reddit comments.

This module implements that final step as a rule-based extractor: a
battery of compiled patterns over the raw (pre-polishing) messages,
each yielding a typed :class:`Fact` with the message that evidences it.
Patterns are deliberately high-precision — a wrong fact in a profile is
worse than a missing one in an investigation support tool.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Pattern, Sequence, Tuple

from repro.forums.models import Message, UserRecord
from repro.synth import wordlists

#: Fact kinds the extractor produces.
AGE = "age"
CITY = "city"
COUNTRY = "country"
OCCUPATION = "occupation"
PHONE = "phone"
GAME = "game"
HOBBY = "hobby"
RELIGION = "religion"
POLITICS = "politics"
DRUG = "drug"
VENDOR = "vendor"
RELATIONSHIP = "relationship"
TRAVEL = "travel"


@dataclass(frozen=True)
class Fact:
    """One extracted fact with its supporting evidence.

    Attributes
    ----------
    kind:
        One of the module-level fact kinds.
    value:
        The extracted value, normalized (e.g. ``"27"`` for age).
    message_id:
        Where the fact was found.
    snippet:
        A short excerpt evidencing the extraction.
    """

    kind: str
    value: str
    message_id: str
    snippet: str


def _snippet(text: str, start: int, end: int, radius: int = 40) -> str:
    lo = max(0, start - radius)
    hi = min(len(text), end + radius)
    prefix = "..." if lo > 0 else ""
    suffix = "..." if hi < len(text) else ""
    return prefix + text[lo:hi].strip() + suffix


class _PatternRule:
    """A compiled regex + normalization producing facts of one kind.

    Rules are case-insensitive by default; rules whose captured value
    relies on capitalization (city names, travel destinations) compile
    case-sensitively and mark their trigger phrase ``(?i:...)``.
    """

    def __init__(self, kind: str, pattern: str,
                 group: str = "value",
                 case_sensitive: bool = False) -> None:
        self.kind = kind
        flags = 0 if case_sensitive else re.IGNORECASE
        self.regex: Pattern[str] = re.compile(pattern, flags)
        self.group = group

    def extract(self, message: Message) -> Iterable[Fact]:
        for match in self.regex.finditer(message.text):
            value = match.group(self.group).strip()
            if not value:
                continue
            yield Fact(
                kind=self.kind,
                value=value,
                message_id=message.message_id,
                snippet=_snippet(message.text, match.start(),
                                 match.end()),
            )


def _alternatives(values: Sequence[str]) -> str:
    """Regex alternation over literal values, longest first."""
    ordered = sorted(values, key=len, reverse=True)
    return "|".join(re.escape(v) for v in ordered)


#: Rules over free text (value captured from the message itself).
_RULES: Tuple[_PatternRule, ...] = (
    _PatternRule(AGE,
                 r"\b(?:i am|i'm|as a)\s+(?P<value>1[89]|[2-6]\d)\s*"
                 r"(?:years? old|year old|yo\b|m\b|f\b)"),
    _PatternRule(CITY,
                 r"\b(?i:i live in|greetings from|i'm from|i am from)"
                 r"\s+(?P<value>[A-Z][a-z]+(?:\s[A-Z][a-z]+)?)",
                 case_sensitive=True),
    _PatternRule(RELATIONSHIP,
                 r"\b(?:my (?:girlfriend|boyfriend|wife|husband|partner))"
                 r"\b(?P<value>)"),
    _PatternRule(TRAVEL,
                 r"\b(?i:flying|travelling|traveling|heading|trip)\s+"
                 r"(?i:to)\s+"
                 r"(?P<value>[A-Z][a-z]+(?:\s[A-Z][a-z]+)?)",
                 case_sensitive=True),
)

#: Rules over closed vocabularies (value from a known inventory).
_COUNTRIES = tuple(sorted({country for _, country in wordlists.CITIES}))
_COUNTRY_RULE = _PatternRule(
    COUNTRY, r"\b(?:here in|shipping to|live in)\s+"
             rf"(?P<value>{_alternatives(_COUNTRIES)})\b")
_OCCUPATION_RULE = _PatternRule(
    OCCUPATION, r"\b(?:i work as a|being a|my job as a)\s+"
                rf"(?P<value>{_alternatives(wordlists.OCCUPATIONS)})\b")
_PHONE_RULE = _PatternRule(
    PHONE, r"\b(?:my|from my|typing this from my)\s+"
           rf"(?P<value>{_alternatives(wordlists.PHONES)})")
_GAME_RULE = _PatternRule(
    GAME, rf"\b(?:playing|play|add me on|squad up[^.]*?on)\s+"
          rf"(?P<value>{_alternatives(wordlists.VIDEO_GAMES)})")
_HOBBY_RULE = _PatternRule(
    HOBBY, rf"\b(?:into|love|started|hooked on)\s+"
           rf"(?P<value>{_alternatives(wordlists.HOBBIES)})")
_RELIGION_RULE = _PatternRule(
    RELIGION, rf"\b(?:as a|i was raised|i am|i'm)\s+"
              rf"(?P<value>{_alternatives(wordlists.RELIGIONS)})\b")
_POLITICS_RULE = _PatternRule(
    POLITICS, r"\b(?:politically[^.]*?|my views are pretty\s+)"
              r"(?P<value>progressive|conservative|libertarian|"
              r"apolitical)\b")
_DRUG_RULE = _PatternRule(
    DRUG, rf"\b(?:for me|i mostly stick to|batch of|quality)\s+"
          rf"(?P<value>{_alternatives(wordlists.DRUGS)})\b")
_VENDOR_RULE = _PatternRule(
    VENDOR, rf"\b(?:avoid|disappointed,?)\s+"
            rf"(?P<value>{_alternatives(wordlists.VENDOR_NAMES)})\b")

ALL_RULES: Tuple[_PatternRule, ...] = _RULES + (
    _COUNTRY_RULE, _OCCUPATION_RULE, _PHONE_RULE, _GAME_RULE,
    _HOBBY_RULE, _RELIGION_RULE, _POLITICS_RULE, _DRUG_RULE,
    _VENDOR_RULE,
)

#: Kinds where one value is expected: the most-evidenced wins.
_SINGLE_VALUED = (AGE, CITY, OCCUPATION, PHONE, RELIGION, POLITICS)


@dataclass
class UserProfile:
    """Everything extracted about one alias.

    Single-valued kinds (age, city, phone...) expose convenience
    accessors returning the best-evidenced value; multi-valued kinds
    (games, hobbies, travels) return ranked lists.
    """

    alias: str
    forum: str
    facts: List[Fact] = field(default_factory=list)

    def values(self, kind: str) -> List[Tuple[str, int]]:
        """(value, evidence count) for *kind*, most evidenced first."""
        counts = Counter(f.value for f in self.facts if f.kind == kind)
        return counts.most_common()

    def best(self, kind: str) -> Optional[str]:
        """The single most-evidenced value for *kind*, if any."""
        ranked = self.values(kind)
        return ranked[0][0] if ranked else None

    @property
    def age(self) -> Optional[str]:
        return self.best(AGE)

    @property
    def city(self) -> Optional[str]:
        return self.best(CITY)

    @property
    def phone(self) -> Optional[str]:
        return self.best(PHONE)

    @property
    def occupation(self) -> Optional[str]:
        return self.best(OCCUPATION)

    @property
    def games(self) -> List[str]:
        return [v for v, _ in self.values(GAME)]

    @property
    def hobbies(self) -> List[str]:
        return [v for v, _ in self.values(HOBBY)]

    @property
    def travels(self) -> List[str]:
        return [v for v, _ in self.values(TRAVEL)]

    def evidence_for(self, kind: str, value: str) -> List[Fact]:
        """All facts supporting a (kind, value) claim."""
        return [f for f in self.facts
                if f.kind == kind and f.value == value]

    def completeness(self) -> float:
        """Fraction of single-valued kinds with at least one value."""
        found = sum(1 for kind in _SINGLE_VALUED if self.best(kind))
        return found / len(_SINGLE_VALUED)


class ProfileExtractor:
    """Run every extraction rule over a user's messages."""

    def __init__(self, rules: Sequence[_PatternRule] = ALL_RULES) -> None:
        self.rules = tuple(rules)

    def extract_message(self, message: Message) -> List[Fact]:
        """All facts found in one message."""
        facts: List[Fact] = []
        for rule in self.rules:
            facts.extend(rule.extract(message))
        return facts

    def extract(self, record: UserRecord) -> UserProfile:
        """Build the full profile of one alias."""
        profile = UserProfile(alias=record.alias, forum=record.forum)
        for message in record.messages:
            profile.facts.extend(self.extract_message(message))
        return profile
