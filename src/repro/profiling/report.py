"""Render extracted profiles as investigator-style reports (§V-D).

The paper closes its results with a narrative profile of "John Doe" — a
27-year-old from Edmonton with a Samsung Galaxy S4 who plays Fallout
and travels to New York.  :func:`render_report` produces the same kind
of dossier from a :class:`~repro.profiling.extractor.UserProfile`,
always citing the message each claim rests on, because an investigation
support tool that cannot show its evidence is useless.
"""

from __future__ import annotations

from typing import List, Optional

from repro.profiling.extractor import (
    AGE,
    CITY,
    DRUG,
    GAME,
    HOBBY,
    OCCUPATION,
    PHONE,
    POLITICS,
    RELIGION,
    TRAVEL,
    VENDOR,
    UserProfile,
)

#: Kind -> human-readable label, in report order.
_SECTIONS = (
    (AGE, "Age"),
    (CITY, "Location"),
    (OCCUPATION, "Occupation"),
    (PHONE, "Phone"),
    (RELIGION, "Religion"),
    (POLITICS, "Politics"),
    (GAME, "Video games"),
    (HOBBY, "Hobbies"),
    (TRAVEL, "Travel"),
    (DRUG, "Substances mentioned"),
    (VENDOR, "Vendors complained about"),
)


def summary_line(profile: UserProfile) -> str:
    """One-sentence summary in the style of the paper's John Doe."""
    parts: List[str] = [profile.alias]
    if profile.age:
        parts.append(f"is a {profile.age} year old")
    if profile.city:
        parts.append(f"from {profile.city}")
    if profile.occupation:
        parts.append(f"working as a {profile.occupation}")
    if profile.phone:
        parts.append(f"posting from a {profile.phone}")
    if len(parts) == 1:
        return f"{profile.alias}: no personal facts extracted."
    return " ".join(parts) + "."


def render_report(profile: UserProfile,
                  max_evidence: int = 2,
                  dark_alias: Optional[str] = None) -> str:
    """Full plain-text dossier with per-claim evidence snippets.

    Parameters
    ----------
    profile:
        The extracted profile of the *open* alias.
    max_evidence:
        How many supporting snippets to quote per claim.
    dark_alias:
        When the open alias has been linked to a dark one, name it —
        the paper's point is precisely that this line can be written.
    """
    lines: List[str] = []
    lines.append("=" * 64)
    lines.append(f"PROFILE: {profile.alias} ({profile.forum})")
    if dark_alias:
        lines.append(f"LINKED DARK ALIAS: {dark_alias}")
    lines.append("=" * 64)
    lines.append(summary_line(profile))
    lines.append("")
    for kind, label in _SECTIONS:
        ranked = profile.values(kind)
        if not ranked:
            continue
        rendered = ", ".join(
            f"{value} (x{count})" if count > 1 else value
            for value, count in ranked
        )
        lines.append(f"{label}: {rendered}")
        top_value = ranked[0][0]
        for fact in profile.evidence_for(kind, top_value)[:max_evidence]:
            lines.append(f'    [{fact.message_id}] "{fact.snippet}"')
    lines.append("")
    lines.append(f"Profile completeness: {profile.completeness():.0%} "
                 f"({len(profile.facts)} facts extracted)")
    return "\n".join(lines)
