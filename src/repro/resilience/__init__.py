"""repro.resilience — fault tolerance for long-running linking runs.

The paper's environment (scraped hidden services, multi-hour batch
attribution over messy data) fails constantly; this package gives every
layer one shared vocabulary for surviving it:

* :mod:`repro.resilience.policy` — :class:`RetryPolicy`: exponential
  backoff with deterministic jitter, attempt caps, and a total-deadline
  budget (used by the scraper, storage I/O, and pipeline stages);
* :mod:`repro.resilience.faults` — :class:`FaultPlan`: seeded,
  reproducible injection of transient failures, record corruption,
  clock skew, and filesystem faults — torn writes, ``ENOSPC``, bit
  flips on read (``REPRO_FAULT_SEED`` / ``REPRO_FAULT_RATE`` /
  ``REPRO_FAULT_KINDS`` activate it process-wide, which is how the CI
  chaos job runs);
* :mod:`repro.resilience.checkpoint` — :class:`CheckpointStore`:
  atomic per-unknown checkpoints that make
  :class:`~repro.core.batch.BatchedLinker` runs resumable with output
  identical to an uninterrupted run;
* :mod:`repro.resilience.snapshot` — crash-safe persistent index
  snapshots: :func:`save_index` / :func:`load_index` round-trip a
  fitted linker bit-identically, :func:`verify_index` /
  :func:`salvage_index` audit and recover damaged files;
* :mod:`repro.resilience.degrade` — :class:`DeadlineBudget` and
  :class:`CircuitBreaker`: per-call wall-clock budgets and stage
  breakers that turn overruns into partial-but-honest degraded
  results instead of blown deadlines.

Semantics and file formats: ``docs/robustness.md``.
"""

from repro.resilience.checkpoint import CHECKPOINT_SCHEMA, CheckpointStore
from repro.resilience.degrade import CircuitBreaker, DeadlineBudget
from repro.resilience.faults import (
    DEFAULT_FAULT_RATE,
    FAULT_KINDS,
    FAULT_KINDS_ENV,
    FAULT_RATE_ENV,
    FAULT_SEED_ENV,
    FaultPlan,
    get_fault_plan,
    guarded_call,
    install_fault_plan,
    plan_from_env,
)
from repro.resilience.policy import DEFAULT_RETRYABLE, NO_RETRY, RetryPolicy
from repro.resilience.snapshot import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    SectionStatus,
    SnapshotReport,
    load_index,
    salvage_index,
    save_index,
    snapshot_info,
    verify_index,
)

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointStore",
    "CircuitBreaker",
    "DEFAULT_FAULT_RATE",
    "DEFAULT_RETRYABLE",
    "DeadlineBudget",
    "FAULT_KINDS",
    "FAULT_KINDS_ENV",
    "FAULT_RATE_ENV",
    "FAULT_SEED_ENV",
    "FaultPlan",
    "NO_RETRY",
    "RetryPolicy",
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "SectionStatus",
    "SnapshotReport",
    "get_fault_plan",
    "guarded_call",
    "install_fault_plan",
    "load_index",
    "plan_from_env",
    "salvage_index",
    "save_index",
    "snapshot_info",
    "verify_index",
]
