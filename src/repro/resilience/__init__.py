"""repro.resilience — fault tolerance for long-running linking runs.

The paper's environment (scraped hidden services, multi-hour batch
attribution over messy data) fails constantly; this package gives every
layer one shared vocabulary for surviving it:

* :mod:`repro.resilience.policy` — :class:`RetryPolicy`: exponential
  backoff with deterministic jitter, attempt caps, and a total-deadline
  budget (used by the scraper, storage I/O, and pipeline stages);
* :mod:`repro.resilience.faults` — :class:`FaultPlan`: seeded,
  reproducible injection of transient failures, record corruption, and
  clock skew (``REPRO_FAULT_SEED`` / ``REPRO_FAULT_RATE`` activate it
  process-wide, which is how the CI chaos job runs);
* :mod:`repro.resilience.checkpoint` — :class:`CheckpointStore`:
  atomic per-unknown checkpoints that make
  :class:`~repro.core.batch.BatchedLinker` runs resumable with output
  identical to an uninterrupted run.

Semantics and file formats: ``docs/robustness.md``.
"""

from repro.resilience.checkpoint import CHECKPOINT_SCHEMA, CheckpointStore
from repro.resilience.faults import (
    DEFAULT_FAULT_RATE,
    FAULT_RATE_ENV,
    FAULT_SEED_ENV,
    FaultPlan,
    get_fault_plan,
    guarded_call,
    install_fault_plan,
    plan_from_env,
)
from repro.resilience.policy import DEFAULT_RETRYABLE, NO_RETRY, RetryPolicy

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointStore",
    "DEFAULT_FAULT_RATE",
    "DEFAULT_RETRYABLE",
    "FAULT_RATE_ENV",
    "FAULT_SEED_ENV",
    "FaultPlan",
    "NO_RETRY",
    "RetryPolicy",
    "get_fault_plan",
    "guarded_call",
    "install_fault_plan",
    "plan_from_env",
]
