"""Atomic, resumable checkpoints for long-running linking runs.

Linking tens of thousands of unknown aliases against a large known set
is a multi-hour batch job; a crash at hour three must not cost hours
one and two.  A :class:`CheckpointStore` persists the per-unknown
output of :class:`~repro.core.batch.BatchedLinker` /
:class:`~repro.core.linker.AliasLinker` as it is produced, and a
resumed run skips every unknown already present.

File format — JSONL, one object per line:

* line 1: ``{"kind": "link-checkpoint", "schema": 1,
  "fingerprint": {...}}`` — the fingerprint pins the run configuration
  (known-corpus size, k, threshold, batch size) so a checkpoint is
  never silently replayed against a different run;
* following lines: ``{"unknown_id": ..., "matches": [...],
  "scores": [[candidate_id, score], ...]}`` — one fully-linked unknown
  per line, in completion order.

Durability: every :meth:`record` rewrites the file to a sibling
``*.tmp`` and atomically :func:`os.replace`-s it over the target, so
the file on disk is always a complete, parseable checkpoint — a crash
can lose at most the unknown in flight.  Scores are round-tripped
through JSON at record time, which is exact for Python floats, so a
resumed run's :class:`~repro.core.linker.LinkResult` is identical to an
uninterrupted one.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import CheckpointError
from repro.obs.logging import get_logger
from repro.obs.metrics import counter

log = get_logger(__name__)

PathLike = Union[str, os.PathLike]

#: Checkpoint schema version; bumped on breaking format changes.
CHECKPOINT_SCHEMA = 1

#: Atomic checkpoint flushes performed.
_WRITES = counter("checkpoint_writes_total")
#: Unknowns skipped on resume because a checkpoint already had them.
_RESUMED = counter("checkpoint_entries_resumed_total")
#: Torn trailing lines quarantined by salvage loads.
_SALVAGED = counter("checkpoint_lines_salvaged_total")


def _roundtrip(value: Any) -> Any:
    """Normalize *value* through JSON so recorded-now and loaded-later
    entries compare equal (exact for floats; tuples become lists)."""
    return json.loads(json.dumps(value))


class CheckpointStore:
    """Per-unknown results of one linking run, persisted atomically.

    Parameters
    ----------
    path:
        Checkpoint file location (created on first :meth:`record`).
    fingerprint:
        JSON-serializable description of the run configuration.  On
        :meth:`load`, a stored fingerprint that differs raises
        :class:`~repro.errors.CheckpointError`.
    """

    def __init__(self, path: PathLike,
                 fingerprint: Optional[Dict[str, Any]] = None) -> None:
        self.path = Path(path)
        self.fingerprint = _roundtrip(fingerprint) \
            if fingerprint is not None else None
        self._entries: Dict[str, Dict[str, Any]] = {}

    # -- state ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, unknown_id: str) -> bool:
        return unknown_id in self._entries

    @property
    def completed_ids(self) -> List[str]:
        """Unknown ids already linked, in completion order."""
        return list(self._entries)

    def matches_for(self, unknown_id: str) -> List["Match"]:
        """The stored matches of *unknown_id* (usually exactly one)."""
        # Imported here, not at module level: repro.core.linker imports
        # this module for its checkpoint support.
        from repro.core.linker import Match

        entry = self._entries[unknown_id]
        return [Match.from_dict(m) for m in entry["matches"]]

    def scores_for(self, unknown_id: str) -> List[Tuple[str, float]]:
        """The stored candidate scores of *unknown_id*."""
        entry = self._entries[unknown_id]
        return [(str(cid), float(score))
                for cid, score in entry["scores"]]

    def skipped_for(self, unknown_id: str) -> Optional[Dict[str, Any]]:
        """The quarantine record of *unknown_id*, or ``None`` if it was
        linked normally (see ``LinkResult.skipped``)."""
        return self._entries[unknown_id].get("skipped")

    # -- persistence ----------------------------------------------------------

    def load(self, salvage: bool = False) -> "CheckpointStore":
        """Read an existing checkpoint file into memory.

        Raises :class:`~repro.errors.CheckpointError` on a missing
        file, a bad header, or a fingerprint mismatch.  By default a
        torn trailing line (possible only if the file was produced by
        something other than this class's atomic writer — e.g. a crash
        mid-append on a copied file) is rejected too; with *salvage*
        set, a corrupt **final** entry is quarantined to a
        ``<name>.quarantined`` sidecar and the complete records before
        it are kept, so ``--resume`` recovers everything that was
        durably written.  Corruption anywhere *before* the tail still
        raises — mid-file damage means the file cannot be trusted.
        """
        if not self.path.exists():
            raise CheckpointError(f"{self.path}: no such checkpoint")
        try:
            lines = self.path.read_text(
                encoding="utf-8").splitlines()
        except OSError as exc:
            raise CheckpointError(
                f"{self.path}: unreadable checkpoint: {exc}") from exc
        if not lines:
            raise CheckpointError(f"{self.path}: empty checkpoint file")
        header = self._parse_header(lines[0])
        stored = header.get("fingerprint")
        if self.fingerprint is not None and stored is not None \
                and stored != self.fingerprint:
            raise CheckpointError(
                f"{self.path}: checkpoint was written by a different "
                f"run configuration ({stored} != {self.fingerprint})")
        last_lineno = max(
            (lineno for lineno, line in enumerate(lines[1:], start=2)
             if line.strip()), default=None)
        entries: Dict[str, Dict[str, Any]] = {}
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            reason = None
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                reason = "corrupt checkpoint entry"
                entry = None
            if reason is None and (not isinstance(entry, dict)
                                   or "unknown_id" not in entry):
                reason = "malformed checkpoint entry"
            if reason is not None:
                if salvage and lineno == last_lineno:
                    self._quarantine_line(lineno, line, reason)
                    break
                raise CheckpointError(
                    f"{self.path}:{lineno}: {reason}")
            entries[str(entry["unknown_id"])] = entry
        self._entries = entries
        _RESUMED.inc(len(entries))
        return self

    def _quarantine_line(self, lineno: int, line: str,
                         reason: str) -> None:
        """Preserve a torn tail line to a sidecar for later audit."""
        sidecar = self.path.with_name(self.path.name + ".quarantined")
        with open(sidecar, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
        _SALVAGED.inc()
        log.warning("checkpoint.salvage", path=str(self.path),
                    line=lineno, reason=reason, sidecar=str(sidecar))

    def _parse_header(self, line: str) -> Dict[str, Any]:
        try:
            header = json.loads(line)
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"{self.path}: corrupt checkpoint header") from exc
        if not isinstance(header, dict) or \
                header.get("kind") != "link-checkpoint":
            raise CheckpointError(
                f"{self.path}: not a link checkpoint file")
        schema = header.get("schema")
        if schema != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"{self.path}: unsupported checkpoint schema "
                f"{schema!r} (expected {CHECKPOINT_SCHEMA})")
        return header

    def record(self, unknown_id: str, matches: Iterable["Match"],
               scores: Iterable[Tuple[str, float]],
               skipped: Optional[Dict[str, Any]] = None) -> None:
        """Persist the finished *unknown_id* (atomic on disk).

        Quarantined unknowns are recorded too (with *skipped* set and
        empty matches), so a resumed run does not re-attempt a document
        the interrupted run already found malformed.

        The in-memory entry is the JSON round-trip of what was written,
        so results assembled from a live store and results assembled
        after :meth:`load` are indistinguishable.
        """
        entry = _roundtrip({
            "unknown_id": unknown_id,
            "matches": [m.to_dict() for m in matches],
            "scores": [[cid, score] for cid, score in scores],
            "skipped": skipped,
        })
        self._entries[str(unknown_id)] = entry
        self.flush()

    def flush(self) -> None:
        """Rewrite the checkpoint file atomically (temp + replace)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        header = {"kind": "link-checkpoint",
                  "schema": CHECKPOINT_SCHEMA,
                  "fingerprint": self.fingerprint,
                  "n_entries": len(self._entries)}
        temp = self.path.with_name(self.path.name + ".tmp")
        with open(temp, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(header, ensure_ascii=False) + "\n")
            for entry in self._entries.values():
                fh.write(json.dumps(entry, ensure_ascii=False) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(temp, self.path)
        _WRITES.inc()

    def discard(self) -> None:
        """Delete the checkpoint file (e.g. after a completed run)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
        self._entries = {}


def open_store(path: Optional[PathLike],
               fingerprint: Optional[Dict[str, Any]] = None,
               resume: bool = False) -> Optional[CheckpointStore]:
    """The linkers' entry point: ``None`` path → no checkpointing;
    otherwise a store, pre-loaded when *resume* is set and the file
    exists (a missing file on resume just starts fresh).  Resume loads
    salvage a torn trailing entry (see :meth:`CheckpointStore.load`)
    instead of refusing the whole file."""
    if path is None:
        return None
    store = CheckpointStore(path, fingerprint=fingerprint)
    if resume and store.path.exists():
        store.load(salvage=True)
    return store
