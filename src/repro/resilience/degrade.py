"""Degraded-mode execution: deadline budgets and circuit breakers.

A production linking service must answer *something* when a stage is
slow or broken — partial-but-honest beats late-or-dead.  Two small
primitives carry that policy for the linkers:

* :class:`DeadlineBudget` — a per-call wall-clock budget threaded
  through the linking stages.  Stages consult it between units of work;
  once the budget is spent, the expensive second stage is skipped and
  every remaining unknown is answered from the stage-1 candidate scores
  with an explicit ``degraded`` flag and a reason (``"stage1_only"``,
  ``"stylometry_only"``, ...).  With ``degraded_ok=False`` expiry
  raises :class:`~repro.errors.DeadlineExceededError` instead.

* :class:`CircuitBreaker` — trips after N *consecutive* failures of a
  stage and routes around it (the linker degrades exactly as under a
  spent deadline, with reason ``"stage2_circuit_open"``) instead of
  paying the failure cost once per unknown.  After ``recovery_time``
  seconds one trial call is let through (half-open); success closes the
  breaker, failure re-opens it.

Both take an injected ``clock`` (default :func:`time.monotonic`) so
tests control time exactly; neither ever sleeps.  Everything is
observable: ``deadline_expired_total`` counts budgets that ran out,
``circuit_breaker_opened_total`` / ``circuit_breaker_short_circuits_total``
count trips and routed-around calls, and both emit structured-log
events (``deadline.expired``, ``breaker.open``, ``breaker.close``).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.errors import ConfigurationError, DeadlineExceededError
from repro.obs.logging import get_logger
from repro.obs.metrics import counter

__all__ = ["DeadlineBudget", "CircuitBreaker"]

log = get_logger(__name__)

#: Deadline budgets that ran out before their call finished.
_EXPIRED = counter("deadline_expired_total")
#: Circuit breakers tripped open (closed/half-open -> open edges).
_OPENED = counter("circuit_breaker_opened_total")
#: Calls short-circuited because a breaker was open.
_SHORTED = counter("circuit_breaker_short_circuits_total")


class DeadlineBudget:
    """A wall-clock budget for one linking call.

    Parameters
    ----------
    deadline_ms:
        Total budget in milliseconds, measured on *clock* from
        construction time.
    degraded_ok:
        When ``True`` (the default) an expired budget makes the linkers
        return partial-but-honest results (degraded matches, deadline
        quarantines); when ``False``, the first stage boundary that
        observes expiry raises
        :class:`~repro.errors.DeadlineExceededError`.
    activity_reserve_ms:
        Shed the activity feature block early: once the remaining
        budget drops to this value, restages run ``stylometry_only``
        (activity scoring is the first honest cut).  ``0`` (default)
        never sheds early.
    clock:
        Monotonic-seconds source; injected by tests, defaults to
        :func:`time.monotonic`.  The clock is system-wide, so a budget
        created in a parent process stays meaningful across ``fork``.
    """

    def __init__(self, deadline_ms: float, degraded_ok: bool = True,
                 activity_reserve_ms: float = 0.0,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if deadline_ms <= 0:
            raise ConfigurationError(
                f"deadline_ms must be positive, got {deadline_ms}")
        if activity_reserve_ms < 0:
            raise ConfigurationError(
                f"activity_reserve_ms must be >= 0, "
                f"got {activity_reserve_ms}")
        self.deadline_ms = float(deadline_ms)
        self.degraded_ok = bool(degraded_ok)
        self.activity_reserve_ms = float(activity_reserve_ms)
        self._clock = clock if clock is not None else time.monotonic
        self._start = self._clock()
        self._reported = False

    def elapsed_ms(self) -> float:
        """Milliseconds consumed since construction."""
        return (self._clock() - self._start) * 1000.0

    def remaining_ms(self) -> float:
        """Milliseconds left (negative once over budget)."""
        return self.deadline_ms - self.elapsed_ms()

    def expired(self) -> bool:
        """Whether the budget is spent."""
        if self.remaining_ms() > 0.0:
            return False
        if not self._reported:
            self._reported = True
            _EXPIRED.inc()
            log.warning("deadline.expired",
                        deadline_ms=self.deadline_ms,
                        elapsed_ms=round(self.elapsed_ms(), 3))
        return True

    def activity_low(self) -> bool:
        """Whether the activity block should be shed (reserve hit)."""
        return self.remaining_ms() <= self.activity_reserve_ms

    def check(self, stage: str) -> None:
        """Raise at *stage* if expired and degradation is not allowed."""
        if self.expired() and not self.degraded_ok:
            raise DeadlineExceededError(
                f"deadline of {self.deadline_ms:g} ms exceeded after "
                f"{self.elapsed_ms():.1f} ms (stage: {stage})",
                stage=stage)


class CircuitBreaker:
    """Trip a stage after N consecutive failures; route around it.

    Parameters
    ----------
    name:
        Label used in metrics attributes and log events.
    failure_threshold:
        Consecutive :meth:`record_failure` calls that open the breaker.
    recovery_time:
        Seconds after opening before one half-open trial call is
        allowed.  ``None`` keeps the breaker open until :meth:`reset`.
    clock:
        Monotonic-seconds source (injected by tests).
    """

    def __init__(self, name: str = "stage2",
                 failure_threshold: int = 5,
                 recovery_time: Optional[float] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, "
                f"got {failure_threshold}")
        if recovery_time is not None and recovery_time <= 0:
            raise ConfigurationError(
                f"recovery_time must be positive, got {recovery_time}")
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._failures = 0
        self._state = "closed"
        self._opened_at: Optional[float] = None

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half_open"``."""
        with self._lock:
            return self._state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._failures

    def allow(self) -> bool:
        """Whether the guarded stage may run right now.

        An open breaker transitions to half-open (and lets one trial
        call through) once ``recovery_time`` has elapsed.
        """
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if self.recovery_time is not None and \
                        self._opened_at is not None and \
                        self._clock() - self._opened_at \
                        >= self.recovery_time:
                    self._state = "half_open"
                    log.info("breaker.half_open", name=self.name)
                    return True
                _SHORTED.inc()
                return False
            return True  # half_open: the trial call is in flight

    def record_success(self) -> None:
        """Note a successful call; closes a half-open breaker."""
        with self._lock:
            self._failures = 0
            if self._state != "closed":
                self._state = "closed"
                self._opened_at = None
                log.info("breaker.close", name=self.name)

    def record_failure(self) -> None:
        """Note a failed call; may trip the breaker open."""
        with self._lock:
            self._failures += 1
            tripped = self._state == "half_open" \
                or self._failures >= self.failure_threshold
            if tripped and self._state != "open":
                self._state = "open"
                self._opened_at = self._clock()
                _OPENED.inc()
                log.warning("breaker.open", name=self.name,
                            failures=self._failures,
                            threshold=self.failure_threshold)
            elif tripped:
                self._opened_at = self._clock()

    def reset(self) -> None:
        """Force the breaker closed and forget failure history."""
        with self._lock:
            self._failures = 0
            self._state = "closed"
            self._opened_at = None
