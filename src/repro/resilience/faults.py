"""Deterministic fault injection: reproducible chaos for the pipeline.

The paper's collection environment — scraped hidden services over Tor —
fails constantly, and a reproduction that is only ever exercised on the
happy path is not a reproduction of that environment.  A
:class:`FaultPlan` wraps pipeline stages and storage I/O and injects:

* **transient failures** (:class:`~repro.errors.TransientError`) that a
  :class:`~repro.resilience.policy.RetryPolicy` is expected to absorb;
* **record corruption** (bit-flips inside serialized lines) to harden
  loaders;
* **clock skew** (whole-hour timestamp shifts) to stress the UTC
  realignment of Section IV-B.

Everything is keyed by ``(seed, site, invocation #)`` through a hash,
never by a shared RNG stream, so injections are independent of call
ordering elsewhere: the 3rd call at site ``"storage.load"`` fails (or
not) identically in every run with the same seed.

A process-wide plan can be installed explicitly
(:func:`install_fault_plan`) or picked up from the environment —
``REPRO_FAULT_SEED`` activates injection, ``REPRO_FAULT_RATE``
(default 0.1) sets the transient-failure probability — which is how
the CI chaos job exercises the retry paths of the whole suite.
"""

from __future__ import annotations

import errno
import hashlib
import os
import threading
from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.errors import ConfigurationError, TransientError
from repro.obs.metrics import counter

#: Faults injected, by any plan, since process start.
_INJECTED = counter("faults_injected_total")

#: Environment knobs read by :func:`plan_from_env`.
FAULT_SEED_ENV = "REPRO_FAULT_SEED"
FAULT_RATE_ENV = "REPRO_FAULT_RATE"
FAULT_KINDS_ENV = "REPRO_FAULT_KINDS"

#: Default transient-failure probability when only the seed is set.
DEFAULT_FAULT_RATE = 0.1

#: Fault-kind names accepted by ``REPRO_FAULT_KINDS``.
FAULT_KINDS = ("transient", "corrupt", "fs")


def _site_fraction(seed: int, site: str, invocation: int) -> float:
    """Deterministic fraction in [0, 1) for one invocation of *site*."""
    digest = hashlib.blake2b(f"{seed}:{site}:{invocation}".encode(),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2 ** 64


@dataclass
class FaultPlan:
    """A reproducible schedule of injected failures.

    Parameters
    ----------
    seed:
        Master seed; two plans with the same seed inject identically.
    transient_rate:
        Probability that any given :meth:`check` call raises
        :class:`~repro.errors.TransientError`.
    corrupt_rate:
        Probability that :meth:`corrupt_line` actually flips a bit.
    torn_rate:
        Probability that :meth:`torn_bytes` truncates a payload mid-way
        (a torn write: the process died between ``write`` and
        ``rename``).
    enospc_rate:
        Probability that :meth:`fs_check` raises ``OSError(ENOSPC)``
        (the disk filled up under the writer).
    read_corrupt_rate:
        Probability that :meth:`corrupt_bytes` flips one bit of a
        payload read back from disk (silent media corruption).
    skew_hours:
        Whole-hour shift applied by :meth:`skew_timestamp` (models a
        forum whose displayed clock drifted).
    max_faults:
        Optional global cap; after this many injections the plan goes
        quiet (lets chaos tests guarantee eventual completion even at
        high rates).
    """

    seed: int = 0
    transient_rate: float = 0.0
    corrupt_rate: float = 0.0
    torn_rate: float = 0.0
    enospc_rate: float = 0.0
    read_corrupt_rate: float = 0.0
    skew_hours: int = 0
    max_faults: Optional[int] = None
    _counts: TallyCounter = field(default_factory=TallyCounter,
                                  repr=False)
    _injected: int = field(default=0, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)

    def __post_init__(self) -> None:
        for name in ("transient_rate", "corrupt_rate", "torn_rate",
                     "enospc_rate", "read_corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1), got {rate}")

    # -- bookkeeping ----------------------------------------------------------

    @property
    def injected(self) -> int:
        """Faults injected by this plan so far."""
        return self._injected

    def _next_invocation(self, site: str) -> int:
        with self._lock:
            n = self._counts[site]
            self._counts[site] = n + 1
            return n

    def _spend(self) -> bool:
        """Account one injection; ``False`` when the cap is spent."""
        with self._lock:
            if self.max_faults is not None and \
                    self._injected >= self.max_faults:
                return False
            self._injected += 1
        _INJECTED.inc()
        return True

    def reset(self) -> None:
        """Forget all invocation history (restart the schedule)."""
        with self._lock:
            self._counts.clear()
            self._injected = 0

    # -- injection points -----------------------------------------------------

    def check(self, site: str) -> None:
        """Maybe raise a :class:`~repro.errors.TransientError` at *site*.

        Call this at the top of any operation that could fail
        transiently in the real environment.  Each call advances the
        site's invocation counter whether or not it injects.
        """
        invocation = self._next_invocation(site)
        if self.transient_rate <= 0.0:
            return
        if _site_fraction(self.seed, site, invocation) \
                < self.transient_rate and self._spend():
            raise TransientError(
                f"injected transient fault at {site!r} "
                f"(invocation {invocation})")

    def wrap(self, site: str, fn: Callable[..., Any],
             ) -> Callable[..., Any]:
        """Return *fn* preceded by a :meth:`check` at *site*."""
        def faulty(*args: Any, **kwargs: Any) -> Any:
            self.check(site)
            return fn(*args, **kwargs)
        faulty.__name__ = getattr(fn, "__name__", "faulty")
        return faulty

    def corrupt_line(self, line: str, site: str = "storage.line") -> str:
        """Maybe flip one bit of *line* (record corruption).

        The flipped position and bit are derived from the schedule, so
        the same line at the same site corrupts identically.
        """
        invocation = self._next_invocation(site)
        if self.corrupt_rate <= 0.0 or not line:
            return line
        u = _site_fraction(self.seed, site, invocation)
        if u >= self.corrupt_rate or not self._spend():
            return line
        payload = bytearray(line.encode("utf-8"))
        position = int(_site_fraction(self.seed, site + "#pos",
                                      invocation) * len(payload))
        payload[position] ^= 1 << int(
            _site_fraction(self.seed, site + "#bit", invocation) * 8)
        return payload.decode("utf-8", errors="replace")

    def skew_timestamp(self, timestamp: int) -> int:
        """Apply the plan's whole-hour clock skew to *timestamp*."""
        return timestamp + self.skew_hours * 3600

    # -- filesystem fault kinds ----------------------------------------------

    def fs_check(self, site: str) -> None:
        """Maybe raise ``OSError(ENOSPC)`` at a filesystem write *site*.

        Models the disk filling up mid-write; callers are expected to
        clean up their temporary file and surface the ``OSError``.
        """
        invocation = self._next_invocation(site + "#enospc")
        if self.enospc_rate <= 0.0:
            return
        if _site_fraction(self.seed, site + "#enospc", invocation) \
                < self.enospc_rate and self._spend():
            raise OSError(
                errno.ENOSPC,
                f"injected ENOSPC at {site!r} (invocation {invocation})")

    def torn_bytes(self, payload: bytes, site: str) -> Optional[bytes]:
        """Maybe return a truncated prefix of *payload* (a torn write).

        Returns ``None`` when no fault fires.  The cut point is
        schedule-derived and always strictly inside the payload, so a
        torn write is never a complete one.
        """
        invocation = self._next_invocation(site + "#torn")
        if self.torn_rate <= 0.0 or len(payload) < 2:
            return None
        if _site_fraction(self.seed, site + "#torn", invocation) \
                >= self.torn_rate or not self._spend():
            return None
        cut = 1 + int(_site_fraction(self.seed, site + "#cut",
                                     invocation) * (len(payload) - 1))
        return payload[:cut]

    def corrupt_bytes(self, payload: bytes, site: str) -> bytes:
        """Maybe flip one bit of *payload* (read-side corruption).

        The flipped position and bit are schedule-derived, so the same
        read at the same site corrupts identically in every run.
        """
        invocation = self._next_invocation(site + "#bitflip")
        if self.read_corrupt_rate <= 0.0 or not payload:
            return payload
        if _site_fraction(self.seed, site + "#bitflip", invocation) \
                >= self.read_corrupt_rate or not self._spend():
            return payload
        corrupted = bytearray(payload)
        position = int(_site_fraction(self.seed, site + "#pos",
                                      invocation) * len(corrupted))
        corrupted[position] ^= 1 << int(
            _site_fraction(self.seed, site + "#bit", invocation) * 8)
        return bytes(corrupted)


# ---------------------------------------------------------------------------
# Process-wide plan (explicit install or environment-driven)
# ---------------------------------------------------------------------------

_ACTIVE: Optional[FaultPlan] = None
_ACTIVE_LOCK = threading.Lock()


def install_fault_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install *plan* process-wide; returns the previous plan.

    Pass ``None`` to deactivate injection.  Instrumented call sites
    (storage I/O, pipeline stages) consult :func:`get_fault_plan` on
    every operation, so installation takes effect immediately.
    """
    global _ACTIVE
    with _ACTIVE_LOCK:
        previous, _ACTIVE = _ACTIVE, plan
    return previous


def plan_from_env(environ: Optional[Dict[str, str]] = None,
                  ) -> Optional[FaultPlan]:
    """Build a plan from the ``REPRO_FAULT_*`` environment knobs.

    ``REPRO_FAULT_SEED`` activates injection (unset means off),
    ``REPRO_FAULT_RATE`` sets the per-kind probability, and
    ``REPRO_FAULT_KINDS`` — a comma list from ``transient``,
    ``corrupt``, ``fs`` and ``all`` — selects which fault kinds fire
    at that rate (default: ``transient``, the pre-fs behavior).
    """
    env = os.environ if environ is None else environ
    raw_seed = env.get(FAULT_SEED_ENV)
    if raw_seed is None or raw_seed == "":
        return None
    try:
        seed = int(raw_seed)
    except ValueError:
        raise ConfigurationError(
            f"{FAULT_SEED_ENV} must be an integer, got {raw_seed!r}")
    raw_rate = env.get(FAULT_RATE_ENV)
    try:
        rate = DEFAULT_FAULT_RATE if raw_rate in (None, "") \
            else float(raw_rate)
    except ValueError:
        raise ConfigurationError(
            f"{FAULT_RATE_ENV} must be a float, got {raw_rate!r}")
    raw_kinds = env.get(FAULT_KINDS_ENV)
    if raw_kinds in (None, ""):
        kinds = {"transient"}
    else:
        kinds = {piece.strip().lower()
                 for piece in raw_kinds.split(",") if piece.strip()}
        if "all" in kinds:
            kinds = set(FAULT_KINDS)
        unknown = kinds - set(FAULT_KINDS)
        if unknown:
            raise ConfigurationError(
                f"{FAULT_KINDS_ENV} names unknown fault kinds "
                f"{sorted(unknown)}; valid: {', '.join(FAULT_KINDS)}")
    return FaultPlan(
        seed=seed,
        transient_rate=rate if "transient" in kinds else 0.0,
        corrupt_rate=rate if "corrupt" in kinds else 0.0,
        torn_rate=rate if "fs" in kinds else 0.0,
        enospc_rate=rate if "fs" in kinds else 0.0,
        read_corrupt_rate=rate if "fs" in kinds else 0.0,
    )


#: Policy used by :func:`guarded_call`: enough attempts to make the
#: suite-under-chaos statistically safe, with near-zero real sleeping.
GUARD_POLICY_DELAYS = dict(max_retries=8, base_delay=0.01,
                           multiplier=2.0, max_delay=0.25)


def guarded_call(site: str, fn: Callable[..., Any], *args: Any,
                 policy: Optional["RetryPolicy"] = None,
                 **kwargs: Any) -> Any:
    """Run ``fn(*args, **kwargs)`` under the active fault plan.

    With no plan active this is a plain call (zero overhead beyond one
    lookup).  With a plan, the call site is fault-injected and wrapped
    in a retry policy, so instrumented I/O keeps its contract — it
    succeeds or raises its own error types — while the retry paths
    actually get exercised.
    """
    plan = get_fault_plan()
    if plan is None:
        return fn(*args, **kwargs)
    from repro.resilience.policy import RetryPolicy

    if policy is None:
        policy = RetryPolicy(seed=plan.seed, **GUARD_POLICY_DELAYS)
    return policy.call(plan.wrap(site, fn), *args, **kwargs)


def get_fault_plan() -> Optional[FaultPlan]:
    """The active plan: the installed one, else one from the
    environment (cached on first sight), else ``None``."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        if _ACTIVE is not None:
            return _ACTIVE
    plan = plan_from_env()
    if plan is not None:
        with _ACTIVE_LOCK:
            if _ACTIVE is None:
                _ACTIVE = plan
            return _ACTIVE
    return None
