"""Reusable retry policies: exponential backoff with deterministic
jitter, attempt caps, and a total-deadline budget.

The paper's collection ran against hidden services over Tor, where
transient failures are the norm, not the exception.  Every stage that
talks to a flaky medium (the simulated scraper, storage I/O under
fault injection, pipeline stages wrapped by a
:class:`~repro.resilience.faults.FaultPlan`) shares one policy
abstraction instead of growing its own ad-hoc loop:

    policy = RetryPolicy(max_retries=5, base_delay=0.5)
    result = policy.call(flaky_fn, arg1, arg2)

Determinism is a design requirement — chaos tests must be exactly
reproducible — so jitter is *derived*, not sampled: attempt ``i`` of a
policy with ``jitter=0.25`` perturbs the exponential delay by a fixed
fraction computed from ``(seed, attempt)`` via a hash.  Two runs with
the same seed back off identically.

Time is injected.  ``sleep``/``clock`` default to the real
:func:`time.sleep`/:func:`time.monotonic`, but the simulated scraper
passes its virtual clock, and tests pass accumulators, so no test ever
actually sleeps.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional, Tuple, Type

from repro.errors import (
    ConfigurationError,
    RetryExhaustedError,
    TransientError,
)
from repro.obs.metrics import counter, histogram

#: Retry attempts performed across all policies (first tries excluded).
_RETRIES = counter("retry_attempts_total")
#: Calls that exhausted every attempt (or their deadline).
_EXHAUSTED = counter("retry_exhausted_total")
#: Backoff seconds consumed between attempts.
_BACKOFF = histogram("retry_backoff_seconds",
                     buckets=(0.1, 0.5, 1, 2, 5, 10, 30, 60, 300))

#: Exception types retried by default.
DEFAULT_RETRYABLE: Tuple[Type[BaseException], ...] = (
    TransientError, ConnectionError, TimeoutError,
)


def _jitter_fraction(seed: int, attempt: int) -> float:
    """A deterministic pseudo-random fraction in [0, 1) for *attempt*.

    Hash-derived rather than drawn from an RNG so the fraction depends
    only on ``(seed, attempt)`` — resuming a run or re-entering a
    policy never shifts the sequence.
    """
    digest = hashlib.blake2b(f"{seed}:{attempt}".encode(),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2 ** 64


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter and a deadline.

    Parameters
    ----------
    max_retries:
        Retries after the first attempt (total attempts is
        ``max_retries + 1``).
    base_delay:
        Backoff before the first retry, in seconds.
    multiplier:
        Growth factor between consecutive backoffs.
    max_delay:
        Per-backoff ceiling, in seconds.
    deadline:
        Total budget in seconds measured on ``clock`` from the first
        attempt; backoffs are clamped to the remaining budget (the
        final sleep may land exactly on the deadline, never past it)
        and once the budget is spent no further attempt is made even
        if retries remain.  ``None`` means unbounded.
    jitter:
        Fraction of each delay perturbed deterministically: a delay
        ``d`` becomes ``d * (1 - jitter + 2 * jitter * u)`` with ``u``
        derived from ``(seed, attempt)``.  ``0.0`` disables jitter.
    seed:
        Seed of the jitter derivation.
    retryable:
        Exception types worth retrying; anything else propagates
        immediately.
    """

    max_retries: int = 3
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 60.0
    deadline: Optional[float] = None
    jitter: float = 0.0
    seed: int = 0
    retryable: Tuple[Type[BaseException], ...] = DEFAULT_RETRYABLE

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay < 0:
            raise ConfigurationError(
                f"base_delay must be >= 0, got {self.base_delay}")
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1], got {self.jitter}")
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigurationError(
                f"deadline must be positive, got {self.deadline}")

    # -- schedule -------------------------------------------------------------

    def delay(self, attempt: int) -> float:
        """Backoff after failed attempt *attempt* (0-based)."""
        raw = min(self.max_delay,
                  self.base_delay * self.multiplier ** attempt)
        if self.jitter:
            u = _jitter_fraction(self.seed, attempt)
            raw *= 1.0 - self.jitter + 2.0 * self.jitter * u
        return raw

    def delays(self) -> Iterator[float]:
        """The full backoff schedule (``max_retries`` entries)."""
        for attempt in range(self.max_retries):
            yield self.delay(attempt)

    def total_backoff(self) -> float:
        """Worst-case backoff if every attempt fails."""
        return sum(self.delays())

    # -- execution ------------------------------------------------------------

    def call(self, fn: Callable[..., Any], *args: Any,
             sleep: Optional[Callable[[float], None]] = None,
             clock: Optional[Callable[[], float]] = None,
             on_retry: Optional[Callable[[int, BaseException], None]]
             = None,
             **kwargs: Any) -> Any:
        """Invoke ``fn(*args, **kwargs)`` under this policy.

        Retries exceptions listed in :attr:`retryable`; every other
        exception propagates untouched.  When attempts (or the
        deadline) run out, raises
        :class:`~repro.errors.RetryExhaustedError` carrying the attempt
        count, the backoff consumed, and the last error as its cause.

        Parameters
        ----------
        sleep / clock:
            Time injection points; defaults are the real
            :func:`time.sleep` / :func:`time.monotonic`.
        on_retry:
            Called as ``on_retry(attempt, error)`` before each backoff.
        """
        sleep = time.sleep if sleep is None else sleep
        clock = time.monotonic if clock is None else clock
        start = clock()
        backoff_total = 0.0
        attempts = 0
        last_error: Optional[BaseException] = None
        for attempt in range(self.max_retries + 1):
            attempts += 1
            try:
                return fn(*args, **kwargs)
            except self.retryable as exc:
                last_error = exc
                if attempt >= self.max_retries:
                    break
                pause = self.delay(attempt)
                if self.deadline is not None:
                    # Clamp the backoff to the remaining budget: the
                    # final sleep may land exactly on the deadline but
                    # never overshoots it.
                    remaining = self.deadline - (clock() - start)
                    if remaining <= 0:
                        break
                    pause = min(pause, remaining)
                if on_retry is not None:
                    on_retry(attempt, exc)
                _RETRIES.inc()
                _BACKOFF.observe(pause)
                backoff_total += pause
                sleep(pause)
        _EXHAUSTED.inc()
        raise RetryExhaustedError(
            f"giving up after {attempts} attempt(s) and "
            f"{backoff_total:.2f}s of backoff: {last_error}",
            attempts=attempts,
            backoff_seconds=backoff_total,
            last_error=last_error,  # type: ignore[arg-type]
        ) from last_error

    def wrap(self, fn: Callable[..., Any], **call_kwargs: Any,
             ) -> Callable[..., Any]:
        """Return ``fn`` bound to this policy (a retrying callable)."""
        def retrying(*args: Any, **kwargs: Any) -> Any:
            return self.call(fn, *args, **call_kwargs, **kwargs)
        retrying.__name__ = getattr(fn, "__name__", "retrying")
        return retrying


#: A policy that never retries — composing code can use it as a
#: neutral element instead of special-casing "no policy".
NO_RETRY = RetryPolicy(max_retries=0, base_delay=0.0)
