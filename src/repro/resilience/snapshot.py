"""Crash-safe persistent index snapshots ("fit once, serve forever").

A production linking service cannot afford to refit the known-alias
index on every process start — and it *really* cannot afford to serve
scores from a half-written or bit-rotted index file.  This module
serializes a fitted :class:`~repro.core.linker.AliasLinker` or
:class:`~repro.core.batch.BatchedLinker` — documents, shared
:class:`~repro.core.ngrams.WordVocab`, warm
:class:`~repro.perf.cache.ProfileCache` profiles, and (for the alias
linker) the fitted reduction feature space, known-corpus matrix and —
when stage 1 runs the sharded inverted index — the per-shard posting
arrays — into one versioned snapshot file with an integrity manifest.
Saved shards load as zero-copy (mmap-backed) views, so a service
restart skips the index build entirely.

**Format** (all integers little-endian)::

    [0:8)    magic ``b"RPROSNP1"``
    [8:16)   uint64 header length
    [16:48)  sha256 of the header JSON
    [48:..)  header JSON
    ...      64-byte-aligned raw section payloads

The header carries the format version, the linker's semantic config
and its sha256 digest, the git revision (via ``obs.manifest``), and a
section table — ``{name, kind, offset, nbytes, sha256, dtype, shape}``
per section.  Numpy sections are raw C-order buffers, so a verified
load can hand them to consumers as zero-copy (optionally mmap-backed)
views.

**Integrity model.**  Writes are atomic (temp + fsync + rename, the
same discipline as :class:`~repro.resilience.checkpoint.
CheckpointStore`), so a crash mid-save leaves the previous snapshot
untouched.  Loads verify the magic, version, header checksum, config
digest and *every* section checksum before any byte is used; anything
that does not verify raises a typed :class:`~repro.errors.
SnapshotError` naming the damaged section — a snapshot never produces
silently-wrong scores.  :func:`verify_index` reports per-section
damage without loading, and :func:`salvage_index` recovers every
intact section from a damaged file.

**Chaos.**  The save/read paths are instrumented with the filesystem
fault kinds of :class:`~repro.resilience.faults.FaultPlan` (torn
write, ENOSPC, read-side bit flips) and retry under the active plan's
policy, so the CI chaos job exercises exactly the failure modes the
format exists to survive.

The round-trip contract is bit-identity:
``load(save(fit(world))).link(u)`` equals ``fit(world).link(u)`` for
both linkers at any worker count, block size or cache setting (the
shared vocabulary is restored in interning order, which pins n-gram
codes and therefore every downstream tie-break).
"""

from __future__ import annotations

import errno
import hashlib
import json
import mmap as mmap_module
import os
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy import sparse

from repro.config import FeatureBudget
from repro.errors import (
    ConfigurationError,
    NotFittedError,
    RetryExhaustedError,
    SnapshotError,
)
from repro.obs.logging import get_logger
from repro.obs.manifest import git_revision
from repro.obs.metrics import counter, gauge
from repro.obs.spans import span
from repro.resilience.faults import GUARD_POLICY_DELAYS, get_fault_plan

log = get_logger(__name__)

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "SectionStatus",
    "SnapshotReport",
    "load_index",
    "salvage_index",
    "save_index",
    "snapshot_info",
    "verify_index",
]

#: File magic: format name + major layout revision.
SNAPSHOT_MAGIC = b"RPROSNP1"
#: Header schema version; loaders refuse anything newer.
SNAPSHOT_VERSION = 1

_HEADER_FIXED = 48  # magic + uint64 length + header sha256
_ALIGN = 64

#: Snapshots written (post-rename, i.e. durable).
_SAVED = counter("snapshots_saved_total")
#: Snapshots loaded with every checksum verified.
_LOADED = counter("snapshots_loaded_total")
#: Sections that failed verification (truncated or corrupt).
_DAMAGED = counter("snapshot_sections_damaged_total")
#: Size of the most recently written snapshot.
_BYTES = gauge("snapshot_bytes")


@dataclass(frozen=True)
class SectionStatus:
    """Verification verdict for one snapshot section."""

    name: str
    kind: str
    nbytes: int
    ok: bool
    error: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "kind": self.kind,
                "nbytes": self.nbytes, "ok": self.ok,
                "error": self.error}


@dataclass(frozen=True)
class SnapshotReport:
    """What :func:`verify_index` found out about a snapshot file."""

    path: str
    format_version: int
    algo: str
    sections: List[SectionStatus]

    @property
    def ok(self) -> bool:
        """Whether every section verified."""
        return all(section.ok for section in self.sections)

    def damaged(self) -> List[str]:
        """Names of the sections that failed verification."""
        return [s.name for s in self.sections if not s.ok]

    def to_dict(self) -> Dict[str, Any]:
        return {"path": self.path,
                "format_version": self.format_version,
                "algo": self.algo,
                "ok": self.ok,
                "damaged": self.damaged(),
                "sections": [s.to_dict() for s in self.sections]}


# ---------------------------------------------------------------------------
# State collection (linker -> sections)
# ---------------------------------------------------------------------------

def _document_record(document: Any) -> Dict[str, Any]:
    activity = document.activity
    structure = getattr(document, "structure", None)
    record = {
        "doc_id": document.doc_id,
        "alias": document.alias,
        "forum": document.forum,
        "text": document.text,
        "words": list(document.words),
        "timestamps": [int(t) for t in document.timestamps],
        "activity": None if activity is None
        else np.asarray(activity, dtype=np.float64).tolist(),
        "metadata": dict(document.metadata),
    }
    # Emitted only when present, so structure-free snapshots stay
    # byte-identical to the pre-structure format.
    if structure is not None:
        record["structure"] = np.asarray(
            structure, dtype=np.float64).tolist()
    return record


def _restore_document(record: Dict[str, Any]) -> Any:
    from repro.core.documents import AliasDocument

    activity = record.get("activity")
    structure = record.get("structure")
    return AliasDocument(
        doc_id=str(record["doc_id"]),
        alias=str(record["alias"]),
        forum=str(record["forum"]),
        text=str(record["text"]),
        words=tuple(record["words"]),
        timestamps=tuple(int(t) for t in record["timestamps"]),
        activity=None if activity is None
        else np.asarray(activity, dtype=np.float64),
        metadata=dict(record.get("metadata", {})),
        structure=None if structure is None
        else np.asarray(structure, dtype=np.float64),
    )


def _weights_dict(weights: Any) -> Dict[str, float]:
    return {"text": weights.text,
            "frequencies": weights.frequencies,
            "activity": weights.activity,
            "structure": weights.structure}


def _config_digest(config: Dict[str, Any]) -> str:
    canonical = json.dumps(config, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _collect_state(linker: Any) -> Tuple[str, Dict[str, Any],
                                         List[Tuple[str, str, Any]]]:
    """Break a fitted linker into ``(algo, config, sections)``.

    Sections are ``(name, kind, payload)`` with kind ``"json"``
    (payload is any JSON-serializable object) or ``"ndarray"``
    (payload is a numpy array).  Only *semantic* knobs enter the
    config — perf knobs (workers, block size, cache policy) are
    load-time choices because they never change the numbers.
    """
    from repro.core.batch import BatchedLinker
    from repro.core.linker import AliasLinker

    if isinstance(linker, AliasLinker):
        algo = "alias-linker"
        reduction_budget = linker.reducer.extractor.budget
    elif isinstance(linker, BatchedLinker):
        algo = "batched-linker"
        reduction_budget = linker.reduction_budget
    else:
        raise ConfigurationError(
            f"cannot snapshot a {type(linker).__name__}; expected "
            f"AliasLinker or BatchedLinker")
    if linker._known is None:
        raise NotFittedError(
            f"{type(linker).__name__}.fit has not been called")

    config: Dict[str, Any] = {
        "k": linker.k,
        "threshold": linker.threshold,
        "use_activity": linker.use_activity,
        "use_structure": linker.use_structure,
        "weights": _weights_dict(linker.weights),
        "reduction_budget": asdict(reduction_budget),
        "final_budget": asdict(linker.final_budget),
        "n_known": len(linker._known),
        # Stage-1 strategy is not semantic (every choice scores
        # bit-identically) but "auto" must survive a round trip so the
        # cost model re-resolves on the restored corpus instead of
        # silently pinning whatever the save-time pick was.
        "stage1": linker.stage1,
    }
    if algo == "alias-linker":
        config["use_reduction"] = linker.use_reduction
    else:
        config["batch_size"] = linker.batch_size

    cache_state = linker.cache.export_state()
    sections: List[Tuple[str, str, Any]] = [
        ("documents", "json",
         [_document_record(d) for d in linker._known]),
        ("vocab", "json", list(linker.cache.vocab._words)),
        ("cache.index", "json", {
            "word": {"keys": cache_state["word"]["keys"]},
            "char": {"keys": cache_state["char"]["keys"]},
            "freq": {"keys": cache_state["freq"]["keys"]},
            "activity": {"keys": cache_state["activity"]["keys"]},
            "structure": {"keys": cache_state["structure"]["keys"]},
        }),
    ]
    for family in ("word", "char"):
        for part in ("codes", "counts", "indptr"):
            sections.append((f"cache.{family}.{part}", "ndarray",
                             cache_state[family][part]))
    for family in ("freq", "activity", "structure"):
        for part in ("data", "indptr"):
            sections.append((f"cache.{family}.{part}", "ndarray",
                             cache_state[family][part]))

    if algo == "alias-linker":
        extractor = linker.reducer.extractor
        if not extractor.is_fitted \
                or linker.reducer._known_matrix is None:
            raise NotFittedError(
                "AliasLinker reducer is not fitted; cannot snapshot")
        matrix = linker.reducer._known_matrix
        sections.extend([
            ("reduction.meta", "json",
             {"shape": [int(matrix.shape[0]), int(matrix.shape[1])]}),
            ("reduction.selected_words", "ndarray",
             extractor._selected_words),
            ("reduction.selected_chars", "ndarray",
             extractor._selected_chars),
            ("reduction.idf", "ndarray", extractor._tfidf._idf),
            ("reduction.matrix.data", "ndarray", matrix.data),
            ("reduction.matrix.indices", "ndarray", matrix.indices),
            ("reduction.matrix.indptr", "ndarray", matrix.indptr),
        ])
        # The inverted index is derived state, but rebuilding it on a
        # big corpus costs a full pass + sorts — save the posting
        # arrays so loads can adopt them as zero-copy views.  stage1
        # stays out of the semantic config (every strategy scores
        # bit-identically); the sections' presence records the build.
        # Saved whenever an index exists — including stage1="auto"
        # runs whose cost model picked invindex.  main_ends restores
        # live delta segments: rows past a shard's main end carry no
        # postings and are re-scored exactly on load, bit-identically.
        index = linker.reducer._index
        if index is not None:
            sections.append((
                "invindex.meta", "json",
                {"bounds": [int(b) for b in index.bounds],
                 "n_shards": index.n_shards,
                 "main_ends": [int(m) for m in index.main_ends]}))
            for i, shard in enumerate(index._shards):
                data, rows, indptr, maxw = shard.postings
                sections.extend([
                    (f"invindex.shard{i}.data", "ndarray", data),
                    (f"invindex.shard{i}.rows", "ndarray", rows),
                    (f"invindex.shard{i}.indptr", "ndarray", indptr),
                    (f"invindex.shard{i}.maxw", "ndarray", maxw),
                ])
    return algo, config, sections


# ---------------------------------------------------------------------------
# Encoding / atomic write
# ---------------------------------------------------------------------------

def _payload_bytes(kind: str, payload: Any,
                   ) -> Tuple[bytes, Optional[str],
                              Optional[List[int]]]:
    if kind == "json":
        return (json.dumps(payload, sort_keys=True,
                           separators=(",", ":")).encode("utf-8"),
                None, None)
    array = np.ascontiguousarray(payload)
    return (array.tobytes(), array.dtype.str,
            [int(n) for n in array.shape])


def _encode_snapshot(algo: str, config: Dict[str, Any],
                     sections: List[Tuple[str, str, Any]]) -> bytes:
    """Serialize sections + header into the on-disk byte layout."""
    table: List[Dict[str, Any]] = []
    payloads: List[bytes] = []
    offset = 0
    for name, kind, payload in sections:
        blob, dtype, shape = _payload_bytes(kind, payload)
        table.append({
            "name": name,
            "kind": kind,
            "offset": offset,
            "nbytes": len(blob),
            "sha256": hashlib.sha256(blob).hexdigest(),
            "dtype": dtype,
            "shape": shape,
        })
        payloads.append(blob)
        offset += -(-len(blob) // _ALIGN) * _ALIGN
    header = {
        "format_version": SNAPSHOT_VERSION,
        "algo": algo,
        "config": config,
        "config_digest": _config_digest(config),
        "git_rev": git_revision(),
        "sections": table,
    }
    header_blob = json.dumps(header, sort_keys=True,
                             separators=(",", ":")).encode("utf-8")
    data_start = -(-(_HEADER_FIXED + len(header_blob)) // _ALIGN) \
        * _ALIGN
    out = bytearray(data_start + offset)
    out[0:8] = SNAPSHOT_MAGIC
    out[8:16] = len(header_blob).to_bytes(8, "little")
    out[16:48] = hashlib.sha256(header_blob).digest()
    out[48:48 + len(header_blob)] = header_blob
    for entry, blob in zip(table, payloads):
        start = data_start + entry["offset"]
        out[start:start + len(blob)] = blob
    return bytes(out)


def _write_atomic(path: Path, blob: bytes) -> None:
    """Temp + fsync + rename, with filesystem fault injection.

    An injected torn write truncates the temp file and raises
    ``OSError(EIO)`` — exactly what a mid-write crash leaves behind —
    while the target path stays untouched (the rename never happened).
    """
    plan = get_fault_plan()
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=str(path.parent))
    try:
        if plan is not None:
            plan.fs_check("snapshot.write")
        torn = plan.torn_bytes(blob, "snapshot.write") \
            if plan is not None else None
        with os.fdopen(fd, "wb") as handle:
            fd = None
            handle.write(blob if torn is None else torn)
            handle.flush()
            os.fsync(handle.fileno())
        if torn is not None:
            raise OSError(
                errno.EIO,
                f"injected torn write: {len(torn)}/{len(blob)} bytes")
        os.replace(tmp_name, path)
        tmp_name = None
    finally:
        if fd is not None:
            os.close(fd)
        if tmp_name is not None:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass


def save_index(linker: Any, path: Union[str, Path]) -> Dict[str, Any]:
    """Snapshot a fitted linker to *path*, atomically.

    Returns a summary dict (path, bytes, algo, section count, config
    digest).  Under an active fault plan the write is retried with the
    plan's guard policy, so injected torn writes / ENOSPC exercise the
    retry path while a genuinely full disk still surfaces as
    ``OSError``.
    """
    path = Path(path)
    with span("snapshot.save", path=str(path)):
        algo, config, sections = _collect_state(linker)
        blob = _encode_snapshot(algo, config, sections)
        plan = get_fault_plan()
        if plan is None:
            _write_atomic(path, blob)
        else:
            from repro.resilience.policy import RetryPolicy

            policy = RetryPolicy(seed=plan.seed, retryable=(OSError,),
                                 **GUARD_POLICY_DELAYS)
            try:
                policy.call(_write_atomic, path, blob)
            except RetryExhaustedError as exc:
                raise exc.last_error or exc
    _SAVED.inc()
    _BYTES.set(len(blob))
    info = {"path": str(path), "bytes": len(blob), "algo": algo,
            "n_known": config["n_known"],
            "sections": len(sections),
            "config_digest": _config_digest(config)[:12]}
    log.info("snapshot.save", **info)
    return info


# ---------------------------------------------------------------------------
# Reading / verification
# ---------------------------------------------------------------------------

def _read_buffer(path: Path, use_mmap: bool) -> Any:
    """The snapshot's bytes: mmap when allowed, else a private copy.

    An active fault plan forces the copy path (so read-side bit flips
    hit exactly the bytes that get verified) and applies
    :meth:`~repro.resilience.faults.FaultPlan.corrupt_bytes`.
    """
    plan = get_fault_plan()
    try:
        if plan is None and use_mmap:
            with open(path, "rb") as handle:
                if os.fstat(handle.fileno()).st_size == 0:
                    return b""
                return mmap_module.mmap(handle.fileno(), 0,
                                        access=mmap_module.ACCESS_READ)
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") \
            from exc
    if plan is not None:
        data = plan.corrupt_bytes(data, "snapshot.read")
    return data


def _parse_header(path: Path, buffer: Any) -> Dict[str, Any]:
    """Decode and integrity-check the fixed prefix + header JSON."""
    view = memoryview(buffer)
    if len(view) < _HEADER_FIXED:
        raise SnapshotError(
            f"{path}: file too short for a snapshot header "
            f"({len(view)} bytes)")
    if bytes(view[0:8]) != SNAPSHOT_MAGIC:
        raise SnapshotError(
            f"{path}: bad magic {bytes(view[0:8])!r}; "
            f"not a snapshot file")
    header_len = int.from_bytes(view[8:16], "little")
    if _HEADER_FIXED + header_len > len(view):
        raise SnapshotError(
            f"{path}: header truncated "
            f"(need {header_len} bytes, file ends first)")
    header_blob = bytes(view[_HEADER_FIXED:_HEADER_FIXED + header_len])
    if hashlib.sha256(header_blob).digest() != bytes(view[16:48]):
        raise SnapshotError(f"{path}: header checksum mismatch")
    try:
        header = json.loads(header_blob)
    except ValueError as exc:
        raise SnapshotError(f"{path}: header is not valid JSON") \
            from exc
    version = header.get("format_version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"{path}: unsupported snapshot format version {version!r} "
            f"(this build reads version {SNAPSHOT_VERSION})")
    if _config_digest(header.get("config", {})) \
            != header.get("config_digest"):
        raise SnapshotError(f"{path}: config digest mismatch")
    header["_data_start"] = -(-(_HEADER_FIXED + header_len)
                              // _ALIGN) * _ALIGN
    return header


def _section_view(buffer: Any, header: Dict[str, Any],
                  entry: Dict[str, Any]) -> memoryview:
    start = header["_data_start"] + entry["offset"]
    end = start + entry["nbytes"]
    view = memoryview(buffer)
    if end > len(view):
        raise SnapshotError(
            f"section {entry['name']!r} is truncated: needs bytes "
            f"[{start}, {end}) of a {len(view)}-byte file",
            section=entry["name"])
    return view[start:end]


def _check_section(buffer: Any, header: Dict[str, Any],
                   entry: Dict[str, Any]) -> SectionStatus:
    try:
        payload = _section_view(buffer, header, entry)
    except SnapshotError as exc:
        return SectionStatus(name=entry["name"], kind=entry["kind"],
                             nbytes=entry["nbytes"], ok=False,
                             error=str(exc))
    if hashlib.sha256(payload).hexdigest() != entry["sha256"]:
        return SectionStatus(
            name=entry["name"], kind=entry["kind"],
            nbytes=entry["nbytes"], ok=False,
            error=f"checksum mismatch over {entry['nbytes']} bytes")
    return SectionStatus(name=entry["name"], kind=entry["kind"],
                         nbytes=entry["nbytes"], ok=True)


def _parse_section(buffer: Any, header: Dict[str, Any],
                   entry: Dict[str, Any]) -> Any:
    """Decode one verified section (zero-copy for arrays)."""
    payload = _section_view(buffer, header, entry)
    if entry["kind"] == "json":
        try:
            return json.loads(bytes(payload))
        except ValueError as exc:
            raise SnapshotError(
                f"section {entry['name']!r} is not valid JSON",
                section=entry["name"]) from exc
    dtype = np.dtype(entry["dtype"])
    array = np.frombuffer(payload, dtype=dtype)
    return array.reshape(entry["shape"])


def _verify_once(path: Path, use_mmap: bool = False,
                 ) -> Tuple[SnapshotReport, Any, Dict[str, Any]]:
    buffer = _read_buffer(path, use_mmap)
    header = _parse_header(path, buffer)
    statuses = [_check_section(buffer, header, entry)
                for entry in header.get("sections", [])]
    report = SnapshotReport(path=str(path),
                            format_version=header["format_version"],
                            algo=header.get("algo", "?"),
                            sections=statuses)
    return report, buffer, header


def _fault_attempts() -> int:
    """Retries for read paths under an active plan.

    Injected read corruption is per-invocation — a clean retry reads
    clean bytes — while genuine on-disk damage fails every attempt, so
    a handful of retries makes chaos runs deterministic without ever
    masking real corruption.
    """
    return 6 if get_fault_plan() is not None else 1


def verify_index(path: Union[str, Path]) -> SnapshotReport:
    """Check every section checksum of the snapshot at *path*.

    Returns a :class:`SnapshotReport`; raises :class:`~repro.errors.
    SnapshotError` only when the header itself cannot be read (no
    section table to report against).
    """
    path = Path(path)
    with span("snapshot.verify", path=str(path)):
        last_error: Optional[SnapshotError] = None
        report: Optional[SnapshotReport] = None
        for _ in range(_fault_attempts()):
            try:
                report, _, _ = _verify_once(path)
            except SnapshotError as exc:
                last_error = exc
                continue
            if report.ok:
                break
        if report is None:
            assert last_error is not None
            raise last_error
    damaged = report.damaged()
    if damaged:
        _DAMAGED.inc(len(damaged))
        log.warning("snapshot.damaged", path=str(path),
                    sections=",".join(damaged))
    return report


def snapshot_info(path: Union[str, Path]) -> Dict[str, Any]:
    """The snapshot's manifest header (no section payloads touched)."""
    path = Path(path)
    last_error: Optional[SnapshotError] = None
    for _ in range(_fault_attempts()):
        try:
            buffer = _read_buffer(path, use_mmap=False)
            header = _parse_header(path, buffer)
            break
        except SnapshotError as exc:
            last_error = exc
    else:
        assert last_error is not None
        raise last_error
    data_start = header.pop("_data_start")
    sections = header.get("sections", [])
    payload_end = max(
        (data_start + s["offset"] + s["nbytes"] for s in sections),
        default=data_start)
    header["file_bytes"] = len(memoryview(buffer))
    header["expected_bytes"] = payload_end
    header["path"] = str(path)
    return header


def salvage_index(path: Union[str, Path],
                  ) -> Tuple[Dict[str, Any], SnapshotReport]:
    """Recover every intact section from a (possibly damaged) snapshot.

    Returns ``(sections, report)`` where *sections* maps section name
    to its decoded payload (parsed JSON or a numpy array copy) for
    every section whose checksum still verifies.  Raises
    :class:`~repro.errors.SnapshotError` only when the header is
    unreadable — with no section table there is nothing to salvage.
    """
    path = Path(path)
    with span("snapshot.salvage", path=str(path)):
        last_error: Optional[SnapshotError] = None
        outcome = None
        for _ in range(_fault_attempts()):
            try:
                outcome = _verify_once(path)
            except SnapshotError as exc:
                last_error = exc
                continue
            if outcome[0].ok:
                break
        if outcome is None:
            assert last_error is not None
            raise last_error
        report, buffer, header = outcome
        ok_names = {s.name for s in report.sections if s.ok}
        recovered: Dict[str, Any] = {}
        for entry in header.get("sections", []):
            if entry["name"] not in ok_names:
                continue
            payload = _parse_section(buffer, header, entry)
            if isinstance(payload, np.ndarray):
                payload = np.array(payload)  # detach from the buffer
            recovered[entry["name"]] = payload
    log.info("snapshot.salvage", path=str(path),
             recovered=len(recovered),
             damaged=",".join(report.damaged()) or "-")
    return recovered, report


# ---------------------------------------------------------------------------
# Loading (snapshot -> fitted linker)
# ---------------------------------------------------------------------------

def _rebuild_cache(sections: Dict[str, Any], enabled: bool) -> Any:
    from repro.core.ngrams import WordVocab
    from repro.perf.cache import ProfileCache

    vocab = WordVocab()
    for word in sections["vocab"]:
        vocab.intern(word)
    cache = ProfileCache(vocab=vocab, enabled=enabled)
    if enabled:
        index = sections["cache.index"]
        state = {
            "word": {"keys": index["word"]["keys"],
                     "codes": sections["cache.word.codes"],
                     "counts": sections["cache.word.counts"],
                     "indptr": sections["cache.word.indptr"]},
            "char": {"keys": index["char"]["keys"],
                     "codes": sections["cache.char.codes"],
                     "counts": sections["cache.char.counts"],
                     "indptr": sections["cache.char.indptr"]},
            "freq": {"keys": index["freq"]["keys"],
                     "data": sections["cache.freq.data"],
                     "indptr": sections["cache.freq.indptr"]},
            "activity": {"keys": index["activity"]["keys"],
                         "data": sections["cache.activity.data"],
                         "indptr": sections["cache.activity.indptr"]},
        }
        # Snapshots written before the structure family lack these.
        if "cache.structure.data" in sections \
                and "structure" in index:
            state["structure"] = {
                "keys": index["structure"]["keys"],
                "data": sections["cache.structure.data"],
                "indptr": sections["cache.structure.indptr"]}
        cache.import_state(state)
    return cache


def _rebuild_linker(header: Dict[str, Any],
                    sections: Dict[str, Any],
                    workers: Optional[int], cache: bool,
                    block_size: Optional[int],
                    stage1: Optional[str] = None,
                    shards: Optional[int] = None) -> Any:
    from repro.core.batch import BatchedLinker
    from repro.core.features import FeatureWeights
    from repro.core.linker import AliasLinker
    from repro.core.tfidf import TfidfModel
    from repro.perf.invindex import ShardedIndex

    config = header["config"]
    algo = header["algo"]
    if stage1 is None:
        # Resume the saved strategy when the snapshot records one
        # (notably "auto", which re-resolves below); older snapshots
        # fall back to section sniffing — posting sections mean the
        # index was built by an invindex linker.
        stage1 = config.get("stage1") or (
            "invindex" if "invindex.meta" in sections else "blocked")
    documents = [_restore_document(r) for r in sections["documents"]]
    if len(documents) != config["n_known"]:
        raise SnapshotError(
            f"documents section holds {len(documents)} records, "
            f"config says {config['n_known']}", section="documents")
    profile_cache = _rebuild_cache(sections, enabled=bool(cache))
    weights = FeatureWeights(**config["weights"])
    reduction_budget = FeatureBudget(**config["reduction_budget"])
    final_budget = FeatureBudget(**config["final_budget"])

    if algo == "batched-linker":
        linker = BatchedLinker(
            batch_size=config["batch_size"],
            k=config["k"],
            threshold=config["threshold"],
            reduction_budget=reduction_budget,
            final_budget=final_budget,
            weights=weights,
            use_activity=config["use_activity"],
            use_structure=config.get("use_structure", False),
            workers=workers,
            cache=profile_cache,
            block_size=block_size,
            stage1=stage1,
            shards=shards,
        )
        linker._known = documents
        return linker

    linker = AliasLinker(
        k=config["k"],
        threshold=config["threshold"],
        reduction_budget=reduction_budget,
        final_budget=final_budget,
        weights=weights,
        use_activity=config["use_activity"],
        use_structure=config.get("use_structure", False),
        use_reduction=config["use_reduction"],
        workers=workers,
        cache=profile_cache,
        block_size=block_size,
        stage1=stage1,
        shards=shards,
    )
    linker._known = documents
    reducer = linker.reducer
    reducer._known = documents
    extractor = reducer.extractor
    extractor._selected_words = np.asarray(
        sections["reduction.selected_words"])
    extractor._selected_chars = np.asarray(
        sections["reduction.selected_chars"])
    tfidf = TfidfModel()
    tfidf._idf = np.asarray(sections["reduction.idf"])
    extractor._tfidf = tfidf
    shape = tuple(sections["reduction.meta"]["shape"])
    matrix = sparse.csr_matrix(
        (sections["reduction.matrix.data"],
         sections["reduction.matrix.indices"],
         sections["reduction.matrix.indptr"]),
        shape=shape, copy=False)
    # The saved matrix was canonical CSR; assert so instead of letting
    # scipy try to re-sort read-only (mmap-backed) index arrays.
    matrix.has_sorted_indices = True
    matrix.has_canonical_format = True
    reducer._known_matrix = matrix
    if stage1 == "auto":
        # The cost model needs a corpus to measure; now that the
        # matrix is restored, resolve the choice exactly as fit would.
        from repro.perf.invindex import choose_stage1

        reducer._stage1_active = choose_stage1(matrix, reducer.k)
    if reducer.active_stage1 == "invindex":
        meta = sections.get("invindex.meta")
        saved = None
        if meta is not None and (
                shards is None
                or int(shards) == int(meta["n_shards"])):
            try:
                postings = [
                    (sections[f"invindex.shard{i}.data"],
                     sections[f"invindex.shard{i}.rows"],
                     sections[f"invindex.shard{i}.indptr"],
                     sections[f"invindex.shard{i}.maxw"])
                    for i in range(int(meta["n_shards"]))
                ]
                saved = ShardedIndex.from_postings(
                    matrix, meta["bounds"], postings,
                    # Older snapshots predate delta segments; their
                    # postings always cover whole shards.
                    main_ends=meta.get("main_ends"))
            except KeyError:
                saved = None  # partial save: fall through to a build
        if saved is not None:
            reducer.attach_index(saved)
        else:
            # No usable saved shards (snapshot written by a blocked
            # run, or the caller asked for a different shard count):
            # build from the restored matrix.
            reducer.rebuild_index()
        linker.shards = reducer.shards
    return linker


def load_index(path: Union[str, Path], workers: Optional[int] = None,
               cache: bool = True, block_size: Optional[int] = None,
               mmap: bool = True, stage1: Optional[str] = None,
               shards: Optional[int] = None) -> Any:
    """Load a verified snapshot into a ready-to-link linker.

    Every section checksum, the header checksum, the format version
    and the config digest are verified *before* any state is rebuilt;
    damage raises :class:`~repro.errors.SnapshotError` naming the
    first damaged section.  With *mmap* (default, plain loads only)
    the numpy sections stay memory-mapped views of the file.

    *workers*, *cache*, *block_size*, *stage1* and *shards* are
    load-time perf knobs — they never change the scores a loaded
    linker produces.  ``stage1=None`` resumes whatever strategy the
    snapshot was built with (``"invindex"`` when posting sections are
    present, else ``"blocked"``); a saved index is adopted as
    zero-copy views unless *shards* asks for a different partition
    count, in which case it is rebuilt from the restored matrix.
    """
    path = Path(path)
    with span("snapshot.load", path=str(path)):
        last_error: Optional[SnapshotError] = None
        verified = None
        for _ in range(_fault_attempts()):
            try:
                report, buffer, header = _verify_once(
                    path, use_mmap=mmap)
            except SnapshotError as exc:
                last_error = exc
                continue
            if report.ok:
                verified = (buffer, header)
                break
            damaged = report.damaged()
            first = next(s for s in report.sections if not s.ok)
            last_error = SnapshotError(
                f"{path}: {len(damaged)} damaged section(s): "
                f"{', '.join(damaged)} — first failure: {first.error}",
                section=first.name)
        if verified is None:
            assert last_error is not None
            _DAMAGED.inc()
            raise last_error
        buffer, header = verified
        sections = {
            entry["name"]: _parse_section(buffer, header, entry)
            for entry in header["sections"]
        }
        linker = _rebuild_linker(header, sections, workers=workers,
                                 cache=cache, block_size=block_size,
                                 stage1=stage1, shards=shards)
    _LOADED.inc()
    log.info("snapshot.load", path=str(path), algo=header["algo"],
             n_known=header["config"]["n_known"],
             git_rev=header.get("git_rev") or "-")
    return linker
