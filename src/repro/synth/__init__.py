"""Synthetic world generation: the substitute for the paper's scraped
Reddit and dark-web datasets (see DESIGN.md, section 2).
"""

from repro.synth.evidence import (
    disclosure_message,
    sample_disclosures,
)
from repro.synth.noise import NoiseConfig, NoiseInjector
from repro.synth.personas import (
    ActivityHabits,
    Persona,
    PersonaAttributes,
    StyleProfile,
    generate_persona,
    sample_attributes,
    sample_habits,
    sample_style,
)
from repro.synth.textgen import MessageGenerator
from repro.synth.timegen import SamplingWindow, TimestampSampler, YEAR_2017
from repro.synth.world import (
    DM,
    REDDIT,
    TMG,
    ForumLoad,
    LinkedPair,
    World,
    WorldConfig,
    build_world,
    small_world,
)

__all__ = [
    "disclosure_message",
    "sample_disclosures",
    "NoiseConfig",
    "NoiseInjector",
    "ActivityHabits",
    "Persona",
    "PersonaAttributes",
    "StyleProfile",
    "generate_persona",
    "sample_attributes",
    "sample_habits",
    "sample_style",
    "MessageGenerator",
    "SamplingWindow",
    "TimestampSampler",
    "YEAR_2017",
    "DM",
    "REDDIT",
    "TMG",
    "ForumLoad",
    "LinkedPair",
    "World",
    "WorldConfig",
    "build_world",
    "small_world",
]
