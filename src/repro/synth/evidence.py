"""Identity disclosures: the evidence the paper's manual evaluation uses.

Section V-A classifies each matched pair by hand: **True** when a user
declares the other alias or leaks unique data (same e-mail, same
referral link), **Probably True** on strong-but-not-unique overlaps
(same country + same vendor + same drugs), **Unclear** when nothing is
leaked, **False** when the two aliases contradict each other (different
ages, religions, politics, countries).

The synthetic world reproduces the raw material for that protocol:
personas occasionally post *disclosure messages* that embed a personal
fact both as natural-language text (for the §V-D profile extractor) and
as structured metadata under the ``disclosures`` key (for the
ground-truth classifier).  Dark-web aliases disclose rarely; open
aliases are careless — exactly the asymmetry the paper reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.synth.personas import Persona

# Disclosure kinds.  The values double as metadata keys.
AGE = "age"
CITY = "city"
COUNTRY = "country"
OCCUPATION = "occupation"
RELIGION = "religion"
POLITICS = "politics"
PHONE = "phone"
HOBBY = "hobby"
GAME = "game"
DRUG = "drug"
VENDOR_COMPLAINT = "vendor_complaint"
PHILOSOPHER = "philosopher"
ALIAS_REF = "alias_ref"
REFERRAL_LINK = "referral_link"
EMAIL = "email"

#: Kinds that identify a person uniquely (True-grade evidence).
UNIQUE_KINDS = (ALIAS_REF, REFERRAL_LINK, EMAIL)

#: Kinds that support a Probably-True verdict when several agree.
SOFT_KINDS = (CITY, COUNTRY, DRUG, VENDOR_COMPLAINT, HOBBY, GAME,
              PHILOSOPHER, OCCUPATION)

#: Kinds whose disagreement marks a pair as False.
CONTRADICTION_KINDS = (AGE, RELIGION, POLITICS, COUNTRY, CITY, DRUG)

#: Kinds ordinarily disclosed on the open web (careless behaviour).
OPEN_KINDS = (AGE, CITY, COUNTRY, OCCUPATION, RELIGION, POLITICS, PHONE,
              HOBBY, GAME, DRUG, VENDOR_COMPLAINT, PHILOSOPHER)

#: Kinds a cautious dark-web alias might still reveal.
DARK_KINDS = (DRUG, VENDOR_COMPLAINT, CITY, COUNTRY, AGE, PHILOSOPHER)


def _fact_value(persona: Persona, kind: str,
                rng: np.random.Generator) -> Optional[str]:
    """The persona's value for a disclosure *kind* (None if absent)."""
    attrs = persona.attributes
    if kind == AGE:
        return str(attrs.age)
    if kind == CITY:
        return attrs.city
    if kind == COUNTRY:
        return attrs.country
    if kind == OCCUPATION:
        return attrs.occupation
    if kind == RELIGION:
        return attrs.religion
    if kind == POLITICS:
        return attrs.politics
    if kind == PHONE:
        return attrs.phone
    if kind == HOBBY:
        if not attrs.hobbies:
            return None
        return attrs.hobbies[int(rng.integers(len(attrs.hobbies)))]
    if kind == GAME:
        if not attrs.games:
            return None
        return attrs.games[int(rng.integers(len(attrs.games)))]
    if kind == DRUG:
        return attrs.favorite_drug
    if kind == VENDOR_COMPLAINT:
        return f"{attrs.trusted_vendor}|{attrs.favorite_drug}"
    if kind == PHILOSOPHER:
        return attrs.philosopher
    raise ValueError(f"unknown disclosure kind {kind!r}")


def _render_text(persona: Persona, kind: str, value: str,
                 rng: np.random.Generator) -> str:
    """Natural-language sentence carrying the disclosed fact."""
    attrs = persona.attributes
    templates: Dict[str, Tuple[str, ...]] = {
        AGE: (
            f"I am {value} years old and honestly it shows some days.",
            f"As a {value} year old I have seen this happen before.",
        ),
        CITY: (
            f"I live in {value} and the scene here is pretty small.",
            f"Greetings from {value}, the weather is terrible as usual.",
        ),
        COUNTRY: (
            f"Here in {value} things work very differently.",
            f"Shipping to {value} always takes at least two weeks.",
        ),
        OCCUPATION: (
            f"I work as a {value} so my schedule is all over the place.",
            f"Being a {value} does not pay enough for this hobby.",
        ),
        RELIGION: (
            f"As a {value} I try not to judge anyone here.",
            f"I was raised {value} and it still shapes how I think.",
        ),
        POLITICS: (
            f"Politically I would call myself {value} these days.",
            f"My views are pretty {value}, not that it matters here.",
        ),
        PHONE: (
            f"Typing this from my {value} so excuse the typos.",
            f"My {value} battery dies before lunch every single day.",
        ),
        HOBBY: (
            f"Been really into {value} lately, it keeps me sane.",
            f"Anyone else here into {value}? Best decision I ever made.",
        ),
        GAME: (
            f"Mostly playing {value} these nights instead of sleeping.",
            f"Add me on {value} if you want to squad up sometime.",
        ),
        DRUG: (
            f"For me {value} is still the most reliable experience.",
            f"I mostly stick to {value}, everything else is a gamble.",
        ),
        PHILOSOPHER: (
            f"Reading {value} again, that man understood everything.",
            f"As {value} wrote, the obstacle becomes the way forward.",
        ),
    }
    if kind == VENDOR_COMPLAINT:
        vendor, drug = value.split("|", 1)
        options = (
            f"Really disappointed, {vendor} sold me poor quality {drug} "
            "and refused any kind of refund.",
            f"Avoid {vendor} right now, the last batch of {drug} was "
            "nothing like the samples.",
        )
    else:
        options = templates[kind]
    del attrs
    return options[int(rng.integers(len(options)))]


def disclosure_message(persona: Persona, kind: str,
                       rng: np.random.Generator,
                       ) -> Optional[Tuple[str, Dict[str, str]]]:
    """Build one disclosure for *persona*.

    Returns ``(sentence, {kind: value})`` or ``None`` when the persona
    has no value for that kind (e.g. no games, no philosopher).
    """
    value = _fact_value(persona, kind, rng)
    if value is None:
        return None
    text = _render_text(persona, kind, value, rng)
    return text, {kind: value}


def alias_reference(persona: Persona, this_forum: str, other_forum: str,
                    rng: np.random.Generator,
                    ) -> Optional[Tuple[str, Dict[str, str]]]:
    """A True-grade leak: the user names their alias on another forum."""
    other_alias = persona.alias_on(other_forum)
    if other_alias is None:
        return None
    templates = (
        f"For anyone who knows me from {other_forum}, I post there as "
        f"{other_alias}, same person here.",
        f"You might have seen my reviews on {other_forum} under "
        f"{other_alias}, happy to vouch.",
    )
    text = templates[int(rng.integers(len(templates)))]
    return text, {ALIAS_REF: f"{other_forum}:{other_alias}"}


def referral_link(persona: Persona, rng: np.random.Generator,
                  ) -> Tuple[str, Dict[str, str]]:
    """A True-grade leak: a referral URL embedding the user's nickname.

    The paper catches a user who posted the same referral link (with her
    nickname in the URL) on Reddit and in the Dark Web.
    """
    base_alias = next(iter(persona.aliases.values()), f"p{persona.persona_id}")
    token = base_alias.lower()
    url = f"https://dealwatcher.io/ref/{token}{persona.persona_id}"
    text = (f"If you sign up through my link {url} we both get credit, "
            "been using the platform for months.")
    return text, {REFERRAL_LINK: url}


def email_leak(persona: Persona, rng: np.random.Generator,
               ) -> Tuple[str, Dict[str, str]]:
    """A True-grade leak: the same contact address on both forums."""
    base_alias = next(iter(persona.aliases.values()), f"p{persona.persona_id}")
    address = f"{base_alias.lower()}{persona.persona_id}@protonmail.com"
    text = f"Fastest way to reach me is {address}, I check it daily."
    return text, {EMAIL: address}


def sample_disclosures(persona: Persona, forum: str,
                       other_forums: List[str],
                       rng: np.random.Generator,
                       count: int,
                       careless: bool,
                       unique_leak_rate: float = 0.0,
                       ) -> List[Tuple[str, Dict[str, str]]]:
    """Draw *count* disclosure messages for an alias.

    Parameters
    ----------
    persona:
        The person behind the alias.
    forum:
        Forum being posted to.
    other_forums:
        The persona's other forums (for alias references).
    careless:
        Open-web behaviour — the full :data:`OPEN_KINDS` menu.  Cautious
        (dark-web) aliases restrict themselves to :data:`DARK_KINDS`.
    unique_leak_rate:
        Probability that a disclosure is a unique True-grade leak
        (alias reference, referral link, shared e-mail).
    """
    kinds = OPEN_KINDS if careless else DARK_KINDS
    output: List[Tuple[str, Dict[str, str]]] = []
    for _ in range(count):
        if other_forums and rng.random() < unique_leak_rate:
            pick = rng.random()
            if pick < 0.5:
                other = other_forums[int(rng.integers(len(other_forums)))]
                leak = alias_reference(persona, forum, other, rng)
            elif pick < 0.8:
                leak = referral_link(persona, rng)
            else:
                leak = email_leak(persona, rng)
            if leak is not None:
                output.append(leak)
                continue
        kind = kinds[int(rng.integers(len(kinds)))]
        disclosure = disclosure_message(persona, kind, rng)
        if disclosure is not None:
            output.append(disclosure)
    return output
