"""Dirt injection: everything the polishing pipeline exists to remove.

Real forum dumps contain emojis, URLs with tracking junk, quoted
replies, PGP key blocks, e-mail addresses, "Edit by" markers,
non-English messages, ASCII art, and one-liner noise.  The world
generator sprinkles this module's output over clean messages so that
the Section III-C pipeline has genuine work to do and its effect can be
measured (the polishing ablation bench).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.textproc.lang_profiles import SEED_TEXTS

_EMOJIS = ("😀", "😂", "🔥", "👍", "💯", "🙏", "😅", "🤔", "🚀", "🍄",
           "🌿", "❤️", "✌️", "😎", "🎉")

_URL_HOSTS = (
    "www.reddit.com", "imgur.com", "youtube.com", "pastebin.com",
    "blockchain.info", "torproject.org", "duckduckgo.com",
    "wikipedia.org", "github.com", "twitter.com",
)

_MAIL_DOMAINS = ("protonmail.com", "tutanota.com", "gmail.com",
                 "safe-mail.net", "riseup.net")

#: Non-English filler: sentences cut from the language-profile seeds.
_FOREIGN_SENTENCES = {
    lang: [s.strip() + "." for s in text.split(".") if len(s.split()) >= 10]
    for lang, text in SEED_TEXTS.items() if lang != "en"
}

_ASCII_ART = (
    "|\\_/|\n|q p|   /}\n( 0 )\"\"\"\\\n|\"^\"`    |\n||_/=\\\\__|",
    "____/\\\\\\\\\\\\\\\\\\____/\\\\\\\\\\\\\\\\\\\\\\\\____",
    "(╯°□°)╯︵ ┻━┻",
)


def fake_pgp_block(rng: np.random.Generator) -> str:
    """A syntactically plausible ASCII-armored PGP public key block."""
    alphabet = ("ABCDEFGHIJKLMNOPQRSTUVWXYZ"
                "abcdefghijklmnopqrstuvwxyz0123456789+/")
    lines = []
    for _ in range(int(rng.integers(4, 9))):
        chars = rng.integers(0, len(alphabet), size=64)
        lines.append("".join(alphabet[int(c)] for c in chars))
    body = "\n".join(lines)
    return ("-----BEGIN PGP PUBLIC KEY BLOCK-----\n"
            f"{body}\n=abcd\n"
            "-----END PGP PUBLIC KEY BLOCK-----")


def fake_url(rng: np.random.Generator) -> str:
    """A URL with scheme, path and query junk (step 3 fodder)."""
    host = _URL_HOSTS[int(rng.integers(len(_URL_HOSTS)))]
    token = int(rng.integers(10_000, 99_999))
    return f"https://{host}/r/thread/{token}?ref=share&utm_source=forum"


def fake_email(rng: np.random.Generator, alias: str) -> str:
    """An e-mail address embedding the alias (step 10 fodder)."""
    domain = _MAIL_DOMAINS[int(rng.integers(len(_MAIL_DOMAINS)))]
    return f"{alias.lower()}{int(rng.integers(1, 99))}@{domain}"


def foreign_message(rng: np.random.Generator,
                    language: Optional[str] = None) -> str:
    """A non-English message (polishing step 7 fodder).

    Draws 1–3 sentences of the requested (or random) non-English seed
    language.
    """
    languages = sorted(_FOREIGN_SENTENCES)
    if language is None:
        language = languages[int(rng.integers(len(languages)))]
    sentences = _FOREIGN_SENTENCES[language]
    count = int(rng.integers(1, 4))
    picks = [sentences[int(rng.integers(len(sentences)))]
             for _ in range(count)]
    return " ".join(picks)


def short_reaction(rng: np.random.Generator) -> str:
    """A sub-10-word agreement/disagreement message (step 5 fodder)."""
    reactions = (
        "this", "lol same", "agreed", "so true", "yeah exactly",
        "no way", "came here to say this", "underrated comment",
        "thanks for sharing", "what a time to be alive", "based",
        "big if true", "nice one mate",
    )
    return reactions[int(rng.integers(len(reactions)))]


def quote_wrap(rng: np.random.Generator, quoted: str, reply: str,
               quoted_author: str = "") -> str:
    """Embed *quoted* (another user's text) above *reply*.

    Alternates between Reddit's ``>`` markdown style and the BBCode
    ``[quote]`` style used by the dark-web forum software.
    """
    if rng.random() < 0.5:
        quoted_lines = "\n".join("> " + line
                                 for line in quoted.splitlines() or [quoted])
        return f"{quoted_lines}\n{reply}"
    attribution = f"={quoted_author}" if quoted_author else ""
    return f"[quote{attribution}]{quoted}[/quote]\n{reply}"


@dataclass
class NoiseConfig:
    """Per-message dirt probabilities.

    All rates are per clean message; several kinds of dirt can land on
    the same message.  ``foreign_rate`` and ``short_rate`` instead
    *replace* the message entirely.
    """

    emoji_rate: float = 0.10
    url_rate: float = 0.06
    email_rate: float = 0.01
    pgp_rate: float = 0.01
    quote_rate: float = 0.12
    edit_rate: float = 0.03
    ascii_art_rate: float = 0.005
    foreign_rate: float = 0.03
    short_rate: float = 0.10

    def validate(self) -> None:
        for name, value in self.__dict__.items():
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


class NoiseInjector:
    """Apply :class:`NoiseConfig` dirt to a stream of clean messages."""

    def __init__(self, config: NoiseConfig, rng: np.random.Generator,
                 alias: str) -> None:
        config.validate()
        self.config = config
        self.rng = rng
        self.alias = alias
        #: Recently seen messages from other users, quotable.
        self.quotable: List[str] = []

    def remember_quotable(self, text: str) -> None:
        """Offer *text* (someone else's message) as quote material."""
        self.quotable.append(text)
        if len(self.quotable) > 50:
            del self.quotable[0]

    def apply(self, text: str) -> str:
        """Return *text* with dirt injected per the configured rates."""
        rng = self.rng
        cfg = self.config
        if rng.random() < cfg.short_rate:
            return short_reaction(rng)
        if rng.random() < cfg.foreign_rate:
            return foreign_message(rng)
        if self.quotable and rng.random() < cfg.quote_rate:
            quoted = self.quotable[int(rng.integers(len(self.quotable)))]
            snippet = " ".join(quoted.split()[:25])
            text = quote_wrap(rng, snippet, text)
        if rng.random() < cfg.emoji_rate:
            emoji = _EMOJIS[int(rng.integers(len(_EMOJIS)))]
            text = f"{text} {emoji * int(rng.integers(1, 4))}"
        if rng.random() < cfg.url_rate:
            text = f"{text} {fake_url(rng)}"
        if rng.random() < cfg.email_rate:
            text = (f"{text} you can reach me at "
                    f"{fake_email(rng, self.alias)}")
        if rng.random() < cfg.pgp_rate:
            text = f"{text}\nmy PGP key:\n{fake_pgp_block(rng)}"
        if rng.random() < cfg.edit_rate:
            text = f"{text}\nEdit by {self.alias}: typo."
        if rng.random() < cfg.ascii_art_rate:
            art = _ASCII_ART[int(rng.integers(len(_ASCII_ART)))]
            text = f"{text}\n{art}"
        return text
