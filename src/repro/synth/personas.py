"""Personas: the people behind the aliases.

A persona owns everything that is *stable about a person across forums*:
a writing-style fingerprint (:class:`StyleProfile`), daily posting
habits (:class:`ActivityHabits`), and personal attributes (age, city,
phone, hobbies...) that the §V-D profile extractor can later dig out of
their open-web messages.

Aliases are cheap: a persona can hold one alias per forum, and the
*style drift* machinery lets the dark-web alias write slightly
differently from the open-web one — the paper's central difficulty when
moving from Dark↔Dark to Dark↔Open linking.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.synth import wordlists
from repro.synth.rng import (
    choice,
    dirichlet_perturbed,
    mix_distributions,
    sample_without_replacement,
    substream,
    zipf_weights,
)

@dataclass(frozen=True)
class StyleParams:
    """How distinguishable authors are from one another.

    The Dirichlet concentrations control how far an author's personal
    word distributions sit from the population average: *smaller* values
    mean more idiosyncratic (easier to attribute) authors.  The marker
    knobs bound the near-deterministic author fingerprints (phrases,
    slang, typos, emoticons), which dominate attribution when abundant.

    The defaults are calibrated so that alter-ego k-attribution accuracy
    on the synthetic Reddit world follows the paper's Table III shape:
    weak at 400 words per alias, strong (but not saturated) at 1,500.
    """

    function_concentration: float = 1500.0
    content_concentration: float = 900.0
    max_phrases: int = 3
    max_slang: int = 2
    max_typos: int = 1
    max_emoticons: int = 1
    phrase_rate_scale: float = 0.25
    slang_rate_scale: float = 0.4
    rate_spread: float = 0.5

    def __post_init__(self) -> None:
        if self.function_concentration <= 0 or \
                self.content_concentration <= 0:
            raise ValueError("concentrations must be positive")
        for name in ("max_phrases", "max_slang", "max_typos",
                     "max_emoticons"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if not 0.0 <= self.rate_spread <= 1.0:
            raise ValueError("rate_spread must be in [0, 1]")


#: Default style distinctiveness (see :class:`StyleParams`).
DEFAULT_STYLE_PARAMS = StyleParams()


@dataclass(frozen=True)
class StyleProfile:
    """A complete stylometric fingerprint.

    Attributes
    ----------
    function_weights:
        Personal multinomial over :data:`wordlists.FUNCTION_WORDS`.
    content_weights:
        Personal multinomial over :data:`wordlists.CONTENT_WORDS`.
    phrases:
        The collocations this author habitually drops into sentences.
    slang:
        Personal slang subset.
    typo_words:
        Words this author habitually misspells (keys of
        :data:`wordlists.TYPO_MAP`).
    emoticons:
        Emoticons this author uses, possibly empty.
    function_word_rate:
        Probability that the next token is a function word (natural
        English sits near 0.5; authors vary around it).
    phrase_rate:
        Probability of starting a personal phrase at a sentence slot.
    slang_rate:
        Probability of substituting a slang token.
    emoticon_rate:
        Probability of appending an emoticon to a sentence.
    comma_rate / ellipsis_rate / exclaim_rate / question_rate:
        Punctuation habits; the remaining probability mass ends
        sentences with a period.
    digit_rate:
        Probability a sentence embeds a number token.
    lowercase_start_rate:
        Probability of not capitalizing a sentence start (the "never
        uses the shift key" archetype).
    mean_sentence_words:
        Average sentence length in word tokens.
    mean_message_sentences:
        Average number of sentences per message.
    """

    function_weights: np.ndarray
    content_weights: np.ndarray
    phrases: Tuple[str, ...]
    slang: Tuple[str, ...]
    typo_words: Tuple[str, ...]
    emoticons: Tuple[str, ...]
    function_word_rate: float
    phrase_rate: float
    slang_rate: float
    emoticon_rate: float
    comma_rate: float
    ellipsis_rate: float
    exclaim_rate: float
    question_rate: float
    digit_rate: float
    lowercase_start_rate: float
    mean_sentence_words: float
    mean_message_sentences: float

    def drifted(self, rng: np.random.Generator, drift: float,
                params: "StyleParams | None" = None) -> "StyleProfile":
        """Return a copy with style drifted by *drift* in [0, 1].

        ``drift = 0`` keeps the style identical; ``drift = 1`` replaces
        it with a fresh random style (an unlinkable alter ego).  The
        paper's Dark↔Open experiments correspond to small drifts: people
        "might behave differently and use different writing styles when
        in the standard Web", but remain recognizably themselves.
        """
        if not 0.0 <= drift <= 1.0:
            raise ValueError(f"drift must be in [0, 1], got {drift}")
        if drift == 0.0:
            return self
        fresh = sample_style(rng, params or DEFAULT_STYLE_PARAMS)
        n_phr = len(self.phrases)
        keep_phr = max(0, round(n_phr * (1.0 - drift)))
        phrases = self.phrases[:keep_phr] + fresh.phrases[:n_phr - keep_phr]
        n_sl = len(self.slang)
        keep_sl = max(0, round(n_sl * (1.0 - drift)))
        slang = self.slang[:keep_sl] + fresh.slang[:n_sl - keep_sl]

        def lerp(a: float, b: float) -> float:
            return (1.0 - drift) * a + drift * b

        return StyleProfile(
            function_weights=mix_distributions(
                self.function_weights, fresh.function_weights, drift),
            content_weights=mix_distributions(
                self.content_weights, fresh.content_weights, drift),
            phrases=phrases,
            slang=slang,
            typo_words=self.typo_words if drift < 0.5 else fresh.typo_words,
            emoticons=self.emoticons if drift < 0.5 else fresh.emoticons,
            function_word_rate=lerp(self.function_word_rate,
                                    fresh.function_word_rate),
            phrase_rate=lerp(self.phrase_rate, fresh.phrase_rate),
            slang_rate=lerp(self.slang_rate, fresh.slang_rate),
            emoticon_rate=lerp(self.emoticon_rate, fresh.emoticon_rate),
            comma_rate=lerp(self.comma_rate, fresh.comma_rate),
            ellipsis_rate=lerp(self.ellipsis_rate, fresh.ellipsis_rate),
            exclaim_rate=lerp(self.exclaim_rate, fresh.exclaim_rate),
            question_rate=lerp(self.question_rate, fresh.question_rate),
            digit_rate=lerp(self.digit_rate, fresh.digit_rate),
            lowercase_start_rate=lerp(self.lowercase_start_rate,
                                      fresh.lowercase_start_rate),
            mean_sentence_words=lerp(self.mean_sentence_words,
                                     fresh.mean_sentence_words),
            mean_message_sentences=lerp(self.mean_message_sentences,
                                        fresh.mean_message_sentences),
        )


def sample_style(rng: np.random.Generator,
                 params: StyleParams = DEFAULT_STYLE_PARAMS) -> StyleProfile:
    """Draw a fresh, internally consistent style fingerprint."""
    function_base = zipf_weights(len(wordlists.FUNCTION_WORDS))
    content_base = zipf_weights(len(wordlists.CONTENT_WORDS))

    def habit(lo: float, hi: float) -> float:
        """Uniform draw shrunk toward the population midpoint.

        ``rate_spread`` narrows how much authors differ in their
        punctuation/length habits: 1.0 keeps the full range, 0.0 makes
        every author identical (habits carry no signal).
        """
        mid = (lo + hi) / 2.0
        return mid + (float(rng.uniform(lo, hi)) - mid) * params.rate_spread

    n_phrases = int(rng.integers(0, params.max_phrases + 1))
    n_slang = int(rng.integers(0, params.max_slang + 1))
    n_typos = int(rng.integers(0, params.max_typos + 1))
    n_emoticons = int(rng.integers(0, params.max_emoticons + 1))
    typo_keys = tuple(wordlists.TYPO_MAP)
    return StyleProfile(
        function_weights=dirichlet_perturbed(
            rng, function_base, params.function_concentration),
        content_weights=dirichlet_perturbed(
            rng, content_base, params.content_concentration),
        phrases=tuple(sample_without_replacement(
            rng, wordlists.PHRASES, n_phrases)),
        slang=tuple(sample_without_replacement(
            rng, wordlists.SLANG, n_slang)),
        typo_words=tuple(sample_without_replacement(
            rng, typo_keys, n_typos)),
        emoticons=tuple(sample_without_replacement(
            rng, wordlists.EMOTICONS, n_emoticons)),
        function_word_rate=habit(0.42, 0.58),
        phrase_rate=habit(0.05, 0.30) * params.phrase_rate_scale,
        slang_rate=habit(0.0, 0.10) * params.slang_rate_scale,
        emoticon_rate=habit(0.0, 0.25),
        comma_rate=habit(0.02, 0.12),
        ellipsis_rate=habit(0.0, 0.10),
        exclaim_rate=habit(0.0, 0.20),
        question_rate=habit(0.02, 0.15),
        digit_rate=habit(0.0, 0.15),
        lowercase_start_rate=float(rng.choice(
            [0.0, 0.0, 0.1, 0.9], p=[0.4, 0.2, 0.2, 0.2]))
        * params.rate_spread,
        mean_sentence_words=habit(8.0, 18.0),
        mean_message_sentences=float(rng.uniform(1.5, 5.0)),
    )


@dataclass(frozen=True)
class ActivityHabits:
    """Daily posting habits of a persona.

    Attributes
    ----------
    timezone_offset:
        The persona's home UTC offset in hours (-11..13).
    peak_hours:
        Local hours around which posting concentrates.
    peak_widths:
        Standard deviation (hours) of each peak.
    peak_weights:
        Relative mass of each peak (normalized).
    weekend_shift:
        Hours by which the whole profile shifts on weekends — the
        reason the paper discards weekend/holiday timestamps.
    night_owl_floor:
        Baseline posting probability spread over all hours.
    annual_drift_hours:
        Total circular drift of the peaks over one year ("in the long
        run, people can change their habits", §VI).  Zero by default;
        the time-range sensitivity bench turns it on.
    """

    timezone_offset: int
    peak_hours: Tuple[float, ...]
    peak_widths: Tuple[float, ...]
    peak_weights: Tuple[float, ...]
    weekend_shift: float
    night_owl_floor: float
    annual_drift_hours: float = 0.0

    def hourly_distribution(self, local: bool = False,
                            shifted: float = 0.0) -> np.ndarray:
        """The 24-bin posting-probability profile.

        Parameters
        ----------
        local:
            Return the profile in local hours instead of UTC.
        shifted:
            Extra circular shift in hours (used for weekends).
        """
        hours = np.arange(24, dtype=np.float64)
        profile = np.full(24, self.night_owl_floor / 24.0)
        for mu, sigma, w in zip(self.peak_hours, self.peak_widths,
                                self.peak_weights):
            center = mu + shifted
            # circular distance on the 24-hour clock
            delta = np.minimum(np.abs(hours - center % 24),
                               24 - np.abs(hours - center % 24))
            profile += w * np.exp(-0.5 * (delta / sigma) ** 2)
        if not local:
            profile = np.roll(profile, -self.timezone_offset)
        return profile / profile.sum()


def sample_habits(rng: np.random.Generator,
                  timezone_offset: Optional[int] = None,
                  max_annual_drift: float = 0.0) -> ActivityHabits:
    """Draw daily posting habits, optionally pinning the timezone.

    ``max_annual_drift`` bounds the per-persona habit drift over a
    year; each persona draws its drift uniformly from that range.
    """
    if timezone_offset is None:
        # Population skewed toward North America / Europe, like the
        # forums under study.
        timezone_offset = int(rng.choice(
            [-8, -7, -6, -5, -4, 0, 1, 2, 3, 8, 10],
            p=[0.12, 0.08, 0.10, 0.18, 0.05, 0.12,
               0.14, 0.10, 0.04, 0.03, 0.04]))
    n_peaks = int(rng.integers(1, 3))
    peak_hours = tuple(float(rng.uniform(0, 24)) for _ in range(n_peaks))
    peak_widths = tuple(float(rng.uniform(0.8, 2.5)) for _ in range(n_peaks))
    raw_weights = rng.uniform(0.5, 1.0, size=n_peaks)
    peak_weights = tuple(float(w) for w in raw_weights / raw_weights.sum())
    return ActivityHabits(
        timezone_offset=timezone_offset,
        peak_hours=peak_hours,
        peak_widths=peak_widths,
        peak_weights=peak_weights,
        weekend_shift=float(rng.uniform(-4.0, 4.0)),
        night_owl_floor=float(rng.uniform(0.03, 0.25)),
        annual_drift_hours=float(rng.uniform(-max_annual_drift,
                                             max_annual_drift)),
    )


@dataclass(frozen=True)
class PersonaAttributes:
    """Real-world facts about the person (what §V-D digs for)."""

    age: int
    city: str
    country: str
    occupation: str
    hobbies: Tuple[str, ...]
    games: Tuple[str, ...]
    phone: str
    religion: str
    politics: str
    favorite_drug: str
    trusted_vendor: str
    philosopher: Optional[str] = None


def sample_attributes(rng: np.random.Generator) -> PersonaAttributes:
    """Draw a coherent set of personal attributes."""
    city, country = choice(rng, wordlists.CITIES)
    n_hobbies = int(rng.integers(1, 4))
    n_games = int(rng.integers(0, 4))
    return PersonaAttributes(
        age=int(rng.integers(18, 55)),
        city=city,
        country=country,
        occupation=choice(rng, wordlists.OCCUPATIONS),
        hobbies=tuple(sample_without_replacement(
            rng, wordlists.HOBBIES, n_hobbies)),
        games=tuple(sample_without_replacement(
            rng, wordlists.VIDEO_GAMES, n_games)),
        phone=choice(rng, wordlists.PHONES),
        religion=choice(rng, wordlists.RELIGIONS),
        politics=choice(rng, ("progressive", "conservative", "libertarian",
                              "apolitical")),
        favorite_drug=choice(rng, wordlists.DRUGS),
        trusted_vendor=choice(rng, wordlists.VENDOR_NAMES),
        philosopher=(choice(rng, wordlists.PHILOSOPHERS)
                     if rng.random() < 0.2 else None),
    )


@dataclass
class Persona:
    """One person, possibly holding aliases on several forums.

    Attributes
    ----------
    persona_id:
        Stable integer identifier within a world.
    style:
        The base (open-web) style fingerprint.
    habits:
        Daily posting habits (shared across forums; that is the point
        of the daily-activity attack).
    attributes:
        Real-world facts.
    aliases:
        Mapping ``forum name -> alias`` for every forum this persona
        participates in.
    styles:
        Mapping ``forum name -> StyleProfile``; dark-web styles may be
        drifted copies of :attr:`style`.
    is_vendor:
        Vendors post showcase ads and use their alias as a brand — the
        paper notes they are the easiest users to link.
    is_bot:
        Bot accounts (dropped by polishing step 1).
    """

    persona_id: int
    style: StyleProfile
    habits: ActivityHabits
    attributes: PersonaAttributes
    aliases: Dict[str, str] = field(default_factory=dict)
    styles: Dict[str, StyleProfile] = field(default_factory=dict)
    is_vendor: bool = False
    is_bot: bool = False

    def style_on(self, forum: str) -> StyleProfile:
        """The style profile this persona uses on *forum*."""
        return self.styles.get(forum, self.style)

    def alias_on(self, forum: str) -> Optional[str]:
        """The persona's alias on *forum*, if any."""
        return self.aliases.get(forum)

    def join_forum(self, rng: np.random.Generator, forum: str, alias: str,
                   drift: float = 0.0,
                   params: "StyleParams | None" = None) -> None:
        """Register an alias on *forum* with the given style drift."""
        if forum in self.aliases:
            raise ValueError(
                f"persona {self.persona_id} already has an alias on "
                f"{forum!r}")
        self.aliases[forum] = alias
        self.styles[forum] = self.style.drifted(rng, drift, params)


def make_alias(rng: np.random.Generator, taken: set,
               vendor: bool = False, bot: bool = False) -> str:
    """Generate a unique nickname.

    Vendors get brand-like names; bots advertise themselves with a
    ``bot`` prefix/suffix exactly as the polishing heuristic expects.
    """
    for _ in range(1000):
        if vendor:
            base = choice(rng, wordlists.VENDOR_NAMES)
            name = f"{base}{int(rng.integers(1, 100))}" \
                if rng.random() < 0.5 else base
        else:
            adj = choice(rng, wordlists.ALIAS_ADJECTIVES)
            noun = choice(rng, wordlists.ALIAS_NOUNS)
            name = f"{adj}{noun}"
            if rng.random() < 0.5:
                name += str(int(rng.integers(1, 1000)))
        if bot:
            name = name + "bot" if rng.random() < 0.5 else "bot" + name
        if name.lower() not in taken:
            taken.add(name.lower())
            return name
    raise RuntimeError("alias namespace exhausted")


def generate_persona(seed: int, persona_id: int,
                     params: StyleParams = DEFAULT_STYLE_PARAMS,
                     max_annual_drift: float = 0.0) -> Persona:
    """Deterministically generate persona number *persona_id*."""
    rng = substream(seed, "persona", persona_id)
    return Persona(
        persona_id=persona_id,
        style=sample_style(rng, params),
        habits=sample_habits(rng, max_annual_drift=max_annual_drift),
        attributes=sample_attributes(rng),
    )
