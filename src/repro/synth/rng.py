"""Deterministic random-number utilities for the synthetic world.

Every synthetic artifact must be reproducible from a single world seed:
the same seed must yield the same personas, the same messages and the
same timestamps regardless of generation order.  To that end, randomness
is organized as *named substreams*: ``substream(seed, "persona", 17)``
always returns the same generator, no matter what was generated before.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Sequence, TypeVar, Union

import numpy as np

Key = Union[str, int]
T = TypeVar("T")


def _digest(seed: int, keys: Iterable[Key]) -> int:
    """Collapse a seed and a key path into a 64-bit substream seed."""
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(seed)).encode())
    for key in keys:
        h.update(b"/")
        h.update(str(key).encode())
    return int.from_bytes(h.digest(), "big")


def substream(seed: int, *keys: Key) -> np.random.Generator:
    """Return the generator for the substream named by *keys*.

    Substreams with different key paths are statistically independent;
    the same key path always yields an identical generator.
    """
    return np.random.default_rng(_digest(seed, keys))


def choice(rng: np.random.Generator, items: Sequence[T]) -> T:
    """Uniformly pick one element of *items* (preserving its type)."""
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    return items[int(rng.integers(len(items)))]


def sample_without_replacement(rng: np.random.Generator,
                               items: Sequence[T], k: int) -> List[T]:
    """Pick *k* distinct elements of *items* (k may not exceed its size)."""
    if k > len(items):
        raise ValueError(
            f"cannot sample {k} items from a sequence of {len(items)}")
    idx = rng.permutation(len(items))[:k]
    return [items[int(i)] for i in idx]


def zipf_weights(n: int, exponent: float = 1.07) -> np.ndarray:
    """Normalized Zipf-law weights for ranks ``1..n``.

    Natural-language word frequencies follow a Zipf law with exponent
    close to 1; the default 1.07 matches large English corpora.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def dirichlet_perturbed(rng: np.random.Generator, base: np.ndarray,
                        concentration: float) -> np.ndarray:
    """Sample an author-specific distribution around *base*.

    Draws from ``Dirichlet(concentration * base)``.  Lower values of
    *concentration* yield more idiosyncratic authors (more stylometric
    signal); very high values make every author look alike.
    """
    base = np.asarray(base, dtype=np.float64)
    if base.ndim != 1 or base.size == 0:
        raise ValueError("base must be a non-empty 1-D distribution")
    if concentration <= 0:
        raise ValueError("concentration must be positive")
    alpha = np.maximum(base * concentration, 1e-6)
    sample = rng.dirichlet(alpha)
    # Guard against numerical zeros that would make a word unreachable.
    sample = np.maximum(sample, 1e-12)
    return sample / sample.sum()


def mix_distributions(a: np.ndarray, b: np.ndarray,
                      weight_b: float) -> np.ndarray:
    """Convex combination of two distributions (used for style drift)."""
    if not 0.0 <= weight_b <= 1.0:
        raise ValueError("weight_b must be in [0, 1]")
    mixed = (1.0 - weight_b) * np.asarray(a) + weight_b * np.asarray(b)
    return mixed / mixed.sum()
