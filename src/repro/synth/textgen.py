"""Generation of English-looking forum prose from a style fingerprint.

The generator is a stochastic sentence assembler: each token slot is
either a function word (drawn from the author's personal multinomial),
a content word (personal Zipf preferences, optionally biased toward the
topic of the section being posted in), a personal phrase, slang, a
number, or punctuation — all governed by the :class:`StyleProfile`
rates.  The output is not meant to fool a human; it is meant to have the
*statistical* properties stylometry feeds on:

* author-specific function-word frequencies,
* author-specific word 2/3-gram mass (phrases),
* author-specific punctuation/digit/special-character rates, and
* author-specific character n-grams (typos, slang, emoticons),

while remaining English enough for the char-n-gram language detector to
keep it (real messages must pass polishing step 7).

Performance note: worlds contain millions of words, so the hot path
avoids per-token :meth:`numpy.random.Generator.choice` calls (which
re-scan the probability vector every time).  Uniform draws are buffered
in blocks and categorical draws use a pre-computed cumulative
distribution with :func:`numpy.searchsorted`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.synth import wordlists
from repro.synth.personas import StyleProfile

#: Probability that a content-word slot uses a topic keyword when the
#: message is posted in a topical section.
TOPIC_KEYWORD_RATE = 0.25

_FUNCTION_WORDS: Sequence[str] = wordlists.FUNCTION_WORDS
_CONTENT_WORDS: Sequence[str] = wordlists.CONTENT_WORDS


class _RandomBuffer:
    """Amortized uniform draws: one numpy call per *size* values."""

    __slots__ = ("_rng", "_size", "_buf", "_i")

    def __init__(self, rng: np.random.Generator, size: int = 8192) -> None:
        self._rng = rng
        self._size = size
        self._buf = rng.random(size)
        self._i = 0

    def uniform(self) -> float:
        """Next uniform value in [0, 1)."""
        if self._i >= self._size:
            self._buf = self._rng.random(self._size)
            self._i = 0
        value = self._buf[self._i]
        self._i += 1
        return value

    def randint(self, n: int) -> int:
        """Uniform integer in [0, n)."""
        return int(self.uniform() * n)


class MessageGenerator:
    """Generate messages in one author's voice.

    Parameters
    ----------
    style:
        The author's stylometric fingerprint.
    rng:
        Source of randomness (a dedicated substream per alias keeps the
        world reproducible).
    topic_keywords:
        Topical vocabulary of the section being posted to; sampled into
        content slots at :data:`TOPIC_KEYWORD_RATE`.
    """

    def __init__(self, style: StyleProfile, rng: np.random.Generator,
                 topic_keywords: Sequence[str] = ()) -> None:
        self.style = style
        self.rng = rng
        self.topic_keywords = tuple(topic_keywords)
        self._typos = {w: wordlists.TYPO_MAP[w] for w in style.typo_words}
        self._function_cum = np.cumsum(style.function_weights)
        self._content_cum = np.cumsum(style.content_weights)
        self._rand = _RandomBuffer(rng)

    # -- token-level sampling ------------------------------------------------

    def _function_word(self) -> str:
        idx = int(np.searchsorted(self._function_cum, self._rand.uniform()))
        word = _FUNCTION_WORDS[min(idx, len(_FUNCTION_WORDS) - 1)]
        return self._typos.get(word, word)

    def _content_word(self) -> str:
        if self.topic_keywords and self._rand.uniform() < TOPIC_KEYWORD_RATE:
            return self.topic_keywords[
                self._rand.randint(len(self.topic_keywords))]
        idx = int(np.searchsorted(self._content_cum, self._rand.uniform()))
        word = _CONTENT_WORDS[min(idx, len(_CONTENT_WORDS) - 1)]
        return self._typos.get(word, word)

    def _end_punctuation(self) -> str:
        s = self.style
        r = self._rand.uniform()
        if r < s.ellipsis_rate:
            return "..."
        r -= s.ellipsis_rate
        if r < s.exclaim_rate:
            return "!" if self._rand.uniform() < 0.7 else "!!"
        r -= s.exclaim_rate
        if r < s.question_rate:
            return "?"
        return "."

    # -- sentence / message assembly ----------------------------------------

    def sentence(self) -> str:
        """Generate one sentence in the author's voice."""
        s = self.style
        rand = self._rand
        n_words = max(3, int(self.rng.poisson(s.mean_sentence_words)))
        parts: List[str] = []
        while len(parts) < n_words:
            if s.phrases and rand.uniform() < s.phrase_rate / 4.0:
                phrase = s.phrases[rand.randint(len(s.phrases))]
                parts.extend(phrase.split())
                continue
            if s.slang and rand.uniform() < s.slang_rate:
                parts.append(s.slang[rand.randint(len(s.slang))])
                continue
            if rand.uniform() < s.function_word_rate:
                word = self._function_word()
            else:
                word = self._content_word()
            parts.append(word)
            if (s.comma_rate and len(parts) < n_words - 1
                    and rand.uniform() < s.comma_rate):
                parts[-1] = parts[-1] + ","
        if rand.uniform() < s.digit_rate:
            number = str(1 + rand.randint(499))
            pos = 1 + rand.randint(len(parts))
            parts.insert(pos, number)
        if rand.uniform() >= s.lowercase_start_rate:
            parts[0] = parts[0][:1].upper() + parts[0][1:]
        text = " ".join(parts) + self._end_punctuation()
        if s.emoticons and rand.uniform() < s.emoticon_rate:
            text += " " + s.emoticons[rand.randint(len(s.emoticons))]
        return text

    def message(self, target_words: Optional[int] = None) -> str:
        """Generate one message.

        Parameters
        ----------
        target_words:
            When given, sentences accumulate until the whitespace-token
            count reaches this target — approximately the linguistic
            word count (punctuation-only tokens make the tokenizer's
            word count run a few words lower).  Otherwise the author's
            :attr:`StyleProfile.mean_message_sentences` governs length.
        """
        sentences: List[str] = []
        if target_words is None:
            n_sentences = 1 + int(self.rng.poisson(
                max(0.0, self.style.mean_message_sentences - 1.0)))
            for _ in range(n_sentences):
                sentences.append(self.sentence())
        else:
            words = 0
            while words < target_words:
                sent = self.sentence()
                sentences.append(sent)
                words += len(sent.split())
        return " ".join(sentences)

    def messages(self, count: int,
                 target_words: Optional[int] = None) -> List[str]:
        """Generate *count* independent messages."""
        return [self.message(target_words) for _ in range(count)]


def vendor_showcase(rng: np.random.Generator, vendor_alias: str,
                    generator: MessageGenerator) -> str:
    """A vendor's showcase post: product list, prices, shipping blurb.

    Mirrors The Majestic Garden structure, where the first post of a
    vendor thread is the advertisement and replies are reviews.
    Showcases embed the vendor's brand name — the self-reference that
    makes vendors the easiest aliases to link (Section V-C).
    """
    n_products = int(rng.integers(2, 6))
    lines = [
        f"Welcome to the official {vendor_alias} thread, "
        "please read everything before ordering."
    ]
    for _ in range(n_products):
        drug = wordlists.DRUGS[int(rng.integers(len(wordlists.DRUGS)))]
        price = int(rng.integers(10, 300))
        grams = int(rng.integers(1, 28))
        lines.append(
            f"We offer top quality {drug}, {grams} grams for {price} "
            "with tracked shipping included.")
    lines.append(generator.sentence())
    lines.append(
        f"All orders ship within 2 business days, message {vendor_alias} "
        "for bulk pricing and always use escrow for your first order.")
    return " ".join(lines)


def review_post(rng: np.random.Generator, vendor_alias: str,
                generator: MessageGenerator, drug: str) -> str:
    """A customer review in a vendor thread."""
    rating = int(rng.integers(6, 11))
    opener = (
        f"Just received my order of {drug} from {vendor_alias}, "
        f"overall {rating} out of 10.")
    return opener + " " + generator.message()


def spam_variants(rng: np.random.Generator, base: str,
                  count: int) -> List[str]:
    """Near-duplicates of *base* (vendor re-posts, crossposts).

    Each variant changes at most a couple of words, reproducing the
    spam the paper's polishing step 2 must catch via exact-duplicate
    removal and step 6 via the distinct-word-ratio filter.
    """
    variants = [base]
    words = base.split()
    for _ in range(count - 1):
        mutated = list(words)
        for _ in range(int(rng.integers(0, 3))):
            if not mutated:
                break
            pos = int(rng.integers(len(mutated)))
            mutated[pos] = wordlists.CONTENT_WORDS[
                int(rng.integers(len(wordlists.CONTENT_WORDS)))]
        variants.append(" ".join(mutated))
    return variants


def repeated_sentence_spam(rng: np.random.Generator,
                           generator: MessageGenerator) -> str:
    """A message that repeats one sentence many times (low diversity).

    These are the "single sentence written multiple times" spam messages
    that motivate the distinct-word-ratio filter (polishing step 6).
    """
    sentence = generator.sentence()
    repeats = int(rng.integers(3, 8))
    return " ".join([sentence] * repeats)
