"""Timestamp generation from a persona's daily habits.

Given :class:`~repro.synth.personas.ActivityHabits`, this module draws
posting timestamps over a sampling window (the paper's data is almost
entirely from 2017).  Weekday posts follow the persona's hourly profile;
weekend posts follow the same profile shifted by the persona's
``weekend_shift`` — exactly the bias that makes the paper discard
weekend and holiday timestamps when building activity profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.calendars import is_weekend, timestamp_at
from repro.forums.models import DAY, HOUR
from repro.synth.personas import ActivityHabits


@dataclass(frozen=True)
class SamplingWindow:
    """The period over which a persona's posts are spread.

    Defaults to the whole of 2017, matching the paper ("almost all the
    posts in the datasets were written in the same year, 2017").
    """

    start: int = timestamp_at(2017, 1, 1)
    end: int = timestamp_at(2017, 12, 31, 23, 59, 59)

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("window end must be after start")

    @property
    def n_days(self) -> int:
        return max(1, (self.end - self.start) // DAY)


#: The default 2017 window.
YEAR_2017 = SamplingWindow()


class TimestampSampler:
    """Draw posting timestamps for one persona.

    Parameters
    ----------
    habits:
        The persona's daily activity habits.
    rng:
        Randomness substream for this alias.
    window:
        Sampling window (default: calendar year 2017).

    When the habits carry a non-zero ``annual_drift_hours``, the
    persona's peaks migrate through the year (quantized into quarters
    so per-day profiles need not be recomputed): the §VI time-range
    effect.
    """

    #: Number of within-window segments used to quantize annual drift.
    DRIFT_SEGMENTS = 4

    def __init__(self, habits: ActivityHabits, rng: np.random.Generator,
                 window: SamplingWindow = YEAR_2017) -> None:
        self.habits = habits
        self.rng = rng
        self.window = window
        drift = getattr(habits, "annual_drift_hours", 0.0)
        segments = self.DRIFT_SEGMENTS if drift else 1
        self._weekday_cums = []
        self._weekend_cums = []
        for segment in range(segments):
            # drift progresses linearly across the window
            progress = (segment + 0.5) / segments - 0.5
            shift = drift * progress
            self._weekday_cums.append(np.cumsum(
                habits.hourly_distribution(shifted=shift)))
            self._weekend_cums.append(np.cumsum(
                habits.hourly_distribution(
                    shifted=shift + habits.weekend_shift)))
        self._segments = segments

    def _segment_of(self, day: int) -> int:
        return min(self._segments - 1,
                   int(day * self._segments / max(1, self.window.n_days)))

    def sample(self, count: int) -> List[int]:
        """Draw *count* timestamps (epoch seconds, UTC), sorted."""
        if count < 0:
            raise ValueError("count must be >= 0")
        if count == 0:
            return []
        days = self.rng.integers(0, self.window.n_days, size=count)
        day_starts = self.window.start - (self.window.start % DAY) \
            + days * DAY
        hour_draws = self.rng.random(count)
        seconds = self.rng.integers(0, HOUR, size=count)
        stamps = np.empty(count, dtype=np.int64)
        for i in range(count):
            base = int(day_starts[i])
            segment = self._segment_of(int(days[i]))
            cum = self._weekend_cums[segment] if is_weekend(base) \
                else self._weekday_cums[segment]
            hour = int(np.searchsorted(cum, hour_draws[i]))
            hour = min(hour, 23)
            stamps[i] = base + hour * HOUR + int(seconds[i])
        stamps.sort()
        return [int(s) for s in stamps]
