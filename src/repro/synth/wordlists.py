"""Word inventories for the synthetic text generator.

The generator writes English-looking forum prose, so its vocabulary must
be real English: the built-in language detector (and any stylometric
claim about character n-grams) only behaves realistically on genuine
English character sequences.  This module holds the shared inventories;
per-author *preferences over* these inventories are what
:mod:`repro.synth.personas` randomizes.

Nothing here is secret sauce: function words carry most of the
stylometric signal in short texts, content words carry topic, phrases
feed the word-2/3-gram features, and slang/typo habits feed the
character n-grams.
"""

from __future__ import annotations

from typing import Dict, Tuple


def _unique(words):
    """Drop later duplicates, preserving order.

    Some words legitimately appear in several grammatical roles while
    drafting the inventories ("order" the noun vs the verb); keeping
    one copy avoids silently doubling their sampling weight.
    """
    seen = set()
    out = []
    for word in words:
        if word not in seen:
            seen.add(word)
            out.append(word)
    return tuple(out)


#: High-frequency English function words.  Authors get an individual
#: multinomial over these — the classic stylometric fingerprint.
FUNCTION_WORDS: Tuple[str, ...] = (
    "the", "a", "an", "and", "or", "but", "so", "if", "then", "than",
    "that", "this", "these", "those", "it", "its", "he", "she", "they",
    "them", "his", "her", "their", "we", "us", "our", "you", "your",
    "i", "me", "my", "mine", "who", "what", "which", "when", "where",
    "why", "how", "not", "no", "yes", "all", "any", "some", "none",
    "both", "each", "few", "many", "much", "more", "most", "other",
    "such", "only", "own", "same", "too", "very", "just", "also",
    "even", "still", "yet", "again", "ever", "never", "always",
    "often", "sometimes", "usually", "maybe", "perhaps", "really",
    "quite", "rather", "pretty", "about", "above", "after", "before",
    "against", "between", "into", "through", "during", "under", "over",
    "from", "to", "of", "in", "on", "at", "by", "with", "without",
    "for", "as", "like", "until", "while", "because", "since",
    "although", "though", "however", "therefore", "anyway", "besides",
    "instead", "meanwhile", "otherwise", "is", "am", "are", "was",
    "were", "be", "been", "being", "have", "has", "had", "do", "does",
    "did", "will", "would", "can", "could", "should", "may", "might",
    "must", "shall", "there", "here", "now", "then", "once", "twice",
    "well", "ok", "okay", "oh", "ah", "hey", "hi", "thanks", "please",
    "actually", "basically", "honestly", "literally", "probably",
    "definitely", "obviously", "apparently", "seriously", "totally",
)
FUNCTION_WORDS = _unique(FUNCTION_WORDS)

#: Common content words shared by every author.  Personal Zipf
#: preferences over this list create distinguishable vocabularies.
CONTENT_WORDS: Tuple[str, ...] = (
    # everyday nouns
    "time", "people", "way", "day", "man", "woman", "thing", "life",
    "world", "hand", "part", "place", "week", "case", "point", "group",
    "company", "number", "fact", "home", "water", "room", "mother",
    "father", "money", "story", "month", "night", "job", "word", "side",
    "kind", "head", "house", "friend", "hour", "game", "line", "end",
    "member", "car", "city", "name", "team", "minute", "idea", "body",
    "information", "face", "door", "reason", "history", "party",
    "result", "change", "morning", "research", "moment", "teacher",
    "education", "person", "year", "student", "phone", "family",
    "experience", "music", "food", "school", "state", "system",
    "question", "power", "price", "order", "package", "mail", "box",
    "letter", "account", "site", "service", "address", "review",
    "message", "post", "forum", "thread", "topic", "community",
    "product", "quality", "seller", "buyer", "market", "deal",
    "payment", "refund", "delivery", "tracking", "weight", "sample",
    "batch", "supply", "stock", "brand", "label", "customer", "support",
    "problem", "issue", "solution", "answer", "advice", "help",
    "opinion", "choice", "option", "chance", "risk", "trust", "truth",
    "doubt", "hope", "fear", "love", "hate", "anger", "joy", "pain",
    "health", "doctor", "medicine", "hospital", "treatment", "effect",
    "dose", "amount", "level", "test", "report", "record", "list",
    "page", "book", "article", "news", "video", "movie", "song",
    "album", "picture", "photo", "image", "screen", "computer",
    "laptop", "keyboard", "mouse", "internet", "network", "website",
    "browser", "software", "hardware", "update", "version", "feature",
    "button", "window", "file", "folder", "link", "code", "password",
    "key", "lock", "security", "privacy", "identity", "profile",
    "country", "government", "law", "police", "court", "judge",
    "prison", "crime", "war", "peace", "election", "president",
    "leader", "citizen", "right", "freedom", "speech", "media",
    "weather", "rain", "snow", "sun", "wind", "storm", "summer",
    "winter", "spring", "autumn", "street", "road", "bridge", "train",
    "bus", "plane", "ticket", "travel", "trip", "hotel", "beach",
    "mountain", "river", "lake", "forest", "garden", "tree", "flower",
    "animal", "dog", "cat", "bird", "fish", "horse",
    # everyday verbs (base forms)
    "make", "take", "get", "give", "go", "come", "see", "look",
    "watch", "find", "think", "know", "believe", "feel", "want",
    "need", "try", "ask", "tell", "say", "talk", "speak", "write",
    "read", "hear", "listen", "play", "work", "live", "stay", "leave",
    "move", "run", "walk", "sit", "stand", "open", "close", "start",
    "stop", "finish", "continue", "keep", "hold", "carry", "bring",
    "send", "receive", "buy", "sell", "pay", "cost", "spend", "save",
    "win", "lose", "learn", "teach", "study", "remember", "forget",
    "understand", "explain", "show", "share", "follow", "lead", "meet",
    "join", "visit", "call", "wait", "hope", "wish", "plan", "decide",
    "choose", "agree", "disagree", "accept", "refuse", "offer",
    "promise", "expect", "happen", "seem", "appear", "become", "grow",
    "build", "break", "fix", "repair", "create", "destroy", "use",
    "waste", "add", "remove", "cut", "put", "set", "turn", "pull",
    "push", "throw", "catch", "drop", "pick", "fill", "empty", "cook",
    "eat", "drink", "sleep", "wake", "dream", "laugh", "cry", "smile",
    "worry", "relax", "enjoy", "prefer", "avoid", "miss", "notice",
    "check", "compare", "measure", "count", "order", "ship", "pack",
    "arrive", "deliver", "return", "cancel", "confirm", "verify",
    "recommend", "suggest", "mention", "discuss", "argue", "complain",
    "apologize", "thank", "welcome", "trust", "doubt", "warn",
    # everyday adjectives
    "good", "bad", "new", "old", "great", "small", "big", "large",
    "little", "long", "short", "high", "low", "early", "late", "young",
    "important", "different", "similar", "easy", "hard", "difficult",
    "simple", "complex", "possible", "impossible", "real", "fake",
    "true", "false", "right", "wrong", "sure", "certain", "clear",
    "strange", "weird", "normal", "common", "rare", "special", "cheap",
    "expensive", "free", "full", "open", "closed", "fast", "slow",
    "quick", "safe", "dangerous", "legal", "illegal", "public",
    "private", "local", "foreign", "strong", "weak", "heavy", "light",
    "dark", "bright", "clean", "dirty", "fresh", "dry", "wet", "hot",
    "cold", "warm", "cool", "nice", "kind", "friendly", "rude",
    "honest", "fair", "serious", "funny", "happy", "sad", "angry",
    "tired", "busy", "ready", "careful", "careless", "lucky",
    "beautiful", "ugly", "perfect", "terrible", "awful", "amazing",
    "awesome", "incredible", "reliable", "solid", "decent", "legit",
    "sketchy", "smooth", "rough", "soft", "loud", "quiet",
    # everyday adverbs and misc
    "today", "tomorrow", "yesterday", "tonight", "soon", "later",
    "recently", "finally", "suddenly", "quickly", "slowly", "together",
    "alone", "online", "offline", "overseas", "nearby", "everywhere",
    "somewhere", "nowhere", "anywhere", "inside", "outside", "upstairs",
    "downtown", "abroad", "already", "almost", "enough", "exactly",
    "especially", "generally", "mostly", "mainly", "certainly",
    "clearly", "simply", "directly", "easily", "hardly", "nearly",
    "completely", "absolutely", "extremely", "highly", "fairly",
)
CONTENT_WORDS = _unique(CONTENT_WORDS)

#: Multi-word collocations.  Each author adopts a personal subset;
#: these feed the word-2/3-gram features with author-specific mass.
PHRASES: Tuple[str, ...] = (
    "to be honest", "at the end of the day", "as far as i know",
    "in my opinion", "for what it is worth", "at this point",
    "on the other hand", "long story short", "first of all",
    "last but not least", "in the long run", "by the way",
    "believe it or not", "as a matter of fact", "needless to say",
    "for the record", "in any case", "more or less",
    "sooner or later", "every now and then", "once in a while",
    "better safe than sorry", "take it or leave it",
    "i could be wrong but", "correct me if i am wrong",
    "do your own research", "your mileage may vary",
    "just my two cents", "hope this helps", "thanks in advance",
    "keep up the good work", "cannot recommend enough",
    "worth every penny", "save yourself the trouble",
    "too good to be true", "hit or miss", "rule of thumb",
    "a grain of salt", "the real deal", "state of the art",
    "peace of mind", "word of mouth", "track record",
    "red flag", "common sense", "worst case scenario",
    "best case scenario", "no offense but", "not gonna lie",
    "if i remember correctly", "as mentioned above",
    "as i said before", "like i said", "in other words",
    "that being said", "having said that", "on top of that",
    "a couple of days", "a few weeks ago", "back in the day",
    "out of the blue", "off the top of my head",
    "from my experience", "in my experience", "speaking of which",
    "as usual", "so far so good", "fingers crossed",
    "touch wood", "good luck with that", "no worries at all",
    "fair enough", "makes sense to me", "sounds about right",
    "i beg to differ", "agree to disagree", "case in point",
    "point taken", "lesson learned", "you get what you pay for",
    "quality over quantity", "slow and steady", "better late than never",
    "stay safe out there", "happy to help", "feel free to ask",
    "drop me a line", "keep me posted", "let me know",
    "see what i mean", "know what i mean", "if that makes sense",
    "it goes without saying", "to make a long story short",
    "when it comes to", "with all due respect", "at first glance",
    "on a side note", "for future reference", "in a nutshell",
    "the bottom line is", "all things considered", "time will tell",
    "easier said than done", "it is what it is", "no big deal",
    "big picture", "deal breaker", "game changer", "eye opener",
    "in the meantime", "over the moon", "under the weather",
    "down the road", "around the corner", "behind the scenes",
)

#: Internet slang and abbreviations; a personal subset per author.
SLANG: Tuple[str, ...] = (
    "lol", "lmao", "rofl", "imo", "imho", "tbh", "ngl", "smh", "idk",
    "iirc", "afaik", "btw", "fyi", "tl;dr", "nvm", "omg", "wtf",
    "brb", "gtg", "thx", "pls", "plz", "u", "ur", "r", "y", "ppl",
    "bc", "cuz", "tho", "rn", "af", "fr", "lowkey", "highkey",
    "legit", "sus", "hella", "kinda", "sorta", "gonna", "wanna",
    "gotta", "dunno", "lemme", "gimme", "ya", "yea", "yeah", "yep",
    "nope", "nah", "meh", "welp", "yikes", "oof", "bruh", "dude",
    "mate", "fam", "bro", "noob", "newb", "op", "mod", "admin",
)

#: Common misspellings an author may habitually produce.
TYPO_MAP: Dict[str, str] = {
    "definitely": "definately",
    "separate": "seperate",
    "receive": "recieve",
    "believe": "beleive",
    "weird": "wierd",
    "until": "untill",
    "tomorrow": "tommorow",
    "beginning": "begining",
    "occurred": "occured",
    "a lot": "alot",
    "really": "realy",
    "because": "becuase",
    "probably": "probly",
    "government": "goverment",
    "experience": "experiance",
    "recommend": "reccomend",
    "address": "adress",
    "business": "buisness",
    "interesting": "intresting",
    "immediately": "immediatly",
}

#: ASCII emoticons (kept distinct from Unicode emoji, which the
#: polishing pipeline strips).
EMOTICONS: Tuple[str, ...] = (
    ":)", ":(", ":D", ";)", ":P", ":/", ":|", ":O", "xD", "^^",
    ":-)", ":-(", "=)", "=D", "<3", "o_O",
)

#: Nickname parts for alias generation.
ALIAS_ADJECTIVES: Tuple[str, ...] = (
    "dark", "silent", "crypto", "shadow", "magic", "electric", "cosmic",
    "toxic", "frozen", "golden", "hidden", "lucid", "mellow", "neon",
    "wild", "stealth", "phantom", "velvet", "digital", "lunar", "solar",
    "iron", "silver", "mystic", "rapid", "lazy", "happy", "grumpy",
    "sneaky", "quiet", "loud", "smooth", "spicy", "salty", "sour",
)

ALIAS_NOUNS: Tuple[str, ...] = (
    "fox", "wolf", "raven", "tiger", "panda", "otter", "falcon",
    "dragon", "ghost", "wizard", "monk", "sailor", "pirate", "ninja",
    "samurai", "knight", "baron", "duke", "nomad", "wanderer", "rider",
    "runner", "dreamer", "thinker", "gardener", "chemist", "farmer",
    "painter", "poet", "drifter", "hermit", "oracle", "prophet",
    "voyager", "pilgrim", "smuggler", "trader", "merchant", "courier",
)

#: Personal attributes used by the persona generator and the §V-D
#: profile extractor.
CITIES: Tuple[Tuple[str, str], ...] = (
    ("Edmonton", "Canada"), ("Toronto", "Canada"), ("Vancouver", "Canada"),
    ("Miami", "USA"), ("New York", "USA"), ("Seattle", "USA"),
    ("Austin", "USA"), ("Denver", "USA"), ("Portland", "USA"),
    ("Chicago", "USA"), ("London", "UK"), ("Manchester", "UK"),
    ("Berlin", "Germany"), ("Hamburg", "Germany"), ("Amsterdam",
    "Netherlands"), ("Rotterdam", "Netherlands"), ("Sydney", "Australia"),
    ("Melbourne", "Australia"), ("Warsaw", "Poland"), ("Krakow", "Poland"),
    ("Dublin", "Ireland"), ("Stockholm", "Sweden"), ("Oslo", "Norway"),
    ("Madrid", "Spain"), ("Barcelona", "Spain"), ("Rome", "Italy"),
    ("Milan", "Italy"), ("Paris", "France"), ("Lyon", "France"),
    ("Zurich", "Switzerland"),
)

OCCUPATIONS: Tuple[str, ...] = (
    "warehouse worker", "line cook", "bartender", "barista",
    "delivery driver", "software developer", "sysadmin", "electrician",
    "plumber", "carpenter", "graphic designer", "photographer",
    "student", "nurse", "paramedic", "teacher", "tutor", "accountant",
    "mechanic", "welder", "security guard", "sales rep", "cashier",
    "landscaper", "painter", "freelancer", "musician", "chef",
)

HOBBIES: Tuple[str, ...] = (
    "hiking", "fishing", "cooking", "baking", "yoga", "meditation",
    "gaming", "streaming", "photography", "painting", "drawing",
    "skateboarding", "snowboarding", "cycling", "climbing", "camping",
    "gardening", "reading", "chess", "poker", "guitar", "drums",
    "home brewing", "woodworking", "running", "swimming", "surfing",
)

VIDEO_GAMES: Tuple[str, ...] = (
    "Fallout", "League of Legends", "COD4", "Counter Strike", "Skyrim",
    "Minecraft", "World of Warcraft", "Overwatch", "Rocket League",
    "Dark Souls", "The Witcher", "GTA V", "Destiny", "Dota 2",
    "Rainbow Six", "Stardew Valley",
)

PHONES: Tuple[str, ...] = (
    "Samsung Galaxy S4", "Samsung Galaxy S7", "iPhone 6", "iPhone 7",
    "Google Pixel", "OnePlus 3", "LG G5", "Moto G", "Nexus 5X",
    "HTC One", "Sony Xperia Z5", "Huawei P9",
)

RELIGIONS: Tuple[str, ...] = (
    "Christian", "Atheist", "Agnostic", "Buddhist", "Jewish", "Muslim",
    "Hindu", "Pagan",
)

#: Drug names used by vendor/buyer chatter and by the evidence
#: generator ("same vendor sold her poor quality white molly").
DRUGS: Tuple[str, ...] = (
    "white molly", "mdma", "lsd tabs", "shrooms", "dmt", "2cb",
    "ketamine", "hash", "weed", "xanax", "adderall", "oxy", "speed",
    "mescaline", "changa", "kratom",
)

VENDOR_NAMES: Tuple[str, ...] = (
    "GreenValley", "NorthernLights", "AcidQueen", "PharmaBro",
    "SilkSurfer", "MellowYellow", "CrystalShip", "NightOwlMeds",
    "GardenOfEden", "WhiteRabbit", "LuckyLuke", "DrFeelgood",
    "SnowmanCo", "PurpleHaze", "MoonFlower", "TheAlchemist",
)

PHILOSOPHERS: Tuple[str, ...] = (
    "Seneca", "Epictetus", "Diogenes", "Plato", "Spinoza", "Kant",
    "Hume", "Nietzsche", "Laozi", "Zhuangzi",
)
