"""Cross-forum world generation.

A *world* is the synthetic replacement for the paper's scraped data: a
Reddit-like open forum plus two dark-web forums (The Majestic Garden and
the Dream Market forum), populated by personas that may hold aliases on
several forums at once.  The generator controls exactly the knobs the
paper's experiments depend on:

* how many personas overlap between TMG and DM (the §V-B experiment),
* how many overlap between Reddit and the dark forums (§V-C),
* how much an author's style drifts between their open and dark
  aliases (the reason Dark↔Open linking is harder than Dark↔Dark),
* how much text and how many timestamps each alias produces (the
  refinement floors of §IV-D), and
* how much dirt and how many identity disclosures land in the text.

Everything is deterministic given ``WorldConfig.seed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.forums import topics as topic_mod
from repro.forums.models import Forum, Message, Thread, UserRecord
from repro.synth import evidence as ev
from repro.synth.noise import NoiseConfig, NoiseInjector
from repro.synth.personas import (
    DEFAULT_STYLE_PARAMS,
    Persona,
    StyleParams,
    generate_persona,
    make_alias,
)
from repro.synth.rng import substream
from repro.synth.textgen import (
    MessageGenerator,
    repeated_sentence_spam,
    review_post,
    spam_variants,
    vendor_showcase,
)
from repro.synth.timegen import SamplingWindow, TimestampSampler, YEAR_2017

REDDIT = "reddit"
TMG = "tmg"
DM = "dm"

#: Board sections of the dark-web forums (Section III-B).
TMG_SECTIONS = (
    "vendor threads", "psychedelic literature", "drug cooking howtos",
    "spiritual experiences",
)
DM_SECTIONS = (
    "products and vendor reviews", "marketplace discussions",
    "advertising and promotions", "scams",
)


@dataclass(frozen=True)
class ForumLoad:
    """Posting volume knobs for one forum.

    ``heavy`` users are generated with enough messages to clear the
    alter-ego floors of §IV-D (3,000 words / 60 timestamps); ``light``
    users mimic the long tail that refinement discards.
    """

    heavy_fraction: float = 0.6
    heavy_messages: Tuple[int, int] = (100, 220)
    light_messages: Tuple[int, int] = (5, 60)
    message_length_factor: float = 1.0

    def validate(self) -> None:
        if not 0.0 <= self.heavy_fraction <= 1.0:
            raise ConfigurationError("heavy_fraction must be in [0, 1]")
        for lo, hi in (self.heavy_messages, self.light_messages):
            if lo < 1 or hi < lo:
                raise ConfigurationError(
                    "message count ranges must satisfy 1 <= lo <= hi")
        if self.message_length_factor <= 0:
            raise ConfigurationError(
                "message_length_factor must be positive")


@dataclass(frozen=True)
class WorldConfig:
    """Full recipe for a synthetic world.

    The default sizes are laptop-friendly; the paper-scale benches use
    larger numbers.  Overlap counts must fit within the forum sizes.
    """

    seed: int = 7
    reddit_users: int = 400
    tmg_users: int = 120
    dm_users: int = 80
    tmg_dm_overlap: int = 20
    reddit_dark_overlap: int = 30
    dark_dark_drift: float = 0.03
    open_dark_drift: float = 0.12
    bot_fraction: float = 0.03
    vendor_fraction: float = 0.10
    disclosure_rate: float = 0.06
    dark_disclosure_rate: float = 0.03
    unique_leak_rate: float = 0.4
    max_annual_drift: float = 0.0
    style_params: StyleParams = DEFAULT_STYLE_PARAMS
    window: SamplingWindow = YEAR_2017
    reddit_load: ForumLoad = ForumLoad()
    tmg_load: ForumLoad = ForumLoad(message_length_factor=1.6)
    dm_load: ForumLoad = ForumLoad()
    reddit_noise: NoiseConfig = field(default_factory=NoiseConfig)
    dark_noise: NoiseConfig = field(default_factory=lambda: NoiseConfig(
        pgp_rate=0.04, email_rate=0.02, url_rate=0.02, foreign_rate=0.02))

    def __post_init__(self) -> None:
        for name in ("reddit_users", "tmg_users", "dm_users"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")
        if self.tmg_dm_overlap > min(self.tmg_users, self.dm_users):
            raise ConfigurationError(
                "tmg_dm_overlap exceeds the dark forum sizes")
        dark_capacity = (self.tmg_users + self.dm_users
                         - 2 * self.tmg_dm_overlap)
        if self.reddit_dark_overlap > min(self.reddit_users, dark_capacity):
            raise ConfigurationError(
                "reddit_dark_overlap exceeds available users")
        for name in ("dark_dark_drift", "open_dark_drift", "bot_fraction",
                     "vendor_fraction", "disclosure_rate",
                     "dark_disclosure_rate", "unique_leak_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        self.reddit_load.validate()
        self.tmg_load.validate()
        self.dm_load.validate()


@dataclass(frozen=True)
class LinkedPair:
    """Ground truth: one persona's aliases on two forums."""

    persona_id: int
    forum_a: str
    alias_a: str
    forum_b: str
    alias_b: str


@dataclass
class World:
    """A generated world: forums plus the ground truth behind them."""

    config: WorldConfig
    personas: Dict[int, Persona]
    forums: Dict[str, Forum]
    links: List[LinkedPair]

    def forum(self, name: str) -> Forum:
        return self.forums[name]

    def linked_aliases(self, forum_a: str, forum_b: str) -> Dict[str, str]:
        """Ground-truth mapping ``alias on forum_a -> alias on forum_b``."""
        mapping: Dict[str, str] = {}
        for link in self.links:
            if link.forum_a == forum_a and link.forum_b == forum_b:
                mapping[link.alias_a] = link.alias_b
            elif link.forum_a == forum_b and link.forum_b == forum_a:
                mapping[link.alias_b] = link.alias_a
        return mapping

    def persona_of(self, forum: str, alias: str) -> Optional[Persona]:
        """The persona behind *alias* on *forum* (None for bots etc.)."""
        for persona in self.personas.values():
            if persona.alias_on(forum) == alias:
                return persona
        return None


# --------------------------------------------------------------------------
# Membership planning
# --------------------------------------------------------------------------

def _plan_memberships(config: WorldConfig) -> List[Tuple[int, Tuple[str, ...]]]:
    """Assign forums to persona ids.

    Returns ``[(persona_id, (forum, ...)), ...]``; multi-forum tuples
    are the future ground-truth links.
    """
    plans: List[Tuple[str, ...]] = []
    plans.extend([(TMG, DM)] * config.tmg_dm_overlap)
    # Alternate the dark side of Reddit↔Dark personas between TMG and DM.
    dark_cycle = [TMG, DM]
    tmg_left = config.tmg_users - config.tmg_dm_overlap
    dm_left = config.dm_users - config.tmg_dm_overlap
    reddit_left = config.reddit_users
    for i in range(config.reddit_dark_overlap):
        dark = dark_cycle[i % 2]
        if dark == TMG and tmg_left == 0:
            dark = DM
        elif dark == DM and dm_left == 0:
            dark = TMG
        if dark == TMG:
            tmg_left -= 1
        else:
            dm_left -= 1
        reddit_left -= 1
        plans.append((REDDIT, dark))
    plans.extend([(REDDIT,)] * reddit_left)
    plans.extend([(TMG,)] * tmg_left)
    plans.extend([(DM,)] * dm_left)
    return [(pid, forums) for pid, forums in enumerate(plans)]


def _drift_for(persona_forums: Sequence[str], forum: str,
               config: WorldConfig) -> float:
    """Style drift applied to *forum*'s alias of a persona.

    The persona's base style is their "native" voice.  Open-web aliases
    use it unchanged.  A dark alias drifts: slightly when the persona's
    other alias is also dark (Dark↔Dark is the easier problem), more
    when the persona also lives on the open web (§IV: "people might
    behave differently ... in the standard Web").
    """
    if forum == REDDIT:
        return 0.0
    if REDDIT in persona_forums:
        return config.open_dark_drift
    if len(persona_forums) > 1:
        return config.dark_dark_drift / 2.0
    return 0.0


# --------------------------------------------------------------------------
# Per-forum topic routing
# --------------------------------------------------------------------------

class _RedditTopicRouter:
    """Route a Reddit user's messages to subreddits per Table I."""

    def __init__(self, seed: int) -> None:
        rng = substream(seed, "reddit-topics")
        self.specs = topic_mod.TABLE_I
        self.subreddits = {
            spec.name: topic_mod.subreddit_names(
                spec, min(spec.n_subreddits, 8))
            for spec in self.specs
        }
        del rng

    def user_topics(self, rng: np.random.Generator) -> List[int]:
        """Indices of the topics this user subscribes to (Drugs always)."""
        drugs_idx = next(i for i, s in enumerate(self.specs)
                         if s.name == "Drugs")
        weights = np.array([s.subscription_share for s in self.specs])
        weights = weights / weights.sum()
        extra = rng.choice(len(self.specs),
                           size=int(rng.integers(2, 6)),
                           replace=False, p=weights)
        chosen = {drugs_idx}
        chosen.update(int(i) for i in extra)
        return sorted(chosen)

    def pick_section(self, rng: np.random.Generator,
                     user_topics: List[int]) -> Tuple[str, Tuple[str, ...]]:
        """Pick (subreddit, topic keywords) for one message."""
        weights = np.array([self.specs[i].message_share
                            for i in user_topics])
        weights = weights / weights.sum()
        topic_idx = user_topics[int(rng.choice(len(user_topics), p=weights))]
        spec = self.specs[topic_idx]
        names = self.subreddits[spec.name]
        # Flagship subreddit concentrates half the topic's traffic.
        if len(names) == 1 or rng.random() < 0.5:
            section = names[0]
        else:
            section = names[1 + int(rng.integers(len(names) - 1))]
        return section, spec.keywords


# --------------------------------------------------------------------------
# World generation
# --------------------------------------------------------------------------

def _message_count(rng: np.random.Generator, load: ForumLoad,
                   heavy: bool) -> int:
    lo, hi = load.heavy_messages if heavy else load.light_messages
    return int(rng.integers(lo, hi + 1))


def _build_alias_messages(persona: Persona, forum_name: str, alias: str,
                          config: WorldConfig, load: ForumLoad,
                          router: Optional[_RedditTopicRouter],
                          heavy: bool,
                          msg_counter: List[int]) -> List[Message]:
    """Generate every message one alias posts on one forum."""
    rng = substream(config.seed, "alias", forum_name, alias)
    style = persona.style_on(forum_name)
    if load.message_length_factor != 1.0:
        style = replace(style, mean_message_sentences=(
            style.mean_message_sentences * load.message_length_factor))
    careless = forum_name == REDDIT
    noise_cfg = config.reddit_noise if careless else config.dark_noise
    injector = NoiseInjector(noise_cfg, rng, alias)
    sampler = TimestampSampler(persona.habits, rng, config.window)
    n_messages = _message_count(rng, load, heavy)
    timestamps = sampler.sample(n_messages)

    other_forums = [f for f in persona.aliases if f != forum_name]
    disclosure_rate = (config.disclosure_rate if careless
                       else config.dark_disclosure_rate)
    n_disclosures = int(np.ceil(disclosure_rate * n_messages)) \
        if rng.random() < 0.9 else 0
    disclosures = ev.sample_disclosures(
        persona, forum_name, other_forums, rng,
        count=min(n_disclosures, n_messages),
        careless=careless,
        unique_leak_rate=config.unique_leak_rate if other_forums else 0.0,
    )
    disclosure_slots = set()
    if disclosures:
        disclosure_slots = {
            int(i) for i in rng.choice(n_messages, size=len(disclosures),
                                       replace=False)
        }

    keywords: Tuple[str, ...] = topic_mod.darknet_topic().keywords
    generator = MessageGenerator(style, rng, keywords)
    user_topics = router.user_topics(rng) if router is not None else []

    messages: List[Message] = []
    disclosure_iter = iter(disclosures)
    for i in range(n_messages):
        if router is not None:
            section, kw = router.pick_section(rng, user_topics)
            generator.topic_keywords = kw
        else:
            sections = TMG_SECTIONS if forum_name == TMG else DM_SECTIONS
            section = sections[int(rng.integers(len(sections)))]
        metadata: Dict[str, object] = {}
        if persona.is_vendor and i == 0:
            text = vendor_showcase(rng, alias, generator)
        elif persona.is_vendor and rng.random() < 0.2:
            # vendors re-post ads: near-duplicates for step 2 to catch
            text = spam_variants(rng, vendor_showcase(
                rng, alias, generator), 1)[0]
        elif not careless and rng.random() < 0.15:
            vendor = persona.attributes.trusted_vendor
            text = review_post(rng, vendor, generator,
                               persona.attributes.favorite_drug)
        else:
            text = generator.message()
        if i in disclosure_slots:
            try:
                sentence, facts = next(disclosure_iter)
            except StopIteration:
                sentence, facts = "", {}
            if sentence:
                text = f"{text} {sentence}"
                metadata["disclosures"] = facts
        text = injector.apply(text)
        if rng.random() < 0.02:
            text = repeated_sentence_spam(rng, generator)
        msg_counter[0] += 1
        messages.append(Message(
            message_id=f"{forum_name}-{msg_counter[0]}",
            author=alias,
            text=text,
            timestamp=timestamps[i],
            forum=forum_name,
            section=section,
            metadata=metadata,
        ))
    return messages


def _build_bots(forum: Forum, config: WorldConfig, count: int,
                taken: set, msg_counter: List[int]) -> None:
    """Add bot accounts that post templated announcements."""
    rng = substream(config.seed, "bots", forum.name)
    for b in range(count):
        alias = make_alias(rng, taken, bot=True)
        persona = generate_persona(config.seed, -1000 - b)
        sampler = TimestampSampler(persona.habits, rng, config.window)
        template = ("This thread has been automatically archived after "
                    "180 days of inactivity, contact the moderators for "
                    "any question about this removal decision.")
        n = int(rng.integers(15, 60))
        stamps = sampler.sample(n)
        sections = forum.sections or ["general"]
        for i in range(n):
            msg_counter[0] += 1
            forum.add_message(Message(
                message_id=f"{forum.name}-{msg_counter[0]}",
                author=alias,
                text=template,
                timestamp=stamps[i],
                forum=forum.name,
                section=sections[int(rng.integers(len(sections)))],
            ))


def _build_threads(forum: Forum, seed: int) -> None:
    """Group messages into threads (used by the simulated scrapers)."""
    rng = substream(seed, "threads", forum.name)
    by_section: Dict[str, List[str]] = {}
    authors: Dict[str, str] = {}
    for message in forum.iter_messages():
        by_section.setdefault(message.section, []).append(
            message.message_id)
        authors[message.message_id] = message.author
    thread_no = 0
    for section, ids in sorted(by_section.items()):
        i = 0
        while i < len(ids):
            size = int(rng.integers(3, 40))
            chunk = ids[i:i + size]
            i += size
            thread_no += 1
            thread = Thread(
                thread_id=f"{forum.name}-t{thread_no}",
                forum=forum.name,
                section=section,
                title=f"{section} discussion {thread_no}",
                author=authors[chunk[0]],
                message_ids=tuple(chunk),
                upvotes=int(rng.integers(0, 5000)),
            )
            forum.add_thread(thread)


def build_world(config: WorldConfig | None = None) -> World:
    """Generate a full world from *config* (deterministically).

    Returns the populated :class:`World`, including the ground-truth
    :class:`LinkedPair` list that evaluation compares against.
    """
    config = config or WorldConfig()
    plan = _plan_memberships(config)
    alias_rng = substream(config.seed, "aliases")
    taken: set = set()
    personas: Dict[int, Persona] = {}
    forums = {
        REDDIT: Forum(name=REDDIT, utc_offset_hours=0,
                      sections=[]),
        TMG: Forum(name=TMG, utc_offset_hours=2,
                   sections=list(TMG_SECTIONS)),
        DM: Forum(name=DM, utc_offset_hours=-5,
                  sections=list(DM_SECTIONS)),
    }
    router = _RedditTopicRouter(config.seed)
    links: List[LinkedPair] = []
    msg_counter = [0]

    for persona_id, member_forums in plan:
        persona = generate_persona(config.seed, persona_id,
                                   config.style_params,
                                   config.max_annual_drift)
        style_rng = substream(config.seed, "drift", persona_id)
        vendor_roll = substream(config.seed, "vendor", persona_id).random()
        persona.is_vendor = (vendor_roll < config.vendor_fraction
                             and any(f != REDDIT for f in member_forums))
        brand = None
        if persona.is_vendor:
            brand = make_alias(alias_rng, taken, vendor=True)
        for forum_name in member_forums:
            if persona.is_vendor and forum_name != REDDIT:
                alias = brand
            elif persona.is_vendor and forum_name == REDDIT:
                # vendors use the brand on Reddit too ("they use their
                # name as a brand", §V-C)
                alias = brand
            else:
                alias = make_alias(alias_rng, taken)
            drift = _drift_for(member_forums, forum_name, config)
            persona.join_forum(style_rng, forum_name, alias, drift,
                               config.style_params)
        personas[persona_id] = persona
        if len(member_forums) == 2:
            fa, fb = member_forums
            links.append(LinkedPair(
                persona_id=persona_id,
                forum_a=fa, alias_a=persona.aliases[fa],
                forum_b=fb, alias_b=persona.aliases[fb],
            ))

    loads = {REDDIT: config.reddit_load, TMG: config.tmg_load,
             DM: config.dm_load}
    for persona in personas.values():
        heavy_roll = substream(config.seed, "heavy",
                               persona.persona_id).random()
        for forum_name, alias in persona.aliases.items():
            load = loads[forum_name]
            heavy = heavy_roll < load.heavy_fraction
            # Linked personas must be heavy on both forums, or there is
            # nothing to evaluate.
            if len(persona.aliases) > 1:
                heavy = True
            record_router = router if forum_name == REDDIT else None
            messages = _build_alias_messages(
                persona, forum_name, alias, config, load,
                record_router, heavy, msg_counter)
            record = UserRecord(alias=alias, forum=forum_name)
            record.metadata["persona_id"] = persona.persona_id
            record.metadata["is_vendor"] = persona.is_vendor
            record.metadata["heavy"] = heavy
            for message in messages:
                record.add(message)
            forums[forum_name].users[alias] = record
            for section in {m.section for m in messages}:
                if section not in forums[forum_name].sections:
                    forums[forum_name].sections.append(section)

    for forum_name, forum in forums.items():
        n_bots = int(round(forum.n_users * config.bot_fraction))
        _build_bots(forum, config, n_bots, taken, msg_counter)
        _build_threads(forum, config.seed)

    return World(config=config, personas=personas, forums=forums,
                 links=links)


def small_world(seed: int = 7) -> World:
    """A tiny world for tests: fast to build, still fully featured."""
    return build_world(WorldConfig(
        seed=seed,
        reddit_users=30,
        tmg_users=14,
        dm_users=10,
        tmg_dm_overlap=4,
        reddit_dark_overlap=6,
        reddit_load=ForumLoad(heavy_fraction=0.7,
                              heavy_messages=(110, 160),
                              light_messages=(5, 25)),
        tmg_load=ForumLoad(heavy_fraction=0.8,
                           heavy_messages=(110, 160),
                           light_messages=(5, 25),
                           message_length_factor=1.4),
        dm_load=ForumLoad(heavy_fraction=0.8,
                          heavy_messages=(110, 160),
                          light_messages=(5, 25)),
    ))
