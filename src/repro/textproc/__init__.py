"""Text-processing substrate: tokenization, lemmatization, language
detection, and the 12-step dataset polishing pipeline of Section III-C.
"""

from repro.textproc.cleaning import (
    CleaningConfig,
    MessagePolisher,
    PolishReport,
    is_bot_alias,
    polish_forum,
    polish_messages,
)
from repro.textproc.langdetect import (
    Detection,
    LanguageDetector,
    default_detector,
    detect_language,
)
from repro.textproc.lemmatizer import lemmatize, lemmatize_text, lemmatize_word
from repro.textproc.tokenizer import (
    Token,
    count_words,
    distinct_word_ratio,
    tokenize,
    word_tokens,
)

__all__ = [
    "CleaningConfig",
    "MessagePolisher",
    "PolishReport",
    "is_bot_alias",
    "polish_forum",
    "polish_messages",
    "Detection",
    "LanguageDetector",
    "default_detector",
    "detect_language",
    "lemmatize",
    "lemmatize_text",
    "lemmatize_word",
    "Token",
    "count_words",
    "distinct_word_ratio",
    "tokenize",
    "word_tokens",
]
