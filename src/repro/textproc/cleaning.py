"""The 12-step dataset polishing pipeline of Section III-C.

Forum text is dirty: bots, vendor spam reposts, quotes of other users,
PGP key blocks, emojis, URLs, and non-English messages would all poison
stylometric features.  The paper polishes its datasets with twelve steps;
this module implements each one as an inspectable unit and composes them
into :class:`MessagePolisher` (single messages) and
:func:`polish_forum` (whole datasets, including the account-level and
cross-message steps that cannot be applied message-by-message).

Step numbering below follows the paper exactly:

1.  Drop accounts whose nickname starts or ends with ``bot``.
2.  Remove duplicate messages (vendor reposts, Reddit crossposts).
3.  Normalize URLs, keeping only the hostname.
4.  Remove emojis.
5.  Drop messages shorter than 10 words.
6.  Drop messages whose distinct-word ratio is below 0.5 (spam).
7.  Keep only English messages.
8.  Remove quotes (the author's own words only).
9.  Remove "Edit by username" platform markers.
10. Replace e-mail addresses with the ``_mail_`` tag.
11. Delete PGP key blocks (and their introduction lines).
12. Drop words longer than 34 characters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.config import (
    MAX_WORD_LENGTH,
    MIN_DISTINCT_WORD_RATIO,
    MIN_MESSAGE_WORDS,
)
from repro.forums.models import Forum, Message, UserRecord
from repro.textproc import patterns
from repro.textproc.langdetect import LanguageDetector, default_detector
from repro.textproc.tokenizer import count_words, distinct_word_ratio


def is_bot_alias(alias: str) -> bool:
    """True when *alias* starts or ends with ``bot`` (step 1).

    The check is case-insensitive; the paper observes that especially on
    Reddit, bot accounts advertise themselves this way
    (``AutoModerator`` aside, ``totesmessenger`` aside — the heuristic is
    the paper's, not ours).
    """
    lowered = alias.lower()
    return lowered.startswith("bot") or lowered.endswith("bot")


def dedup_key(text: str) -> str:
    """Canonical form used to detect duplicate messages (step 2).

    Case and whitespace differences are ignored so that a vendor
    re-posting the same ad with trivial reformatting is still caught.
    """
    return patterns.collapse_whitespace(text).lower()


@dataclass
class CleaningConfig:
    """Tunable knobs of the polishing pipeline.

    The defaults reproduce the paper's choices; benchmarks use the
    ``enabled`` switch to ablate the whole pipeline.
    """

    min_words: int = MIN_MESSAGE_WORDS
    min_distinct_ratio: float = MIN_DISTINCT_WORD_RATIO
    max_word_length: int = MAX_WORD_LENGTH
    keep_language: str = "en"
    language_min_confidence: float = 0.5
    drop_bots: bool = True
    drop_duplicates: bool = True
    filter_language: bool = True
    enabled: bool = True


@dataclass
class PolishReport:
    """Accounting of what each polishing step dropped or rewrote.

    Attributes map step names to counts; ``kept_messages`` /
    ``kept_users`` summarize the surviving dataset.
    """

    dropped_bot_accounts: int = 0
    dropped_duplicates: int = 0
    dropped_short: int = 0
    dropped_low_diversity: int = 0
    dropped_non_english: int = 0
    dropped_empty_after_cleaning: int = 0
    kept_messages: int = 0
    kept_users: int = 0
    input_messages: int = 0
    input_users: int = 0

    def as_dict(self) -> Dict[str, int]:
        """All counters as a plain dict (for logging / reports)."""
        return dict(self.__dict__)


class MessagePolisher:
    """Apply the text-level polishing steps to individual messages.

    The transform steps (3, 4, 8–12) always run; the filter steps
    (5, 6, 7) decide whether the message survives at all.

    ``polish_text`` returns the cleaned text, or ``None`` when the
    message must be dropped.
    """

    def __init__(self, config: CleaningConfig | None = None,
                 detector: LanguageDetector | None = None) -> None:
        self.config = config or CleaningConfig()
        self._detector = detector or default_detector()

    # -- transforms (always applied, in paper order 8, 9, 11, 3, 10, 4, 12)

    def transform(self, text: str) -> str:
        """Run every rewriting step on *text* and return the result.

        Quotes and edit markers are removed before URL/e-mail handling so
        that URLs inside quotes never survive into the features; PGP
        blocks go before the long-word filter so that armored lines do
        not need to be caught word-by-word.
        """
        text = patterns.strip_quotes(text)
        text = patterns.strip_edit_markers(text)
        text = patterns.strip_pgp_blocks(text)
        text = patterns.normalize_urls(text)
        text = patterns.mask_emails(text)
        text = patterns.strip_emojis(text)
        text = patterns.strip_long_words(text, self.config.max_word_length)
        return patterns.collapse_whitespace(text)

    # -- filters (steps 5, 6, 7)

    def drop_reason(self, text: str) -> Optional[str]:
        """Why cleaned *text* should be dropped, or ``None`` to keep it.

        Returns one of ``"empty"``, ``"short"``, ``"low_diversity"``,
        ``"non_english"``.
        """
        if not text:
            return "empty"
        if count_words(text) < self.config.min_words:
            return "short"
        if distinct_word_ratio(text) < self.config.min_distinct_ratio:
            return "low_diversity"
        if self.config.filter_language and not self._detector.is_english(
                text, self.config.language_min_confidence):
            return "non_english"
        return None

    def polish_text(self, text: str) -> Optional[str]:
        """Transform then filter: cleaned text, or ``None`` if dropped."""
        if not self.config.enabled:
            return text
        cleaned = self.transform(text)
        if self.drop_reason(cleaned) is not None:
            return None
        return cleaned


def polish_user(record: UserRecord, polisher: MessagePolisher,
                report: PolishReport,
                seen_keys: Optional[set] = None) -> UserRecord:
    """Polish one user's messages, updating *report* drop counters.

    *seen_keys*, when given, is the cross-user duplicate registry used to
    drop crossposts (the same text posted to several subreddits keeps
    only its first occurrence).
    """
    config = polisher.config
    cleaned = UserRecord(alias=record.alias, forum=record.forum,
                         metadata=dict(record.metadata))
    local_seen: set = set()
    registry = seen_keys if seen_keys is not None else local_seen
    for message in record.messages:
        text = polisher.transform(message.text) if config.enabled \
            else message.text
        reason = polisher.drop_reason(text) if config.enabled else None
        if reason == "empty":
            report.dropped_empty_after_cleaning += 1
            continue
        if reason == "short":
            report.dropped_short += 1
            continue
        if reason == "low_diversity":
            report.dropped_low_diversity += 1
            continue
        if reason == "non_english":
            report.dropped_non_english += 1
            continue
        if config.drop_duplicates:
            key = (record.alias, dedup_key(text))
            cross_key = dedup_key(text)
            if key in registry or cross_key in local_seen:
                report.dropped_duplicates += 1
                continue
            registry.add(key)
            local_seen.add(cross_key)
        cleaned.messages.append(message.with_text(text))
        report.kept_messages += 1
    return cleaned


def polish_forum(forum: Forum, config: CleaningConfig | None = None,
                 detector: LanguageDetector | None = None,
                 ) -> Tuple[Forum, PolishReport]:
    """Run the full 12-step polishing pipeline over *forum*.

    Returns the polished forum (new object; the input is untouched) and
    a :class:`PolishReport` with per-step accounting.  Users left with
    zero messages after polishing are removed entirely.
    """
    config = config or CleaningConfig()
    polisher = MessagePolisher(config, detector)
    report = PolishReport(
        input_users=forum.n_users,
        input_messages=forum.n_messages,
    )
    polished = Forum(name=forum.name,
                     utc_offset_hours=forum.utc_offset_hours,
                     sections=list(forum.sections))
    duplicate_registry: set = set()
    for alias, record in forum.users.items():
        if config.enabled and config.drop_bots and is_bot_alias(alias):
            report.dropped_bot_accounts += 1
            continue
        cleaned = polish_user(record, polisher, report, duplicate_registry)
        if cleaned.messages:
            polished.users[alias] = cleaned
    polished.threads = dict(forum.threads)
    report.kept_users = polished.n_users
    return polished, report


def polish_messages(messages: Iterable[str],
                    config: CleaningConfig | None = None) -> List[str]:
    """Polish a bare list of message strings (convenience for tests).

    Duplicates are detected within the given list only.
    """
    config = config or CleaningConfig()
    polisher = MessagePolisher(config)
    kept: List[str] = []
    seen: set = set()
    for text in messages:
        cleaned = polisher.polish_text(text)
        if cleaned is None:
            continue
        key = dedup_key(cleaned)
        if config.drop_duplicates and key in seen:
            continue
        seen.add(key)
        kept.append(cleaned)
    return kept
