"""Seed corpora for the built-in language detector.

The paper uses the ``langdetect`` Python port of Google's
language-detection library, whose profiles are generated from Wikipedia.
This reproduction has no network access, so each supported language ships
a compact seed corpus of ordinary prose below.  The seeds are heavy on
function words and everyday vocabulary on purpose: short forum messages
are identified almost entirely by their function words and by
language-specific character sequences, not by topical vocabulary.

Adding a language means adding one entry to :data:`SEED_TEXTS`; the
detector builds its n-gram profile automatically at first use.
"""

from __future__ import annotations

from typing import Dict

SEED_TEXTS: Dict[str, str] = {
    "en": (
        "The quick brown fox jumps over the lazy dog. I think that we "
        "should go to the market before it closes because they have the "
        "best prices in town. She said that her brother would not be able "
        "to come with us tonight, which is a shame because everyone was "
        "looking forward to seeing him again. When you get there, please "
        "tell them that I will be a little late. It has been a long time "
        "since we talked about these things, and I believe there is much "
        "more to say. People often forget how important it is to listen "
        "carefully before they answer. This is not something that can be "
        "done quickly; it takes time and patience. Would you like some "
        "coffee or tea while we wait for the others to arrive? The "
        "weather has been very strange lately, with rain in the morning "
        "and sunshine in the afternoon. Nobody knows exactly what will "
        "happen next year, but we can make a reasonable guess if we look "
        "at what happened before. Thank you very much for all your help "
        "with this project, I really could not have finished it without "
        "you. There are many reasons why this might not work, but we "
        "should try anyway because the reward is worth the risk."
    ),
    "es": (
        "El rápido zorro marrón salta sobre el perro perezoso. Creo que "
        "deberíamos ir al mercado antes de que cierre porque tienen los "
        "mejores precios de la ciudad. Ella dijo que su hermano no podría "
        "venir con nosotros esta noche, lo cual es una lástima porque "
        "todos esperaban verlo otra vez. Cuando llegues allí, por favor "
        "diles que llegaré un poco tarde. Ha pasado mucho tiempo desde "
        "que hablamos de estas cosas, y creo que hay mucho más que decir. "
        "La gente a menudo olvida lo importante que es escuchar con "
        "atención antes de responder. Esto no es algo que se pueda hacer "
        "rápidamente; requiere tiempo y paciencia. ¿Te gustaría un café o "
        "un té mientras esperamos a que lleguen los demás? El tiempo ha "
        "estado muy extraño últimamente, con lluvia por la mañana y sol "
        "por la tarde. Nadie sabe exactamente qué pasará el año que "
        "viene, pero podemos hacer una suposición razonable si miramos lo "
        "que pasó antes. Muchas gracias por toda tu ayuda con este "
        "proyecto, de verdad no podría haberlo terminado sin ti."
    ),
    "fr": (
        "Le rapide renard brun saute par-dessus le chien paresseux. Je "
        "pense que nous devrions aller au marché avant qu'il ne ferme "
        "parce qu'ils ont les meilleurs prix de la ville. Elle a dit que "
        "son frère ne pourrait pas venir avec nous ce soir, ce qui est "
        "dommage parce que tout le monde avait hâte de le revoir. Quand "
        "tu arriveras là-bas, s'il te plaît dis-leur que je serai un peu "
        "en retard. Cela fait longtemps que nous n'avons pas parlé de ces "
        "choses, et je crois qu'il y a beaucoup plus à dire. Les gens "
        "oublient souvent combien il est important d'écouter attentivement "
        "avant de répondre. Ce n'est pas quelque chose qui peut être fait "
        "rapidement ; cela demande du temps et de la patience. Voudrais-tu "
        "un café ou un thé pendant que nous attendons les autres ? Le "
        "temps a été très étrange ces derniers jours, avec de la pluie le "
        "matin et du soleil l'après-midi. Personne ne sait exactement ce "
        "qui se passera l'année prochaine, mais nous pouvons faire une "
        "supposition raisonnable en regardant ce qui s'est passé avant. "
        "Merci beaucoup pour toute ton aide sur ce projet."
    ),
    "de": (
        "Der schnelle braune Fuchs springt über den faulen Hund. Ich "
        "denke, dass wir zum Markt gehen sollten, bevor er schließt, weil "
        "sie die besten Preise der Stadt haben. Sie sagte, dass ihr "
        "Bruder heute Abend nicht mit uns kommen könne, was schade ist, "
        "weil sich alle darauf gefreut haben, ihn wiederzusehen. Wenn du "
        "dort ankommst, sag ihnen bitte, dass ich etwas später komme. Es "
        "ist lange her, dass wir über diese Dinge gesprochen haben, und "
        "ich glaube, es gibt noch viel mehr zu sagen. Die Leute vergessen "
        "oft, wie wichtig es ist, aufmerksam zuzuhören, bevor sie "
        "antworten. Das ist nichts, was man schnell erledigen kann; es "
        "braucht Zeit und Geduld. Möchtest du einen Kaffee oder einen "
        "Tee, während wir auf die anderen warten? Das Wetter war in "
        "letzter Zeit sehr seltsam, mit Regen am Morgen und Sonnenschein "
        "am Nachmittag. Niemand weiß genau, was nächstes Jahr passieren "
        "wird, aber wir können eine vernünftige Vermutung anstellen, wenn "
        "wir uns ansehen, was vorher geschehen ist. Vielen Dank für deine "
        "ganze Hilfe bei diesem Projekt."
    ),
    "it": (
        "La veloce volpe marrone salta sopra il cane pigro. Penso che "
        "dovremmo andare al mercato prima che chiuda perché hanno i "
        "prezzi migliori della città. Lei ha detto che suo fratello non "
        "potrà venire con noi stasera, il che è un peccato perché tutti "
        "non vedevano l'ora di rivederlo. Quando arrivi lì, per favore "
        "digli che arriverò un po' in ritardo. È passato molto tempo da "
        "quando abbiamo parlato di queste cose, e credo che ci sia molto "
        "altro da dire. Le persone spesso dimenticano quanto sia "
        "importante ascoltare con attenzione prima di rispondere. Questa "
        "non è una cosa che si può fare in fretta; richiede tempo e "
        "pazienza. Vorresti un caffè o un tè mentre aspettiamo che "
        "arrivino gli altri? Il tempo è stato molto strano ultimamente, "
        "con pioggia la mattina e sole il pomeriggio. Nessuno sa "
        "esattamente cosa succederà l'anno prossimo, ma possiamo fare "
        "un'ipotesi ragionevole guardando quello che è successo prima. "
        "Grazie mille per tutto il tuo aiuto con questo progetto."
    ),
    "pt": (
        "A rápida raposa marrom pula sobre o cão preguiçoso. Acho que "
        "deveríamos ir ao mercado antes que feche porque eles têm os "
        "melhores preços da cidade. Ela disse que o irmão dela não "
        "poderia vir conosco hoje à noite, o que é uma pena porque todos "
        "estavam ansiosos para vê-lo novamente. Quando você chegar lá, "
        "por favor diga a eles que chegarei um pouco atrasado. Faz muito "
        "tempo que não falamos sobre essas coisas, e acredito que há "
        "muito mais a dizer. As pessoas muitas vezes esquecem como é "
        "importante ouvir com atenção antes de responder. Isso não é algo "
        "que possa ser feito rapidamente; leva tempo e paciência. Você "
        "gostaria de um café ou um chá enquanto esperamos os outros "
        "chegarem? O tempo tem estado muito estranho ultimamente, com "
        "chuva de manhã e sol à tarde. Ninguém sabe exatamente o que vai "
        "acontecer no ano que vem, mas podemos fazer uma estimativa "
        "razoável olhando para o que aconteceu antes. Muito obrigado por "
        "toda a sua ajuda com este projeto."
    ),
    "nl": (
        "De snelle bruine vos springt over de luie hond. Ik denk dat we "
        "naar de markt moeten gaan voordat hij sluit, omdat ze daar de "
        "beste prijzen van de stad hebben. Ze zei dat haar broer vanavond "
        "niet met ons mee kan komen, wat jammer is omdat iedereen ernaar "
        "uitkeek hem weer te zien. Als je daar aankomt, zeg ze dan "
        "alsjeblieft dat ik iets later ben. Het is lang geleden dat we "
        "over deze dingen hebben gesproken, en ik geloof dat er nog veel "
        "meer te zeggen valt. Mensen vergeten vaak hoe belangrijk het is "
        "om aandachtig te luisteren voordat ze antwoorden. Dit is niet "
        "iets dat snel gedaan kan worden; het kost tijd en geduld. Wil je "
        "koffie of thee terwijl we op de anderen wachten? Het weer is de "
        "laatste tijd erg vreemd geweest, met regen in de ochtend en zon "
        "in de middag. Niemand weet precies wat er volgend jaar zal "
        "gebeuren, maar we kunnen een redelijke gok doen als we kijken "
        "naar wat er eerder is gebeurd. Heel erg bedankt voor al je hulp "
        "bij dit project."
    ),
    "pl": (
        "Szybki brązowy lis przeskakuje nad leniwym psem. Myślę, że "
        "powinniśmy pójść na targ, zanim zostanie zamknięty, ponieważ "
        "mają tam najlepsze ceny w mieście. Powiedziała, że jej brat nie "
        "będzie mógł przyjść z nami dziś wieczorem, co jest szkoda, bo "
        "wszyscy czekali, żeby znów go zobaczyć. Kiedy tam dotrzesz, "
        "proszę powiedz im, że trochę się spóźnię. Minęło dużo czasu, "
        "odkąd rozmawialiśmy o tych sprawach, i wierzę, że jest jeszcze "
        "wiele do powiedzenia. Ludzie często zapominają, jak ważne jest "
        "uważne słuchanie, zanim się odpowie. To nie jest coś, co można "
        "zrobić szybko; wymaga czasu i cierpliwości. Czy chciałbyś kawę "
        "albo herbatę, podczas gdy czekamy na pozostałych? Pogoda była "
        "ostatnio bardzo dziwna, z deszczem rano i słońcem po południu. "
        "Nikt nie wie dokładnie, co wydarzy się w przyszłym roku, ale "
        "możemy rozsądnie zgadywać, patrząc na to, co działo się "
        "wcześniej. Bardzo dziękuję za całą twoją pomoc przy tym "
        "projekcie."
    ),
    "sv": (
        "Den snabba bruna räven hoppar över den lata hunden. Jag tror att "
        "vi borde gå till marknaden innan den stänger eftersom de har de "
        "bästa priserna i staden. Hon sa att hennes bror inte skulle "
        "kunna följa med oss i kväll, vilket är synd eftersom alla såg "
        "fram emot att träffa honom igen. När du kommer dit, säg till dem "
        "att jag blir lite sen. Det var länge sedan vi pratade om de här "
        "sakerna, och jag tror att det finns mycket mer att säga. "
        "Människor glömmer ofta hur viktigt det är att lyssna noga innan "
        "de svarar. Det här är inte något som kan göras snabbt; det tar "
        "tid och tålamod. Vill du ha kaffe eller te medan vi väntar på de "
        "andra? Vädret har varit väldigt konstigt på sistone, med regn på "
        "morgonen och solsken på eftermiddagen. Ingen vet exakt vad som "
        "kommer att hända nästa år, men vi kan göra en rimlig gissning om "
        "vi tittar på vad som hände tidigare. Tack så mycket för all din "
        "hjälp med det här projektet."
    ),
    "ru": (
        "Быстрая коричневая лиса прыгает через ленивую собаку. Я думаю, "
        "что нам следует пойти на рынок до того, как он закроется, потому "
        "что там самые лучшие цены в городе. Она сказала, что её брат не "
        "сможет пойти с нами сегодня вечером, и это жаль, потому что все "
        "хотели снова его увидеть. Когда ты туда доберёшься, пожалуйста, "
        "скажи им, что я немного опоздаю. Прошло много времени с тех пор, "
        "как мы говорили об этих вещах, и я думаю, что есть ещё много "
        "чего сказать. Люди часто забывают, как важно внимательно слушать "
        "прежде чем отвечать. Это не то, что можно сделать быстро; это "
        "требует времени и терпения. Хочешь кофе или чай, пока мы ждём "
        "остальных? Погода в последнее время была очень странной, с "
        "дождём утром и солнцем днём. Никто точно не знает, что случится "
        "в следующем году, но мы можем сделать разумное предположение, "
        "если посмотрим на то, что происходило раньше. Большое спасибо за "
        "всю твою помощь с этим проектом."
    ),
}

#: Languages supported by the built-in detector, in a stable order.
SUPPORTED_LANGUAGES = tuple(sorted(SEED_TEXTS))
