"""Character n-gram language detector.

Polishing step 7 of the paper keeps only messages written in English;
the authors use the ``langdetect`` library (a port of Google's Java
language-detection project, whose profiles come from Wikipedia).  This
module reproduces the same mechanism offline:

* each supported language has a profile of character 1–3-gram
  log-probabilities built from the seed corpora in
  :mod:`repro.textproc.lang_profiles`;
* a message is scored under every profile with a naive-Bayes
  accumulation over its n-grams, and the best language wins;
* posterior-like confidences are produced with a softmax over the
  per-language average log-likelihoods, so callers can enforce a
  minimum-confidence floor.

The detector is deterministic (unlike ``langdetect``, which is famously
seed-dependent on short inputs).
"""

from __future__ import annotations

import math

import numpy as np
from collections import Counter
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.errors import LanguageDetectionError
from repro.textproc.lang_profiles import SEED_TEXTS, SUPPORTED_LANGUAGES

#: n-gram orders used for profiles; mirrors the Google library (1..3).
NGRAM_ORDERS = (1, 2, 3)

#: Log-probability assigned to n-grams never seen in a profile.
_UNSEEN_LOGPROB = math.log(1e-7)

#: Minimum number of alphabetic characters needed for a verdict.
MIN_DETECTABLE_CHARS = 6


def _normalize_for_profile(text: str) -> str:
    """Lowercase, keep letters and apostrophes, squeeze whitespace.

    Digits, punctuation and symbols carry almost no language signal and
    would dilute the profiles, so they are collapsed to single spaces.
    The result is padded with a leading and trailing space so that
    word-boundary n-grams (" th", "he ") are represented — these carry a
    large share of the discriminative power.
    """
    chars: List[str] = []
    prev_space = True
    for ch in text.lower():
        if ch.isalpha() or ch == "'":
            chars.append(ch)
            prev_space = False
        elif not prev_space:
            chars.append(" ")
            prev_space = True
    collapsed = "".join(chars).strip()
    return f" {collapsed} " if collapsed else ""


def char_ngrams(text: str, orders: Iterable[int] = NGRAM_ORDERS) -> Counter:
    """Count character n-grams of the given *orders* in *text*."""
    counts: Counter = Counter()
    for order in orders:
        if len(text) < order:
            continue
        for i in range(len(text) - order + 1):
            counts[text[i:i + order]] += 1
    return counts


@dataclass(frozen=True)
class LanguageProfile:
    """A fitted language profile: n-gram log-probabilities.

    Attributes
    ----------
    language:
        ISO-639-1 code (``"en"``, ``"de"``, ...).
    logprobs:
        Mapping from n-gram to its add-one-smoothed log-probability
        within the seed corpus for this language.
    """

    language: str
    logprobs: Mapping[str, float]

    @classmethod
    def from_text(cls, language: str, text: str) -> "LanguageProfile":
        """Build a profile from raw seed text."""
        normalized = _normalize_for_profile(text)
        counts = char_ngrams(normalized)
        total = sum(counts.values())
        vocab = len(counts)
        if total == 0:
            raise LanguageDetectionError(
                f"seed text for language {language!r} has no usable chars")
        logprobs = {
            gram: math.log((count + 1) / (total + vocab))
            for gram, count in counts.items()
        }
        return cls(language=language, logprobs=logprobs)

    def score(self, grams: Counter) -> float:
        """Average log-likelihood of the observed n-gram counts."""
        total = sum(grams.values())
        if total == 0:
            return _UNSEEN_LOGPROB
        acc = 0.0
        for gram, count in grams.items():
            acc += count * self.logprobs.get(gram, _UNSEEN_LOGPROB)
        return acc / total


@dataclass(frozen=True)
class Detection:
    """Result of a language-detection call.

    Attributes
    ----------
    language:
        The winning language code.
    confidence:
        Softmax weight of the winner over all candidate languages, in
        (0, 1].  Values near ``1 / n_languages`` mean "no idea".
    scores:
        Per-language average log-likelihoods (diagnostics).
    """

    language: str
    confidence: float
    scores: Mapping[str, float]


class LanguageDetector:
    """Detect the language of short forum messages.

    Parameters
    ----------
    languages:
        Language codes to consider.  Defaults to every language with a
        built-in seed corpus.

    Examples
    --------
    >>> detector = LanguageDetector()
    >>> detector.detect("I really think this is the best vendor here").language
    'en'
    """

    def __init__(self, languages: Iterable[str] | None = None) -> None:
        codes = tuple(languages) if languages is not None else SUPPORTED_LANGUAGES
        unknown = [c for c in codes if c not in SEED_TEXTS]
        if unknown:
            raise LanguageDetectionError(
                f"no built-in profile for language(s): {unknown}")
        if not codes:
            raise LanguageDetectionError("at least one language is required")
        self._profiles: Tuple[LanguageProfile, ...] = tuple(
            _built_in_profile(code) for code in codes
        )
        # Fast path: one lookup per gram yields the logprob vector over
        # every language at once (single dict pass instead of one per
        # language).
        import numpy as _np

        gram_union = set()
        for profile in self._profiles:
            gram_union.update(profile.logprobs)
        self._gram_logprobs: Dict[str, "_np.ndarray"] = {}
        for gram in gram_union:
            self._gram_logprobs[gram] = _np.array(
                [p.logprobs.get(gram, _UNSEEN_LOGPROB)
                 for p in self._profiles])
        self._unseen_vector = _np.full(len(self._profiles),
                                       _UNSEEN_LOGPROB)

    @property
    def languages(self) -> Tuple[str, ...]:
        """The language codes this detector discriminates between."""
        return tuple(p.language for p in self._profiles)

    def detect(self, text: str) -> Detection:
        """Detect the language of *text*.

        Raises
        ------
        LanguageDetectionError
            If *text* contains fewer than :data:`MIN_DETECTABLE_CHARS`
            alphabetic characters — too little evidence for a verdict.
        """
        normalized = _normalize_for_profile(text)
        if len(normalized.replace(" ", "")) < MIN_DETECTABLE_CHARS:
            raise LanguageDetectionError(
                "not enough alphabetic characters to detect a language")
        grams = char_ngrams(normalized)
        lookup = self._gram_logprobs
        unseen = self._unseen_vector
        rows = [lookup.get(gram, unseen) for gram in grams]
        counts = np.fromiter(grams.values(), dtype=np.float64,
                             count=len(grams))
        vector = counts @ np.vstack(rows) / counts.sum()
        scores: Dict[str, float] = {
            profile.language: float(vector[i])
            for i, profile in enumerate(self._profiles)
        }
        best = max(scores, key=scores.get)
        # Softmax over average log-likelihoods for a confidence figure.
        # Temperature scaling (x20) sharpens the distribution: average
        # per-gram log-likelihood differences are small in magnitude but
        # highly reliable.
        peak = scores[best]
        weights = {
            lang: math.exp(min(0.0, (s - peak)) * 20.0)
            for lang, s in scores.items()
        }
        z = sum(weights.values())
        return Detection(language=best, confidence=weights[best] / z,
                         scores=scores)

    def is_english(self, text: str, min_confidence: float = 0.5) -> bool:
        """True when *text* is detected as English with enough confidence.

        Undetectable messages (too short, symbols only) return ``False``:
        the polishing pipeline drops what it cannot vouch for.
        """
        try:
            result = self.detect(text)
        except LanguageDetectionError:
            return False
        return result.language == "en" and result.confidence >= min_confidence


@lru_cache(maxsize=None)
def _built_in_profile(language: str) -> LanguageProfile:
    """Build (and cache) the profile for a built-in language."""
    return LanguageProfile.from_text(language, SEED_TEXTS[language])


@lru_cache(maxsize=1)
def default_detector() -> LanguageDetector:
    """A process-wide detector over all built-in languages."""
    return LanguageDetector()


def detect_language(text: str) -> str:
    """Convenience wrapper: return just the language code for *text*."""
    return default_detector().detect(text).language
