"""Rule-based English lemmatizer.

Section IV-A: "we transform each token to its base form ... it reduces an
inflected word to its lemmas (e.g., am, are, is -> be)".  The original
work used an off-the-shelf NLP toolkit; this reproduction implements the
same normalization from scratch:

* an exception table for the irregular forms that matter most in forum
  English (be/have/do/go, common irregular verbs, irregular plurals,
  irregular comparatives), and
* ordered suffix-stripping rules with a small orthographic repair pass
  (consonant doubling, silent-e restoration, ``-ies`` -> ``-y``).

The lemmatizer is intentionally conservative: when no rule produces a
known-plausible base form, the token is returned unchanged, because a
wrong lemma merges the vocabularies of different authors and *destroys*
stylometric signal, whereas a missed lemma merely splits one author's
feature mass across two features.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List

# --- Irregular forms -------------------------------------------------------

#: Irregular verbs: inflected form -> lemma.
_IRREGULAR_VERBS: Dict[str, str] = {
    # be / have / do / go
    "am": "be", "are": "be", "is": "be", "was": "be", "were": "be",
    "been": "be", "being": "be",
    "has": "have", "had": "have", "having": "have",
    "does": "do", "did": "do", "done": "do", "doing": "do",
    "goes": "go", "went": "go", "gone": "go", "going": "go",
    # frequent irregulars in forum prose
    "said": "say", "says": "say",
    "made": "make", "makes": "make", "making": "make",
    "got": "get", "gotten": "get", "gets": "get", "getting": "get",
    "took": "take", "taken": "take", "takes": "take", "taking": "take",
    "came": "come", "comes": "come", "coming": "come",
    "saw": "see", "seen": "see", "sees": "see", "seeing": "see",
    "knew": "know", "known": "know", "knows": "know", "knowing": "know",
    "thought": "think", "thinks": "think", "thinking": "think",
    "told": "tell", "tells": "tell", "telling": "tell",
    "found": "find", "finds": "find", "finding": "find",
    "gave": "give", "given": "give", "gives": "give", "giving": "give",
    "felt": "feel", "feels": "feel", "feeling": "feel",
    "left": "leave", "leaves": "leave", "leaving": "leave",
    "kept": "keep", "keeps": "keep", "keeping": "keep",
    "began": "begin", "begun": "begin", "begins": "begin",
    "wrote": "write", "written": "write", "writes": "write",
    "writing": "write",
    "bought": "buy", "buys": "buy", "buying": "buy",
    "sold": "sell", "sells": "sell", "selling": "sell",
    "paid": "pay", "pays": "pay", "paying": "pay",
    "sent": "send", "sends": "send", "sending": "send",
    "met": "meet", "meets": "meet", "meeting": "meet",
    "ran": "run", "runs": "run", "running": "run",
    "spoke": "speak", "spoken": "speak", "speaks": "speak",
    "broke": "break", "broken": "break", "breaks": "break",
    "chose": "choose", "chosen": "choose", "chooses": "choose",
    "drove": "drive", "driven": "drive", "drives": "drive",
    "ate": "eat", "eaten": "eat", "eats": "eat",
    "fell": "fall", "fallen": "fall", "falls": "fall",
    "grew": "grow", "grown": "grow", "grows": "grow",
    "heard": "hear", "hears": "hear", "hearing": "hear",
    "held": "hold", "holds": "hold", "holding": "hold",
    "lost": "lose", "loses": "lose", "losing": "lose",
    "meant": "mean", "means": "mean", "meaning": "mean",
    "put": "put", "puts": "put", "putting": "put",
    "read": "read", "reads": "read", "reading": "read",
    "stood": "stand", "stands": "stand", "standing": "stand",
    "understood": "understand", "understands": "understand",
    "won": "win", "wins": "win", "winning": "win",
    "spent": "spend", "spends": "spend", "spending": "spend",
    "brought": "bring", "brings": "bring", "bringing": "bring",
    "caught": "catch", "catches": "catch", "catching": "catch",
    "taught": "teach", "teaches": "teach", "teaching": "teach",
    "tried": "try", "tries": "try", "trying": "try",
    "used": "use", "uses": "use", "using": "use",
    "shipped": "ship", "ships": "ship", "shipping": "ship",
    # modals map to themselves (they have no useful base form)
    "would": "would", "could": "could", "should": "should",
    "might": "might", "must": "must", "shall": "shall",
    "will": "will", "can": "can", "may": "may",
}

#: Irregular noun plurals: plural -> singular.
_IRREGULAR_NOUNS: Dict[str, str] = {
    "men": "man", "women": "woman", "children": "child",
    "people": "person", "feet": "foot", "teeth": "tooth",
    "mice": "mouse", "geese": "goose", "lives": "life",
    "knives": "knife", "wives": "wife", "halves": "half",
    "selves": "self", "leaves": "leaf", "wolves": "wolf",
    "shelves": "shelf", "thieves": "thief",
    "analyses": "analysis", "crises": "crisis", "theses": "thesis",
    "phenomena": "phenomenon", "criteria": "criterion",
    "data": "datum", "media": "medium",
    "indices": "index", "matrices": "matrix", "vertices": "vertex",
}

#: Irregular comparatives/superlatives: form -> base adjective.
_IRREGULAR_ADJECTIVES: Dict[str, str] = {
    "better": "good", "best": "good",
    "worse": "bad", "worst": "bad",
    "more": "much", "most": "much",
    "less": "little", "least": "little",
    "further": "far", "furthest": "far",
    "farther": "far", "farthest": "far",
    "elder": "old", "eldest": "old",
}

#: Words that end in inflection-like suffixes but are already base forms;
#: stripping them would corrupt the vocabulary.
_NO_STRIP = frozenset({
    "this", "his", "hers", "its", "ours", "yours", "theirs", "whose",
    "bus", "gas", "yes", "chaos", "bias", "lens", "news", "series",
    "species", "physics", "mathematics", "politics", "economics",
    "always", "perhaps", "besides", "anonymous", "famous", "serious",
    "various", "previous", "obvious", "nervous", "jealous", "dangerous",
    "during", "thing", "nothing", "something", "anything", "everything",
    "morning", "evening", "king", "ring", "sing", "bring", "spring",
    "string", "wing", "being", "sterling",
    "red", "bed", "wed", "fed", "led", "shed", "bred", "sled",
    "need", "seed", "feed", "speed", "indeed", "weed", "deed",
    "hundred", "sacred", "wicked", "naked", "wretched", "rugged",
    "united", "ted",
    "vendor", "seller", "buyer", "user", "never", "ever", "over",
    "under", "after", "other", "another", "either", "neither",
    "whether", "together", "rather", "super", "later", "water",
    "better", "paper", "order", "offer", "number", "member", "remember",
    "her", "per", "summer", "winter", "computer", "monster",
})

#: Minimal stem length after stripping; shorter stems are rejected.
_MIN_STEM = 2

#: Stems with these endings do not get a silent ``e`` restored:
#: ``order + ed``, ``happen + ed``, ``travel + ed``, ``target + ed``.
_NO_E_RESTORE = ("er", "en", "el", "et", "it", "ow", "om", "on")


def _wants_silent_e(stem: str) -> bool:
    """Whether ``stem`` looks like it lost a silent ``e`` (CVC shape)."""
    if len(stem) < 3:
        return False
    if any(stem.endswith(sfx) for sfx in _NO_E_RESTORE):
        return False
    return (stem[-1] not in _VOWELS and stem[-2] in _VOWELS
            and stem[-3] not in _VOWELS
            and not stem.endswith(("w", "x", "y")))

#: A compact set of known English base forms used to validate repairs.
#: This is not a full dictionary — just enough coverage to prefer
#: ``making -> make`` over ``making -> mak`` style repairs.
_VOWELS = set("aeiou")


def _has_vowel(s: str) -> bool:
    return any(c in _VOWELS for c in s)


def _strip_plural(word: str) -> str | None:
    """Try to singularize a regular plural noun / 3rd-person verb."""
    if word.endswith("ies") and len(word) > 4:
        return word[:-3] + "y"
    if word.endswith("sses") or word.endswith("shes") or word.endswith("ches"):
        return word[:-2]
    if word.endswith("xes") or word.endswith("zes"):
        return word[:-2]
    if word.endswith("oes") and len(word) > 4:
        return word[:-2]
    if word.endswith("ss") or word.endswith("us") or word.endswith("is"):
        return None
    if word.endswith("s") and len(word) > 3 and not word.endswith("'s"):
        return word[:-1]
    return None


def _strip_ing(word: str) -> str | None:
    """Try to reduce an ``-ing`` form to its base verb."""
    if not word.endswith("ing") or len(word) <= 5:
        return None
    stem = word[:-3]
    if not _has_vowel(stem):
        return None
    # doubled final consonant: running -> run, shipping -> ship
    if (len(stem) >= 3 and stem[-1] == stem[-2]
            and stem[-1] not in _VOWELS and stem[-1] not in "lsz"):
        return stem[:-1]
    # silent-e restoration: making -> make, using -> use
    if _wants_silent_e(stem):
        return stem + "e"
    return stem


def _strip_ed(word: str) -> str | None:
    """Try to reduce an ``-ed`` form to its base verb."""
    if not word.endswith("ed") or len(word) <= 4:
        return None
    if word.endswith("ied"):
        return word[:-3] + "y"
    stem = word[:-2]
    if not _has_vowel(stem):
        return None
    if (len(stem) >= 3 and stem[-1] == stem[-2]
            and stem[-1] not in _VOWELS and stem[-1] not in "lsz"):
        return stem[:-1]
    if stem.endswith("at") or stem.endswith("iz") or stem.endswith("is"):
        return stem + "e"
    if _wants_silent_e(stem):
        return stem + "e"
    return stem


def _strip_comparative(word: str) -> str | None:
    """Try to reduce ``-er``/``-est`` comparatives to the base adjective."""
    for suffix, strip in (("iest", 4), ("ier", 3)):
        if word.endswith(suffix) and len(word) > strip + 2:
            return word[:-strip] + "y"
    for suffix, strip in (("est", 3),):
        if word.endswith(suffix) and len(word) > strip + 3:
            stem = word[:-strip]
            if stem[-1] == stem[-2] and stem[-1] not in _VOWELS:
                return stem[:-1]
            return stem
    return None


def _lemmatize_once(word: str) -> str:
    """One pass of the lookup order: irregular tables first, protected
    words next, then the suffix rules from most to least specific.
    Unknown shapes pass through unchanged."""
    for table in (_IRREGULAR_VERBS, _IRREGULAR_NOUNS, _IRREGULAR_ADJECTIVES):
        if word in table:
            return table[word]
    if word in _NO_STRIP or len(word) <= 3:
        return word
    for rule in (_strip_ing, _strip_ed, _strip_comparative, _strip_plural):
        stem = rule(word)
        if stem is not None and len(stem) >= _MIN_STEM and _has_vowel(stem):
            return stem
    return word


@lru_cache(maxsize=65536)
def lemmatize_word(word: str) -> str:
    """Return the lemma of a single (already casefolded) word.

    The suffix rules are applied to a fixpoint so the lemmatizer is
    idempotent: a stripped stem that itself still matches a rule (e.g.
    an ``-ed`` form whose stem ends in ``-s``) is reduced again until
    stable.  Real vocabulary rarely needs a second pass — the guard
    mostly matters for the stability invariant that downstream feature
    spaces rely on (a lemma must map to itself).
    """
    if not word:
        return word
    word = word.lower()
    for _ in range(8):  # defensive bound; rules strictly shrink words
        reduced = _lemmatize_once(word)
        if reduced == word:
            return word
        word = reduced
    return word


def lemmatize(words: List[str]) -> List[str]:
    """Lemmatize a list of word tokens, preserving order."""
    return [lemmatize_word(w) for w in words]


def lemmatize_text(text: str) -> str:
    """Tokenize *text* into words and return space-joined lemmas.

    Convenience used by the feature extractor when operating on raw
    message strings.  Punctuation and symbols are dropped here; the
    character-level and frequency features are computed on the
    *unlemmatized* normalized text instead.
    """
    from repro.textproc.tokenizer import word_tokens

    return " ".join(lemmatize(word_tokens(text)))
