"""Regular-expression pattern library used by the polishing pipeline.

Section III-C of the paper removes or normalizes a dozen kinds of web
"dirt" before any stylometric feature is computed.  All the patterns
involved live here so the cleaning steps (:mod:`repro.textproc.cleaning`)
stay declarative and each pattern can be unit-tested in isolation.
"""

from __future__ import annotations

import re

# --- URLs (polishing step 3: keep only the hostname) -------------------

#: Matches http(s):// URLs as well as bare ``www.`` URLs.
URL_RE = re.compile(
    r"""
    (?P<scheme>https?://)?          # optional scheme
    (?P<host>
        (?:www\.)?                  # optional www.
        [a-zA-Z0-9][a-zA-Z0-9-]*    # first label
        (?:\.[a-zA-Z0-9][a-zA-Z0-9-]*)+   # at least one more label
    )
    (?P<rest>/[^\s<>"')\]]*)?       # optional path/query fragment
    """,
    re.VERBOSE | re.IGNORECASE,
)

#: Hosts must contain a known-looking TLD or start with www/scheme to be
#: treated as URLs; this keeps "e.g." or "i.e." from being mangled.
_COMMON_TLDS = (
    "com", "org", "net", "io", "gov", "edu", "info", "biz", "co",
    "onion", "me", "tv", "uk", "de", "fr", "it", "ru", "es", "nl",
    "ca", "au", "us", "eu", "ch", "se", "no", "pl", "jp", "cn", "in",
)
_TLD_RE = re.compile(r"\.(?:%s)$" % "|".join(_COMMON_TLDS), re.IGNORECASE)


def looks_like_url(match: re.Match) -> bool:
    """Decide whether a :data:`URL_RE` match is genuinely a URL.

    A match counts as a URL when it carries an explicit scheme, starts
    with ``www.``, or ends in a well-known top-level domain.  This guards
    against false positives on dotted abbreviations such as ``e.g.``.
    """
    if match.group("scheme"):
        return True
    host = match.group("host")
    if host.lower().startswith("www."):
        return True
    return bool(_TLD_RE.search(host))


def normalize_urls(text: str) -> str:
    """Replace every URL in *text* with its bare hostname.

    Implements polishing step 3: ``http://www.reddit.com/r/x?a=1`` becomes
    ``reddit.com``.  The scheme, the leading ``www.`` and everything after
    the host are discarded.
    """

    def _repl(match: re.Match) -> str:
        if not looks_like_url(match):
            return match.group(0)
        host = match.group("host").lower()
        if host.startswith("www."):
            host = host[len("www."):]
        return host

    return URL_RE.sub(_repl, text)


# --- E-mail addresses (polishing step 10) -------------------------------

EMAIL_RE = re.compile(
    r"[a-zA-Z0-9._%+-]+@[a-zA-Z0-9.-]+\.[a-zA-Z]{2,}"
)

#: The tag that replaces e-mail addresses, exactly as in the paper.
EMAIL_TAG = "_mail_"


def mask_emails(text: str) -> str:
    """Replace every e-mail address with the ``_mail_`` tag (step 10)."""
    return EMAIL_RE.sub(EMAIL_TAG, text)


# --- Emojis (polishing step 4) ------------------------------------------

#: Unicode ranges covering emoji and related pictographs.  The ranges are
#: deliberately broad: stylometric features must never be computed on
#: pictographic codepoints.
EMOJI_RE = re.compile(
    "["
    "\U0001F300-\U0001F5FF"   # symbols & pictographs
    "\U0001F600-\U0001F64F"   # emoticons
    "\U0001F680-\U0001F6FF"   # transport & map symbols
    "\U0001F700-\U0001F77F"   # alchemical symbols
    "\U0001F780-\U0001F7FF"   # geometric shapes extended
    "\U0001F800-\U0001F8FF"   # supplemental arrows-C
    "\U0001F900-\U0001F9FF"   # supplemental symbols & pictographs
    "\U0001FA00-\U0001FAFF"   # symbols & pictographs extended-A
    "\U00002700-\U000027BF"   # dingbats
    "\U0001F1E6-\U0001F1FF"   # regional indicators (flags)
    "\U00002600-\U000026FF"   # misc symbols
    "\U0000FE00-\U0000FE0F"   # variation selectors
    "\U0000200D"              # zero-width joiner
    "]+",
)


def strip_emojis(text: str) -> str:
    """Remove every emoji codepoint from *text* (polishing step 4)."""
    return EMOJI_RE.sub("", text)


# --- PGP blocks (polishing step 11) --------------------------------------

#: A full ASCII-armored PGP block: key, message or signature.
PGP_BLOCK_RE = re.compile(
    r"-----BEGIN PGP (?P<kind>[A-Z ]+)-----"
    r".*?"
    r"-----END PGP (?P=kind)-----",
    re.DOTALL,
)

#: Phrases that typically introduce a PGP key in dark-web forum posts.
PGP_INTRO_RE = re.compile(
    r"(?:my|our|new|updated|current)?\s*"
    r"(?:pgp|gpg)\s*"
    r"(?:public\s+)?key\s*"
    r"(?:is|below|follows|attached)?\s*[:\-]?\s*$",
    re.IGNORECASE | re.MULTILINE,
)


def strip_pgp_blocks(text: str) -> str:
    """Remove ASCII-armored PGP blocks and their introduction lines.

    Implements polishing step 11.  The paper notes that in dark-web
    forums the key is usually preceded by a short introductory sentence;
    we remove an introduction line when it directly precedes a block.
    """
    text = PGP_BLOCK_RE.sub("", text)
    # Remove now-dangling introduction lines ("my PGP key:").
    text = PGP_INTRO_RE.sub("", text)
    return text


# --- Quotes (polishing step 8) -------------------------------------------

#: Reddit/Markdown-style quote lines begin with '>' possibly indented.
QUOTE_LINE_RE = re.compile(r"^\s*>.*$", re.MULTILINE)

#: BBCode-style quotes used by classic forum software (e.g. SMF, phpBB),
#: which both The Majestic Garden and the Dream Market forum run on.
BBCODE_QUOTE_RE = re.compile(
    r"\[quote(?:=[^\]]*)?\].*?\[/quote\]",
    re.DOTALL | re.IGNORECASE,
)


def strip_quotes(text: str) -> str:
    """Remove quoted text so only the author's own words remain (step 8)."""
    text = BBCODE_QUOTE_RE.sub("", text)
    text = QUOTE_LINE_RE.sub("", text)
    return text


# --- Edit markers (polishing step 9) -------------------------------------

#: "Edit by <username> ..." markers appended by forum software, and the
#: Reddit convention "EDIT:" / "Edit 2:" lines that often name the user.
EDIT_BY_RE = re.compile(
    r"(?:--\s*)?edit(?:ed)?\s+by\s+\S+.*$",
    re.IGNORECASE | re.MULTILINE,
)

EDIT_PREFIX_RE = re.compile(
    r"^\s*edit(?:\s*\d+)?\s*:\s*",
    re.IGNORECASE | re.MULTILINE,
)


def strip_edit_markers(text: str) -> str:
    """Remove platform-added edit attributions (polishing step 9).

    ``Edit by <username>`` trailers are removed wholesale because they
    embed the author's nickname and would leak label information into
    the features.  Bare ``EDIT:`` prefixes are stripped but the edited
    text itself (written by the author) is kept.
    """
    text = EDIT_BY_RE.sub("", text)
    text = EDIT_PREFIX_RE.sub("", text)
    return text


# --- Long words (polishing step 12) ---------------------------------------

def strip_long_words(text: str, max_length: int = 34) -> str:
    """Drop whitespace-delimited tokens longer than *max_length* (step 12).

    Such tokens are almost never natural-language words: they are ASCII
    art, key material that escaped the PGP pattern, or keyboard mashing.
    """
    return " ".join(
        word for word in text.split() if len(word) <= max_length
    )


# --- Misc helpers ----------------------------------------------------------

WHITESPACE_RE = re.compile(r"\s+")


def collapse_whitespace(text: str) -> str:
    """Collapse runs of whitespace into single spaces and trim the ends."""
    return WHITESPACE_RE.sub(" ", text).strip()
