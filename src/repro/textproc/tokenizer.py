"""Tokenization of forum text into linguistic units.

Section IV-A: "Tokenization is the process of breaking up a stream of
text into linguistic units such as words, punctuation, or other
meaningful elements."  Web text is messy — writers skip spaces after
punctuation, glue emoticons to words, and abuse ellipses — so the
tokenizer must split punctuation off words while keeping multi-character
units (``...``, ``!!``, ``:)``) together where they carry stylistic
signal.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Iterator, List

#: Token kinds produced by the tokenizer.
WORD = "word"
NUMBER = "number"
PUNCT = "punct"
SYMBOL = "symbol"

_TOKEN_RE = re.compile(
    r"""
    (?P<word>[A-Za-z]+(?:['’\-][A-Za-z]+)*)   # words incl. contractions
  | (?P<number>\d+(?:[.,]\d+)*)               # integers & decimals
  | (?P<ellipsis>\.{2,})                      # ... runs kept whole
  | (?P<bangrun>[!?]{2,})                     # !!, ?!?! runs kept whole
  | (?P<punct>[.,;:!?"'()\[\]{}\-])           # single punctuation marks
  | (?P<symbol>\S)                            # any other printable symbol
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """A single token with its surface form and coarse kind.

    Attributes
    ----------
    text:
        The surface form exactly as it appears in the input.
    kind:
        One of :data:`WORD`, :data:`NUMBER`, :data:`PUNCT`,
        :data:`SYMBOL`.
    """

    text: str
    kind: str

    def lower(self) -> str:
        """The casefolded surface form (convenience for n-gram building)."""
        return self.text.lower()


def iter_tokens(text: str) -> Iterator[Token]:
    """Yield :class:`Token` objects for *text* in document order.

    Multi-character punctuation runs (``...``, ``?!``) are emitted as a
    single punctuation token because their presence is an author habit
    the character n-grams should see intact.
    """
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup
        surface = match.group(0)
        if kind == "word":
            yield Token(surface, WORD)
        elif kind == "number":
            yield Token(surface, NUMBER)
        elif kind in ("ellipsis", "bangrun", "punct"):
            yield Token(surface, PUNCT)
        else:
            yield Token(surface, SYMBOL)


def tokenize(text: str) -> List[Token]:
    """Tokenize *text* into a list of :class:`Token` objects."""
    return list(iter_tokens(text))


def word_tokens(text: str, lowercase: bool = True) -> List[str]:
    """Return only the word tokens of *text* as plain strings.

    Parameters
    ----------
    text:
        Input text.
    lowercase:
        Casefold tokens (default).  Word n-gram features are built on
        casefolded text; character n-grams see the original casing.
    """
    words = [t.text for t in iter_tokens(text) if t.kind == WORD]
    if lowercase:
        words = [w.lower() for w in words]
    return words


def count_words(text: str) -> int:
    """Number of word tokens in *text*.

    This is the word count used throughout the pipeline: for the
    10-word minimum of polishing step 5, for the 1,500-word alias
    budget, and for the Table III word sweeps.
    """
    return sum(1 for t in iter_tokens(text) if t.kind == WORD)


def distinct_word_ratio(text: str) -> float:
    """Ratio of distinct words over total words (polishing step 6).

    Returns 0.0 for text without any word token, which makes empty or
    symbol-only messages fail the spam filter as intended.
    """
    words = word_tokens(text)
    if not words:
        return 0.0
    return len(set(words)) / len(words)


def sentences(text: str) -> List[str]:
    """Split *text* into rough sentences on ``.``, ``!`` and ``?``.

    Forum writers are careless with punctuation; this splitter is only
    used for readability-oriented analyses (e.g. the profiling reports),
    never for feature extraction.
    """
    parts = re.split(r"(?<=[.!?])\s+", text.strip())
    return [p for p in (part.strip() for part in parts) if p]


def join_words(tokens: Iterable[str]) -> str:
    """Join word tokens back into a single space-separated string."""
    return " ".join(tokens)
