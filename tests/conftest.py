"""Shared fixtures: one small world per test session.

World generation and polishing are the expensive steps, so they are
session-scoped; tests must treat these fixtures as read-only.
"""

from __future__ import annotations

import pytest

from repro.eval.alterego import build_alter_ego_dataset
from repro.synth.world import small_world
from repro.textproc.cleaning import polish_forum


@pytest.fixture(scope="session")
def world():
    """A tiny but fully featured synthetic world (read-only)."""
    return small_world(seed=7)


@pytest.fixture(scope="session")
def polished_reddit(world):
    """The world's Reddit forum after the 12-step polishing."""
    forum, _ = polish_forum(world.forums["reddit"])
    return forum


@pytest.fixture(scope="session")
def polished_tmg(world):
    forum, _ = polish_forum(world.forums["tmg"])
    return forum


@pytest.fixture(scope="session")
def polished_dm(world):
    forum, _ = polish_forum(world.forums["dm"])
    return forum


@pytest.fixture(scope="session")
def reddit_alter_egos(polished_reddit):
    """Alter-ego dataset of the polished Reddit forum (read-only)."""
    return build_alter_ego_dataset(polished_reddit, seed=3,
                                   words_per_alias=600)


@pytest.fixture(scope="session")
def episode_suite(world):
    """A small deterministic episode suite over the session world
    (read-only): ``(episodes, config)``."""
    from repro.eval.episodes import EpisodeConfig, sample_episodes

    config = EpisodeConfig(seed=5, n_way=4, episodes_per_cell=4,
                           buckets=(300,))
    return sample_episodes(world, config), config
