"""Unit tests for the daily activity profile (repro.core.activity)."""

import numpy as np
import pytest

from repro.core import activity
from repro.core.calendars import timestamp_at
from repro.errors import InsufficientDataError
from repro.forums.models import HOUR


def _weekday_stamps(hour, n, minute_step=0):
    """n timestamps at the given hour on distinct 2017 weekdays."""
    stamps = []
    day = 2  # 2017-01-02 was a Monday
    month = 1
    while len(stamps) < n:
        ts = timestamp_at(2017, month, day, hour, minute_step)
        from repro.core.calendars import is_excluded

        if not is_excluded(ts):
            stamps.append(ts)
        day += 1
        if day > 28:
            day = 1
            month += 1
    return stamps


class TestActivityProfile:
    def test_basic_profile_shape(self):
        profile = activity.activity_profile(_weekday_stamps(14, 40))
        assert profile.shape == (24,)
        assert profile.sum() == pytest.approx(1.0)
        assert profile[14] == pytest.approx(1.0)

    def test_minimum_enforced(self):
        with pytest.raises(InsufficientDataError):
            activity.activity_profile(_weekday_stamps(14, 10))

    def test_custom_minimum(self):
        profile = activity.activity_profile(_weekday_stamps(14, 10),
                                            min_timestamps=5)
        assert profile[14] == pytest.approx(1.0)

    def test_weekend_stamps_excluded(self):
        weekdays = _weekday_stamps(9, 30)
        # add many Saturday posts at hour 23; they must not count
        weekend = [timestamp_at(2017, 1, 7, 23) + i * 7 * 24 * HOUR
                   for i in range(20)]
        profile = activity.activity_profile(weekdays + weekend)
        assert profile[23] == 0.0

    def test_binarization_per_day_hour(self):
        """Five posts in the same hour of the same day count once."""
        base = _weekday_stamps(10, 30)
        bursts = [base[0] + i * 60 for i in range(5)]  # same day-hour
        profile_a = activity.activity_profile(base)
        profile_b = activity.activity_profile(base + bursts)
        assert np.allclose(profile_a, profile_b)

    def test_utc_shift_rolls_hours(self):
        stamps = _weekday_stamps(14, 40)
        shifted = activity.activity_profile(stamps, utc_shift_hours=-2)
        assert shifted[12] == pytest.approx(1.0)

    def test_two_peak_profile(self):
        stamps = _weekday_stamps(8, 30) + _weekday_stamps(20, 30)
        profile = activity.activity_profile(stamps)
        assert profile[8] == pytest.approx(0.5, abs=0.1)
        assert profile[20] == pytest.approx(0.5, abs=0.1)


class TestTryActivityProfile:
    def test_returns_none_on_insufficient(self):
        assert activity.try_activity_profile(
            _weekday_stamps(14, 3)) is None

    def test_returns_profile_when_enough(self):
        assert activity.try_activity_profile(
            _weekday_stamps(14, 40)) is not None


class TestProfileSimilarity:
    def test_identical_profiles(self):
        profile = activity.activity_profile(_weekday_stamps(14, 40))
        assert activity.profile_similarity(profile, profile) == \
            pytest.approx(1.0)

    def test_disjoint_profiles(self):
        a = activity.activity_profile(_weekday_stamps(3, 40))
        b = activity.activity_profile(_weekday_stamps(15, 40))
        assert activity.profile_similarity(a, b) == pytest.approx(0.0)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            activity.profile_similarity(np.zeros(10), np.zeros(24))

    def test_zero_profile_similarity_zero(self):
        a = np.zeros(24)
        b = np.full(24, 1 / 24)
        assert activity.profile_similarity(a, b) == 0.0


class TestUsableTimestamps:
    def test_filters_weekends_and_holidays(self):
        stamps = [
            timestamp_at(2017, 3, 7, 12),    # Tuesday: usable
            timestamp_at(2017, 3, 11, 12),   # Saturday: dropped
            timestamp_at(2017, 12, 25, 12),  # Christmas Monday: dropped
        ]
        assert activity.usable_timestamps(stamps) == [stamps[0]]
