"""Tests for the comparison baselines (repro.core.baselines)."""

import pytest

from repro.core.baselines import KoppelBaseline, StandardBaseline
from repro.core.threshold import matches_to_curve
from repro.errors import ConfigurationError, NotFittedError


class TestStandardBaseline:
    def test_link_before_fit(self, reddit_alter_egos):
        with pytest.raises(NotFittedError):
            StandardBaseline().link(reddit_alter_egos.alter_egos[:1])

    def test_fit_empty(self):
        with pytest.raises(ConfigurationError):
            StandardBaseline().fit([])

    def test_one_match_per_unknown(self, reddit_alter_egos):
        baseline = StandardBaseline().fit(reddit_alter_egos.originals)
        result = baseline.link(reddit_alter_egos.alter_egos[:5])
        assert len(result.matches) == 5

    def test_max_features_cap(self, reddit_alter_egos):
        baseline = StandardBaseline(max_features=100)
        baseline.fit(reddit_alter_egos.originals)
        assert baseline._selected.size == 100

    def test_reasonable_accuracy(self, reddit_alter_egos):
        """4-gram cosine is a real method; it should beat chance."""
        baseline = StandardBaseline().fit(reddit_alter_egos.originals)
        result = baseline.link(reddit_alter_egos.alter_egos)
        correct = sum(
            reddit_alter_egos.truth.get(m.unknown_id) == m.candidate_id
            for m in result.matches)
        assert correct / len(result.matches) > \
            2.0 / len(reddit_alter_egos.originals)


class TestKoppelBaseline:
    def test_invalid_iterations(self):
        with pytest.raises(ConfigurationError):
            KoppelBaseline(iterations=0)

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            KoppelBaseline(feature_fraction=0.0)

    def test_link_before_fit(self, reddit_alter_egos):
        with pytest.raises(NotFittedError):
            KoppelBaseline().link(reddit_alter_egos.alter_egos[:1])

    def test_scores_are_vote_shares(self, reddit_alter_egos):
        baseline = KoppelBaseline(iterations=10, seed=3)
        baseline.fit(reddit_alter_egos.originals)
        result = baseline.link(reddit_alter_egos.alter_egos[:4])
        for match in result.matches:
            assert 0.0 <= match.score <= 1.0
            # vote share is a multiple of 1/iterations
            assert (match.score * 10) == pytest.approx(
                round(match.score * 10))

    def test_deterministic_given_seed(self, reddit_alter_egos):
        unknowns = reddit_alter_egos.alter_egos[:3]
        a = KoppelBaseline(iterations=10, seed=9)
        a.fit(reddit_alter_egos.originals)
        b = KoppelBaseline(iterations=10, seed=9)
        b.fit(reddit_alter_egos.originals)
        assert [m.score for m in a.link(unknowns).matches] == \
            [m.score for m in b.link(unknowns).matches]

    def test_koppel_beats_standard_auc(self, reddit_alter_egos):
        """The paper's ordering: Koppel AUC > Standard AUC."""
        unknowns = reddit_alter_egos.alter_egos
        standard = StandardBaseline().fit(reddit_alter_egos.originals)
        koppel = KoppelBaseline(iterations=30, seed=1)
        koppel.fit(reddit_alter_egos.originals)
        auc_std = matches_to_curve(
            standard.link(unknowns).matches,
            reddit_alter_egos.truth).auc()
        auc_kop = matches_to_curve(
            koppel.link(unknowns).matches,
            reddit_alter_egos.truth).auc()
        assert auc_kop > auc_std - 0.05
